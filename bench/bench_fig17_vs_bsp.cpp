// Fig. 17 — JSweep vs the BSP-based JAxMIN baselines.
//
// Paper setup & results:
//   (a) vs JASMIN SnSweep (data-driven-in-BSP Sweep3D), Kobayashi-400,
//       288..4,608 cores: JSweep constantly faster.
//   (b) vs JAUMIN JSNT-U, ball mesh, 384..6,144 cores: JSweep constantly
//       faster, advantage growing slightly with cores.
//
// Both engines execute the identical chunk workload in the simulator; the
// BSP engine pays a barrier + collective per superstep and only overlaps
// within a superstep — exactly the "previous JAxMIN" execution model. At
// host scale, the real Engine-vs-BspEngine comparison lives in
// bench_ablation_real.

#include "bench_common.hpp"

#include <algorithm>

using namespace jsweep;

namespace {

/// Sim-scale cousin of sweep::auto_tune: scan a few cluster-grain
/// candidates around the fixed default and keep the fastest. The grain is
/// the knob that trades pipelining granularity (small grain = streams
/// flow early, little idle) against per-chunk overhead, and the best
/// point shifts with the core count — exactly what a static default
/// misses at the high end of Fig. 17's range.
sim::SimResult tune_grain(const sim::PatchTopology& topo,
                          const sn::Quadrature& quad, sim::SimConfig cfg,
                          int base_grain, int* best_grain) {
  std::vector<int> grains;
  for (const int g : {base_grain / 4, base_grain / 2, base_grain,
                      base_grain * 2, base_grain * 4})
    if (g >= 1 && std::find(grains.begin(), grains.end(), g) == grains.end())
      grains.push_back(g);
  sim::SimResult best;
  best.elapsed_seconds = -1.0;
  for (const int g : grains) {
    cfg.cluster_grain = g;
    const sim::SimResult r = sim::DataDrivenSim(topo, quad, cfg).run();
    if (best.elapsed_seconds < 0.0 ||
        r.elapsed_seconds < best.elapsed_seconds) {
      best = r;
      *best_grain = g;
    }
  }
  return best;
}

void compare(const char* name, const sim::PatchTopology& topo,
             const sn::Quadrature& quad, const std::vector<int>& cores,
             bool tet, int grain, const char* paper_note) {
  const std::int64_t size = topo.total_cells() * quad.num_angles();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "%d patches, %d angles, grain %d\npaper: %s",
                topo.num_patches(), quad.num_angles(), grain, paper_note);
  bench::print_header(name, "JSweep vs BSP baseline (simulated)", setup);

  Table table({"cores", "BSP time(s)", "JSweep time(s)", "JSweep/BSP",
               "idle frac", "tuned(s)", "tuned grain", "tuned idle"});
  for (const int c : cores) {
    sim::SimConfig dd = bench::sim_config_for_cores(c);
    dd.tet_mesh = tet;
    dd.cluster_grain = grain;
    dd.cost = tet ? sim::CostModel::jsnt_u() : sim::CostModel::jsnt_s();
    sim::SimConfig bsp = dd;
    bsp.engine = sim::SimEngine::Bsp;
    const sim::SimResult r_dd = sim::DataDrivenSim(topo, quad, dd).run();
    const sim::SimResult r_bsp = sim::DataDrivenSim(topo, quad, bsp).run();
    int tuned_grain = grain;
    const sim::SimResult r_tuned =
        tune_grain(topo, quad, dd, grain, &tuned_grain);
    const double t_dd = r_dd.elapsed_seconds;
    const double t_bsp = r_bsp.elapsed_seconds;
    const auto idle_frac = [](const sim::SimResult& r) {
      const double total = r.breakdown.kernel + r.breakdown.graphop +
                           r.breakdown.pack + r.breakdown.route +
                           r.breakdown.idle;
      return total > 0.0 ? r.breakdown.idle / total : 0.0;
    };
    table.add_row({Table::num(static_cast<std::int64_t>(c)),
                   Table::num(t_bsp, 3), Table::num(t_dd, 3),
                   Table::num(t_dd / t_bsp, 3),
                   Table::num(idle_frac(r_dd), 3),
                   Table::num(r_tuned.elapsed_seconds, 3),
                   Table::num(static_cast<std::int64_t>(tuned_grain)),
                   Table::num(idle_frac(r_tuned), 3)});
    bench::Sample s_dd{std::string(name) + "/jsweep/cores_" +
                           std::to_string(c),
                       t_dd, c, size, {{"simulated", 1.0}}};
    bench::append_sim_breakdown(s_dd, r_dd);
    bench::record(std::move(s_dd));
    bench::Sample s_bsp{std::string(name) + "/bsp/cores_" +
                            std::to_string(c),
                        t_bsp, c, size,
                        {{"simulated", 1.0}, {"vs_bsp_ratio", t_dd / t_bsp}}};
    bench::append_sim_breakdown(s_bsp, r_bsp);
    bench::record(std::move(s_bsp));
    bench::Sample s_tuned{
        std::string(name) + "/jsweep_tuned/cores_" + std::to_string(c),
        r_tuned.elapsed_seconds,
        c,
        size,
        {{"simulated", 1.0},
         {"tuned_grain", static_cast<double>(tuned_grain)},
         {"vs_fixed_ratio", r_tuned.elapsed_seconds / t_dd}}};
    bench::append_sim_breakdown(s_tuned, r_tuned);
    bench::record(std::move(s_tuned));
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig17_vs_bsp");
  {
    const sim::PatchTopology topo =
        sim::PatchTopology::structured({400, 400, 400}, {20, 20, 20});
    const sn::Quadrature quad = sn::Quadrature::product(4, 12);
    compare("Fig 17a", topo, quad, {288, 576, 1152, 2304, 4608},
            /*tet=*/false, 1000,
            "JSweep time constantly below JASMIN's at every core count");
  }
  {
    // ~482k cells / 500 per patch ≈ 965 patches → 12 blocks across.
    const sim::PatchTopology topo =
        sim::PatchTopology::lattice_ball(12, 500, 40);
    const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
    compare("Fig 17b", topo, quad, {384, 768, 1536, 3072, 6144},
            /*tet=*/true, 64,
            "JSweep below JAUMIN everywhere; gap grows slightly with cores");
  }
  return 0;
}
