// Fig. 17 — JSweep vs the BSP-based JAxMIN baselines.
//
// Paper setup & results:
//   (a) vs JASMIN SnSweep (data-driven-in-BSP Sweep3D), Kobayashi-400,
//       288..4,608 cores: JSweep constantly faster.
//   (b) vs JAUMIN JSNT-U, ball mesh, 384..6,144 cores: JSweep constantly
//       faster, advantage growing slightly with cores.
//
// Both engines execute the identical chunk workload in the simulator; the
// BSP engine pays a barrier + collective per superstep and only overlaps
// within a superstep — exactly the "previous JAxMIN" execution model. At
// host scale, the real Engine-vs-BspEngine comparison lives in
// bench_ablation_real.

#include "bench_common.hpp"

using namespace jsweep;

namespace {

void compare(const char* name, const sim::PatchTopology& topo,
             const sn::Quadrature& quad, const std::vector<int>& cores,
             bool tet, int grain, const char* paper_note) {
  const std::int64_t size = topo.total_cells() * quad.num_angles();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "%d patches, %d angles, grain %d\npaper: %s",
                topo.num_patches(), quad.num_angles(), grain, paper_note);
  bench::print_header(name, "JSweep vs BSP baseline (simulated)", setup);

  Table table({"cores", "BSP time(s)", "JSweep time(s)", "JSweep/BSP"});
  for (const int c : cores) {
    sim::SimConfig dd = bench::sim_config_for_cores(c);
    dd.tet_mesh = tet;
    dd.cluster_grain = grain;
    dd.cost = tet ? sim::CostModel::jsnt_u() : sim::CostModel::jsnt_s();
    sim::SimConfig bsp = dd;
    bsp.engine = sim::SimEngine::Bsp;
    const sim::SimResult r_dd = sim::DataDrivenSim(topo, quad, dd).run();
    const sim::SimResult r_bsp = sim::DataDrivenSim(topo, quad, bsp).run();
    const double t_dd = r_dd.elapsed_seconds;
    const double t_bsp = r_bsp.elapsed_seconds;
    table.add_row({Table::num(static_cast<std::int64_t>(c)),
                   Table::num(t_bsp, 3), Table::num(t_dd, 3),
                   Table::num(t_dd / t_bsp, 3)});
    bench::Sample s_dd{std::string(name) + "/jsweep/cores_" +
                           std::to_string(c),
                       t_dd, c, size, {{"simulated", 1.0}}};
    bench::append_sim_breakdown(s_dd, r_dd);
    bench::record(std::move(s_dd));
    bench::Sample s_bsp{std::string(name) + "/bsp/cores_" +
                            std::to_string(c),
                        t_bsp, c, size,
                        {{"simulated", 1.0}, {"vs_bsp_ratio", t_dd / t_bsp}}};
    bench::append_sim_breakdown(s_bsp, r_bsp);
    bench::record(std::move(s_bsp));
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig17_vs_bsp");
  {
    const sim::PatchTopology topo =
        sim::PatchTopology::structured({400, 400, 400}, {20, 20, 20});
    const sn::Quadrature quad = sn::Quadrature::product(4, 12);
    compare("Fig 17a", topo, quad, {288, 576, 1152, 2304, 4608},
            /*tet=*/false, 1000,
            "JSweep time constantly below JASMIN's at every core count");
  }
  {
    // ~482k cells / 500 per patch ≈ 965 patches → 12 blocks across.
    const sim::PatchTopology topo =
        sim::PatchTopology::lattice_ball(12, 500, 40);
    const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
    compare("Fig 17b", topo, quad, {384, 768, 1536, 3072, 6144},
            /*tet=*/true, 64,
            "JSweep below JAUMIN everywhere; gap grows slightly with cores");
  }
  return 0;
}
