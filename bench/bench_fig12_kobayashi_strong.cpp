// Fig. 12 — Kobayashi strong scaling on structured meshes.
//
// Paper setup & results:
//   (a) Kobayashi-400: 400³ cells, 320 angles, patch 20³, grain 1000,
//       SLBD+SLBD. 768 → 24,576 cores: speedup 14.3 (44.7% efficiency).
//   (b) Kobayashi-800: 800³ cells. 4,800 → 76,800 cores: speedup 7.4
//       (46.3% efficiency).
//
// The simulator runs the paper's core counts. Angle count defaults to 48
// (product quadrature) to keep event counts tractable on this host — the
// strong-scaling *shape* (smooth decay into ~40-50% efficiency at 32x base
// cores) is the reproduction target; set JSWEEP_FULL_ANGLES=1 for 320.

#include <cstdlib>

#include "bench_common.hpp"

using namespace jsweep;

namespace {

void run_case(const char* name, mesh::Index3 dims,
              const std::vector<int>& cores, const char* paper_note) {
  const bool full = std::getenv("JSWEEP_FULL_ANGLES") != nullptr;
  const int npolar = full ? 8 : 4;
  const int nazim = full ? 40 : 12;
  const sn::Quadrature quad = sn::Quadrature::product(npolar, nazim);

  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "%d^3 cells, patch 20^3, grain 1000, SLBD+SLBD, %d angles "
                "(paper: 320)\npaper: %s",
                dims.i, quad.num_angles(), paper_note);
  bench::print_header(name, "Kobayashi strong scaling (simulated)", setup);

  const sim::PatchTopology topo =
      sim::PatchTopology::structured(dims, {20, 20, 20});

  Table table({"case", "cores", "sim time(s)", "speedup", "eff %"});
  std::vector<bench::ScalingRow> rows;
  for (const int c : cores) {
    sim::SimConfig cfg = bench::sim_config_for_cores(c);
    cfg.cluster_grain = 1000;
    cfg.cost = sim::CostModel::jsnt_s();
    const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
    rows.push_back({c, r.elapsed_seconds});
  }
  bench::print_scaling(table, rows, name,
                       static_cast<std::int64_t>(dims.i) * dims.j * dims.k *
                           quad.num_angles());
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig12_kobayashi_strong");
  run_case("Fig 12a", {400, 400, 400}, {768, 1536, 3072, 6144, 12288, 24576},
           "speedup 14.3 at 24,576 vs 768 cores (44.7% efficiency)");
  run_case("Fig 12b", {800, 800, 800}, {4800, 9600, 19200, 38400, 76800},
           "speedup 7.4 at 76,800 vs 4,800 cores (46.3% efficiency)");
  return 0;
}
