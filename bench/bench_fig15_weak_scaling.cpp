// Fig. 15 — weak scalability of JSNT-U on reactor and ball meshes.
//
// Paper setup: base meshes reactor 64,479 cells / ball 482,248 cells at 24
// cores, grown by uniform ("approximate") refinement as cores scale
// 24 → 12,288. Paper observation: weak efficiency decays to ~40% (reactor)
// and below 20% (ball) at 12,288 cores — each process refines its own
// subdomain, producing thick subdomains that lengthen the sweep critical
// path. We reproduce that growth pattern: cells scale with cores, patch
// size stays fixed, so the patch-lattice diameter (critical path) grows
// with the cube root of the core count.

#include "bench_common.hpp"

using namespace jsweep;

namespace {

void weak_case(const char* name, bool ball, std::int64_t base_cells,
               const char* paper_note) {
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "base %lld tets at 24 cores; mesh refined with core count; "
                "patch 500 cells, S2, grain 64\npaper: %s",
                static_cast<long long>(base_cells), paper_note);
  bench::print_header(name, "weak scaling (simulated)", setup);

  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  Table table({"cores", "cells", "sim time(s)", "weak eff %"});
  double base_time = 0.0;
  for (const int cores : {24, 192, 1536, 12288}) {
    const std::int64_t cells = base_cells * (cores / 24);
    const std::int64_t patch_cells = 500;
    const auto patches = cells / patch_cells;
    const auto side_hexes =
        std::cbrt(static_cast<double>(patch_cells) / 6.0);
    const auto interface = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(2.0 * side_hexes * side_hexes));
    sim::PatchTopology topo =
        ball ? sim::PatchTopology::lattice_ball(
                   std::max(2, static_cast<int>(std::cbrt(
                                   static_cast<double>(patches) * 6.0 /
                                   3.1415926))),
                   patch_cells, interface)
             : sim::PatchTopology::lattice_cylinder(
                   std::max(2, static_cast<int>(std::cbrt(
                                   static_cast<double>(patches) * 4.0 /
                                   3.1415926))),
                   std::max(2, static_cast<int>(std::cbrt(
                                   static_cast<double>(patches) * 4.0 /
                                   3.1415926))),
                   patch_cells, interface);

    sim::SimConfig cfg = bench::sim_config_for_cores(cores);
    cfg.tet_mesh = true;
    cfg.rep_block_hexes = 4;
    cfg.cluster_grain = 64;
    cfg.cost = sim::CostModel::jsnt_u();
    const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
    if (base_time == 0.0) base_time = r.elapsed_seconds;
    table.add_row({Table::num(static_cast<std::int64_t>(cores)),
                   Table::num(cells), Table::num(r.elapsed_seconds, 4),
                   Table::num(base_time / r.elapsed_seconds * 100.0, 1)});
    bench::record({std::string(name) + "/cores_" + std::to_string(cores),
                   r.elapsed_seconds, cores, cells * quad.num_angles(),
                   {{"simulated", 1.0},
                    {"weak_efficiency", base_time / r.elapsed_seconds}}});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig15_weak_scaling");
  weak_case("Fig 15-reactor", /*ball=*/false, 64479,
            "efficiency ~40% at 12,288 cores");
  weak_case("Fig 15-ball", /*ball=*/true, 482248,
            "efficiency <20% at 12,288 cores");
  return 0;
}
