// Fig. 9b — priority strategies on structured meshes, strong scaling.
//
// Paper setup: SnSweep-S, strategies LDCP+LDCP / SLBD+SLBD / LDCP+SLBD
// (patch-level + vertex-level), 96..768 cores.
// Paper observation: strategy choice matters on structured meshes; the
// SLBD vertex ordering (early boundary emission) wins as core counts grow.

#include "bench_common.hpp"

using namespace jsweep;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig09b_priority_structured");
  bench::print_header(
      "Fig 9b (simulated)", "priority strategies, structured strong scaling",
      "mesh 160x160x180, patch 20^3, S2, grain 1000; strategies are "
      "patch+vertex pairs; paper: LDCP+SLBD / SLBD+SLBD lowest, gap widens "
      "with cores");

  const sim::PatchTopology topo =
      sim::PatchTopology::structured({160, 160, 180}, {20, 20, 20});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);

  struct Combo {
    const char* name;
    graph::PriorityStrategy patch;
    graph::PriorityStrategy vertex;
  };
  const Combo combos[] = {
      {"LDCP+LDCP", graph::PriorityStrategy::LDCP,
       graph::PriorityStrategy::LDCP},
      {"SLBD+SLBD", graph::PriorityStrategy::SLBD,
       graph::PriorityStrategy::SLBD},
      {"LDCP+SLBD", graph::PriorityStrategy::LDCP,
       graph::PriorityStrategy::SLBD},
      {"None+None", graph::PriorityStrategy::None,
       graph::PriorityStrategy::None},
  };

  Table table({"strategy", "cores", "sim time(s)"});
  for (const int cores : {96, 192, 384, 768}) {
    for (const auto& combo : combos) {
      // Fig. 9 runs SnSweep-S — the light JASMIN example code — so the
      // host-calibrated DD kernel cost is the right model here (unlike
      // Fig. 12/16, which run the full JSNT-S package).
      sim::SimConfig cfg = bench::sim_config_for_cores(cores);
      cfg.cluster_grain = 1000;
      cfg.patch_priority = combo.patch;
      cfg.vertex_priority = combo.vertex;
      const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
      table.add_row({combo.name,
                     Table::num(static_cast<std::int64_t>(cores)),
                     Table::num(r.elapsed_seconds, 3)});
      bench::record({std::string(combo.name) + "/cores_" +
                         std::to_string(cores),
                     r.elapsed_seconds, cores,
                     topo.total_cells() * quad.num_angles(),
                     {{"simulated", 1.0}}});
    }
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
