// Fig. 13 — hyper-parameter effects on the unstructured reactor mesh.
//
// Paper setup: JSNT-U, reactor core mesh (64,479 cells), S4 (24 angles),
// 4 energy groups, SLBD+SLBD unless stated, 384 cores for (a).
//
//  (a) patch size sweep {10..2500 cells}: time first drops steeply (fewer
//      cross-patch messages), then creeps back up (downwind patches wait
//      longer); cluster grain sweep {1..64}: time falls then flattens —
//      unlike structured meshes it does NOT rise again, because available
//      parallelism caps the effective grain (~16-64 ready vertices).
//  (b) priority strategies at 384..6144 cores: differences are mild on
//      unstructured meshes.

#include "bench_common.hpp"

using namespace jsweep;

namespace {

constexpr std::int64_t kReactorCells = 64479;
constexpr int kSweepCores = 384;  // paper's core count for Fig 13a

sim::SimConfig reactor_config(int cores) {
  sim::SimConfig cfg = bench::sim_config_for_cores(cores);
  cfg.tet_mesh = true;
  cfg.rep_block_hexes = 4;
  cfg.cluster_grain = 64;
  cfg.cost = sim::CostModel::jsnt_u();
  return cfg;
}

sim::PatchTopology reactor_topology(std::int64_t patch_cells) {
  // Lattice-of-blocks model: blocks_across³ × (π/4 fill) blocks ≈
  // cells / patch_cells patches; interface ≈ surface tets of a block.
  const auto patches =
      std::max<std::int64_t>(2, kReactorCells / patch_cells);
  const auto blocks_across = std::max(
      2, static_cast<int>(std::cbrt(static_cast<double>(patches) * 4.0 /
                                    3.1415926)));
  const auto side_hexes = std::cbrt(static_cast<double>(patch_cells) / 6.0);
  const auto interface = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(2.0 * side_hexes * side_hexes));
  return sim::PatchTopology::lattice_cylinder(blocks_across, blocks_across,
                                              patch_cells, interface);
}

void patch_size_sweep() {
  bench::print_header(
      "Fig 13a-left (simulated)", "patch size vs runtime, reactor",
      "reactor ~64,479 tets, S4, grain 64, 384 cores; paper: steep drop to "
      "~500 cells/patch, slight rise after ~1500");
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  Table table({"patch cells", "patches", "sim time(s)"});
  for (const std::int64_t size : {10, 100, 500, 1000, 1500, 2000, 2500}) {
    const sim::PatchTopology topo = reactor_topology(size);
    const auto r =
        sim::DataDrivenSim(topo, quad, reactor_config(kSweepCores)).run();
    table.add_row({Table::num(size),
                   Table::num(static_cast<std::int64_t>(topo.num_patches())),
                   Table::num(r.elapsed_seconds, 4)});
    bench::record({"patch_size_" + std::to_string(size), r.elapsed_seconds,
                   kSweepCores, topo.total_cells() * quad.num_angles(),
                   {{"simulated", 1.0}, {"patch_cells", double(size)}}});
  }
  std::printf("%s", table.str().c_str());
}

void grain_sweep() {
  bench::print_header(
      "Fig 13a-right (simulated)", "cluster grain vs runtime, reactor",
      "patch 500 cells, S4, 384 cores; paper: falls then stays flat (real "
      "parallelism limits effective grain — no structured-style rise)");
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  const sim::PatchTopology topo = reactor_topology(500);
  Table table({"grain", "sim time(s)"});
  for (const int grain : {1, 2, 4, 8, 16, 32, 64}) {
    sim::SimConfig cfg = reactor_config(kSweepCores);
    cfg.cluster_grain = grain;
    const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
    table.add_row({Table::num(static_cast<std::int64_t>(grain)),
                   Table::num(r.elapsed_seconds, 4)});
    bench::record({"grain_" + std::to_string(grain), r.elapsed_seconds,
                   kSweepCores, topo.total_cells() * quad.num_angles(),
                   {{"simulated", 1.0}, {"grain", double(grain)}}});
  }
  std::printf("%s", table.str().c_str());
}

void priorities() {
  bench::print_header(
      "Fig 13b (simulated)", "priority strategies, reactor strong scaling",
      "patch 500 cells, S4, grain 64; paper: BFS/SLBD combinations within a "
      "narrow band — priority choice matters less than on structured");
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  const sim::PatchTopology topo = reactor_topology(500);

  struct Combo {
    const char* name;
    graph::PriorityStrategy patch;
    graph::PriorityStrategy vertex;
  };
  const Combo combos[] = {
      {"BFS", graph::PriorityStrategy::BFS, graph::PriorityStrategy::BFS},
      {"BFS+SLBD", graph::PriorityStrategy::BFS,
       graph::PriorityStrategy::SLBD},
      {"SLBD", graph::PriorityStrategy::SLBD,
       graph::PriorityStrategy::SLBD},
      {"SLBD+BFS", graph::PriorityStrategy::SLBD,
       graph::PriorityStrategy::BFS},
  };
  Table table({"strategy", "cores", "sim time(s)"});
  for (const int cores : {384, 768, 1536, 3072, 6144}) {
    for (const auto& combo : combos) {
      sim::SimConfig cfg = reactor_config(cores);
      cfg.patch_priority = combo.patch;
      cfg.vertex_priority = combo.vertex;
      const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
      table.add_row({combo.name,
                     Table::num(static_cast<std::int64_t>(cores)),
                     Table::num(r.elapsed_seconds, 4)});
      bench::record({std::string(combo.name) + "/cores_" +
                         std::to_string(cores),
                     r.elapsed_seconds, cores,
                     topo.total_cells() * quad.num_angles(),
                     {{"simulated", 1.0}}});
    }
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig13_unstructured_params");
  patch_size_sweep();
  grain_sweep();
  priorities();
  return 0;
}
