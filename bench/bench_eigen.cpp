// k-eigenvalue outers vs plan amortization. The power iteration issues one
// full multigroup transport solve per outer against the SAME SweepPlan —
// the repeated-sweep workload the plan/session split exists for. This
// bench measures what that caching buys: the same fixed number of outers
// run (a) the production way, one SweepPlan::build amortized across all
// outers, and (b) with the plan rebuilt from scratch before every outer
// (what a solver without the plan/session split would do). The work per
// outer is pinned (zero tolerances, fixed inner sweep count) so the two
// runs execute identical transport; only the setup cost differs. CI gates
// speedup_vs_rebuild >= 2 from BENCH_eigen.json.

#include "bench_common.hpp"

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sn/boundary.hpp"
#include "sn/fission.hpp"
#include "sn/multigroup.hpp"
#include "support/timer.hpp"
#include "sweep/eigen.hpp"

using namespace jsweep;

namespace {

constexpr int kOuters = 12;
constexpr int kGroups = 2;
constexpr int kRanks = 2;
constexpr int kWorkers = 2;

struct Problem {
  mesh::StructuredMesh m = mesh::make_cube_mesh(12, 12.0);
  sn::MultigroupXs xs_template{kGroups, m.num_cells()};
  sn::FissionXs fission{kGroups, m.num_cells()};
  sn::BoundarySpec bc;
  sn::Quadrature quad = sn::Quadrature::level_symmetric(4);

  Problem() {
    fission.chi(0) = 1.0;
    for (std::int64_t c = 0; c < m.num_cells(); ++c) {
      const bool core = (c % 3) != 0;
      xs_template.sigma_t(0, c) = core ? 0.6 : 0.5;
      xs_template.sigma_t(1, c) = core ? 1.0 : 1.2;
      xs_template.sigma_s(0, 0, c) = 0.2;
      xs_template.sigma_s(0, 1, c) = 0.25;
      xs_template.sigma_s(1, 1, c) = core ? 0.6 : 0.9;
      if (core) {
        fission.nu_sigma_f(0, c) = 0.08;
        fission.nu_sigma_f(1, c) = 0.5;
      }
    }
    bc.side(mesh::FaceDir::XLo) = 1.0;
    bc.side(mesh::FaceDir::YLo) = 1.0;
    bc.side(mesh::FaceDir::ZLo) = 1.0;
  }
};

// Fixed work: zero tolerances never converge early, so every run executes
// exactly `outers` outer iterations of exactly 1 inner sweep per group.
sweep::EigenOptions fixed_work(int outers) {
  sweep::EigenOptions options;
  options.max_outer_iterations = outers;
  options.k_tolerance = 0.0;
  options.fission_tolerance = 0.0;
  options.multigroup.inner = {0.0, 1, false};
  return options;
}

/// One timed run: `rebuild_per_outer` toggles between the production path
/// (one plan, kOuters outers in one driver call) and the ablation (fresh
/// plan + single-outer driver call, kOuters times).
double run_case(const Problem& p, bool rebuild_per_outer,
                std::int64_t* task_data_built) {
  const partition::StructuredBlockLayout layout(p.m.dims(), {4, 4, 4});
  const partition::CsrGraph cg = partition::cell_graph(p.m);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &cg);
  WallTimer timer;
  std::int64_t built = 0;
  comm::Cluster::run(kRanks, [&](comm::Context& ctx) {
    sn::MultigroupXs xs = p.xs_template;  // per-rank writable copy
    const sn::StructuredDD disc(p.m, xs.group_view(0), true, p.bc);
    sweep::PlanConfig plan_config;
    plan_config.cluster_grain = 64;
    plan_config.multigroup = &xs;
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    sweep::SolveConfig solve_config;
    solve_config.num_workers = kWorkers;
    const std::int64_t before = sweep::SweepTaskData::total_created();
    if (rebuild_per_outer) {
      for (int outer = 0; outer < kOuters; ++outer) {
        const auto plan = sweep::SweepPlan::build(ctx, p.m, patches, owner,
                                                  disc, p.quad, plan_config);
        (void)sweep::solve_k_eigenvalue(ctx, plan, xs, p.fission,
                                        fixed_work(1), solve_config);
      }
    } else {
      const auto plan = sweep::SweepPlan::build(ctx, p.m, patches, owner,
                                                disc, p.quad, plan_config);
      (void)sweep::solve_k_eigenvalue(ctx, plan, xs, p.fission,
                                      fixed_work(kOuters), solve_config);
    }
    if (ctx.rank().value() == 0)
      built = sweep::SweepTaskData::total_created() - before;
  });
  if (task_data_built != nullptr) *task_data_built = built;
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "eigen");
  Problem p;
  const std::int64_t size =
      p.m.num_cells() * p.quad.num_angles() * kGroups;
  bench::print_header(
      "k-eigenvalue plan amortization",
      "one cached SweepPlan across all power-iteration outers vs a "
      "rebuild before every outer",
      "cube 12^3, 3 reflecting sides, 2 groups, S4, " +
          std::to_string(kOuters) + " fixed-work outers, " +
          std::to_string(kRanks) + " ranks x " + std::to_string(kWorkers) +
          " workers");

  // Warm-up: fault in the binary and thread pools outside the timings.
  (void)run_case(p, /*rebuild_per_outer=*/false, nullptr);

  std::int64_t reuse_built = 0;
  std::int64_t rebuild_built = 0;
  const double reuse_s = run_case(p, false, &reuse_built);
  const double rebuild_s = run_case(p, true, &rebuild_built);
  const double speedup = rebuild_s / reuse_s;

  Table table({"variant", "time(s)", "task data built", "speedup"});
  table.add_row({"plan reused", Table::num(reuse_s, 3),
                 Table::num(reuse_built), Table::num(1.0, 2)});
  table.add_row({"rebuild per outer", Table::num(rebuild_s, 3),
                 Table::num(rebuild_built), Table::num(1.0 / speedup, 2)});
  std::printf("%s\nplan reuse speedup over rebuild-per-outer: %.2fx\n",
              table.str().c_str(), speedup);

  bench::record({"keff/plan_reuse", reuse_s, kRanks * kWorkers, size,
                 {{"outers", double(kOuters)},
                  {"task_data_built", double(reuse_built)},
                  {"speedup_vs_rebuild", speedup}}});
  bench::record({"keff/rebuild_per_outer", rebuild_s, kRanks * kWorkers,
                 size,
                 {{"outers", double(kOuters)},
                  {"task_data_built", double(rebuild_built)}}});
  return 0;
}
