// Table I — parallel efficiency comparison with the literature.
//
// Paper rows:
//   Denovo (KBA)   Kobayashi-400          77.8%  at 3,600 vs 144 cores
//   JSweep         Kobayashi-400          89.6%  at 6,144 vs 384 cores
//   PSD-b          sphere 151,265  S4     88%    at 1,024 vs 128 cores
//   JSweep         sphere 482,248  S4     66%    at 1,536 vs 192 cores
//
// We regenerate the two JSweep rows with the data-driven simulator and the
// Denovo-class row with the KBA pipeline model at the paper's core counts.
// (PSD-b is a closed manual implementation; its row is reproduced only as
// the paper-reported reference.)

#include "bench_common.hpp"

#include "sim/kba_sim.hpp"

using namespace jsweep;

namespace {

double efficiency(double base_time, int base_cores, double time, int cores) {
  return parallel_efficiency(base_time, base_cores, time, cores) * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "table1_efficiency");
  bench::print_header(
      "Table I", "parallel efficiency vs literature (simulated)",
      "efficiency = speedup x base_cores / cores; angle counts reduced vs "
      "paper (shape-preserving)");

  Table table(
      {"application", "problem", "paper eff", "measured eff", "cores"});

  // --- Denovo-style KBA on Kobayashi-400: 3,600 vs 144 cores.
  {
    const sn::Quadrature quad = sn::Quadrature::product(4, 12);
    sim::KbaSimConfig cfg;
    cfg.mesh_dims = {400, 400, 400};
    cfg.z_block = 10;
    cfg.cost = sim::CostModel::jsnt_s();
    cfg.px = 12;
    cfg.py = 12;  // 144 ranks
    const double t_base = simulate_kba(cfg, quad).elapsed_seconds;
    cfg.px = 60;
    cfg.py = 60;  // 3,600 ranks
    const double t_big = simulate_kba(cfg, quad).elapsed_seconds;
    table.add_row({"KBA (Denovo-class)", "Kobayashi-400", "77.8%",
                   Table::num(efficiency(t_base, 144, t_big, 3600), 1) + "%",
                   "3600 vs 144"});
    const std::int64_t kba_cells = static_cast<std::int64_t>(
        cfg.mesh_dims.i) * cfg.mesh_dims.j * cfg.mesh_dims.k;
    bench::record({"kba_kobayashi400/cores_3600", t_big, 3600,
                   kba_cells * quad.num_angles(),
                   {{"simulated", 1.0},
                    {"efficiency", efficiency(t_base, 144, t_big, 3600)}}});
  }

  // --- JSweep on Kobayashi-400: 6,144 vs 384 cores.
  {
    const sim::PatchTopology topo =
        sim::PatchTopology::structured({400, 400, 400}, {20, 20, 20});
    const sn::Quadrature quad = sn::Quadrature::product(4, 12);
    sim::SimConfig base = bench::sim_config_for_cores(384);
    base.cluster_grain = 1000;
    base.cost = sim::CostModel::jsnt_s();
    sim::SimConfig big = bench::sim_config_for_cores(6144);
    big.cluster_grain = 1000;
    big.cost = sim::CostModel::jsnt_s();
    const double t_base =
        sim::DataDrivenSim(topo, quad, base).run().elapsed_seconds;
    const double t_big =
        sim::DataDrivenSim(topo, quad, big).run().elapsed_seconds;
    table.add_row({"JSweep", "Kobayashi-400", "89.6%",
                   Table::num(efficiency(t_base, 384, t_big, 6144), 1) + "%",
                   "6144 vs 384"});
    bench::record({"jsweep_kobayashi400/cores_6144", t_big, 6144,
                   topo.total_cells() * quad.num_angles(),
                   {{"simulated", 1.0},
                    {"efficiency", efficiency(t_base, 384, t_big, 6144)}}});
  }

  // --- PSD-b reference (not reproducible: closed implementation).
  table.add_row({"PSD-b (paper only)", "sphere 151k S4", "88%", "n/a",
                 "1024 vs 128"});

  // --- JSweep on the 482k-cell sphere, S4: 1,536 vs 192 cores.
  {
    const sim::PatchTopology topo =
        sim::PatchTopology::lattice_ball(12, 500, 40);
    const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
    sim::SimConfig base = bench::sim_config_for_cores(192);
    base.tet_mesh = true;
    base.cluster_grain = 64;
    base.cost = sim::CostModel::jsnt_u();
    sim::SimConfig big = base;
    big.processes = bench::sim_config_for_cores(1536).processes;
    const double t_base =
        sim::DataDrivenSim(topo, quad, base).run().elapsed_seconds;
    const double t_big =
        sim::DataDrivenSim(topo, quad, big).run().elapsed_seconds;
    table.add_row({"JSweep", "sphere 482k S4", "66%",
                   Table::num(efficiency(t_base, 192, t_big, 1536), 1) + "%",
                   "1536 vs 192"});
    bench::record({"jsweep_sphere482k/cores_1536", t_big, 1536,
                   topo.total_cells() * quad.num_angles(),
                   {{"simulated", 1.0},
                    {"efficiency", efficiency(t_base, 192, t_big, 1536)}}});
  }

  std::printf("%s", table.str().c_str());
  return 0;
}
