// Fig. 16 — runtime overhead breakdown of JSNT-S (Kobayashi 200³).
//
// Paper setup: 200³ mesh, all optimizations on (coarsened graph), one
// sweep iteration, 192..3,072 cores. Paper observation: JSweep's own
// overhead (graph-op + pack/unpack) is ~23%; the dominant loss is core
// idling (22%..46%, growing with cores); communication is 13-19%.
//
// Category mapping from the simulator: kernel / graph-op / pack-unpack
// are charged directly; "comm" is the master routing service; "idle" is
// unused core time (workers + master).

#include "bench_common.hpp"

using namespace jsweep;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig16_breakdown");
  bench::print_header(
      "Fig 16 (simulated)", "runtime breakdown, Kobayashi-200",
      "200^3 cells, patch 20^3, grain 1000, coarsened graph, 48 angles "
      "(paper: 320); columns are avg seconds per core\npaper: overhead "
      "(graph-op+pack) ~23%, idle 22-46% growing with cores, comm 13-19%");

  const sim::PatchTopology topo =
      sim::PatchTopology::structured({200, 200, 200}, {20, 20, 20});
  const sn::Quadrature quad = sn::Quadrature::product(4, 12);

  Table table({"cores", "total(s)", "kernel", "graph-op", "pack", "comm",
               "idle", "idle %"});
  for (const int cores : {192, 384, 768, 1536, 3072}) {
    sim::SimConfig cfg = bench::sim_config_for_cores(cores);
    cfg.cluster_grain = 1000;
    cfg.coarsened = true;
    cfg.cost = sim::CostModel::jsnt_s();
    const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
    const double per_core = 1.0 / r.cores;
    table.add_row(
        {Table::num(static_cast<std::int64_t>(cores)),
         Table::num(r.elapsed_seconds, 3),
         Table::num(r.breakdown.kernel * per_core, 3),
         Table::num(r.breakdown.graphop * per_core, 3),
         Table::num(r.breakdown.pack * per_core, 4),
         Table::num(r.breakdown.route * per_core, 4),
         Table::num(r.breakdown.idle * per_core, 3),
         Table::num(r.breakdown.idle / r.core_seconds() * 100.0, 1)});
    // Per-category totals come from append_sim_breakdown (divide by
    // `threads` for the per-core view the table prints).
    bench::Sample s{"cores_" + std::to_string(cores), r.elapsed_seconds,
                    cores, topo.total_cells() * quad.num_angles(),
                    {{"simulated", 1.0},
                     {"idle_frac", r.breakdown.idle / r.core_seconds()}}};
    bench::append_sim_breakdown(s, r);
    bench::record(std::move(s));
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
