// Group-pipelining ablation on the REAL threaded runtime: a full G-group
// multigroup solve with the sweep-pass outer scheme, run two ways over the
// identical (patch, angle, group) workload —
//
//   pipelined:  one engine run per pass sweeps all groups; group g+1's
//               programs are injected per patch the moment group g's
//               scattering source is ready there (activation streams);
//   barriered:  one engine run per group per pass, with a global barrier
//               (and collective) between consecutive groups.
//
// Both compute bitwise-identical fluxes (asserted), so the wall-clock gap
// is pure scheduling: pipelining hides each group's pipeline fill/drain
// behind the previous group's tail — the same idle-hiding argument the
// data-driven engine makes for patch-angle parallelism, applied along the
// energy axis. A simulator sample extends the comparison to paper-scale
// core counts.

#include "bench_common.hpp"

#include <algorithm>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "metrics/metrics.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sim/patch_topology.hpp"
#include "sn/multigroup.hpp"
#include "support/timer.hpp"
#include "sweep/solver.hpp"

using namespace jsweep;

namespace {

constexpr int kRanks = 4;
constexpr int kGroups = 4;

struct Fixture {
  explicit Fixture(int n)
      : mesh(mesh::make_kobayashi_mesh(n)),
        layout(mesh.dims(), {n / 4, n / 4, n / 4}),
        graph(partition::cell_graph(mesh)),
        patches(partition::block_partition(layout), layout.num_patches(),
                &graph),
        mxs(sn::MultigroupXs::cascade(sn::MaterialTable::kobayashi(),
                                      mesh.materials(), mesh.num_cells(),
                                      kGroups)),
        disc(mesh, mxs.group_view(0)),
        quad(sn::Quadrature::level_symmetric(4)) {}

  mesh::StructuredMesh mesh;
  partition::StructuredBlockLayout layout;
  partition::CsrGraph graph;
  partition::PatchSet patches;
  sn::MultigroupXs mxs;
  sn::StructuredDD disc;
  sn::Quadrature quad;
};

struct Timed {
  double seconds = 0.0;
  int passes = 0;
  std::vector<std::vector<double>> phi;
  // Live pipeline metrics (pipelined runs only): last-pass fill time (max
  // over ranks) and the cross-rank activation-latency histogram summary.
  double fill_seconds = 0.0;
  std::int64_t activations = 0;
  double activation_mean_seconds = 0.0;
  double activation_max_seconds = 0.0;
  // Scheduler health, folded over all ranks' engine series: worker
  // busy/idle seconds and the steal-scan hit/miss counters.
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  std::int64_t steal_hits = 0;
  std::int64_t steal_misses = 0;

  [[nodiscard]] double idle_fraction() const {
    const double total = busy_seconds + idle_seconds;
    return total > 0.0 ? idle_seconds / total : 0.0;
  }
  [[nodiscard]] double steal_hit_rate() const {
    const auto attempts = steal_hits + steal_misses;
    return attempts > 0
               ? static_cast<double>(steal_hits) /
                     static_cast<double>(attempts)
               : 0.0;
  }
};

/// Fold the registry's pipeline families into `t` (max fill over ranks,
/// activation histogram totals across ranks) plus the engine's scheduler
/// series (busy/idle seconds summed over ranks, steal hit/miss totals).
void extract_registry_metrics(const metrics::Registry& registry, Timed& t) {
  double latency_sum = 0.0;
  for (const auto& fam : registry.snapshot()) {
    if (fam.name == "jsweep_pipeline_fill_seconds") {
      for (const auto& s : fam.series)
        t.fill_seconds = std::max(t.fill_seconds, s.gauge_value);
    } else if (fam.name == "jsweep_pipeline_activation_latency_seconds") {
      for (const auto& s : fam.series) {
        t.activations += s.histogram.count;
        latency_sum += s.histogram.sum;
        t.activation_max_seconds =
            std::max(t.activation_max_seconds, s.histogram.max);
      }
    } else if (fam.name == "jsweep_engine_worker_busy_seconds") {
      for (const auto& s : fam.series) t.busy_seconds += s.gauge_value;
    } else if (fam.name == "jsweep_engine_worker_idle_seconds") {
      for (const auto& s : fam.series) t.idle_seconds += s.gauge_value;
    } else if (fam.name == "jsweep_engine_steals_total") {
      for (const auto& s : fam.series) {
        const bool hit =
            std::find(s.labels.begin(), s.labels.end(),
                      std::make_pair(std::string("result"),
                                     std::string("hit"))) != s.labels.end();
        (hit ? t.steal_hits : t.steal_misses) += s.counter_value;
      }
    }
  }
  if (t.activations > 0)
    t.activation_mean_seconds =
        latency_sum / static_cast<double>(t.activations);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

Timed solve(const Fixture& f, bool pipelined, int workers) {
  Timed t;
  // One registry per solve: every rank of the in-process cluster publishes
  // into it (rank-labelled series), and the pipelined sample attaches the
  // fill/activation-latency numbers it collects.
  metrics::Registry registry;
  comm::Cluster::run(kRanks, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.num_workers = workers;
    config.multigroup = &f.mxs;
    config.group_pipelining = pipelined;
    // Both modes carry the registry so its (<= 2%) cost cancels out of the
    // pipelined-vs-barriered speedup; only pipelined runs publish the
    // pipeline fill/activation families.
    config.metrics.registry = &registry;
    const auto owner =
        partition::assign_contiguous(f.patches.num_patches(), ctx.size());
    const auto plan =
        sweep::SweepPlan::build(ctx, f.mesh, f.patches, owner, f.disc,
                                f.quad, sweep::plan_config_of(config));
    sweep::SweepSession session(ctx, plan, sweep::solve_config_of(config));
    sn::MultigroupOptions mg;
    mg.inner.tolerance = 1e-5;
    mg.inner.max_iterations = 100;
    WallTimer timer;
    const auto result = session.solve_multigroup(mg);
    if (ctx.rank().value() == 0) {
      t.seconds = timer.seconds();
      t.passes = result.pass_iterations;
      t.phi = result.phi;
    }
  });
  extract_registry_metrics(registry, t);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "multigroup_pipeline");
  bench::print_header(
      "multigroup-pipeline",
      "Group-pipelined vs group-barriered multigroup sweeps",
      "paper context: JSNT-U runs S4 with 4 energy groups (Sec. VI-B); "
      "data-driven execution lets consecutive groups' sweeps overlap");
  std::printf(
      "note: the real-runtime rows need parallel hardware to show the\n"
      "scheduling win (a saturated/single-core host serializes both modes);\n"
      "the simulator rows below show the shape at paper-scale core counts.\n"
      "Either way the two modes must agree bitwise (hard gate).\n\n");

  Table table({"n", "workers", "barriered(s)", "pipelined(s)",
               "speedup(med)", "idle frac", "steal hit%"});
  for (const int n : {16, 24}) {
    const Fixture f(n);
    for (const int workers : {2, 4}) {
      // Alternating barriered/pipelined pairs: interleaving cancels slow
      // host drift (thermal, noisy neighbours) out of the ratio, and the
      // median of the per-pair speedups is what the CI gate consumes.
      const int pairs = workers == 4 ? 5 : 1;
      std::vector<double> barriered_s;
      std::vector<double> pipelined_s;
      std::vector<double> speedups;
      Timed barriered;
      Timed pipelined;
      for (int rep = 0; rep < pairs; ++rep) {
        barriered = solve(f, false, workers);
        pipelined = solve(f, true, workers);
        // Identical physics regardless of scheduling: hard gate per pair.
        for (std::size_t g = 0; g < pipelined.phi.size(); ++g)
          for (std::size_t c = 0; c < pipelined.phi[g].size(); ++c)
            if (pipelined.phi[g][c] != barriered.phi[g][c]) {
              std::fprintf(stderr,
                           "FAIL: pipelined/barriered flux mismatch at "
                           "group %zu cell %zu\n",
                           g, c);
              return 1;
            }
        barriered_s.push_back(barriered.seconds);
        pipelined_s.push_back(pipelined.seconds);
        speedups.push_back(barriered.seconds / pipelined.seconds);
      }
      const double speedup_median = median(speedups);
      table.add_row({Table::num(static_cast<std::int64_t>(n)),
                     Table::num(static_cast<std::int64_t>(workers)),
                     Table::num(median(barriered_s), 3),
                     Table::num(median(pipelined_s), 3),
                     Table::num(speedup_median, 2),
                     Table::num(pipelined.idle_fraction(), 3),
                     Table::num(100.0 * pipelined.steal_hit_rate(), 1)});
      std::printf(
          "  n=%d workers=%d pipelined: last-pass fill %.3gs, %lld "
          "activations, latency mean %.3gs max %.3gs, steals %lld/%lld\n",
          n, workers, pipelined.fill_seconds,
          static_cast<long long>(pipelined.activations),
          pipelined.activation_mean_seconds,
          pipelined.activation_max_seconds,
          static_cast<long long>(pipelined.steal_hits),
          static_cast<long long>(pipelined.steal_hits +
                                 pipelined.steal_misses));
      for (const bool piped : {false, true}) {
        const Timed& t = piped ? pipelined : barriered;
        bench::Sample s;
        s.name = std::string("real/n_") + std::to_string(n) + "/workers_" +
                 std::to_string(workers) +
                 (piped ? "/pipelined" : "/barriered");
        s.wall_seconds = median(piped ? pipelined_s : barriered_s);
        s.threads = kRanks * workers;
        s.problem_size = f.mesh.num_cells() * f.quad.num_angles() * kGroups;
        s.params = {{"groups", kGroups},
                    {"pipelined", piped ? 1.0 : 0.0},
                    {"passes", static_cast<double>(t.passes)},
                    {"pairs", static_cast<double>(pairs)},
                    {"idle_fraction", t.idle_fraction()},
                    {"steals", static_cast<double>(t.steal_hits)},
                    {"steal_hit_rate", t.steal_hit_rate()}};
        if (piped) {
          // Live pipeline metrics: how long the last pass took to open all
          // groups (fill) and the per-activation gate-open -> program-emit
          // latency distribution across the whole solve; plus the median
          // barriered/pipelined ratio the CI perf gate checks.
          s.params.emplace_back("speedup_median", speedup_median);
          s.params.emplace_back("pipeline_fill_s", t.fill_seconds);
          s.params.emplace_back("activations",
                                static_cast<double>(t.activations));
          s.params.emplace_back("activation_latency_mean_s",
                                t.activation_mean_seconds);
          s.params.emplace_back("activation_latency_max_s",
                                t.activation_max_seconds);
        }
        bench::record(std::move(s));
      }
    }
  }
  std::printf("%s\n", table.str().c_str());

  // Simulator extension: the same ablation at paper-scale core counts
  // (one multigroup sweep pass; virtual time).
  Table sim_table(
      {"procs", "barriered(sim s)", "pipelined(sim s)", "speedup"});
  for (const int procs : {8, 64}) {
    const sim::PatchTopology topo =
        sim::PatchTopology::structured({160, 160, 160}, {20, 20, 20});
    const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
    sim::SimConfig cfg;
    cfg.processes = procs;
    cfg.groups = kGroups;
    cfg.group_pipelining = false;
    const sim::SimResult barriered =
        sim::DataDrivenSim(topo, quad, cfg).run();
    cfg.group_pipelining = true;
    const sim::SimResult pipelined =
        sim::DataDrivenSim(topo, quad, cfg).run();
    sim_table.add_row(
        {Table::num(static_cast<std::int64_t>(procs)),
         Table::num(barriered.elapsed_seconds, 3),
         Table::num(pipelined.elapsed_seconds, 3),
         Table::num(barriered.elapsed_seconds / pipelined.elapsed_seconds,
                    2)});
    for (const bool piped : {false, true}) {
      const sim::SimResult& r = piped ? pipelined : barriered;
      bench::Sample s;
      s.name = std::string("sim/procs_") + std::to_string(procs) +
               (piped ? "/pipelined" : "/barriered");
      s.wall_seconds = r.elapsed_seconds;
      s.threads = r.cores;
      s.problem_size = static_cast<std::int64_t>(160) * 160 * 160 *
                       quad.num_angles() * kGroups;
      s.params = {{"groups", kGroups},
                  {"pipelined", piped ? 1.0 : 0.0},
                  {"simulated", 1.0}};
      bench::append_sim_breakdown(s, r);
      bench::record(std::move(s));
    }
  }
  std::printf("%s\n", sim_table.str().c_str());
  return 0;
}
