// Ablations on the REAL threaded runtime at host scale — the design
// choices DESIGN.md calls out, measured on actual execution rather than
// the simulator:
//
//   1. coarsened graph vs per-iteration DAG traversal (Sec. V-E: the paper
//      reports 7-10x for the sweep phase on JSNT-S);
//   2. patch-angle parallelism vs patch-serial execution (Sec. V-B);
//   3. data-driven engine vs BSP supersteps (the Fig. 17 mechanism);
//   4. dynamic (lightest-worker) assignment wins are implicit in 1-3 —
//      engine stats are printed for inspection.

#include "bench_common.hpp"

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sweep/solver.hpp"

using namespace jsweep;

namespace {

struct Fixture {
  Fixture()
      : mesh(mesh::make_kobayashi_mesh(32)),
        layout(mesh.dims(), {8, 8, 8}),
        graph(partition::cell_graph(mesh)),
        patches(partition::block_partition(layout), layout.num_patches(),
                &graph),
        xs(expand(sn::MaterialTable::kobayashi(), mesh.materials(),
                  mesh.num_cells())),
        disc(mesh, xs),
        quad(sn::Quadrature::level_symmetric(4)),
        q(static_cast<std::size_t>(mesh.num_cells()), 0.25) {}

  mesh::StructuredMesh mesh;
  partition::StructuredBlockLayout layout;
  partition::CsrGraph graph;
  partition::PatchSet patches;
  sn::CellXs xs;
  sn::StructuredDD disc;
  sn::Quadrature quad;
  std::vector<double> q;
};

constexpr int kRanks = 4;

/// Seconds/sweep plus the last sweep's engine counters (rank 0's view;
/// data-driven runs only — the BSP engine has its own stats shape).
struct Timed {
  double seconds = 0.0;
  core::EngineStats engine;
  bool has_engine = false;
};

/// Time `sweeps` repeated sweeps under a config; returns seconds/sweep of
/// the post-warm-up sweeps.
Timed time_sweeps(const Fixture& fx, sweep::SolverConfig config,
                  int sweeps = 3) {
  Timed result;
  comm::Cluster::run(kRanks, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(fx.patches.num_patches(), ctx.size());
    const auto plan =
        sweep::SweepPlan::build(ctx, fx.mesh, fx.patches, owner, fx.disc,
                                fx.quad, sweep::plan_config_of(config));
    sweep::SweepSession session(ctx, plan, sweep::solve_config_of(config));
    (void)session.sweep(fx.q);  // warm-up / recording sweep
    WallTimer timer;
    for (int i = 0; i < sweeps; ++i) (void)session.sweep(fx.q);
    if (ctx.rank().value() == 0) {
      result.seconds = timer.seconds() / sweeps;
      if (config.engine == sweep::EngineKind::DataDriven) {
        result.engine = session.stats().engine;
        result.has_engine = true;
      }
    }
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "ablation_real");
  const Fixture fx;
  bench::print_header(
      "Ablations (real runtime)",
      "design-choice ablations on the threaded engine",
      "Kobayashi 32^3 (32,768 cells), patch 8^3, S4 (24 angles), 4 ranks x "
      "2 workers on this host; seconds per sweep after warm-up");

  Table table({"configuration", "s/sweep", "vs baseline"});
  sweep::SolverConfig base;
  base.num_workers = 2;
  base.cluster_grain = 64;
  const std::int64_t problem = fx.mesh.num_cells() * fx.quad.num_angles();
  const int threads = kRanks * base.num_workers;
  const auto sample = [&](const char* tag, const Timed& t) {
    bench::Sample s{tag, t.seconds, threads, problem, {}};
    if (t.has_engine) bench::append_engine_stats(s, t.engine);
    bench::record(std::move(s));
  };
  const Timed t_base = time_sweeps(fx, base);
  table.add_row(
      {"data-driven DAG (baseline)", Table::num(t_base.seconds, 4), "1.00"});
  sample("baseline", t_base);

  {
    sweep::SolverConfig cfg = base;
    cfg.use_coarsened_graph = true;  // sweeps 2+ replay on CG
    const Timed t = time_sweeps(fx, cfg);
    table.add_row({"coarsened graph (Sec V-E)", Table::num(t.seconds, 4),
                   Table::num(t_base.seconds / t.seconds, 2) + "x faster"});
    sample("coarsened_graph", t);
  }
  {
    sweep::SolverConfig cfg = base;
    cfg.patch_angle_parallelism = false;
    const Timed t = time_sweeps(fx, cfg);
    table.add_row({"patch-serial (no patch-angle par.)",
                   Table::num(t.seconds, 4),
                   Table::num(t.seconds / t_base.seconds, 2) + "x slower"});
    sample("patch_serial", t);
  }
  {
    sweep::SolverConfig cfg = base;
    cfg.engine = sweep::EngineKind::Bsp;
    const Timed t = time_sweeps(fx, cfg);
    table.add_row({"BSP supersteps (pre-JSweep model)",
                   Table::num(t.seconds, 4),
                   Table::num(t.seconds / t_base.seconds, 2) + "x slower"});
    sample("bsp_supersteps", t);
  }
  {
    sweep::SolverConfig cfg = base;
    cfg.cluster_grain = 1;
    const Timed t = time_sweeps(fx, cfg);
    table.add_row({"no vertex clustering (grain 1)",
                   Table::num(t.seconds, 4),
                   Table::num(t.seconds / t_base.seconds, 2) + "x slower"});
    sample("no_clustering", t);
  }
  std::printf("%s", table.str().c_str());

  // --- Patch-angle parallelism on its natural workload -------------------
  // The paper (Sec. V-B): simultaneous sweeps per patch are "especially
  // useful for small meshes with large numbers of angles" — with fewer
  // patches than workers, per-patch serialization leaves cores idle.
  {
    bench::print_header(
        "Ablation: patch-angle parallelism",
        "few patches x many angles (the paper's Sec. V-B case)",
        "Kobayashi 16^3 in 4 patches, S8 (80 angles), 1 rank x 8 "
        "workers: with patches < workers only patch-angle parallelism "
        "can keep every core busy");
    const mesh::StructuredMesh small = mesh::make_kobayashi_mesh(16);
    const partition::StructuredBlockLayout layout(small.dims(), {8, 8, 16});
    const partition::CsrGraph graph = partition::cell_graph(small);
    const partition::PatchSet patches(partition::block_partition(layout),
                                      layout.num_patches(), &graph);
    const sn::CellXs xs = expand(sn::MaterialTable::kobayashi(),
                                 small.materials(), small.num_cells());
    const sn::StructuredDD disc(small, xs);
    const sn::Quadrature quad = sn::Quadrature::level_symmetric(8);
    const std::vector<double> q(static_cast<std::size_t>(small.num_cells()),
                                0.25);

    const auto time_small = [&](bool patch_angle) {
      Timed result;
      comm::Cluster::run(1, [&](comm::Context& ctx) {
        sweep::SolverConfig config;
        config.num_workers = 8;
        config.cluster_grain = 64;
        config.patch_angle_parallelism = patch_angle;
        const auto owner =
            partition::assign_contiguous(patches.num_patches(), 1);
        const auto plan =
            sweep::SweepPlan::build(ctx, small, patches, owner, disc, quad,
                                    sweep::plan_config_of(config));
        sweep::SweepSession session(ctx, plan,
                                    sweep::solve_config_of(config));
        (void)session.sweep(q);
        WallTimer timer;
        for (int i = 0; i < 3; ++i) (void)session.sweep(q);
        if (ctx.rank().value() == 0) {
          result.seconds = timer.seconds() / 3;
          result.engine = session.stats().engine;
          result.has_engine = true;
        }
      });
      return result;
    };
    const Timed with_pa = time_small(true);
    const Timed without_pa = time_small(false);
    const std::int64_t small_problem =
        small.num_cells() * quad.num_angles();
    {
      bench::Sample s{"small_mesh/patch_angle_parallel", with_pa.seconds, 8,
                      small_problem, {}};
      bench::append_engine_stats(s, with_pa.engine);
      bench::record(std::move(s));
    }
    {
      bench::Sample s{"small_mesh/patch_serial", without_pa.seconds, 8,
                      small_problem, {}};
      bench::append_engine_stats(s, without_pa.engine);
      bench::record(std::move(s));
    }
    Table t2({"configuration", "s/sweep", "ratio"});
    t2.add_row(
        {"patch-angle parallel", Table::num(with_pa.seconds, 4), "1.00"});
    t2.add_row({"patch-serial", Table::num(without_pa.seconds, 4),
                Table::num(without_pa.seconds / with_pa.seconds, 2) +
                    "x slower"});
    std::printf("%s", t2.str().c_str());
  }

  // --- Cycle-breaking cost ----------------------------------------------
  // Identical column lattice with and without twist: the twisted variant
  // has cyclic sweep dependencies in every direction and runs under
  // CyclePolicy::Lag (feedback edges cut, fluxes lagged). The gap is the
  // price of cycle handling; the cut/SCC counters land in the JSON.
  {
    bench::print_header(
        "Ablation: cycle-breaking",
        "twisted (cyclic) vs straight (acyclic) column, same lattice",
        "8x8x16-hex column as tets (6144 cells), S4 (24 angles), 2 ranks x "
        "2 workers; twisted runs with cycle_policy=lag");
    const auto time_column = [&](double twist, sweep::SolverStats* stats) {
      const mesh::TetMesh m =
          mesh::make_twisted_column_mesh(8, 16, twist, 20.0, 32.0);
      const partition::CsrGraph cg = partition::cell_graph(m);
      const partition::PatchSet ps(
          partition::partition_graph(cg, 12), 12, &cg);
      const sn::CellXs col_xs =
          expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
      const sn::TetStep disc(m, col_xs);
      const sn::Quadrature col_quad = sn::Quadrature::level_symmetric(4);
      const std::vector<double> col_q(
          static_cast<std::size_t>(m.num_cells()), 0.25);
      double seconds = 0.0;
      comm::Cluster::run(2, [&](comm::Context& ctx) {
        sweep::SolverConfig config;
        config.num_workers = 2;
        config.cluster_grain = 64;
        config.cycle_policy = sweep::CyclePolicy::Lag;
        const auto owner =
            partition::assign_contiguous(ps.num_patches(), ctx.size());
        const auto plan =
            sweep::SweepPlan::build(ctx, m, ps, owner, disc, col_quad,
                                    sweep::plan_config_of(config));
        sweep::SweepSession session(ctx, plan,
                                    sweep::solve_config_of(config));
        (void)session.sweep(col_q);
        WallTimer timer;
        for (int i = 0; i < 3; ++i) (void)session.sweep(col_q);
        if (ctx.rank().value() == 0) {
          seconds = timer.seconds() / 3;
          *stats = session.stats();
        }
      });
      return seconds;
    };
    sweep::SolverStats straight_stats;
    sweep::SolverStats twisted_stats;
    const double t_straight = time_column(0.0, &straight_stats);
    const double t_twisted = time_column(5.0, &twisted_stats);
    const std::int64_t col_problem = 6144LL * 24;
    {
      bench::Sample s{"cycles/straight_column", t_straight, 4, col_problem,
                      {}};
      bench::append_engine_stats(s, straight_stats.engine);
      bench::append_cycle_stats(s, straight_stats);
      bench::record(std::move(s));
    }
    {
      bench::Sample s{"cycles/twisted_column", t_twisted, 4, col_problem,
                      {}};
      bench::append_engine_stats(s, twisted_stats.engine);
      bench::append_cycle_stats(s, twisted_stats);
      bench::record(std::move(s));
    }
    Table t3({"configuration", "s/sweep", "cyclic dirs", "edges lagged",
              "ratio"});
    t3.add_row({"straight column (acyclic)", Table::num(t_straight, 4),
                Table::num(static_cast<std::int64_t>(
                    straight_stats.cyclic_angles)),
                Table::num(straight_stats.cycles.edges_cut), "1.00"});
    t3.add_row({"twisted column (lag policy)", Table::num(t_twisted, 4),
                Table::num(static_cast<std::int64_t>(
                    twisted_stats.cyclic_angles)),
                Table::num(twisted_stats.cycles.edges_cut),
                Table::num(t_twisted / t_straight, 2) + "x"});
    std::printf("%s", t3.str().c_str());
  }
  return 0;
}
