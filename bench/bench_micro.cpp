// Microbenchmarks for the hot building blocks: sweep kernels, stream
// codecs, DAG construction, priorities, partitioners and SFC codes. These
// also calibrate the simulator's per-vertex cost.
//
// The kernel-grind suite runs first (always, no flags needed): it measures
// cells/sec per angle for the hash-map reference kernels vs the dense
// FaceFluxWorkspace hot path, counts heap allocations inside the measured
// region (the dense path must be zero in steady state), verifies both
// paths agree bitwise, and records everything into BENCH_bench_micro.json
// via --json. The Google-Benchmark suite still runs when a --benchmark_*
// flag is passed (e.g. --benchmark_filter=BM_SfcCodes).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "core/stream.hpp"
#include "graph/priority.hpp"
#include "graph/sweep_dag.hpp"
#include "mesh/generators.hpp"
#include "metrics/metrics.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "partition/rcb.hpp"
#include "partition/sfc.hpp"
#include "sn/discretization.hpp"
#include "sn/face_flux.hpp"
#include "sn/quadrature.hpp"
#include "support/alloc_counter.hpp"
#include "support/timer.hpp"
#include "sweep/session.hpp"
#include "sweep/stream_codec.hpp"

namespace {

using namespace jsweep;

// --- Kernel-grind suite ----------------------------------------------------

struct GrindResult {
  double cells_per_sec = 0.0;
  double psi_sum = 0.0;          ///< bitwise agreement check
  std::int64_t allocs_per_pass = 0;
};

/// Repeat `pass` (one full sweep of `cells` cells) until ~0.2 s elapsed;
/// report the steady-state grind rate and allocations of the final pass.
template <class Pass>
GrindResult measure_grind(std::int64_t cells, Pass&& pass) {
  GrindResult r;
  r.psi_sum = pass();  // warm-up; also the agreement value
  int reps = 0;
  double sink = 0.0;
  WallTimer timer;
  do {
    const std::int64_t a0 = support::allocation_count();
    sink += pass();
    r.allocs_per_pass = support::allocation_count() - a0;
    ++reps;
  } while (timer.seconds() < 0.2);
  r.cells_per_sec = static_cast<double>(cells) * reps / timer.seconds();
  benchmark::DoNotOptimize(sink);
  return r;
}

void report_pair(const char* name, std::int64_t cells, const GrindResult& map,
                 const GrindResult& dense) {
  const double speedup = dense.cells_per_sec / map.cells_per_sec;
  std::printf("  %-18s %12.3g cells/s (hashmap)  %12.3g cells/s (dense)  "
              "%5.2fx  dense allocs/pass: %lld\n",
              name, map.cells_per_sec, dense.cells_per_sec, speedup,
              static_cast<long long>(dense.allocs_per_pass));
  if (map.psi_sum != dense.psi_sum) {
    std::fprintf(stderr,
                 "FATAL: %s hashmap/dense kernels disagree (%.17g vs %.17g)\n",
                 name, map.psi_sum, dense.psi_sum);
    std::exit(1);
  }
  if (dense.allocs_per_pass != 0) {
    std::fprintf(stderr,
                 "FATAL: %s dense kernel allocated %lld times per pass "
                 "(steady state must be allocation-free)\n",
                 name, static_cast<long long>(dense.allocs_per_pass));
    std::exit(1);
  }
  bench::record({std::string("grind/") + name + "/hashmap",
                 static_cast<double>(cells) / map.cells_per_sec, 1, cells,
                 {{"cells_per_sec", map.cells_per_sec}}});
  bench::record({std::string("grind/") + name + "/dense",
                 static_cast<double>(cells) / dense.cells_per_sec, 1, cells,
                 {{"cells_per_sec", dense.cells_per_sec},
                  {"speedup_vs_hashmap", speedup},
                  {"allocs_per_pass",
                   static_cast<double>(dense.allocs_per_pass)}}});
}

void grind_structured_mesh(const char* name, const mesh::StructuredMesh& m,
                           sn::CellXs xs);

/// Uniform-material cube (the quickstart-style workload).
void grind_structured(int n) {
  const mesh::StructuredMesh m({n, n, n}, {1, 1, 1});
  sn::CellXs xs;
  const auto cells = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(cells, 0.5);
  xs.sigma_s.assign(cells, 0.2);
  xs.source.assign(cells, 1.0);
  char name[32];
  std::snprintf(name, sizeof(name), "structured_%d", n);
  grind_structured_mesh(name, m, std::move(xs));
}

/// Kobayashi dog-leg duct: voids exercise the negative-flux fixup.
void grind_kobayashi(int n) {
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(n);
  sn::CellXs xs = expand(sn::MaterialTable::kobayashi(), m.materials(),
                         m.num_cells());
  char name[32];
  std::snprintf(name, sizeof(name), "kobayashi_%d", n);
  grind_structured_mesh(name, m, std::move(xs));
}

void grind_structured_mesh(const char* name, const mesh::StructuredMesh& m,
                           sn::CellXs xs) {
  const auto cells = static_cast<std::size_t>(m.num_cells());
  const sn::StructuredDD disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(cells, 0.25);

  // Hash-map reference path (the retained pre-dense implementation).
  sn::FaceFluxMap map_flux;
  const auto map_pass = [&] {
    map_flux.clear();
    double sum = 0.0;
    for (std::int64_t c = 0; c < m.num_cells(); ++c)
      sum += disc.sweep_cell(CellId{c}, ang, q, map_flux);
    return sum;
  };

  // Dense path: identity slots (structured face ids are dense), O(1)
  // epoch reset per pass.
  const std::vector<sn::CellFaceSlots> slots =
      sn::build_identity_slots(disc, ang);
  sn::FaceFluxWorkspace ws;
  ws.prepare(m.num_cells() * 6);
  const auto dense_pass = [&] {
    ws.reset();
    double sum = 0.0;
    for (std::int64_t c = 0; c < m.num_cells(); ++c)
      sum += disc.sweep_cell(
          CellId{c}, ang, q,
          sn::FaceFluxView{&ws, &slots[static_cast<std::size_t>(c)]});
    return sum;
  };

  report_pair(name, m.num_cells(), measure_grind(m.num_cells(), map_pass),
              measure_grind(m.num_cells(), dense_pass));
}

void grind_tet() {
  const mesh::TetMesh m = mesh::make_ball_mesh(12, 6.0);
  sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.25);
  const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
  const auto order = *g.topological_order();

  sn::FaceFluxMap map_flux;
  const auto map_pass = [&] {
    map_flux.clear();
    double sum = 0.0;
    for (const auto v : order)
      sum += disc.sweep_cell(CellId{v}, ang, q, map_flux);
    return sum;
  };

  const std::vector<sn::CellFaceSlots> slots =
      sn::build_identity_slots(disc, ang);
  sn::FaceFluxWorkspace ws;
  ws.prepare(m.num_faces());
  const auto dense_pass = [&] {
    ws.reset();
    double sum = 0.0;
    for (const auto v : order)
      sum += disc.sweep_cell(
          CellId{v}, ang, q,
          sn::FaceFluxView{&ws, &slots[static_cast<std::size_t>(v)]});
    return sum;
  };

  report_pair("tet_ball", m.num_cells(), measure_grind(m.num_cells(), map_pass),
              measure_grind(m.num_cells(), dense_pass));
}

void run_grind_suite() {
  bench::print_header(
      "grind", "kernel grind: hash-map flux store vs dense workspaces",
      "cells/sec for one ordinate; dense path must be allocation-free and "
      "bitwise-identical to the hash-map reference");
  grind_structured(16);
  grind_structured(32);
  grind_kobayashi(32);
  grind_tet();
}

// --- Group-set grind suite -------------------------------------------------
//
// G = 8 groups swept through sweep_cell_set at W ∈ {1, 2, 4, 8} vs G
// scalar per-group sweeps. Per-group ψ sums must match the scalar path
// bitwise at every width (the batched kernels never reassociate within a
// lane), the batched passes must be allocation-free, and CI gates the
// w4 rate at >= 1.5x the w1 batched rate on this problem.

void run_group_set_grind_suite() {
  bench::print_header(
      "grind-set", "group-set batched sweep kernels vs scalar per-group",
      "structured 32^3, G=8, one ordinate; cell-groups/sec per set width; "
      "per-group lane sums must match the scalar sweeps bitwise");
  const int n = 32;
  constexpr int kGroups = 8;
  const mesh::StructuredMesh m({n, n, n}, {1, 1, 1});
  const auto cells = static_cast<std::size_t>(m.num_cells());
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1, 0};
  const std::int64_t work = m.num_cells() * kGroups;

  // Distinct per-group data so a lane/group mixup cannot cancel out.
  const auto sigma_of = [](std::size_t c, int g) {
    return 0.3 + 0.15 * g + 0.01 * static_cast<double>(c % 5);
  };
  const auto q_of = [](std::size_t c, int g) {
    return 0.25 + 0.05 * g + 0.005 * static_cast<double>(c % 3);
  };

  // Geometry carrier for the batched kernel (its xs is group 0's; σ_t for
  // every lane comes from the strided array below).
  sn::CellXs carrier_xs;
  carrier_xs.sigma_t.resize(cells);
  carrier_xs.sigma_s.assign(cells, 0.0);
  carrier_xs.source.assign(cells, 0.0);
  for (std::size_t c = 0; c < cells; ++c)
    carrier_xs.sigma_t[c] = sigma_of(c, 0);
  const sn::StructuredDD disc(m, std::move(carrier_xs));
  const std::vector<sn::CellFaceSlots> slots =
      sn::build_identity_slots(disc, ang);

  // Scalar reference: G independent per-group dense sweeps. Its per-group
  // ψ sums anchor the bitwise gate at every width.
  std::vector<std::unique_ptr<sn::StructuredDD>> group_disc;
  std::vector<std::vector<double>> group_q;
  for (int g = 0; g < kGroups; ++g) {
    sn::CellXs xs;
    xs.sigma_t.resize(cells);
    xs.sigma_s.assign(cells, 0.0);
    xs.source.assign(cells, 0.0);
    std::vector<double> q(cells);
    for (std::size_t c = 0; c < cells; ++c) {
      xs.sigma_t[c] = sigma_of(c, g);
      q[c] = q_of(c, g);
    }
    group_disc.push_back(std::make_unique<sn::StructuredDD>(m, std::move(xs)));
    group_q.push_back(std::move(q));
  }
  sn::FaceFluxWorkspace ws_scalar;
  ws_scalar.prepare(m.num_cells() * 6);
  std::array<double, kGroups> scalar_sums{};
  const auto scalar_pass = [&] {
    double total = 0.0;
    for (int g = 0; g < kGroups; ++g) {
      ws_scalar.reset();
      double sum = 0.0;
      for (std::int64_t c = 0; c < m.num_cells(); ++c)
        sum += group_disc[static_cast<std::size_t>(g)]->sweep_cell(
            CellId{c}, ang, group_q[static_cast<std::size_t>(g)],
            sn::FaceFluxView{&ws_scalar,
                             &slots[static_cast<std::size_t>(c)]});
      scalar_sums[static_cast<std::size_t>(g)] = sum;
      total += sum;
    }
    return total;
  };
  const GrindResult scalar = measure_grind(work, scalar_pass);
  std::printf("  %-18s %12.3g cell-groups/s (per-group scalar)\n",
              "scalar", scalar.cells_per_sec);
  bench::record({"grind_set/structured_32/scalar",
                 static_cast<double>(work) / scalar.cells_per_sec, 1, work,
                 {{"cell_groups_per_sec", scalar.cells_per_sec}}});

  double w1_rate = 0.0;
  for (const int width : {1, 2, 4, 8}) {
    // Repack q / σ_t set-strided ([c * W + lane]) per group set.
    const int num_sets = kGroups / width;
    std::vector<std::vector<double>> q_set(
        static_cast<std::size_t>(num_sets));
    std::vector<std::vector<double>> sigma_set(
        static_cast<std::size_t>(num_sets));
    for (int s = 0; s < num_sets; ++s) {
      auto& qs = q_set[static_cast<std::size_t>(s)];
      auto& ss = sigma_set[static_cast<std::size_t>(s)];
      qs.resize(cells * static_cast<std::size_t>(width));
      ss.resize(cells * static_cast<std::size_t>(width));
      for (std::size_t c = 0; c < cells; ++c) {
        for (int l = 0; l < width; ++l) {
          qs[c * static_cast<std::size_t>(width) +
             static_cast<std::size_t>(l)] = q_of(c, s * width + l);
          ss[c * static_cast<std::size_t>(width) +
             static_cast<std::size_t>(l)] = sigma_of(c, s * width + l);
        }
      }
    }
    sn::FaceFluxWorkspace ws;
    ws.prepare(m.num_cells() * 6 * width);
    std::array<double, kGroups> batched_sums{};
    const auto batched_pass = [&] {
      std::array<double, kGroups> lane_sum{};
      double psi[sn::kMaxGroupSetWidth];
      for (int s = 0; s < num_sets; ++s) {
        ws.reset();
        const double* qs = q_set[static_cast<std::size_t>(s)].data();
        const double* ss = sigma_set[static_cast<std::size_t>(s)].data();
        for (std::int64_t c = 0; c < m.num_cells(); ++c) {
          disc.sweep_cell_set(
              CellId{c}, ang, width, qs, ss,
              sn::FaceFluxSetView{&ws, &slots[static_cast<std::size_t>(c)],
                                  width},
              psi);
          for (int l = 0; l < width; ++l)
            lane_sum[static_cast<std::size_t>(s * width + l)] += psi[l];
        }
      }
      batched_sums = lane_sum;
      double total = 0.0;
      for (int g = 0; g < kGroups; ++g)
        total += lane_sum[static_cast<std::size_t>(g)];
      return total;
    };
    const GrindResult r = measure_grind(work, batched_pass);
    if (width == 1) w1_rate = r.cells_per_sec;
    const double speedup = r.cells_per_sec / w1_rate;
    char name[32];
    std::snprintf(name, sizeof(name), "w%d", width);
    std::printf("  %-18s %12.3g cell-groups/s  %5.2fx vs w1  "
                "allocs/pass: %lld\n",
                name, r.cells_per_sec, speedup,
                static_cast<long long>(r.allocs_per_pass));
    for (int g = 0; g < kGroups; ++g) {
      if (batched_sums[static_cast<std::size_t>(g)] !=
          scalar_sums[static_cast<std::size_t>(g)]) {
        std::fprintf(stderr,
                     "FATAL: w%d group %d diverges from the scalar sweep "
                     "(%.17g vs %.17g)\n",
                     width, g, batched_sums[static_cast<std::size_t>(g)],
                     scalar_sums[static_cast<std::size_t>(g)]);
        std::exit(1);
      }
    }
    if (r.allocs_per_pass != 0) {
      std::fprintf(stderr,
                   "FATAL: w%d batched pass allocated %lld times (steady "
                   "state must be allocation-free)\n",
                   width, static_cast<long long>(r.allocs_per_pass));
      std::exit(1);
    }
    bench::record({std::string("grind_set/structured_32/") + name,
                   static_cast<double>(work) / r.cells_per_sec, 1, work,
                   {{"cell_groups_per_sec", r.cells_per_sec},
                    {"speedup_vs_w1", speedup},
                    {"speedup_vs_scalar",
                     r.cells_per_sec / scalar.cells_per_sec},
                    {"allocs_per_pass",
                     static_cast<double>(r.allocs_per_pass)}}});
  }
}

// --- Metrics-overhead suite ------------------------------------------------
//
// The acceptance bar for the live-metrics subsystem: a full threaded solve
// with a live metrics::Registry installed must stay within 2% of the
// identical solve with metrics off (the null-registry fast path). Measured
// whole-solve on the structured 32^3 quickstart problem so every
// instrumented layer (engine counters, session histograms, gauges) is on
// the measured path.

void run_metrics_overhead_suite() {
  bench::print_header(
      "metrics-overhead", "live metrics registry vs null-registry fast path",
      "structured 32^3, S2, 1 rank x 2 workers; cell-angle solves/sec over "
      "8 sweeps, median of 9 alternating off/on pairs "
      "(acceptance: on/off >= 0.98)");
  const int n = 32;
  const mesh::StructuredMesh m({n, n, n}, {1, 1, 1});
  sn::CellXs xs;
  const auto cells = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(cells, 0.5);
  xs.sigma_s.assign(cells, 0.2);
  xs.source.assign(cells, 1.0);
  const sn::StructuredDD disc(m, std::move(xs));
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::StructuredBlockLayout layout(m.dims(), {8, 8, 8});
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches());
  const std::vector<double> q(cells, 0.25);
  constexpr int kSweeps = 8;
  const std::int64_t work = m.num_cells() * quad.num_angles();

  const auto rate_once = [&](metrics::Registry* registry) {
    double seconds = 0.0;
    comm::Cluster::run(1, [&](comm::Context& ctx) {
      const auto owner =
          partition::assign_contiguous(patches.num_patches(), 1);
      const auto plan =
          sweep::SweepPlan::build(ctx, m, patches, owner, disc, quad);
      sweep::SolveConfig sc;
      sc.num_workers = 2;
      sc.metrics.registry = registry;
      sweep::SweepSession session(ctx, plan, sc);
      (void)session.sweep(q);  // warm-up: pools, worker spin-up
      WallTimer timer;
      for (int i = 0; i < kSweeps; ++i) (void)session.sweep(q);
      seconds = timer.seconds();
    });
    return kSweeps * static_cast<double>(work) / seconds;
  };

  // Run off/on as back-to-back pairs with alternating within-pair order,
  // and take the median of the per-pair ratios: slow host drift hits both
  // halves of a pair alike, alternation cancels position bias, and the
  // median discards the odd rep that lost its timeslice. The reported
  // absolute rates are still the best seen per mode.
  metrics::Registry registry;
  double off = 0.0;
  double on = 0.0;
  std::vector<double> pair_ratios;
  for (int rep = 0; rep < 9; ++rep) {
    double off_rep;
    double on_rep;
    if (rep % 2 == 0) {
      off_rep = rate_once(nullptr);
      on_rep = rate_once(&registry);
    } else {
      on_rep = rate_once(&registry);
      off_rep = rate_once(nullptr);
    }
    off = std::max(off, off_rep);
    on = std::max(on, on_rep);
    pair_ratios.push_back(on_rep / off_rep);
  }
  std::sort(pair_ratios.begin(), pair_ratios.end());
  const double ratio = pair_ratios[pair_ratios.size() / 2];
  std::printf(
      "  metrics off %12.3g cell-angles/s   on %12.3g   on/off %.3f%s\n",
      off, on, ratio,
      ratio < 0.98 ? "  ** below the 0.98 acceptance bar **" : "");

  bench::Sample s;
  s.name = "metrics_overhead/structured_32";
  s.wall_seconds = kSweeps * static_cast<double>(work) / on;
  s.threads = 2;
  s.problem_size = work;
  s.params.emplace_back("cells_per_sec_off", off);
  s.params.emplace_back("cells_per_sec_on", on);
  s.params.emplace_back("on_off_ratio", ratio);
  bench::append_metrics(s, registry);
  bench::record(std::move(s));
}

// --- Google-Benchmark suite ------------------------------------------------

void BM_DDKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mesh::StructuredMesh m({n, n, n}, {1, 1, 1});
  sn::CellXs xs;
  const auto cells = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(cells, 0.5);
  xs.sigma_s.assign(cells, 0.2);
  xs.source.assign(cells, 1.0);
  const sn::StructuredDD disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(cells, 0.25);
  sn::FaceFluxMap flux;
  for (auto _ : state) {
    flux.clear();
    double sum = 0.0;
    for (std::int64_t c = 0; c < m.num_cells(); ++c)
      sum += disc.sweep_cell(CellId{c}, ang, q, flux);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_DDKernel)->Arg(16)->Arg(32);

void BM_DDKernelDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mesh::StructuredMesh m({n, n, n}, {1, 1, 1});
  sn::CellXs xs;
  const auto cells = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(cells, 0.5);
  xs.sigma_s.assign(cells, 0.2);
  xs.source.assign(cells, 1.0);
  const sn::StructuredDD disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(cells, 0.25);
  const std::vector<sn::CellFaceSlots> slots =
      sn::build_identity_slots(disc, ang);
  sn::FaceFluxWorkspace ws;
  ws.prepare(m.num_cells() * 6);
  for (auto _ : state) {
    ws.reset();
    double sum = 0.0;
    for (std::int64_t c = 0; c < m.num_cells(); ++c)
      sum += disc.sweep_cell(
          CellId{c}, ang, q,
          sn::FaceFluxView{&ws, &slots[static_cast<std::size_t>(c)]});
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_DDKernelDense)->Arg(16)->Arg(32);

void BM_TetStepKernel(benchmark::State& state) {
  const mesh::TetMesh m = mesh::make_ball_mesh(12, 6.0);
  sn::CellXs xs = expand(sn::MaterialTable::ball(), m.materials(),
                         m.num_cells());
  const sn::TetStep disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.25);
  const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
  const auto order = *g.topological_order();
  sn::FaceFluxMap flux;
  for (auto _ : state) {
    flux.clear();
    double sum = 0.0;
    for (const auto v : order)
      sum += disc.sweep_cell(CellId{v}, ang, q, flux);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_TetStepKernel);

void BM_StreamPackUnpack(benchmark::State& state) {
  const auto items = static_cast<std::size_t>(state.range(0));
  std::vector<sweep::StreamItem> batch(items);
  for (std::size_t i = 0; i < items; ++i)
    batch[i] = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(i),
                1.0};
  std::vector<core::Stream> streams(1);
  streams[0].src = {PatchId{0}, TaskTag{0}};
  streams[0].dst = {PatchId{1}, TaskTag{0}};
  for (auto _ : state) {
    streams[0].data = sweep::encode_items(batch);
    const auto wire = core::pack_streams(streams);
    auto back = core::unpack_streams(wire);
    auto decoded = sweep::decode_items(back[0].data);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(items) * 24);
}
BENCHMARK(BM_StreamPackUnpack)->Arg(16)->Arg(256)->Arg(4096);

void BM_BuildPatchTaskGraph(benchmark::State& state) {
  const mesh::StructuredMesh m({40, 40, 40}, {1, 1, 1});
  const partition::StructuredBlockLayout layout({40, 40, 40}, {10, 10, 10});
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches());
  const mesh::Vec3 omega = mesh::normalized({1, 1, 1});
  for (auto _ : state) {
    const auto g = graph::build_patch_task_graph(
        m, ps, layout.patch_at({1, 1, 1}), omega, AngleId{0});
    benchmark::DoNotOptimize(g.num_vertices);
  }
}
BENCHMARK(BM_BuildPatchTaskGraph);

void BM_VertexPriorities(benchmark::State& state) {
  const mesh::StructuredMesh m({30, 30, 30}, {1, 1, 1});
  const partition::StructuredBlockLayout layout({30, 30, 30}, {10, 10, 10});
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches());
  const auto g = graph::build_patch_task_graph(
      m, ps, layout.patch_at({1, 1, 1}), mesh::normalized({1, 1, 1}),
      AngleId{0});
  const auto strategy =
      static_cast<graph::PriorityStrategy>(state.range(0));
  for (auto _ : state) {
    const auto prio = graph::vertex_priorities(strategy, g);
    benchmark::DoNotOptimize(prio.data());
  }
}
BENCHMARK(BM_VertexPriorities)
    ->Arg(static_cast<int>(graph::PriorityStrategy::BFS))
    ->Arg(static_cast<int>(graph::PriorityStrategy::LDCP))
    ->Arg(static_cast<int>(graph::PriorityStrategy::SLBD));

void BM_GraphPartition(benchmark::State& state) {
  const mesh::TetMesh m = mesh::make_ball_mesh(10, 5.0);
  const partition::CsrGraph g = partition::cell_graph(m);
  for (auto _ : state) {
    const auto part =
        partition::partition_graph(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(part.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_GraphPartition)->Arg(8)->Arg(32);

void BM_Rcb(benchmark::State& state) {
  const mesh::TetMesh m = mesh::make_ball_mesh(10, 5.0);
  const auto centroids = partition::cell_centroids(m);
  for (auto _ : state) {
    const auto part = partition::partition_rcb(centroids, 32);
    benchmark::DoNotOptimize(part.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(centroids.size()));
}
BENCHMARK(BM_Rcb);

void BM_SfcCodes(benchmark::State& state) {
  const bool hilbert = state.range(0) != 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < 1024; ++i) {
      acc ^= hilbert ? partition::hilbert3(i & 255, (i * 7) & 255,
                                           (i * 13) & 255, 8)
                     : partition::morton3(i & 255, (i * 7) & 255,
                                          (i * 13) & 255);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SfcCodes)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  jsweep::bench::JsonReport report(argc, argv, "bench_micro");
  run_grind_suite();
  run_group_set_grind_suite();
  run_metrics_overhead_suite();
  // The Google-Benchmark suite only runs when explicitly requested, so
  // `bench_micro --json` stays a fast grind-rate probe for CI.
  bool want_gbench = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) want_gbench = true;
  if (want_gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
