// Google-benchmark microbenchmarks for the hot building blocks: sweep
// kernels, stream codecs, DAG construction, priorities, partitioners and
// SFC codes. These also calibrate the simulator's per-vertex cost.

#include <benchmark/benchmark.h>

#include "graph/priority.hpp"
#include "graph/sweep_dag.hpp"
#include "core/stream.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "partition/rcb.hpp"
#include "partition/sfc.hpp"
#include "sn/discretization.hpp"
#include "sn/quadrature.hpp"
#include "sweep/stream_codec.hpp"

namespace {

using namespace jsweep;

void BM_DDKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mesh::StructuredMesh m({n, n, n}, {1, 1, 1});
  sn::CellXs xs;
  const auto cells = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(cells, 0.5);
  xs.sigma_s.assign(cells, 0.2);
  xs.source.assign(cells, 1.0);
  const sn::StructuredDD disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(cells, 0.25);
  sn::FaceFluxMap flux;
  for (auto _ : state) {
    flux.clear();
    double sum = 0.0;
    for (std::int64_t c = 0; c < m.num_cells(); ++c)
      sum += disc.sweep_cell(CellId{c}, ang, q, flux);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_DDKernel)->Arg(16)->Arg(32);

void BM_TetStepKernel(benchmark::State& state) {
  const mesh::TetMesh m = mesh::make_ball_mesh(12, 6.0);
  sn::CellXs xs = expand(sn::MaterialTable::ball(), m.materials(),
                         m.num_cells());
  const sn::TetStep disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.25);
  const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
  const auto order = *g.topological_order();
  sn::FaceFluxMap flux;
  for (auto _ : state) {
    flux.clear();
    double sum = 0.0;
    for (const auto v : order)
      sum += disc.sweep_cell(CellId{v}, ang, q, flux);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * m.num_cells());
}
BENCHMARK(BM_TetStepKernel);

void BM_StreamPackUnpack(benchmark::State& state) {
  const auto items = static_cast<std::size_t>(state.range(0));
  std::vector<sweep::StreamItem> batch(items);
  for (std::size_t i = 0; i < items; ++i)
    batch[i] = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(i),
                1.0};
  std::vector<core::Stream> streams(1);
  streams[0].src = {PatchId{0}, TaskTag{0}};
  streams[0].dst = {PatchId{1}, TaskTag{0}};
  for (auto _ : state) {
    streams[0].data = sweep::encode_items(batch);
    const auto wire = core::pack_streams(streams);
    auto back = core::unpack_streams(wire);
    auto decoded = sweep::decode_items(back[0].data);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(items) * 24);
}
BENCHMARK(BM_StreamPackUnpack)->Arg(16)->Arg(256)->Arg(4096);

void BM_BuildPatchTaskGraph(benchmark::State& state) {
  const mesh::StructuredMesh m({40, 40, 40}, {1, 1, 1});
  const partition::StructuredBlockLayout layout({40, 40, 40}, {10, 10, 10});
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches());
  const mesh::Vec3 omega = mesh::normalized({1, 1, 1});
  for (auto _ : state) {
    const auto g = graph::build_patch_task_graph(
        m, ps, layout.patch_at({1, 1, 1}), omega, AngleId{0});
    benchmark::DoNotOptimize(g.num_vertices);
  }
}
BENCHMARK(BM_BuildPatchTaskGraph);

void BM_VertexPriorities(benchmark::State& state) {
  const mesh::StructuredMesh m({30, 30, 30}, {1, 1, 1});
  const partition::StructuredBlockLayout layout({30, 30, 30}, {10, 10, 10});
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches());
  const auto g = graph::build_patch_task_graph(
      m, ps, layout.patch_at({1, 1, 1}), mesh::normalized({1, 1, 1}),
      AngleId{0});
  const auto strategy =
      static_cast<graph::PriorityStrategy>(state.range(0));
  for (auto _ : state) {
    const auto prio = graph::vertex_priorities(strategy, g);
    benchmark::DoNotOptimize(prio.data());
  }
}
BENCHMARK(BM_VertexPriorities)
    ->Arg(static_cast<int>(graph::PriorityStrategy::BFS))
    ->Arg(static_cast<int>(graph::PriorityStrategy::LDCP))
    ->Arg(static_cast<int>(graph::PriorityStrategy::SLBD));

void BM_GraphPartition(benchmark::State& state) {
  const mesh::TetMesh m = mesh::make_ball_mesh(10, 5.0);
  const partition::CsrGraph g = partition::cell_graph(m);
  for (auto _ : state) {
    const auto part =
        partition::partition_graph(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(part.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_GraphPartition)->Arg(8)->Arg(32);

void BM_Rcb(benchmark::State& state) {
  const mesh::TetMesh m = mesh::make_ball_mesh(10, 5.0);
  const auto centroids = partition::cell_centroids(m);
  for (auto _ : state) {
    const auto part = partition::partition_rcb(centroids, 32);
    benchmark::DoNotOptimize(part.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(centroids.size()));
}
BENCHMARK(BM_Rcb);

void BM_SfcCodes(benchmark::State& state) {
  const bool hilbert = state.range(0) != 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < 1024; ++i) {
      acc ^= hilbert ? partition::hilbert3(i & 255, (i * 7) & 255,
                                           (i * 13) & 255, 8)
                     : partition::morton3(i & 255, (i * 7) & 255,
                                          (i * 13) & 255);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SfcCodes)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
