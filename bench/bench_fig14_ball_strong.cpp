// Fig. 14 — strong scalability on tetrahedral ball meshes.
//
// Paper setup & results (S4 = 24 angles, patch 500 cells, grain 64):
//   (a) small ball, 482,248 cells: 24 → 6,144 cores; speedup 11.5 at 384
//       (72% eff), 75.8 at 6,144 (30% eff), base 24 cores.
//   (b) large ball, 173,197,768 cells: 3,072 → 49,152 cores; speedup 9.9
//       at 49,152 vs 3,072 (62% eff).
//
// Default angle count is 8 (S2) for the large case to keep simulated event
// counts tractable; set JSWEEP_FULL_ANGLES=1 for S4 everywhere.

#include <cstdlib>

#include "bench_common.hpp"

using namespace jsweep;

namespace {

void run_ball(const char* name, std::int64_t total_cells,
              const std::vector<int>& cores, int sn_order,
              const char* paper_note) {
  const std::int64_t patch_cells = 500;
  const auto patches = total_cells / patch_cells;
  // Ball lattice: (π/6)·B³ blocks ≈ patches.
  const auto blocks_across = std::max(
      2,
      static_cast<int>(std::cbrt(static_cast<double>(patches) * 6.0 /
                                 3.1415926)));
  const auto side_hexes = std::cbrt(static_cast<double>(patch_cells) / 6.0);
  const auto interface = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(2.0 * side_hexes * side_hexes));
  const sim::PatchTopology topo =
      sim::PatchTopology::lattice_ball(blocks_across, patch_cells, interface);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(sn_order);

  char setup[300];
  std::snprintf(setup, sizeof(setup),
                "ball %lld tets modeled as %d patches of %lld, S%d (%d "
                "angles; paper S4=24), grain 64\npaper: %s",
                static_cast<long long>(total_cells), topo.num_patches(),
                static_cast<long long>(patch_cells), sn_order,
                quad.num_angles(), paper_note);
  bench::print_header(name, "ball strong scaling (simulated)", setup);

  Table table({"case", "cores", "sim time(s)", "speedup", "eff %"});
  std::vector<bench::ScalingRow> rows;
  for (const int c : cores) {
    sim::SimConfig cfg = bench::sim_config_for_cores(c);
    cfg.tet_mesh = true;
    cfg.rep_block_hexes = 4;
    cfg.cluster_grain = 64;
    cfg.cost = sim::CostModel::jsnt_u();
    const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
    rows.push_back({c, r.elapsed_seconds});
  }
  bench::print_scaling(table, rows, name,
                       total_cells * quad.num_angles());
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig14_ball_strong");
  const bool full = std::getenv("JSWEEP_FULL_ANGLES") != nullptr;
  run_ball("Fig 14a", 482248, {24, 48, 96, 192, 384, 768, 1536, 3072, 6144},
           4,
           "speedup 11.5 at 384 cores (72% eff), 75.8 at 6,144 (30% eff)");
  run_ball("Fig 14b", 173197768, {3072, 6144, 12288, 24576, 49152},
           full ? 4 : 2,
           "speedup 9.9 at 49,152 vs 3,072 cores (62% eff)");
  return 0;
}
