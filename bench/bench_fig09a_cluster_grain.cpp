// Fig. 9a — runtime vs vertex clustering grain on a structured mesh.
//
// Paper setup: SnSweep-S, 160×160×180 cells, patch 20³, S2, 96 cores.
// Paper observation: runtime falls steeply up to grain ≈ 10³, then rises
// again for very large grains (deferred communication stalls downwind
// patches).
//
// We reproduce at the paper's geometry/core count with the simulator, and
// additionally at host scale with the real threaded runtime (smaller mesh)
// to show the same U-shape emerges from the actual engine.

#include "bench_common.hpp"

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sweep/solver.hpp"

using namespace jsweep;

namespace {

void simulated_paper_scale() {
  bench::print_header(
      "Fig 9a (simulated)",
      "vertex clustering grain vs runtime, structured",
      "mesh 160x160x180, patch 20^3, S2 (8 angles), 96 cores (8 procs x 12); "
      "paper: time falls to a minimum near grain ~1e3, then rises");

  const sim::PatchTopology topo =
      sim::PatchTopology::structured({160, 160, 180}, {20, 20, 20});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);

  constexpr int kCores = 96;
  Table table({"grain", "sim time(s)"});
  for (const int grain : {1, 8, 64, 256, 1024, 2048, 4096}) {
    sim::SimConfig cfg = bench::sim_config_for_cores(kCores);
    cfg.cluster_grain = grain;
    const auto r = sim::DataDrivenSim(topo, quad, cfg).run();
    table.add_row({Table::num(static_cast<std::int64_t>(grain)),
                   Table::num(r.elapsed_seconds, 3)});
    bench::record({"sim/grain_" + std::to_string(grain), r.elapsed_seconds,
                   kCores, topo.total_cells() * quad.num_angles(),
                   {{"simulated", 1.0}, {"grain", double(grain)}}});
  }
  std::printf("%s", table.str().c_str());
}

void real_host_scale() {
  bench::print_header(
      "Fig 9a (real runtime, host scale)",
      "vertex clustering grain vs runtime, real threaded engine",
      "mesh 40x40x40, patch 10^3, S2, 4 ranks x 2 workers on this host");

  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(40);
  const partition::StructuredBlockLayout layout(m.dims(), {10, 10, 10});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &cg);
  const sn::CellXs xs =
      expand(sn::MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.25);

  constexpr int kRanks = 4;
  constexpr int kWorkers = 2;
  Table table({"grain", "sweep time(s)", "executions"});
  for (const int grain : {1, 8, 64, 256, 1000, 4096}) {
    double seconds = 0.0;
    std::int64_t executions = 0;
    comm::Cluster::run(kRanks, [&](comm::Context& ctx) {
      sweep::SolverConfig config;
      config.num_workers = kWorkers;
      config.cluster_grain = grain;
      const auto owner =
          partition::assign_contiguous(patches.num_patches(), ctx.size());
      const auto plan =
          sweep::SweepPlan::build(ctx, m, patches, owner, disc, quad,
                                  sweep::plan_config_of(config));
      sweep::SweepSession session(ctx, plan, sweep::solve_config_of(config));
      (void)session.sweep(q);  // warm-up (graph build amortized)
      WallTimer timer;
      (void)session.sweep(q);
      if (ctx.rank().value() == 0) {
        seconds = timer.seconds();
        executions = session.stats().engine.executions;
      }
    });
    table.add_row({Table::num(static_cast<std::int64_t>(grain)),
                   Table::num(seconds, 4), Table::num(executions)});
    bench::record({"real/grain_" + std::to_string(grain), seconds,
                   kRanks * kWorkers, m.num_cells() * quad.num_angles(),
                   {{"grain", double(grain)},
                    {"executions", double(executions)}}});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig09a_cluster_grain");
  simulated_paper_scale();
  real_host_scale();
  return 0;
}
