// Service throughput: what the SweepPlan/SweepSession split and the
// batched SweepService buy on a many-solve stream (the multi-source /
// multi-RHS workload: same mesh and materials, many driving terms).
//
// Three modes over an identical request stream on the structured 16³
// Kobayashi problem, fixed sweep count per request so every mode does the
// same transport work:
//
//   rebuild   — the pre-plan lifecycle: build the full task system anew
//               for every request (what SweepSolver-per-solve costs);
//   sessions  — build ONE immutable plan, run a fresh SweepSession per
//               request (plan reuse, serial requests);
//   service   — the same plan behind a SweepService fusing max_batch
//               requests into shared engine runs (plan reuse + batching).
//
// A fourth mode re-runs the service with a live metrics::Registry
// installed (ServiceConfig::metrics): the service/session/engine layers
// publish their counters while solving, and the on-vs-off throughput ratio
// is the regression gate for metrics cost (CI requires >= 0.98, measured
// as the median over alternating back-to-back off/on pairs so host drift
// cancels out of the ratio).
//
//   build/bench/bench_service_throughput [--json [<path>]]
//                                        [--metrics=<path>]
//
// --metrics writes the registry snapshot after the metrics-on runs:
// Prometheus text, or the jsweep-metrics-v1 JSON document when the path
// ends in .json (what CI validates and archives).
//
// CI gates plan reuse at >= 2x rebuild-per-solve throughput.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sn/source_iteration.hpp"
#include "support/timer.hpp"
#include "sweep/service.hpp"

namespace {

using namespace jsweep;

constexpr int kRequests = 8;
constexpr int kIterationsPerRequest = 2;  // fixed work: tolerance 0 below
constexpr int kWorkers = 4;

struct Fixture {
  mesh::StructuredMesh m;
  partition::StructuredBlockLayout layout;
  partition::CsrGraph cg;
  partition::PatchSet patches;
  sn::CellXs xs;
  sn::StructuredDD disc;
  sn::Quadrature quad;
  std::vector<sn::CellXs> request_xs;  // per-request external sources

  Fixture()
      : m(mesh::make_kobayashi_mesh(16)),
        layout(m.dims(), {4, 4, 4}),
        cg(partition::cell_graph(m)),
        patches(partition::block_partition(layout), layout.num_patches(),
                &cg),
        xs(expand(sn::MaterialTable::kobayashi(), m.materials(),
                  m.num_cells())),
        disc(m, xs),
        quad(sn::Quadrature::level_symmetric(4)) {
    for (int k = 0; k < kRequests; ++k) {
      request_xs.push_back(xs);
      for (auto& s : request_xs.back().source)
        s *= 1.0 + 0.125 * static_cast<double>(k);
    }
  }
};

// Tolerance 0 never converges, so every request runs exactly
// kIterationsPerRequest sweeps — all three modes do identical work.
const sn::SourceIterationOptions kOptions{0.0, kIterationsPerRequest, false};

/// The pre-plan lifecycle: full task-system build per request.
double run_rebuild(const Fixture& fx) {
  WallTimer timer;
  comm::Cluster::run(1, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(fx.patches.num_patches(), 1);
    for (int k = 0; k < kRequests; ++k) {
      const auto plan = sweep::SweepPlan::build(ctx, fx.m, fx.patches,
                                                owner, fx.disc, fx.quad);
      sweep::SolveConfig sc;
      sc.num_workers = kWorkers;
      sweep::SweepSession session(ctx, plan, sc);
      (void)sn::source_iteration(
          fx.request_xs[static_cast<std::size_t>(k)], session.as_operator(),
          kOptions);
    }
  });
  return timer.seconds();
}

/// Plan reuse: one build, a lightweight session per request.
double run_sessions(const Fixture& fx) {
  WallTimer timer;
  comm::Cluster::run(1, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(fx.patches.num_patches(), 1);
    const auto plan = sweep::SweepPlan::build(ctx, fx.m, fx.patches, owner,
                                              fx.disc, fx.quad);
    for (int k = 0; k < kRequests; ++k) {
      sweep::SolveConfig sc;
      sc.num_workers = kWorkers;
      sweep::SweepSession session(ctx, plan, sc);
      (void)sn::source_iteration(
          fx.request_xs[static_cast<std::size_t>(k)], session.as_operator(),
          kOptions);
    }
  });
  return timer.seconds();
}

/// Plan reuse + request batching over one shared engine. `registry`, when
/// non-null, turns on live metrics for the whole stack (the metrics-on
/// mode of the overhead gate).
double run_service(const Fixture& fx, sweep::ServiceStats* stats,
                   metrics::Registry* registry = nullptr) {
  WallTimer timer;
  comm::Cluster::run(1, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(fx.patches.num_patches(), 1);
    const auto plan = sweep::SweepPlan::build(ctx, fx.m, fx.patches, owner,
                                              fx.disc, fx.quad);
    sweep::ServiceConfig sc;
    sc.num_workers = kWorkers;
    sc.max_batch = 4;
    sc.metrics = registry;
    sweep::SweepService service(ctx, sc);
    for (int k = 0; k < kRequests; ++k) {
      sweep::SolveRequest request;
      request.plan = plan;
      request.xs = &fx.request_xs[static_cast<std::size_t>(k)];
      request.options = kOptions;
      service.enqueue(request);
    }
    (void)service.drain();
    if (stats != nullptr) *stats = service.stats();
  });
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "service_throughput");
  std::string metrics_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--metrics=", 10) == 0)
      metrics_path = std::string(argv[i] + 10);
  const Fixture fx;
  const std::int64_t problem =
      fx.m.num_cells() * fx.quad.num_angles();

  bench::print_header(
      "Service throughput", "plan reuse + request batching vs rebuild",
      "Kobayashi 16^3, S4, 64 patches, 8 requests x 2 sweeps each, "
      "1 rank x 4 workers");

  // Warm once (thread pools, allocator arenas) so mode order doesn't bias.
  (void)run_sessions(fx);

  const double t_rebuild = run_rebuild(fx);
  const double t_sessions = run_sessions(fx);

  // Service mode twice — metrics off and on — as interleaved back-to-back
  // pairs whose within-pair order alternates. The <= 2% overhead gate uses
  // the median of the per-pair off/on ratios: slow scheduler drift hits
  // both halves of a pair alike, alternating the order cancels any
  // position-in-pair bias, and the median discards the odd rep that lost
  // its timeslice — none of which best-of-N over two independent series
  // gives you.
  metrics::Registry registry;
  sweep::ServiceStats service_stats;
  double t_service = 0.0;
  double t_service_metrics = 0.0;
  std::vector<double> pair_ratios;
  for (int rep = 0; rep < 9; ++rep) {
    double off;
    double on;
    if (rep % 2 == 0) {
      off = run_service(fx, rep == 0 ? &service_stats : nullptr);
      on = run_service(fx, nullptr, &registry);
    } else {
      on = run_service(fx, nullptr, &registry);
      off = run_service(fx, nullptr);
    }
    t_service = rep == 0 ? off : std::min(t_service, off);
    t_service_metrics = rep == 0 ? on : std::min(t_service_metrics, on);
    pair_ratios.push_back(off / on);
  }
  std::sort(pair_ratios.begin(), pair_ratios.end());
  const double metrics_ratio = pair_ratios[pair_ratios.size() / 2];

  const auto rate = [](double seconds) {
    return static_cast<double>(kRequests) / seconds;
  };
  Table table({"mode", "time(s)", "solves/s", "speedup"});
  table.add_row({"rebuild-per-solve", Table::num(t_rebuild, 3),
                 Table::num(rate(t_rebuild), 2), "1.00"});
  table.add_row({"plan-reuse sessions", Table::num(t_sessions, 3),
                 Table::num(rate(t_sessions), 2),
                 Table::num(t_rebuild / t_sessions, 2)});
  table.add_row({"plan-reuse service", Table::num(t_service, 3),
                 Table::num(rate(t_service), 2),
                 Table::num(t_rebuild / t_service, 2)});
  table.add_row({"service + live metrics", Table::num(t_service_metrics, 3),
                 Table::num(rate(t_service_metrics), 2),
                 Table::num(t_rebuild / t_service_metrics, 2)});
  std::printf("%s", table.str().c_str());
  std::printf("metrics-on/off throughput ratio: %.3f (gate: >= 0.98)\n",
              metrics_ratio);
  std::printf(
      "service: %lld requests in %lld batch(es), %lld engine runs for %lld "
      "sweeps\n",
      static_cast<long long>(service_stats.requests),
      static_cast<long long>(service_stats.batches),
      static_cast<long long>(service_stats.engine_runs),
      static_cast<long long>(service_stats.sweeps));

  const auto record = [&](const char* name, double seconds,
                          double speedup) {
    bench::Sample s;
    s.name = std::string("service_throughput/") + name;
    s.wall_seconds = seconds;
    s.threads = kWorkers;
    s.problem_size = problem;
    s.params.emplace_back("requests", kRequests);
    s.params.emplace_back("iterations_per_request", kIterationsPerRequest);
    s.params.emplace_back("solves_per_sec", rate(seconds));
    s.params.emplace_back("speedup_vs_rebuild", speedup);
    report.record(std::move(s));
  };
  record("rebuild_per_solve", t_rebuild, 1.0);
  record("plan_reuse_sessions", t_sessions, t_rebuild / t_sessions);
  record("plan_reuse_service", t_service, t_rebuild / t_service);

  // The metrics-on sample carries the gate ratio plus the full registry
  // snapshot (bench::append_metrics), so BENCH_service_throughput.json
  // alone is enough to audit what the run did.
  {
    bench::Sample s;
    s.name = "service_throughput/plan_reuse_service_metrics";
    s.wall_seconds = t_service_metrics;
    s.threads = kWorkers;
    s.problem_size = problem;
    s.params.emplace_back("requests", kRequests);
    s.params.emplace_back("iterations_per_request", kIterationsPerRequest);
    s.params.emplace_back("solves_per_sec", rate(t_service_metrics));
    s.params.emplace_back("speedup_vs_rebuild", t_rebuild / t_service_metrics);
    s.params.emplace_back("throughput_vs_metrics_off", metrics_ratio);
    bench::append_metrics(s, registry);
    report.record(std::move(s));
  }

  if (!metrics_path.empty()) {
    metrics::write_snapshot(registry, metrics_path);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
