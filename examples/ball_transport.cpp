// Unstructured ball transport (the paper's JSNT-U ball workload, Sec.
// VI-B): a tetrahedral ball with a source core inside a scattering shield,
// solved with the data-driven sweep on a graph-partitioned mesh.
//
//   build/examples/ball_transport [n]   (default n = 10 lattice cells across)

#include <cstdio>
#include <cstdlib>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/source_iteration.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "sweep/session.hpp"

int main(int argc, char** argv) {
  using namespace jsweep;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10;

  WallTimer t_mesh;
  const mesh::TetMesh m = mesh::make_ball_mesh(n, 50.0);
  std::printf("ball mesh: %lld tets, %lld nodes (built in %.2fs)\n",
              static_cast<long long>(m.num_cells()),
              static_cast<long long>(m.num_nodes()), t_mesh.seconds());

  // Paper defaults: patch size ≈ 500 cells, S4, SLBD+SLBD, grain 64.
  const int num_patches =
      std::max(2, static_cast<int>(m.num_cells() / 500));
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, num_patches);
  const partition::PatchSet patches(part, num_patches, &cg);
  std::printf("patches: %d (edge cut %lld, imbalance %.3f)\n", num_patches,
              static_cast<long long>(partition::edge_cut(cg, part)),
              partition::imbalance(part, num_patches));

  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);

  comm::Cluster::run(4, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    sweep::PlanConfig plan_config;
    plan_config.cluster_grain = 64;
    const auto plan = sweep::SweepPlan::build(ctx, m, patches, owner, disc,
                                              quad, plan_config);
    sweep::SolveConfig solve_config;
    solve_config.num_workers = 2;
    solve_config.use_coarsened_graph = true;
    sweep::SweepSession session(ctx, plan, solve_config);

    WallTimer t_solve;
    const auto result =
        sn::source_iteration(xs, session.as_operator(), {1e-6, 200, false});
    if (ctx.rank().value() == 0) {
      std::printf("solve: %d iterations in %.2fs (converged: %s)\n",
                  result.iterations, t_solve.seconds(),
                  result.converged ? "yes" : "no");
      // Radial flux profile.
      Table profile({"radius", "mean flux"});
      constexpr int kBins = 5;
      std::vector<double> sum(kBins, 0.0);
      std::vector<int> count(kBins, 0);
      for (std::int64_t c = 0; c < m.num_cells(); ++c) {
        const double r = norm(m.cell_centroid(CellId{c})) / 50.0;
        const int bin = std::min(kBins - 1, static_cast<int>(r * kBins));
        sum[static_cast<std::size_t>(bin)] +=
            result.phi[static_cast<std::size_t>(c)];
        ++count[static_cast<std::size_t>(bin)];
      }
      for (int b = 0; b < kBins; ++b)
        profile.add_row(
            {Table::num(static_cast<double>(b + 1) / kBins * 50.0, 0),
             Table::num(sum[static_cast<std::size_t>(b)] /
                            std::max(1, count[static_cast<std::size_t>(b)]),
                        5)});
      std::printf("%s", profile.str().c_str());
    }
  });
  return 0;
}
