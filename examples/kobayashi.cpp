// Kobayashi benchmark (the paper's JSNT-S workload, Sec. VI-A) at host
// scale: solves the source/void-duct/shield problem with three sweep
// engines — serial reference, JSweep data-driven, and BSP baseline — and
// reports flux agreement and timings.
//
//   build/examples/kobayashi [n]   (default n = 20 → 8000 cells)

#include <cstdio>
#include <cstdlib>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "sweep/session.hpp"

int main(int argc, char** argv) {
  using namespace jsweep;
  const int n = argc > 1 ? std::atoi(argv[1]) : 20;

  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(n);
  const mesh::Index3 patch_dims{std::max(2, n / 4), std::max(2, n / 4),
                                std::max(2, n / 4)};
  const partition::StructuredBlockLayout layout(m.dims(), patch_dims);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &cg);
  const sn::CellXs xs =
      expand(sn::MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  const sn::SourceIterationOptions opts{1e-6, 100, false};

  std::printf("Kobayashi %d^3: %lld cells, %d patches, S4 (%d angles)\n", n,
              static_cast<long long>(m.num_cells()), patches.num_patches(),
              quad.num_angles());

  Table table({"engine", "iterations", "time(s)", "max|dphi|"});

  // Serial reference.
  WallTimer t_serial;
  const auto serial = sn::source_iteration(
      xs,
      [&](const std::vector<double>& q) { return serial_sweep(disc, quad, q); },
      opts);
  table.add_row({"serial", Table::num(static_cast<std::int64_t>(
                               serial.iterations)),
                 Table::num(t_serial.seconds()), "0"});

  // Parallel engines.
  for (const auto engine : {sweep::EngineKind::DataDriven,
                            sweep::EngineKind::Bsp}) {
    sn::SourceIterationResult result;
    WallTimer t_engine;
    comm::Cluster::run(4, [&](comm::Context& ctx) {
      const auto owner =
          partition::assign_contiguous(patches.num_patches(), ctx.size());
      sweep::PlanConfig plan_config;
      plan_config.cluster_grain = 256;
      const auto plan = sweep::SweepPlan::build(ctx, m, patches, owner, disc,
                                                quad, plan_config);
      sweep::SolveConfig solve_config;
      solve_config.engine = engine;
      solve_config.num_workers = 2;
      solve_config.use_coarsened_graph =
          engine == sweep::EngineKind::DataDriven;
      sweep::SweepSession session(ctx, plan, solve_config);
      const auto r = sn::source_iteration(xs, session.as_operator(), opts);
      if (ctx.rank().value() == 0) result = r;
    });
    double max_diff = 0.0;
    for (std::size_t c = 0; c < result.phi.size(); ++c)
      max_diff = std::max(max_diff, std::abs(result.phi[c] - serial.phi[c]));
    table.add_row(
        {engine == sweep::EngineKind::DataDriven ? "jsweep" : "bsp",
         Table::num(static_cast<std::int64_t>(result.iterations)),
         Table::num(t_engine.seconds()), Table::num(max_diff, 3)});
  }

  std::printf("%s", table.str().c_str());
  return 0;
}
