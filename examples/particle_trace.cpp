// Particle tracing on the patch-centric abstraction — the second
// data-driven component the paper's conclusion mentions. Unlike sweeps,
// the workload is NOT known in advance (a ray crosses an unpredictable
// number of patches), so the engine runs with Safra termination detection
// instead of the known-workload fast path.
//
// Each patch-program owns a box of a structured mesh; rays enter with a
// position and direction, march cell-by-cell accumulating optical depth,
// and hop to the neighboring patch-program via a stream when they cross a
// patch boundary. Rays die when they leave the domain or their weight
// falls below a cutoff.
//
//   build/examples/particle_trace [rays]   (default 512)

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "comm/cluster.hpp"
#include "core/engine.hpp"
#include "mesh/generators.hpp"
#include "partition/block_layout.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace jsweep;

struct Ray {
  mesh::Vec3 pos;
  mesh::Vec3 dir;
  double weight;
};

comm::Bytes encode_rays(const std::vector<Ray>& rays) {
  comm::ByteWriter w;
  w.write_vector(rays);
  return w.take();
}

std::vector<Ray> decode_rays(const comm::Bytes& b) {
  comm::ByteReader r(b);
  return r.read_vector<Ray>();
}

/// Patch-program that marches rays across its box of the mesh.
class TraceProgram final : public core::PatchProgram {
 public:
  TraceProgram(PatchId patch, const mesh::StructuredMesh& m,
               const partition::StructuredBlockLayout& layout,
               std::vector<Ray> seeds, std::atomic<std::int64_t>* segments,
               std::atomic<double>* total_depth)
      : core::PatchProgram(patch, TaskTag{0}),
        mesh_(m),
        layout_(layout),
        box_(layout.patch_box(patch)),
        seeds_(std::move(seeds)),
        segments_(segments),
        total_depth_(total_depth) {}

  void init() override { incoming_ = seeds_; }

  void input(const core::Stream& s) override {
    for (auto& ray : decode_rays(s.data)) incoming_.push_back(ray);
  }

  void compute() override {
    const mesh::Vec3 sp = mesh_.spacing();
    const mesh::Vec3 org = mesh_.origin();
    for (auto ray : incoming_) {
      // March until the ray exits this patch's box or dies.
      for (;;) {
        // floor, not truncation: positions below the origin must map to
        // negative (out-of-domain) cells.
        const mesh::Index3 cell{
            static_cast<int>(std::floor((ray.pos.x - org.x) / sp.x)),
            static_cast<int>(std::floor((ray.pos.y - org.y) / sp.y)),
            static_cast<int>(std::floor((ray.pos.z - org.z) / sp.z))};
        if (!box_.contains(cell)) break;
        // Distance to the cell's exit face along dir.
        double t_exit = 1e300;
        for (int axis = 0; axis < 3; ++axis) {
          const double d = axis == 0 ? ray.dir.x
                           : axis == 1 ? ray.dir.y
                                       : ray.dir.z;
          if (std::abs(d) < 1e-14) continue;
          const double x0 = axis == 0 ? org.x : axis == 1 ? org.y : org.z;
          const double h = axis == 0 ? sp.x : axis == 1 ? sp.y : sp.z;
          const double lo =
              x0 + h * (axis == 0 ? cell.i : axis == 1 ? cell.j : cell.k);
          const double p = axis == 0 ? ray.pos.x
                           : axis == 1 ? ray.pos.y
                                       : ray.pos.z;
          const double bound = d > 0 ? lo + h : lo;
          t_exit = std::min(t_exit, (bound - p) / d);
        }
        t_exit = std::max(t_exit, 1e-12);
        // Accumulate optical depth for the Kobayashi materials.
        const double sigma =
            mesh_.material(mesh_.cell_at(cell)) == mesh::kMatVoid ? 1e-4
                                                                  : 0.1;
        total_depth_->fetch_add(sigma * t_exit * ray.weight);
        segments_->fetch_add(1);
        ray.weight *= std::exp(-sigma * t_exit);
        // Nudge across the face with an absolute epsilon so a ray sitting
        // exactly on a face cannot stall in its cell.
        ray.pos += ray.dir * (t_exit + 1e-9);
        if (ray.weight < 1e-6) break;  // absorbed
      }
      // Where did it land?
      const mesh::Index3 cell{
          static_cast<int>(std::floor((ray.pos.x - org.x) / sp.x)),
          static_cast<int>(std::floor((ray.pos.y - org.y) / sp.y)),
          static_cast<int>(std::floor((ray.pos.z - org.z) / sp.z))};
      if (ray.weight < 1e-6 ||
          !mesh::Box{{0, 0, 0}, mesh_.dims()}.contains(cell))
        continue;  // dead or left the domain
      outgoing_[layout_.patch_of(cell)].push_back(ray);
    }
    incoming_.clear();
    for (auto& [dst, rays] : outgoing_) {
      if (rays.empty()) continue;
      core::Stream s;
      s.src = key();
      s.dst = {dst, TaskTag{0}};
      s.data = encode_rays(rays);
      rays.clear();
      pending_.push_back(std::move(s));
    }
  }

  std::optional<core::Stream> output() override {
    if (pending_.empty()) return std::nullopt;
    core::Stream s = std::move(pending_.back());
    pending_.pop_back();
    return s;
  }

  bool vote_to_halt() override { return incoming_.empty(); }
  [[nodiscard]] std::int64_t remaining_work() const override { return 0; }

 private:
  const mesh::StructuredMesh& mesh_;
  const partition::StructuredBlockLayout& layout_;
  mesh::Box box_;
  std::vector<Ray> seeds_;
  std::atomic<std::int64_t>* segments_;
  std::atomic<double>* total_depth_;
  std::vector<Ray> incoming_;
  std::map<PatchId, std::vector<Ray>> outgoing_;
  std::vector<core::Stream> pending_;
};

}  // namespace

int main(int argc, char** argv) {
  const int nrays = argc > 1 ? std::atoi(argv[1]) : 512;

  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(20);
  const partition::StructuredBlockLayout layout(m.dims(), {5, 5, 5});
  std::atomic<std::int64_t> segments{0};
  std::atomic<double> total_depth{0.0};

  // Seed rays at the source corner with random directions.
  Rng rng(42);
  std::vector<std::vector<Ray>> seeds(
      static_cast<std::size_t>(layout.num_patches()));
  for (int i = 0; i < nrays; ++i) {
    Ray ray;
    ray.pos = {2.5, 2.5, 2.5};
    const double u = 2.0 * rng.uniform() - 1.0;
    const double phi = 2.0 * 3.14159265358979 * rng.uniform();
    const double s = std::sqrt(1.0 - u * u);
    ray.dir = {s * std::cos(phi), s * std::sin(phi), u};
    ray.weight = 1.0;
    seeds[0].push_back(ray);  // patch (0,0,0) holds the source corner
  }

  WallTimer timer;
  comm::Cluster::run(4, [&](comm::Context& ctx) {
    core::Engine engine(ctx, {2, core::TerminationMode::Safra});
    std::vector<RankId> owner(
        static_cast<std::size_t>(layout.num_patches()));
    for (int p = 0; p < layout.num_patches(); ++p)
      owner[static_cast<std::size_t>(p)] = RankId{p % ctx.size()};
    for (int p = 0; p < layout.num_patches(); ++p) {
      if (owner[static_cast<std::size_t>(p)] != ctx.rank()) continue;
      engine.add_program(
          std::make_unique<TraceProgram>(
              PatchId{p}, m, layout,
              std::move(seeds[static_cast<std::size_t>(p)]), &segments,
              &total_depth),
          0.0, true);
    }
    engine.set_routes(owner);
    engine.run();
  });

  std::printf(
      "traced %d rays: %lld cell segments, mean optical depth %.3f, "
      "%.1f ms (Safra termination — workload unknown in advance)\n",
      nrays, static_cast<long long>(segments.load()),
      total_depth.load() / nrays, timer.seconds() * 1e3);
  return 0;
}
