// jsweep_cli — general driver over the public API: pick a benchmark
// problem, a mesh resolution, an engine and its knobs from the command
// line, solve it, and optionally dump the flux as VTK.
/*
   build/examples/jsweep_cli --mesh=kobayashi --n=16 --sn=4 \
       --engine=jsweep --ranks=4 --workers=2 --grain=64 \
       --priority=SLBD --coarsened --trace=/tmp/trace.json --profile \
       --vtk=/tmp/flux.vtk
*/
// Run with --help for the full flag list.

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "metrics/trace_bridge.hpp"
#include "mesh/vtk_output.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/boundary.hpp"
#include "sn/fission.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "sweep/autotune.hpp"
#include "sweep/eigen.hpp"
#include "sweep/session.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "trace/trace.hpp"

namespace {

using namespace jsweep;

struct Options {
  // kobayashi | ball | reactor | twisted | swirled
  std::string mesh = "kobayashi";
  int n = 16;
  int sn = 4;
  int groups = 1;
  int group_set = 1;
  bool group_barrier = false;
  bool k_eigenvalue = false;
  double albedo = 0.0;  // of the three low box sides; 0 = vacuum
  std::string engine = "jsweep";   // jsweep | bsp | serial
  int ranks = 4;
  int workers = 2;
  int grain = 64;
  int patch_cells = 0;  // 0 = default per mesh type
  std::string priority = "SLBD";
  bool coarsened = false;
  std::string cycle_policy = "error";  // assume | error | lag
  int lag_sweeps = 1;
  double tolerance = 1e-6;
  int max_iterations = 200;
  bool auto_tune = false;
  int steal = -1;       // -1 auto, 0 off, 1 on
  int steal_spin = -1;  // -1 auto, >= 0 forces
  int sched_seed = 0;
  bool no_source_overlap = false;
  std::string vtk;
  std::string trace;
  std::string metrics;
  bool profile = false;
};

void usage() {
  std::printf(R"(jsweep_cli — solve an Sn transport benchmark problem

  --mesh=kobayashi|ball|reactor|twisted|swirled
                                  problem geometry (default kobayashi);
                                  twisted/swirled meshes have cyclic sweep
                                  dependencies (need --cycle-policy=lag)
  --n=N                           mesh resolution (cells across; default 16)
  --sn=2|4|6|8                    level-symmetric order (default 4)
  --groups=G                      energy groups (default 1); G > 1 solves a
                                  downscatter-cascade multigroup problem with
                                  group-pipelined sweeps (see --group-barrier)
  --group-set=W                   group-set width (default 1): sweep W
                                  consecutive groups per program in SIMD
                                  lanes, within-set downscatter lagged one
                                  pass; needs --groups=G > 1
  --group-barrier                 disable group pipelining: one engine run
                                  (and a global barrier) per group per pass —
                                  the ablation baseline
  --k-eigenvalue                  solve the k-eigenvalue problem by power
                                  iteration over the cached sweep plan:
                                  fission lives in the problem's source
                                  material (νΣ_f = 0.4 σ_t per group,
                                  fast-born χ); prints k-eff
  --albedo=A                      reflect the three low box sides with
                                  coefficient A in [0, 1] (0 = vacuum, the
                                  default; 1 = mirror); --mesh=kobayashi
                                  only — tet boundaries are vacuum
  --engine=jsweep|bsp|serial      sweep engine (default jsweep)
  --ranks=R                       in-process ranks (default 4)
  --workers=W                     worker threads per rank (default 2)
  --grain=G                       vertex clustering grain (default 64)
  --patch-cells=P                 cells per patch (default: mesh-specific)
  --priority=None|BFS|LDCP|SLBD   patch+vertex strategy (default SLBD)
  --coarsened                     replay iterations 2+ on the coarsened graph
  --cycle-policy=assume|error|lag cyclic-dependence handling (default error:
                                  detect and refuse; lag: cut feedback edges
                                  and iterate their fluxes)
  --lag-sweeps=K                  max engine sweeps per transport sweep on a
                                  cut mesh (default 1)
  --tolerance=T                   source-iteration tolerance (default 1e-6)
  --max-iterations=K              source-iteration cap (default 200)
  --auto-tune                     calibrate group-set width and steal/spin
                                  knobs with a short measured grind on the
                                  actual plan before solving (jsweep engine;
                                  overrides --group-set)
  --steal=0|1                     force work stealing between engine workers
                                  off/on (default: plan tuning or on)
  --steal-spin=N                  steal-spin rounds before a worker blocks
                                  (default: plan tuning or 64)
  --sched-seed=S                  seed of the engine's deterministic
                                  scheduling tie-breaks (default 0)
  --no-source-overlap             disable the multigroup source-tail overlap
                                  (next-pass q formation on idle workers)
  --vtk=PATH                      write flux + material as legacy VTK
  --trace=PATH                    record the runs and write a Chrome trace
                                  (open in chrome://tracing or Perfetto)
  --metrics=PATH                  publish live engine/session metrics and
                                  write a snapshot: Prometheus text, or
                                  JSON when PATH ends in .json
  --profile                       print critical-path + busy/idle breakdown
  --help                          this text
)");
}

/// Strict integer flag parsing: the whole value must be a base-10 integer
/// in int range. `--groups=abc` or `--groups=` refuse with a usage hint
/// instead of silently becoming 0 (the old atoi behavior).
bool parse_int_flag(const char* flag, const std::string& text, int& out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE ||
      v < INT_MIN || v > INT_MAX) {
    std::fprintf(stderr, "%s needs an integer, got '%s' (try --help)\n", flag,
                 text.c_str());
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

/// Strict floating-point flag parsing, same contract as parse_int_flag().
bool parse_double_flag(const char* flag, const std::string& text,
                       double& out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    std::fprintf(stderr, "%s needs a number, got '%s' (try --help)\n", flag,
                 text.c_str());
    return false;
  }
  out = v;
  return true;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    const auto int_flag = [&](const char* name, int& out) {
      const auto v = value(name);
      if (v) ok = ok && parse_int_flag(name, *v, out);
      return v.has_value();
    };
    const auto double_flag = [&](const char* name, double& out) {
      const auto v = value(name);
      if (v) ok = ok && parse_double_flag(name, *v, out);
      return v.has_value();
    };
    if (arg == "--help") {
      usage();
      return std::nullopt;
    } else if (auto v = value("--mesh")) {
      opt.mesh = *v;
    } else if (int_flag("--n", opt.n)) {
    } else if (int_flag("--sn", opt.sn)) {
    } else if (int_flag("--groups", opt.groups)) {
    } else if (int_flag("--group-set", opt.group_set)) {
    } else if (arg == "--group-barrier") {
      opt.group_barrier = true;
    } else if (arg == "--k-eigenvalue") {
      opt.k_eigenvalue = true;
    } else if (double_flag("--albedo", opt.albedo)) {
    } else if (auto v = value("--engine")) {
      opt.engine = *v;
    } else if (int_flag("--ranks", opt.ranks)) {
    } else if (int_flag("--workers", opt.workers)) {
    } else if (int_flag("--grain", opt.grain)) {
    } else if (int_flag("--patch-cells", opt.patch_cells)) {
    } else if (auto v = value("--priority")) {
      opt.priority = *v;
    } else if (arg == "--coarsened") {
      opt.coarsened = true;
    } else if (auto v = value("--cycle-policy")) {
      opt.cycle_policy = *v;
    } else if (int_flag("--lag-sweeps", opt.lag_sweeps)) {
    } else if (double_flag("--tolerance", opt.tolerance)) {
    } else if (int_flag("--max-iterations", opt.max_iterations)) {
    } else if (arg == "--auto-tune") {
      opt.auto_tune = true;
    } else if (int_flag("--steal", opt.steal)) {
    } else if (int_flag("--steal-spin", opt.steal_spin)) {
    } else if (int_flag("--sched-seed", opt.sched_seed)) {
    } else if (arg == "--no-source-overlap") {
      opt.no_source_overlap = true;
    } else if (auto v = value("--vtk")) {
      opt.vtk = *v;
    } else if (auto v = value("--trace")) {
      opt.trace = *v;
    } else if (auto v = value("--metrics")) {
      opt.metrics = *v;
    } else if (arg == "--profile") {
      opt.profile = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return std::nullopt;
    }
    if (!ok) return std::nullopt;
  }
  if (opt.groups < 1) {
    std::fprintf(stderr, "--groups must be >= 1, got %d (try --help)\n",
                 opt.groups);
    return std::nullopt;
  }
  if (opt.group_set < 1 || opt.group_set > sn::kMaxGroupSetWidth) {
    std::fprintf(stderr, "--group-set must be in [1, %d], got %d (try "
                         "--help)\n",
                 sn::kMaxGroupSetWidth, opt.group_set);
    return std::nullopt;
  }
  if (opt.group_set > 1 && opt.groups <= 1) {
    std::fprintf(stderr, "--group-set=%d needs a multigroup solve "
                         "(--groups=G > 1)\n",
                 opt.group_set);
    return std::nullopt;
  }
  // The negated form also rejects NaN (which fails every comparison).
  if (!(opt.albedo >= 0.0 && opt.albedo <= 1.0)) {
    std::fprintf(stderr, "--albedo must be in [0, 1], got %g (try --help)\n",
                 opt.albedo);
    return std::nullopt;
  }
  if (opt.albedo != 0.0 && opt.mesh != "kobayashi") {
    std::fprintf(stderr, "--albedo needs the structured mesh "
                         "(--mesh=kobayashi); tet boundaries are vacuum\n");
    return std::nullopt;
  }
  if (opt.k_eigenvalue && opt.auto_tune) {
    std::fprintf(stderr,
                 "--auto-tune is not supported with --k-eigenvalue\n");
    return std::nullopt;
  }
  if (opt.steal < -1 || opt.steal > 1) {
    std::fprintf(stderr, "--steal must be 0 or 1, got %d (try --help)\n",
                 opt.steal);
    return std::nullopt;
  }
  if (opt.auto_tune && opt.engine != "jsweep") {
    std::fprintf(stderr, "--auto-tune calibrates the data-driven engine; "
                         "use --engine=jsweep\n");
    return std::nullopt;
  }
  return opt;
}

/// Per-group serial sweep operator honoring the kernel's boundary policy:
/// the stateless sweep everywhere, upgraded to the stateful boundary-
/// coupled sweeper when a structured side reflects (--albedo > 0) so the
/// serial reference lags mirror-angle iterates exactly like the engines.
template <class Mesh, class Disc>
sn::SweepOperator make_group_sweep(const Mesh& mesh, const Disc& disc,
                                   const sn::Quadrature& quad,
                                   sn::CellXs gxs) {
  if constexpr (std::is_same_v<Disc, sn::StructuredDD>) {
    if (disc.boundary().any()) {
      auto gd = std::make_shared<sn::StructuredDD>(
          mesh, std::move(gxs), disc.negative_flux_fixup(), disc.boundary());
      auto sweeper = std::make_shared<sn::StructuredSerialSweeper>(*gd, quad);
      return [gd, sweeper](const std::vector<double>& q) {
        return sweeper->sweep(q);
      };
    }
  }
  auto gd = std::make_shared<Disc>(mesh, std::move(gxs));
  return [gd, &quad](const std::vector<double>& q) {
    return sn::serial_sweep(*gd, quad, q);
  };
}

/// k-eigenvalue solve (--k-eigenvalue): power iteration over the plan-
/// cached multigroup solve. Fission is synthesized in the material that
/// carries the problem's external source (νΣ_f = 0.4 σ_t per group,
/// fast-born χ); the external sources themselves are ignored — the driver
/// rewrites every group source each outer iteration.
template <class Mesh, class Disc>
int solve_k_eigen(const Options& opt, const Mesh& mesh, const Disc& disc,
                  const sn::MaterialTable& table,
                  const partition::PatchSet& patches) {
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(opt.sn);
  sn::MultigroupXs xs = sn::MultigroupXs::cascade(
      table, mesh.materials(), mesh.num_cells(), opt.groups);
  sn::FissionXs fission(opt.groups, mesh.num_cells());
  fission.chi(0) = 1.0;
  for (std::int64_t c = 0; c < mesh.num_cells(); ++c) {
    const int mat = mesh.materials().empty()
                        ? 0
                        : mesh.materials()[static_cast<std::size_t>(c)];
    if (table.at(mat).source <= 0.0) continue;
    for (int g = 0; g < opt.groups; ++g)
      fission.nu_sigma_f(g, c) = 0.4 * xs.sigma_t(g, c);
  }

  sweep::EigenOptions options;
  options.max_outer_iterations = opt.max_iterations;
  options.k_tolerance = opt.tolerance;
  options.fission_tolerance = opt.tolerance * 100.0;
  options.multigroup.inner = {opt.tolerance, opt.max_iterations, false};
  options.multigroup.group_set_width = opt.group_set;

  std::printf("%lld cells, %d patches, S%d (%d angles), %d group(s), "
              "k-eigenvalue power iteration, engine=%s\n",
              static_cast<long long>(mesh.num_cells()),
              patches.num_patches(), opt.sn, quad.num_angles(), opt.groups,
              opt.engine.c_str());
  if (!opt.trace.empty() || opt.profile || !opt.metrics.empty())
    std::fprintf(stderr, "note: --trace/--profile/--metrics cover "
                         "fixed-source solves only; ignored for "
                         "--k-eigenvalue\n");

  sweep::EigenResult result;
  WallTimer timer;
  if (opt.engine == "serial") {
    result = sweep::solve_k_eigenvalue_serial(
        xs, fission, disc,
        [&]() {
          return sn::sequential_sweep_pass(
              xs,
              [&](int g) {
                return make_group_sweep(mesh, disc, quad, xs.group_view(g));
              },
              opt.group_set);
        },
        options);
  } else {
    comm::Cluster::run(opt.ranks, [&](comm::Context& ctx) {
      sn::MultigroupXs local = xs;  // per-rank writable copy (thread ranks)
      sweep::PlanConfig plan_config;
      plan_config.cluster_grain = opt.grain;
      plan_config.patch_priority = graph::priority_from_string(opt.priority);
      plan_config.vertex_priority = plan_config.patch_priority;
      plan_config.cycle_policy =
          sweep::cycle_policy_from_string(opt.cycle_policy);
      plan_config.multigroup = &local;
      plan_config.group_pipelining = !opt.group_barrier;
      plan_config.group_set_width = opt.group_set;
      const auto owner =
          partition::assign_contiguous(patches.num_patches(), ctx.size());
      const auto plan =
          sweep::SweepPlan::build(ctx, mesh, patches, owner, disc, quad,
                                  plan_config);
      sweep::SolveConfig solve_config;
      solve_config.engine = opt.engine == "bsp"
                                ? sweep::EngineKind::Bsp
                                : sweep::EngineKind::DataDriven;
      solve_config.num_workers = opt.workers;
      solve_config.use_coarsened_graph =
          opt.coarsened && solve_config.engine == sweep::EngineKind::DataDriven;
      solve_config.max_lag_sweeps = std::max(1, opt.lag_sweeps);
      solve_config.work_stealing = opt.steal;
      solve_config.steal_spin_rounds = opt.steal_spin;
      solve_config.scheduler_seed =
          static_cast<std::uint64_t>(opt.sched_seed);
      solve_config.overlap_source_tail = !opt.no_source_overlap;
      const auto r =
          sweep::solve_k_eigenvalue(ctx, plan, local, fission, options,
                                    solve_config);
      if (ctx.rank().value() == 0) result = r;
    });
  }
  const double seconds = timer.seconds();

  std::printf("%s: k-eff %.9f in %d outer(s), %lld sweeps, %.3fs "
              "(dk %.2e, dS %.2e)\n",
              result.converged ? "converged" : "NOT converged", result.k,
              result.outer_iterations,
              static_cast<long long>(result.stats.transport_sweeps), seconds,
              result.k_error, result.fission_error);
  for (int g = 0; g < opt.groups; ++g) {
    double peak = 0.0;
    double mean = 0.0;
    for (const auto phi : result.phi[static_cast<std::size_t>(g)]) {
      peak = std::max(peak, phi);
      mean += phi;
    }
    mean /=
        static_cast<double>(result.phi[static_cast<std::size_t>(g)].size());
    std::printf("group %d flux: mean %.5e  peak %.5e\n", g, mean, peak);
  }

  if (!opt.vtk.empty()) {
    std::vector<mesh::CellField> fields;
    for (int g = 0; g < opt.groups; ++g)
      fields.push_back({"flux_g" + std::to_string(g),
                        &result.phi[static_cast<std::size_t>(g)]});
    mesh::write_vtk_file(opt.vtk, mesh, fields);
    std::printf("wrote %s\n", opt.vtk.c_str());
  }
  return result.converged ? 0 : 2;
}

/// Multigroup solve (--groups=G > 1): a downscatter cascade derived from
/// the problem's material table, solved with the sweep-pass outer scheme —
/// group-pipelined engines by default, barriered with --group-barrier,
/// per-group serial sweeps for --engine=serial.
template <class Mesh, class Disc>
int solve_multigroup(const Options& opt, const Mesh& mesh, const Disc& disc,
                     const sn::MaterialTable& table,
                     const partition::PatchSet& patches) {
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(opt.sn);
  const sn::MultigroupXs mxs = sn::MultigroupXs::cascade(
      table, mesh.materials(), mesh.num_cells(), opt.groups);
  sn::MultigroupOptions mg;
  mg.inner = {opt.tolerance, opt.max_iterations, false};
  mg.group_set_width = opt.group_set;
  std::printf(
      "%lld cells, %d patches, S%d (%d angles), %d groups (set width %d), "
      "engine=%s%s\n",
      static_cast<long long>(mesh.num_cells()), patches.num_patches(),
      opt.sn, quad.num_angles(), opt.groups, opt.group_set,
      opt.engine.c_str(),
      opt.engine == "serial" ? ""
      : opt.group_barrier    ? " (group-barriered)"
                             : " (group-pipelined)");

  const bool want_trace = !opt.trace.empty() || opt.profile;
  std::optional<trace::Recorder> recorder;
  if (want_trace && opt.engine != "serial") recorder.emplace();
  if (want_trace && opt.engine == "serial")
    std::fprintf(stderr,
                 "note: --trace/--profile need --engine=jsweep or bsp; "
                 "ignored for the serial sweep\n");
  std::optional<metrics::Registry> registry;
  if (!opt.metrics.empty() && opt.engine != "serial") registry.emplace();
  if (!opt.metrics.empty() && opt.engine == "serial")
    std::fprintf(stderr, "note: --metrics needs --engine=jsweep or bsp; "
                         "ignored for the serial sweep\n");

  sn::MultigroupResult result;
  sweep::SolveStats solver_stats;
  WallTimer timer;
  if (opt.engine == "serial") {
    result = sn::solve_multigroup_sweeps(
        mxs,
        sn::sequential_sweep_pass(
            mxs,
            [&](int g) {
              return make_group_sweep(mesh, disc, quad, mxs.group_view(g));
            },
            opt.group_set),
        mg);
  } else {
    comm::Cluster::run(opt.ranks, [&](comm::Context& ctx) {
      sweep::PlanConfig plan_config;
      plan_config.cluster_grain = opt.grain;
      plan_config.patch_priority = graph::priority_from_string(opt.priority);
      plan_config.vertex_priority = plan_config.patch_priority;
      plan_config.cycle_policy =
          sweep::cycle_policy_from_string(opt.cycle_policy);
      plan_config.multigroup = &mxs;
      plan_config.group_pipelining = !opt.group_barrier;
      plan_config.group_set_width = opt.group_set;
      const auto owner =
          partition::assign_contiguous(patches.num_patches(), ctx.size());
      const auto builder = [&](const sweep::PlanConfig& pc) {
        return sweep::SweepPlan::build(ctx, mesh, patches, owner, disc, quad,
                                       pc);
      };
      std::shared_ptr<const sweep::SweepPlan> plan;
      sn::MultigroupOptions mg_run = mg;
      if (opt.auto_tune) {
        sweep::AutoTuneOptions at;
        at.num_workers = opt.workers;
        const auto tuned = sweep::auto_tune(ctx, plan_config, builder, at);
        plan = tuned.plan;
        // The session derives the width from its (tuned) plan.
        mg_run.group_set_width = 1;
        if (ctx.rank().value() == 0)
          std::printf("auto-tune: group-set width %d, stealing %s, spin %d "
                      "(%.3fs grind, %d candidates)\n",
                      tuned.tuning.group_set_width,
                      tuned.tuning.work_stealing ? "on" : "off",
                      tuned.tuning.steal_spin_rounds, tuned.best_seconds,
                      static_cast<int>(tuned.samples.size()));
      } else {
        plan = builder(plan_config);
      }
      sweep::SolveConfig solve_config;
      solve_config.engine = opt.engine == "bsp"
                                ? sweep::EngineKind::Bsp
                                : sweep::EngineKind::DataDriven;
      solve_config.num_workers = opt.workers;
      solve_config.use_coarsened_graph =
          opt.coarsened && solve_config.engine == sweep::EngineKind::DataDriven;
      solve_config.max_lag_sweeps = std::max(1, opt.lag_sweeps);
      solve_config.work_stealing = opt.steal;
      solve_config.steal_spin_rounds = opt.steal_spin;
      solve_config.scheduler_seed =
          static_cast<std::uint64_t>(opt.sched_seed);
      solve_config.overlap_source_tail = !opt.no_source_overlap;
      solve_config.trace.recorder = recorder ? &*recorder : nullptr;
      solve_config.metrics.registry = registry ? &*registry : nullptr;
      sweep::SweepSession session(ctx, plan, solve_config);
      const auto r = session.solve_multigroup(mg_run);
      if (ctx.rank().value() == 0) {
        result = r;
        solver_stats = session.stats();
      }
    });
  }
  const double seconds = timer.seconds();

  if (solver_stats.cycles.any()) {
    std::printf(
        "cycles: %d direction(s) cyclic, %d SCC(s), largest %d cells, "
        "%lld feedback edge(s) lagged; last pass: %d engine run(s), "
        "lag residual %.2e\n",
        solver_stats.cyclic_angles, solver_stats.cycles.cyclic_components,
        solver_stats.cycles.largest_component,
        static_cast<long long>(solver_stats.cycles.edges_cut),
        solver_stats.last_lag_sweeps, solver_stats.last_lag_residual);
  }

  if (recorder) {
    if (!opt.trace.empty()) {
      if (!trace::write_chrome_trace_file(*recorder, opt.trace)) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     opt.trace.c_str());
        return 1;
      }
      std::printf("wrote %s (%lld events, %lld dropped)\n", opt.trace.c_str(),
                  static_cast<long long>(recorder->total_events()),
                  static_cast<long long>(recorder->dropped_events()));
    }
    if (opt.profile) {
      const trace::ProfileReport prof = trace::analyze(*recorder);
      std::printf("\n%s\n", trace::render_profile(prof).c_str());
    }
  }
  if (registry) {
    // The trace bridge folds the post-mortem per-rank breakdown into the
    // same registry, so one snapshot carries both views.
    if (recorder) metrics::fold_profile(trace::analyze(*recorder), *registry);
    metrics::write_snapshot(*registry, opt.metrics);
    std::printf("wrote %s\n", opt.metrics.c_str());
  }

  std::printf("%s: %d outer(s), %d pass(es), %lld sweeps, %.3fs (error "
              "%.2e)\n",
              result.converged ? "converged" : "NOT converged",
              result.outer_iterations, result.pass_iterations,
              static_cast<long long>(result.total_sweeps), seconds,
              result.error);
  for (int g = 0; g < opt.groups; ++g) {
    double peak = 0.0;
    double mean = 0.0;
    for (const auto phi : result.phi[static_cast<std::size_t>(g)]) {
      peak = std::max(peak, phi);
      mean += phi;
    }
    mean /= static_cast<double>(result.phi[static_cast<std::size_t>(g)].size());
    std::printf("group %d flux: mean %.5e  peak %.5e\n", g, mean, peak);
  }

  if (!opt.vtk.empty()) {
    std::vector<mesh::CellField> fields;
    for (int g = 0; g < opt.groups; ++g)
      fields.push_back({"flux_g" + std::to_string(g),
                        &result.phi[static_cast<std::size_t>(g)]});
    mesh::write_vtk_file(opt.vtk, mesh, fields);
    std::printf("wrote %s\n", opt.vtk.c_str());
  }
  return result.converged ? 0 : 2;
}

/// Solve on a structured or tetrahedral mesh; shares all engine plumbing.
template <class Mesh, class Disc>
int solve(const Options& opt, const Mesh& mesh, const Disc& disc,
          const sn::CellXs& xs, const partition::PatchSet& patches) {
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(opt.sn);
  const sn::SourceIterationOptions si{opt.tolerance, opt.max_iterations,
                                      false};
  std::printf("%lld cells, %d patches, S%d (%d angles), engine=%s\n",
              static_cast<long long>(mesh.num_cells()),
              patches.num_patches(), opt.sn, quad.num_angles(),
              opt.engine.c_str());

  const bool want_trace = !opt.trace.empty() || opt.profile;
  std::optional<trace::Recorder> recorder;
  if (want_trace && opt.engine != "serial") recorder.emplace();
  if (want_trace && opt.engine == "serial")
    std::fprintf(stderr,
                 "note: --trace/--profile need --engine=jsweep or bsp; "
                 "ignored for the serial sweep\n");
  std::optional<metrics::Registry> registry;
  if (!opt.metrics.empty() && opt.engine != "serial") registry.emplace();
  if (!opt.metrics.empty() && opt.engine == "serial")
    std::fprintf(stderr, "note: --metrics needs --engine=jsweep or bsp; "
                         "ignored for the serial sweep\n");

  const sweep::CyclePolicy cycle_policy =
      sweep::cycle_policy_from_string(opt.cycle_policy);

  sn::SourceIterationResult result;
  sweep::SolveStats solver_stats;
  WallTimer timer;
  if (opt.engine == "serial") {
    if (opt.lag_sweeps > 1)
      std::fprintf(stderr,
                   "note: --lag-sweeps needs --engine=jsweep or bsp; the "
                   "serial sweeper always lags one sweep\n");
    bool done = false;
    if constexpr (std::is_same_v<Disc, sn::StructuredDD>) {
      if (disc.boundary().any()) {
        // Boundary-coupled reference: lags mirror-angle iterates exactly
        // like the engines' boundary store (--albedo > 0).
        sn::StructuredSerialSweeper sweeper(disc, quad);
        result = sn::source_iteration(
            xs,
            [&](const std::vector<double>& q) { return sweeper.sweep(q); },
            si);
        solver_stats.last_lag_sweeps = 1;
        solver_stats.last_lag_residual = sweeper.last_lag_residual();
        done = true;
      }
    }
    if constexpr (std::is_same_v<Disc, sn::TetStep>) {
      if (cycle_policy == sweep::CyclePolicy::Lag) {
        // Cycle-aware stateful reference: cuts feedback edges and lags
        // their fluxes exactly like the parallel solver.
        sn::SerialSweeper sweeper(disc, quad);
        result = sn::source_iteration(
            xs,
            [&](const std::vector<double>& q) { return sweeper.sweep(q); },
            si);
        solver_stats.cycles = sweeper.cycle_stats();
        solver_stats.cyclic_angles = sweeper.cyclic_angles();
        solver_stats.last_lag_sweeps = 1;
        solver_stats.last_lag_residual = sweeper.last_lag_residual();
        done = true;
      }
    }
    if (!done) {
      result = sn::source_iteration(
          xs,
          [&](const std::vector<double>& q) {
            return sn::serial_sweep(disc, quad, q);
          },
          si);
    }
  } else {
    comm::Cluster::run(opt.ranks, [&](comm::Context& ctx) {
      sweep::PlanConfig plan_config;
      plan_config.cluster_grain = opt.grain;
      plan_config.patch_priority = graph::priority_from_string(opt.priority);
      plan_config.vertex_priority = plan_config.patch_priority;
      plan_config.cycle_policy = cycle_policy;
      const auto owner =
          partition::assign_contiguous(patches.num_patches(), ctx.size());
      const auto builder = [&](const sweep::PlanConfig& pc) {
        return sweep::SweepPlan::build(ctx, mesh, patches, owner, disc, quad,
                                       pc);
      };
      std::shared_ptr<const sweep::SweepPlan> plan;
      if (opt.auto_tune) {
        sweep::AutoTuneOptions at;
        at.num_workers = opt.workers;
        const auto tuned = sweep::auto_tune(ctx, plan_config, builder, at);
        plan = tuned.plan;
        if (ctx.rank().value() == 0)
          std::printf("auto-tune: stealing %s, spin %d (%.3fs grind, %d "
                      "candidates)\n",
                      tuned.tuning.work_stealing ? "on" : "off",
                      tuned.tuning.steal_spin_rounds, tuned.best_seconds,
                      static_cast<int>(tuned.samples.size()));
      } else {
        plan = builder(plan_config);
      }
      sweep::SolveConfig solve_config;
      solve_config.engine = opt.engine == "bsp"
                                ? sweep::EngineKind::Bsp
                                : sweep::EngineKind::DataDriven;
      solve_config.num_workers = opt.workers;
      solve_config.use_coarsened_graph =
          opt.coarsened && solve_config.engine == sweep::EngineKind::DataDriven;
      solve_config.max_lag_sweeps = std::max(1, opt.lag_sweeps);
      solve_config.work_stealing = opt.steal;
      solve_config.steal_spin_rounds = opt.steal_spin;
      solve_config.scheduler_seed =
          static_cast<std::uint64_t>(opt.sched_seed);
      solve_config.overlap_source_tail = !opt.no_source_overlap;
      solve_config.trace.recorder = recorder ? &*recorder : nullptr;
      solve_config.metrics.registry = registry ? &*registry : nullptr;
      sweep::SweepSession session(ctx, plan, solve_config);
      const auto r = sn::source_iteration(xs, session.as_operator(), si);
      if (ctx.rank().value() == 0) {
        result = r;
        solver_stats = session.stats();
      }
    });
  }
  const double seconds = timer.seconds();

  if (solver_stats.cycles.any()) {
    std::printf(
        "cycles: %d direction(s) cyclic, %d SCC(s), largest %d cells, "
        "%lld feedback edge(s) lagged; last sweep: %d engine run(s), "
        "lag residual %.2e\n",
        solver_stats.cyclic_angles, solver_stats.cycles.cyclic_components,
        solver_stats.cycles.largest_component,
        static_cast<long long>(solver_stats.cycles.edges_cut),
        solver_stats.last_lag_sweeps, solver_stats.last_lag_residual);
  }

  if (recorder) {
    if (!opt.trace.empty()) {
      if (!trace::write_chrome_trace_file(*recorder, opt.trace)) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     opt.trace.c_str());
        return 1;
      }
      std::printf("wrote %s (%lld events, %lld dropped)\n",
                  opt.trace.c_str(),
                  static_cast<long long>(recorder->total_events()),
                  static_cast<long long>(recorder->dropped_events()));
    }
    if (opt.profile) {
      const trace::ProfileReport prof = trace::analyze(*recorder);
      std::printf("\n%s\n", trace::render_profile(prof).c_str());
    }
  }
  if (registry) {
    // The trace bridge folds the post-mortem per-rank breakdown into the
    // same registry, so one snapshot carries both views.
    if (recorder) metrics::fold_profile(trace::analyze(*recorder), *registry);
    metrics::write_snapshot(*registry, opt.metrics);
    std::printf("wrote %s\n", opt.metrics.c_str());
  }

  double peak = 0.0;
  double mean = 0.0;
  for (const auto phi : result.phi) {
    peak = std::max(peak, phi);
    mean += phi;
  }
  mean /= static_cast<double>(result.phi.size());
  std::printf("%s in %d iterations, %.3fs (error %.2e)\n",
              result.converged ? "converged" : "NOT converged",
              result.iterations, seconds, result.error);
  std::printf("flux: mean %.5e  peak %.5e\n", mean, peak);

  if (!opt.vtk.empty()) {
    std::vector<double> material(
        static_cast<std::size_t>(mesh.num_cells()));
    for (std::int64_t c = 0; c < mesh.num_cells(); ++c)
      material[static_cast<std::size_t>(c)] = mesh.material(CellId{c});
    mesh::write_vtk_file(opt.vtk, mesh,
                         {{"flux", &result.phi}, {"material", &material}});
    std::printf("wrote %s\n", opt.vtk.c_str());
  }
  return result.converged ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return 1;
  const Options& opt = *parsed;

  try {
    if (opt.mesh == "kobayashi") {
      const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(opt.n);
      const int pc = opt.patch_cells > 0
                         ? opt.patch_cells
                         : std::max(2, opt.n / 4) * std::max(2, opt.n / 4) *
                               std::max(2, opt.n / 4);
      const int side = std::max(2, static_cast<int>(std::cbrt(pc)));
      const partition::StructuredBlockLayout layout(m.dims(),
                                                    {side, side, side});
      const partition::CsrGraph cg = partition::cell_graph(m);
      const partition::PatchSet patches(partition::block_partition(layout),
                                        layout.num_patches(), &cg);
      const sn::MaterialTable table = sn::MaterialTable::kobayashi();
      const sn::CellXs xs = expand(table, m.materials(), m.num_cells());
      sn::BoundarySpec bc;
      bc.side(mesh::FaceDir::XLo) = opt.albedo;
      bc.side(mesh::FaceDir::YLo) = opt.albedo;
      bc.side(mesh::FaceDir::ZLo) = opt.albedo;
      const sn::StructuredDD disc(m, xs, /*negative_flux_fixup=*/true, bc);
      if (opt.k_eigenvalue) return solve_k_eigen(opt, m, disc, table, patches);
      if (opt.groups > 1)
        return solve_multigroup(opt, m, disc, table, patches);
      return solve(opt, m, disc, xs, patches);
    }
    const bool ball = opt.mesh == "ball";
    const bool reactor = opt.mesh == "reactor";
    const bool twisted = opt.mesh == "twisted";
    const bool swirled = opt.mesh == "swirled";
    if (!ball && !reactor && !twisted && !swirled) {
      std::fprintf(stderr, "unknown mesh '%s' (try --help)\n",
                   opt.mesh.c_str());
      return 1;
    }
    // twisted/swirled: cyclic-dependence meshes (cycle-breaking showcase).
    // The twisted column keeps the tuned twist/aspect and scales layers
    // with the resolution so any --n stays provably cyclic.
    const mesh::TetMesh m =
        ball      ? mesh::make_ball_mesh(opt.n, 50.0)
        : reactor ? mesh::make_reactor_mesh(opt.n, 50.0, 100.0)
        : twisted ? mesh::make_twisted_column_mesh(opt.n, 2 * opt.n, 5.0,
                                                   20.0, 4.0 * opt.n)
                  : mesh::make_swirled_ball_mesh(opt.n, 50.0);
    const int pc = opt.patch_cells > 0 ? opt.patch_cells : 500;
    const int nparts = std::max(
        2, static_cast<int>(m.num_cells() / std::max(1, pc)));
    const partition::CsrGraph cg = partition::cell_graph(m);
    const auto part = partition::partition_graph(cg, nparts);
    const partition::PatchSet patches(part, nparts, &cg);
    const sn::MaterialTable table =
        reactor ? sn::MaterialTable::reactor() : sn::MaterialTable::ball();
    const sn::CellXs xs = expand(table, m.materials(), m.num_cells());
    const sn::TetStep disc(m, xs);
    if (opt.k_eigenvalue) return solve_k_eigen(opt, m, disc, table, patches);
    if (opt.groups > 1) return solve_multigroup(opt, m, disc, table, patches);
    return solve(opt, m, disc, xs, patches);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
