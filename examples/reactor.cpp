// Reactor-core transport (the paper's JSNT-U reactor workload): a
// tetrahedralized cylinder with a multiplying-like core region and an
// outer reflector, solved as a true multigroup problem (the paper runs S4
// with 4 energy groups) on the parallel sweep solver. All four groups run
// as ONE (patch, angle, group) task system per pass: group g+1's sweep is
// injected on each patch as soon as group g's scattering source is ready
// there (group pipelining), so consecutive groups' sweeps overlap instead
// of barrier-separating. The mesh, task graphs and per-group kernels are
// built once and reused across every pass.
//
//   build/examples/reactor [n]   (default n = 12)

#include <cstdio>
#include <cstdlib>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/multigroup.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "sweep/session.hpp"

int main(int argc, char** argv) {
  using namespace jsweep;
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  constexpr int kGroups = 4;

  const mesh::TetMesh m = mesh::make_reactor_mesh(n, 50.0, 100.0);
  std::printf("reactor mesh: %lld tets, %d energy groups\n",
              static_cast<long long>(m.num_cells()), kGroups);

  const int num_patches =
      std::max(2, static_cast<int>(m.num_cells() / 500));
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, num_patches);
  const partition::PatchSet patches(part, num_patches, &cg);

  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);

  // Group-wise cross sections: a downscatter cascade over the reactor
  // material table (harder groups more absorbing, fission-like source in
  // the fastest group).
  const sn::MultigroupXs mxs = sn::MultigroupXs::cascade(
      sn::MaterialTable::reactor(), m.materials(), m.num_cells(), kGroups);

  comm::Cluster::run(4, [&](comm::Context& ctx) {
    // One plan for the whole multigroup system: the task graphs are
    // group-independent and shared; only the kernels differ per group.
    const sn::TetStep disc(m, mxs.group_view(0));
    sweep::PlanConfig plan_config;
    plan_config.cluster_grain = 64;
    plan_config.multigroup = &mxs;
    plan_config.group_pipelining = true;
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    const auto plan = sweep::SweepPlan::build(ctx, m, patches, owner, disc,
                                              quad, plan_config);
    sweep::SolveConfig solve_config;
    solve_config.num_workers = 2;
    sweep::SweepSession session(ctx, plan, solve_config);

    WallTimer timer;
    const sn::MultigroupResult result =
        session.solve_multigroup({{1e-5, 200, false}});
    const double seconds = timer.seconds();

    if (ctx.rank().value() == 0) {
      std::printf("%s in %d pass(es) (%lld group sweeps), %.2fs\n",
                  result.converged ? "converged" : "NOT converged",
                  result.pass_iterations,
                  static_cast<long long>(result.total_sweeps), seconds);
      Table table({"group", "core mean flux", "peak flux"});
      for (int g = 0; g < kGroups; ++g) {
        const auto& phi = result.phi[static_cast<std::size_t>(g)];
        double core_sum = 0.0;
        double peak = 0.0;
        std::int64_t core_cells = 0;
        for (std::int64_t c = 0; c < m.num_cells(); ++c) {
          peak = std::max(peak, phi[static_cast<std::size_t>(c)]);
          if (m.material(CellId{c}) == mesh::kMatCore) {
            core_sum += phi[static_cast<std::size_t>(c)];
            ++core_cells;
          }
        }
        table.add_row({Table::num(static_cast<std::int64_t>(g)),
                       Table::num(core_sum / core_cells, 5),
                       Table::num(peak, 5)});
      }
      std::printf("%s", table.str().c_str());
    }
  });
  return 0;
}
