// Reactor-core transport (the paper's JSNT-U reactor workload): a
// tetrahedralized cylinder with a multiplying-like core region and an
// outer reflector, solved for several independent energy groups (the paper
// runs S4 with 4 groups). Groups are one-group solves with scaled cross
// sections, swept back-to-back over the same patch task graphs — the mesh
// and DAGs are built once, exactly the reuse the coarsened graph targets.
//
//   build/examples/reactor [n]   (default n = 12)

#include <cstdio>
#include <cstdlib>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/source_iteration.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "sweep/solver.hpp"

int main(int argc, char** argv) {
  using namespace jsweep;
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  constexpr int kGroups = 4;

  const mesh::TetMesh m = mesh::make_reactor_mesh(n, 50.0, 100.0);
  std::printf("reactor mesh: %lld tets\n",
              static_cast<long long>(m.num_cells()));

  const int num_patches =
      std::max(2, static_cast<int>(m.num_cells() / 500));
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, num_patches);
  const partition::PatchSet patches(part, num_patches, &cg);

  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);

  // Per-group cross sections: harder groups are more absorbing.
  std::vector<sn::CellXs> group_xs;
  for (int g = 0; g < kGroups; ++g) {
    sn::CellXs xs =
        expand(sn::MaterialTable::reactor(), m.materials(), m.num_cells());
    const double scale = 1.0 + 0.5 * g;
    for (auto& s : xs.sigma_t) s *= scale;
    for (auto& s : xs.sigma_s) s *= scale * 0.9;
    group_xs.push_back(std::move(xs));
  }

  comm::Cluster::run(4, [&](comm::Context& ctx) {
    // One solver per group shares nothing but the mesh; building them up
    // front mirrors a multigroup solver's setup phase. The first group's
    // discretization keeps the task graphs hot for the rest.
    Table table({"group", "iterations", "sweep(s)", "core mean flux"});
    for (int g = 0; g < kGroups; ++g) {
      const sn::TetStep disc(m, group_xs[static_cast<std::size_t>(g)]);
      sweep::SolverConfig config;
      config.num_workers = 2;
      config.cluster_grain = 64;
      config.use_coarsened_graph = true;
      const auto owner =
          partition::assign_contiguous(patches.num_patches(), ctx.size());
      sweep::SweepSolver solver(ctx, m, patches, owner, disc, quad, config);
      WallTimer timer;
      const auto result = sn::source_iteration(
          group_xs[static_cast<std::size_t>(g)], solver.as_operator(),
          {1e-5, 200, false});
      if (ctx.rank().value() == 0) {
        double core_sum = 0.0;
        std::int64_t core_cells = 0;
        for (std::int64_t c = 0; c < m.num_cells(); ++c) {
          if (m.material(CellId{c}) == mesh::kMatCore) {
            core_sum += result.phi[static_cast<std::size_t>(c)];
            ++core_cells;
          }
        }
        table.add_row({Table::num(static_cast<std::int64_t>(g)),
                       Table::num(static_cast<std::int64_t>(
                           result.iterations)),
                       Table::num(timer.seconds(), 2),
                       Table::num(core_sum / core_cells, 5)});
      }
    }
    if (ctx.rank().value() == 0) std::printf("%s", table.str().c_str());
  });
  return 0;
}
