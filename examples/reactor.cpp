// Reactor-core criticality (the paper's JSNT-U reactor workload, upgraded
// from a fixed-source solve to the real thing): a tetrahedralized cylinder
// with a fissile core and an outer reflector, solved for its k-eigenvalue
// by power iteration. Every outer iteration issues one full two-group
// transport solve against the SAME cached SweepPlan — the mesh, task
// graphs and per-group kernels are built once and reused across all
// outers, which is exactly the repeated-sweep workload the plan/session
// split exists for. Groups run as ONE (patch, angle, group) task system
// per pass (group pipelining).
//
//   build/examples/reactor [n]   (default n = 6)

#include <cstdio>
#include <cstdlib>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/fission.hpp"
#include "sn/multigroup.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "sweep/eigen.hpp"

int main(int argc, char** argv) {
  using namespace jsweep;
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  constexpr int kGroups = 2;

  const mesh::TetMesh m = mesh::make_reactor_mesh(n, 50.0, 100.0);
  std::printf("reactor mesh: %lld tets, %d energy groups, k-eigenvalue\n",
              static_cast<long long>(m.num_cells()), kGroups);

  const int num_patches =
      std::max(2, static_cast<int>(m.num_cells() / 500));
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, num_patches);
  const partition::PatchSet patches(part, num_patches, &cg);

  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);

  // Two-group reactor physics: a fast group that downscatters into a
  // thermal group, thermal fission in the core, a scattering reflector.
  // Fission neutrons are born fast (χ = (1, 0)).
  const std::int64_t cells = m.num_cells();
  sn::MultigroupXs xs_template(kGroups, cells);
  sn::FissionXs fission(kGroups, cells);
  fission.chi(0) = 1.0;
  for (std::int64_t c = 0; c < cells; ++c) {
    const bool core = m.material(CellId{c}) == mesh::kMatCore;
    xs_template.sigma_t(0, c) = core ? 0.6 : 0.5;
    xs_template.sigma_t(1, c) = core ? 1.0 : 1.2;
    xs_template.sigma_s(0, 0, c) = core ? 0.2 : 0.22;
    xs_template.sigma_s(0, 1, c) = 0.25;  // downscatter
    xs_template.sigma_s(1, 1, c) = core ? 0.6 : 0.9;
    if (core) {
      fission.nu_sigma_f(0, c) = 0.08;
      fission.nu_sigma_f(1, c) = 0.5;
    }
  }

  sweep::EigenOptions options;
  options.max_outer_iterations = 200;
  options.k_tolerance = 1e-6;
  options.fission_tolerance = 1e-4;
  options.multigroup.inner = {1e-6, 100, false};

  comm::Cluster::run(4, [&](comm::Context& ctx) {
    // One plan for the whole run: the task graphs are group- and
    // outer-independent; only the staged fission source changes. Each
    // rank thread gets its own writable copy of the cross sections — the
    // driver rewrites the group sources between outers.
    sn::MultigroupXs xs = xs_template;
    const sn::TetStep disc(m, xs.group_view(0));
    sweep::PlanConfig plan_config;
    plan_config.cluster_grain = 64;
    plan_config.multigroup = &xs;
    plan_config.group_pipelining = true;
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    const auto plan = sweep::SweepPlan::build(ctx, m, patches, owner, disc,
                                              quad, plan_config);
    sweep::SolveConfig solve_config;
    solve_config.num_workers = 2;

    WallTimer timer;
    const sweep::EigenResult result = sweep::solve_k_eigenvalue(
        ctx, plan, xs, fission, options, solve_config);
    const double seconds = timer.seconds();

    if (ctx.rank().value() == 0) {
      std::printf("%s: k-eff = %.7f in %d outer(s) (%lld group sweeps, "
                  "%lld task rebuilds), %.2fs\n",
                  result.converged ? "converged" : "NOT converged", result.k,
                  result.outer_iterations,
                  static_cast<long long>(result.stats.transport_sweeps),
                  static_cast<long long>(result.stats.task_data_built),
                  seconds);
      Table table({"group", "core mean flux", "peak flux"});
      for (int g = 0; g < kGroups; ++g) {
        const auto& phi = result.phi[static_cast<std::size_t>(g)];
        double core_sum = 0.0;
        double peak = 0.0;
        std::int64_t core_cells = 0;
        for (std::int64_t c = 0; c < cells; ++c) {
          peak = std::max(peak, phi[static_cast<std::size_t>(c)]);
          if (m.material(CellId{c}) == mesh::kMatCore) {
            core_sum += phi[static_cast<std::size_t>(c)];
            ++core_cells;
          }
        }
        table.add_row({Table::num(static_cast<std::int64_t>(g)),
                       Table::num(core_sum / core_cells, 5),
                       Table::num(peak, 5)});
      }
      std::printf("%s", table.str().c_str());
    }
  });
  return 0;
}
