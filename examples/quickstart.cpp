// Quickstart: solve a small Sn transport problem with the JSweep
// patch-centric data-driven engine and print a summary.
//
//   build/examples/quickstart
//
// Walks through the full pipeline: mesh → patches → discretization →
// sweep plan (built once) → session → source iteration.

#include <cstdio>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sn/source_iteration.hpp"
#include "sweep/session.hpp"
#include "support/table.hpp"

int main() {
  using namespace jsweep;

  // 1. A 16³ Kobayashi-style mesh (source cube + void duct + shield).
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(16);

  // 2. Decompose into 4³-cell patches (JAxMIN style).
  const partition::StructuredBlockLayout layout(m.dims(), {4, 4, 4});
  const partition::CsrGraph cell_graph = partition::cell_graph(m);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &cell_graph);

  // 3. Physics: one-group cross sections + S4 ordinates + DD kernel.
  const sn::CellXs xs =
      expand(sn::MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);

  // 4. Run an in-process "cluster" of 4 ranks, each with 2 workers.
  std::printf("JSweep quickstart: %lld cells, %d patches, %d angles\n",
              static_cast<long long>(m.num_cells()), patches.num_patches(),
              quad.num_angles());

  comm::Cluster::run(4, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());

    // Build the immutable plan once (task graphs, face slots, priorities),
    // then solve against it with a lightweight session. Reuse the plan for
    // any number of sessions — rebuild only when the mesh changes.
    sweep::PlanConfig plan_config;
    plan_config.cluster_grain = 32;
    const auto plan = sweep::SweepPlan::build(ctx, m, patches, owner, disc,
                                              quad, plan_config);

    sweep::SolveConfig solve_config;
    solve_config.num_workers = 2;
    solve_config.use_coarsened_graph = true;  // iterations 2+ replay on CG
    sweep::SweepSession session(ctx, plan, solve_config);
    const auto result = sn::source_iteration(xs, session.as_operator(),
                                             {1e-6, 100, false});

    if (ctx.rank().value() == 0) {
      std::printf("converged: %s in %d iterations (error %.2e)\n",
                  result.converged ? "yes" : "no", result.iterations,
                  result.error);
      double total = 0.0;
      double peak = 0.0;
      for (const auto phi : result.phi) {
        total += phi;
        peak = std::max(peak, phi);
      }
      std::printf("scalar flux: mean %.4e, peak %.4e\n",
                  total / static_cast<double>(result.phi.size()), peak);
      const auto& st = session.stats().engine;
      std::printf(
          "last sweep: %lld program executions, %lld local + %lld remote "
          "streams, %lld wire messages\n",
          static_cast<long long>(st.executions),
          static_cast<long long>(st.streams_local),
          static_cast<long long>(st.streams_remote),
          static_cast<long long>(st.messages_sent));
    }
  });
  return 0;
}
