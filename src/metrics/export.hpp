#pragma once

/// \file export.hpp
/// Exposition of a metrics::Registry snapshot in the two formats the
/// project's tooling consumes: Prometheus text (for a scrape endpoint or a
/// node-exporter textfile collector) and a JSON snapshot following the
/// BENCH_*.json conventions (%.9g numbers, non-finite mapped to null) so
/// the same python that gates bench artifacts can gate metrics in CI.

#include <string>

namespace jsweep::metrics {

class Registry;

/// The registry in Prometheus text exposition format: # HELP / # TYPE
/// headers per family, one line per series, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`.
[[nodiscard]] std::string to_prometheus(const Registry& registry);

/// The registry as a JSON document:
/// `{"schema": "jsweep-metrics-v1", "metrics": [{name, kind, help,
/// series: [{labels, ...values}]}]}`. Counter series carry `value`; gauge
/// series `value`; histogram series `count`, `sum`, `max` and a `buckets`
/// array of `{le, count}` (cumulative, `le: null` = +Inf).
[[nodiscard]] std::string to_json(const Registry& registry);

/// Write a snapshot to `path`: JSON when the path ends in ".json",
/// Prometheus text when it ends in ".prom" (both case-insensitive).
/// Throws CheckError for any other extension (or none) and when the file
/// cannot be written.
void write_snapshot(const Registry& registry, const std::string& path);

}  // namespace jsweep::metrics
