#pragma once

/// \file trace_bridge.hpp
/// Trace → metrics bridge: fold a post-mortem trace::ProfileReport's
/// per-rank breakdowns into a registry as `jsweep_trace_*` gauges, so the
/// two observability layers publish the same quantities side by side and
/// can cross-check each other (the live `jsweep_engine_*` busy/idle gauges
/// against the reconstructed trace spans — see test_metrics.cpp).

namespace jsweep::trace {
struct ProfileReport;
}  // namespace jsweep::trace

namespace jsweep::metrics {

class Registry;

/// Publish `report`'s per-rank breakdowns into `registry`: for each rank,
/// gauges `jsweep_trace_busy_seconds`, `jsweep_trace_idle_seconds`,
/// `jsweep_trace_route_seconds`, `jsweep_trace_pack_seconds`,
/// `jsweep_trace_collective_seconds` and `jsweep_trace_executions`, each
/// labelled {rank="<r>"}. Values are set (not added): re-folding a newer
/// report overwrites the previous one.
void fold_profile(const trace::ProfileReport& report, Registry& registry);

}  // namespace jsweep::metrics
