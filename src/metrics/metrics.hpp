#pragma once

/// \file metrics.hpp
/// Live metrics: named counters, gauges and fixed-bucket histograms behind
/// a thread-safe Registry.
///
/// Where `jsweep::trace` answers "why was that run slow" after the fact,
/// this registry answers "what is the service doing right now": engines,
/// the group pipeline, sessions and the sweep service publish always-on
/// counters (tasks executed, streams routed), gauges (queue depth, busy/
/// idle seconds, lane occupancy) and histograms (sweep wall time,
/// activation latency, request latency) that a monitoring scrape can read
/// mid-flight. Exposition lives in export.hpp (Prometheus text + JSON
/// snapshot); trace_bridge.hpp folds post-mortem trace breakdowns into the
/// same registry so the two layers cross-check.
///
/// Cost model, mirroring the trace recorder's null-pointer pattern: every
/// instrumented component holds a `Registry*` that is null when metrics
/// are off, so the hot path pays one pointer check. With a registry
/// installed, Counter::inc and Histogram::observe are a relaxed atomic add
/// into a per-shard cache line (pass the worker id as the shard to avoid
/// false sharing) and never allocate; Gauge updates are one CAS loop.
/// Instrument creation (Registry::counter etc.) takes a mutex and may
/// allocate — do it once at setup and cache the returned pointer, which
/// stays valid for the registry's lifetime.
///
/// Threading contract: creation calls are fully thread-safe; the same
/// (name, labels) pair always yields the same instrument. Updates from any
/// number of threads are safe. Reads (value()/snapshot()) are safe
/// concurrently with updates and observe each shard atomically (a snapshot
/// taken mid-update may split a logically simultaneous counter/histogram
/// pair — totals are exact once writers quiesce).

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/timer.hpp"

namespace jsweep::metrics {

/// Label set of one time series: (key, value) pairs, e.g.
/// {{"rank", "0"}, {"group", "2"}}. Order-insensitive for identity (the
/// registry canonicalizes by sorting on key).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Instrument kinds a registry can hold (one kind per metric name).
enum class Kind : std::uint8_t {
  kCounter,    ///< monotonically increasing integer
  kGauge,      ///< arbitrary double, set or adjusted
  kHistogram,  ///< fixed upper-bound buckets + sum + count + max
};

/// Exposition name of a kind ("counter" / "gauge" / "histogram").
[[nodiscard]] const char* to_string(Kind kind);

/// Number of cache-line-separated shards per counter/histogram; updates
/// from up to this many concurrent writers never contend on a line.
inline constexpr int kShards = 8;

namespace detail {

/// Lock-free add on an atomic double (fetch_add on doubles is C++20; this
/// CAS loop keeps the module at the repo's language level).
inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

/// Lock-free max on an atomic double.
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic integer counter, sharded so concurrent writers touch
/// different cache lines. Create via Registry::counter.
class Counter {
 public:
  /// Add `n` (>= 0) on shard `shard` (any int; typically the worker id).
  /// Relaxed atomic add — wait-free, allocation-free.
  void inc(std::int64_t n = 1, int shard = 0) {
    shards_[static_cast<std::size_t>(shard) & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Current total across all shards.
  [[nodiscard]] std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Double-valued gauge (queue depth, busy seconds, occupancy). Create via
/// Registry::gauge.
class Gauge {
 public:
  /// Overwrite the value (last writer wins).
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Adjust by `d` (CAS loop; safe from any number of threads).
  void add(double d) { detail::atomic_add(v_, d); }
  /// Current value.
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: an observation v
/// lands in the first bucket whose upper bound satisfies v <= bound, or in
/// the implicit +Inf overflow bucket. Bucket counts and the running sum
/// are sharded like Counter; the max is a single CAS-updated cell. Create
/// via Registry::histogram.
class Histogram {
 public:
  /// `bounds` are the finite upper bounds, strictly increasing (may be
  /// empty: everything lands in +Inf). Fixed for the histogram's lifetime.
  explicit Histogram(std::vector<double> bounds);

  /// Record one observation on shard `shard`. Allocation-free: a relaxed
  /// bucket increment plus two CAS updates (sum, max).
  void observe(double v, int shard = 0);

  /// The finite upper bounds (the +Inf bucket is implicit).
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (NOT cumulative), one per bound plus the final
  /// +Inf overflow entry.
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;
  /// Total observations.
  [[nodiscard]] std::int64_t count() const;
  /// Sum of all observations.
  [[nodiscard]] double sum() const;
  /// Largest observation so far (0 before the first observation).
  [[nodiscard]] double max() const;

 private:
  struct alignas(64) Shard {
    /// One atomic per bucket (bounds + overflow), preallocated.
    std::vector<std::atomic<std::int64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
  std::atomic<double> max_{0.0};
};

/// Full state of one histogram series at snapshot time.
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< finite upper bounds
  std::vector<std::int64_t> counts;   ///< per bucket (+Inf last), raw
  std::int64_t count = 0;             ///< total observations
  double sum = 0.0;                   ///< sum of observations
  double max = 0.0;                   ///< largest observation
};

/// One (labels → value) time series of a family at snapshot time. Which
/// value field is meaningful follows the family's Kind.
struct SeriesSnapshot {
  Labels labels;                    ///< canonical (key-sorted) label set
  std::int64_t counter_value = 0;   ///< Kind::kCounter
  double gauge_value = 0.0;         ///< Kind::kGauge
  HistogramSnapshot histogram;      ///< Kind::kHistogram
};

/// All series of one metric name at snapshot time.
struct FamilySnapshot {
  std::string name;                    ///< metric name
  std::string help;                    ///< one-line description
  Kind kind = Kind::kCounter;          ///< instrument kind
  std::vector<SeriesSnapshot> series;  ///< creation order
};

/// The instrument registry (see \ref metrics.hpp). One per monitored
/// scope — typically one shared by every rank of an in-process cluster,
/// with a `rank` label telling the series apart; its steady-clock epoch
/// makes now_seconds() comparable across ranks.
class Registry {
 public:
  /// Fixes the registry's steady-clock epoch.
  Registry();

  Registry(const Registry&) = delete;             ///< non-copyable
  Registry& operator=(const Registry&) = delete;  ///< non-copyable

  /// The counter `name` with `labels`, created on first use. Repeat calls
  /// with the same (name, labels) return the same instrument; a name
  /// already registered with a different kind throws. The returned
  /// reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  /// The gauge `name` with `labels` (same contract as counter()).
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  /// The histogram `name` with `labels` and finite upper `bounds` (same
  /// contract as counter(); all series of one name share one bound set —
  /// differing bounds on a repeat call throw).
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Seconds since the registry's construction (steady clock; comparable
  /// across every thread and in-process rank sharing this registry).
  [[nodiscard]] double now_seconds() const {
    return std::chrono::duration<double>(WallTimer::clock::now() - epoch_)
        .count();
  }

  /// `count` bounds start, start*factor, start*factor^2, ... (the usual
  /// latency-histogram ladder). Requires finite start > 0, finite
  /// factor > 1, count >= 1; anything else throws CheckError.
  [[nodiscard]] static std::vector<double> exponential_buckets(double start,
                                                               double factor,
                                                               int count);

  /// Point-in-time copy of every family and series, in creation order.
  /// Safe concurrently with updates (see the threading contract above).
  [[nodiscard]] std::vector<FamilySnapshot> snapshot() const;

 private:
  struct Series {
    Labels labels;  ///< canonical (key-sorted)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<double> bounds;  ///< histogram families only
    std::vector<std::unique_ptr<Series>> series;
  };

  Family& family(const std::string& name, const std::string& help, Kind kind);
  Series& series(Family& fam, Labels&& labels);

  WallTimer::clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  ///< creation order
};

}  // namespace jsweep::metrics
