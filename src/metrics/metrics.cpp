#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace jsweep::metrics {

namespace {

/// Metric and label names follow the Prometheus grammar so exposition
/// never needs escaping: [a-zA-Z_][a-zA-Z0-9_]*.
bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || c == '_' || (digit && i > 0))) return false;
  }
  return true;
}

/// Canonical label order: sorted by key (identity is order-insensitive).
Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    JSWEEP_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly increasing");
  for (auto& s : shards_)
    s.counts = std::vector<std::atomic<std::int64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v, int shard) {
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[static_cast<std::size_t>(shard) & (kShards - 1)];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(s.sum, v);
  detail::atomic_max(max_, v);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : shards_)
    for (std::size_t b = 0; b < out.size(); ++b)
      out[b] += s.counts[b].load(std::memory_order_relaxed);
  return out;
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (const auto& s : shards_)
    for (const auto& c : s.counts) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : shards_)
    total += s.sum.load(std::memory_order_relaxed);
  return total;
}

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

Registry::Registry() : epoch_(WallTimer::clock::now()) {}

Registry::Family& Registry::family(const std::string& name,
                                   const std::string& help, Kind kind) {
  JSWEEP_CHECK_MSG(valid_name(name), "bad metric name \"" << name << '"');
  for (auto& fam : families_) {
    if (fam->name != name) continue;
    JSWEEP_CHECK_MSG(fam->kind == kind,
                     "metric " << name << " is a " << to_string(fam->kind)
                               << ", requested as " << to_string(kind));
    return *fam;
  }
  auto fam = std::make_unique<Family>();
  fam->name = name;
  fam->help = help;
  fam->kind = kind;
  families_.push_back(std::move(fam));
  return *families_.back();
}

Registry::Series& Registry::series(Family& fam, Labels&& labels) {
  for (const auto& [key, value] : labels)
    JSWEEP_CHECK_MSG(valid_name(key),
                     "bad label name \"" << key << "\" on " << fam.name);
  Labels canon = canonical(std::move(labels));
  for (auto& s : fam.series)
    if (s->labels == canon) return *s;
  auto s = std::make_unique<Series>();
  s->labels = std::move(canon);
  fam.series.push_back(std::move(s));
  return *fam.series.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, Kind::kCounter), std::move(labels));
  if (s.counter == nullptr) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, Kind::kGauge), std::move(labels));
  if (s.gauge == nullptr) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, help, Kind::kHistogram);
  if (fam.series.empty()) {
    fam.bounds = bounds;
  } else {
    JSWEEP_CHECK_MSG(fam.bounds == bounds,
                     "histogram " << name
                                  << " re-registered with different bounds");
  }
  Series& s = series(fam, std::move(labels));
  if (s.histogram == nullptr)
    s.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *s.histogram;
}

std::vector<double> Registry::exponential_buckets(double start, double factor,
                                                  int count) {
  JSWEEP_CHECK_MSG(std::isfinite(start) && std::isfinite(factor) &&
                       start > 0.0 && factor > 1.0 && count >= 1,
                   "exponential_buckets(finite start > 0, finite factor > 1, "
                   "count >= 1); got start="
                       << start << " factor=" << factor << " count=" << count);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<FamilySnapshot> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& fam : families_) {
    FamilySnapshot fs;
    fs.name = fam->name;
    fs.help = fam->help;
    fs.kind = fam->kind;
    for (const auto& s : fam->series) {
      SeriesSnapshot ss;
      ss.labels = s->labels;
      switch (fam->kind) {
        case Kind::kCounter:
          ss.counter_value = s->counter->value();
          break;
        case Kind::kGauge:
          ss.gauge_value = s->gauge->value();
          break;
        case Kind::kHistogram:
          ss.histogram.bounds = s->histogram->bounds();
          ss.histogram.counts = s->histogram->bucket_counts();
          ss.histogram.count = 0;
          for (const auto c : ss.histogram.counts) ss.histogram.count += c;
          ss.histogram.sum = s->histogram->sum();
          ss.histogram.max = s->histogram->max();
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

}  // namespace jsweep::metrics
