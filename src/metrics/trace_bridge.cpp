#include "metrics/trace_bridge.hpp"

#include <string>

#include "metrics/metrics.hpp"
#include "trace/critical_path.hpp"

namespace jsweep::metrics {

void fold_profile(const trace::ProfileReport& report, Registry& registry) {
  for (const trace::RankBreakdown& rb : report.ranks) {
    const Labels labels = {{"rank", std::to_string(rb.rank)}};
    registry
        .gauge("jsweep_trace_busy_seconds",
               "worker execution seconds reconstructed from the trace",
               labels)
        .set(rb.busy_seconds);
    registry
        .gauge("jsweep_trace_idle_seconds",
               "worker + master idle seconds reconstructed from the trace",
               labels)
        .set(rb.idle_seconds);
    registry
        .gauge("jsweep_trace_route_seconds",
               "master routing seconds reconstructed from the trace", labels)
        .set(rb.route_seconds);
    registry
        .gauge("jsweep_trace_pack_seconds",
               "master pack/unpack seconds reconstructed from the trace",
               labels)
        .set(rb.pack_seconds);
    registry
        .gauge("jsweep_trace_collective_seconds",
               "collective seconds reconstructed from the trace", labels)
        .set(rb.collective_seconds);
    registry
        .gauge("jsweep_trace_executions",
               "patch-program executions reconstructed from the trace",
               labels)
        .set(static_cast<double>(rb.executions));
  }
}

}  // namespace jsweep::metrics
