#include "metrics/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <vector>

#include "metrics/metrics.hpp"
#include "support/check.hpp"

namespace jsweep::metrics {

namespace {

/// Shortest round-trippable-enough rendering, matching the BENCH_*.json
/// convention (%.9g).
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// JSON has no inf/nan literals; map non-finite values to null.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return num(v);
}

/// Escape a string for a Prometheus label value or a JSON string.
std::string escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// `{k="v",...}` (empty string for no labels); `extra` appends one more
/// pair (the histogram `le`).
std::string prom_labels(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  std::string out;
  for (const auto& [key, value] : labels) {
    out += out.empty() ? "{" : ",";
    out += key + "=\"" + escape(value) + "\"";
  }
  if (!extra_key.empty()) {
    out += out.empty() ? "{" : ",";
    out += extra_key + "=\"" + escape(extra_value) + "\"";
  }
  if (!out.empty()) out += "}";
  return out;
}

/// `{"k": "v", ...}` for the JSON series' label object. Built with plain
/// appends (no operator+ chains) to sidestep gcc 12's -Wrestrict false
/// positive on `const char* + std::string&&`.
std::string json_labels(const Labels& labels) {
  std::string out;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += escape(labels[i].first);
    out += "\": \"";
    out += escape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  for (const FamilySnapshot& fam : registry.snapshot()) {
    out += "# HELP " + fam.name + " " + escape(fam.help) + "\n";
    out += "# TYPE " + fam.name + " " + to_string(fam.kind) + "\n";
    for (const SeriesSnapshot& s : fam.series) {
      switch (fam.kind) {
        case Kind::kCounter:
          out += fam.name + prom_labels(s.labels) + " " +
                 std::to_string(s.counter_value) + "\n";
          break;
        case Kind::kGauge:
          out += fam.name + prom_labels(s.labels) + " " + num(s.gauge_value) +
                 "\n";
          break;
        case Kind::kHistogram: {
          std::int64_t cumulative = 0;
          for (std::size_t b = 0; b < s.histogram.counts.size(); ++b) {
            cumulative += s.histogram.counts[b];
            const std::string le = b < s.histogram.bounds.size()
                                       ? num(s.histogram.bounds[b])
                                       : "+Inf";
            out += fam.name + "_bucket" + prom_labels(s.labels, "le", le) +
                   " " + std::to_string(cumulative) + "\n";
          }
          out += fam.name + "_sum" + prom_labels(s.labels) + " " +
                 num(s.histogram.sum) + "\n";
          out += fam.name + "_count" + prom_labels(s.labels) + " " +
                 std::to_string(s.histogram.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string to_json(const Registry& registry) {
  std::string out = "{\n  \"schema\": \"jsweep-metrics-v1\",\n"
                    "  \"metrics\": [";
  const std::vector<FamilySnapshot> families = registry.snapshot();
  for (std::size_t f = 0; f < families.size(); ++f) {
    const FamilySnapshot& fam = families[f];
    out += std::string(f == 0 ? "" : ",") + "\n    {\"name\": \"" +
           escape(fam.name) + "\", \"kind\": \"" + to_string(fam.kind) +
           "\", \"help\": \"" + escape(fam.help) + "\", \"series\": [";
    for (std::size_t i = 0; i < fam.series.size(); ++i) {
      const SeriesSnapshot& s = fam.series[i];
      out += std::string(i == 0 ? "" : ",") + "\n      {\"labels\": " +
             json_labels(s.labels) + ", ";
      switch (fam.kind) {
        case Kind::kCounter:
          out += "\"value\": " + std::to_string(s.counter_value);
          break;
        case Kind::kGauge:
          out += "\"value\": " + json_num(s.gauge_value);
          break;
        case Kind::kHistogram: {
          out += "\"count\": " + std::to_string(s.histogram.count) +
                 ", \"sum\": " + json_num(s.histogram.sum) +
                 ", \"max\": " + json_num(s.histogram.max) +
                 ", \"buckets\": [";
          std::int64_t cumulative = 0;
          for (std::size_t b = 0; b < s.histogram.counts.size(); ++b) {
            cumulative += s.histogram.counts[b];
            const std::string le = b < s.histogram.bounds.size()
                                       ? json_num(s.histogram.bounds[b])
                                       : "null";
            out += std::string(b == 0 ? "" : ", ") + "{\"le\": " + le +
                   ", \"count\": " + std::to_string(cumulative) + "}";
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
    out += fam.series.empty() ? "]}" : "\n    ]}";
  }
  out += families.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

namespace {

/// Lower-cased extension of `path` (text after the last '.', '.' included),
/// or "" when the final path component has no dot.
std::string lower_extension(const std::string& path) {
  const std::size_t dot = path.find_last_of('.');
  const std::size_t sep = path.find_last_of('/');
  if (dot == std::string::npos || (sep != std::string::npos && dot < sep)) {
    return {};
  }
  std::string ext = path.substr(dot);
  for (char& c : ext) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return ext;
}

}  // namespace

void write_snapshot(const Registry& registry, const std::string& path) {
  const std::string ext = lower_extension(path);
  JSWEEP_CHECK_MSG(ext == ".json" || ext == ".prom",
                   "metrics snapshot path "
                       << path << " has unknown extension \""
                       << (ext.empty() ? "<none>" : ext)
                       << "\"; use .json (JSON) or .prom (Prometheus text)");
  const std::string body =
      ext == ".json" ? to_json(registry) : to_prometheus(registry);
  std::FILE* f = std::fopen(path.c_str(), "w");
  JSWEEP_CHECK_MSG(f != nullptr, "cannot write metrics snapshot " << path);
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  JSWEEP_CHECK_MSG(written == body.size(),
                   "short write of metrics snapshot " << path);
}

}  // namespace jsweep::metrics
