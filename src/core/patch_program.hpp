#pragma once

/// \file patch_program.hpp
/// The patch-program interface (Fig. 6 / Alg. 1 of the paper): data-driven
/// logic on one (patch, task) pair, factored into five primitive
/// functions. Implementations must be fully reentrant — compute() is called
/// many times, each consuming whatever inputs have arrived so far (partial
/// computation, Sec. III-A1).

#include <cstdint>
#include <memory>
#include <optional>

#include "core/stream.hpp"
#include "support/ids.hpp"

namespace jsweep::core {

/// One data-driven program on a (patch, task) pair (see
/// \ref patch_program.hpp): the engine drives it through
/// init → {input* → compute → output*}* → vote_to_halt.
class PatchProgram {
 public:
  /// Bind the program to its engine address (patch, task tag).
  PatchProgram(PatchId patch, TaskTag task) : key_{patch, task} {}
  virtual ~PatchProgram() = default;  ///< virtual: engines own programs

  PatchProgram(const PatchProgram&) = delete;             ///< non-copyable
  PatchProgram& operator=(const PatchProgram&) = delete;  ///< non-copyable

  /// The engine address this program is registered under.
  [[nodiscard]] const ProgramKey& key() const { return key_; }

  /// Initialize local context. Called exactly once, before the first
  /// compute().
  virtual void init() = 0;

  /// Consume one incoming stream. Called zero or more times before each
  /// compute().
  virtual void input(const Stream& s) = 0;

  /// Perform (partial) computation with whatever is currently ready.
  virtual void compute() = 0;

  /// Fetch the next pending outgoing stream, or nullopt when drained.
  /// Called repeatedly after compute() until it returns nullopt.
  virtual std::optional<Stream> output() = 0;

  /// True when the program has no runnable work left; it becomes inactive
  /// until the next stream arrives (state machine of Fig. 7).
  virtual bool vote_to_halt() = 0;

  /// Remaining known work units (e.g., unswept (cell, angle) vertices).
  /// Drives the known-workload termination fast path; programs whose
  /// workload is not known in advance (e.g., particle tracing) return 0 and
  /// the engine must use Safra termination.
  [[nodiscard]] virtual std::int64_t remaining_work() const = 0;

  /// Total known work units this program will retire over the whole run
  /// (the workload "committed" to the progress tracker, Sec. III-B).
  /// Return 0 for unknown-workload programs (then use Safra termination).
  [[nodiscard]] virtual std::int64_t total_work() const { return 0; }

 private:
  ProgramKey key_;
};

}  // namespace jsweep::core
