#include "core/stream.hpp"

namespace jsweep::core {

namespace {

struct WireKey {
  std::int32_t patch;
  std::int32_t task;
};

}  // namespace

comm::Bytes pack_streams(const std::vector<Stream>& streams) {
  std::size_t bytes = sizeof(std::uint32_t);
  for (const auto& s : streams)
    bytes += 4 * sizeof(WireKey) / 2 + sizeof(double) +
             sizeof(std::uint64_t) + s.data.size();
  comm::ByteWriter w(bytes);
  w.write(static_cast<std::uint32_t>(streams.size()));
  for (const auto& s : streams) {
    w.write(WireKey{s.src.patch.value(), s.src.task.value()});
    w.write(WireKey{s.dst.patch.value(), s.dst.task.value()});
    w.write(s.priority);
    w.write_vector(s.data);
  }
  return w.take();
}

std::vector<Stream> unpack_streams(const comm::Bytes& payload) {
  comm::ByteReader r(payload);
  const auto count = r.read<std::uint32_t>();
  std::vector<Stream> streams;
  streams.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Stream s;
    const auto src = r.read<WireKey>();
    const auto dst = r.read<WireKey>();
    s.src = {PatchId{src.patch}, TaskTag{src.task}};
    s.dst = {PatchId{dst.patch}, TaskTag{dst.task}};
    s.priority = r.read<double>();
    s.data = r.read_vector<std::byte>();
    streams.push_back(std::move(s));
  }
  return streams;
}

}  // namespace jsweep::core
