#pragma once

/// \file stream.hpp
/// The stream abstraction (Fig. 6 of the paper): the unit of communication
/// between patch-programs. A stream names its source and target
/// (patch, task) pairs and carries an opaque user payload; the runtime
/// routes it to wherever the target patch-program lives.

#include <cstdint>
#include <vector>

#include "comm/serialize.hpp"
#include "support/ids.hpp"

namespace jsweep::core {

/// One routed message between patch-programs (see \ref stream.hpp).
struct Stream {
  ProgramKey src;    ///< producing (patch, task)
  ProgramKey dst;    ///< consuming (patch, task)
  comm::Bytes data;  ///< opaque user payload (stream codec bytes)
  /// Scheduling priority carried on the wire: the producing program's
  /// LDCP/condensation-depth priority, stamped by the engine. Receiving
  /// masters drain higher-priority streams first, so deep-critical-path
  /// activations jump the queue; 0 (the default) is neutral.
  double priority = 0.0;

  /// Payload size in bytes (wire accounting).
  [[nodiscard]] std::size_t byte_size() const { return data.size(); }
};

/// Pack a batch of streams into one wire message (the pack/unpack cost of
/// Fig. 16 lives here). Priorities ride along.
comm::Bytes pack_streams(const std::vector<Stream>& streams);

/// Inverse of pack_streams.
std::vector<Stream> unpack_streams(const comm::Bytes& payload);

}  // namespace jsweep::core
