#pragma once

/// \file thread_pool.hpp
/// Minimal fork-join pool used by the BSP engine's compute phase and the
/// Sn solver's embarrassingly-parallel loops. (The data-driven engine has
/// its own long-lived master/worker threads and does not use this.)

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jsweep::core {

/// Minimal fork-join worker pool (see \ref thread_pool.hpp).
class ThreadPool {
 public:
  /// `threads` workers; 0 means run everything inline on the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();  ///< joins all workers

  ThreadPool(const ThreadPool&) = delete;             ///< non-copyable
  ThreadPool& operator=(const ThreadPool&) = delete;  ///< non-copyable

  /// Worker thread count (0 = inline execution).
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Run fn(i) for i in [0, n), striped across the pool; blocks until all
  /// iterations complete. Exceptions from fn propagate to the caller
  /// (first one wins).
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

 private:
  struct Batch;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;  // current batch, guarded by mutex_
  bool stop_ = false;
};

}  // namespace jsweep::core
