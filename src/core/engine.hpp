#pragma once

/// \file engine.hpp
/// The patch-centric data-driven runtime (Sec. IV of the paper).
///
/// One Engine instance runs per rank (process). The rank's thread acts as
/// the *master*: it routes streams (local delivery or remote send via the
/// comm substrate), schedules patch-programs onto *worker* threads, tracks
/// progress and detects global termination. Workers execute patch-programs
/// following Alg. 1 (init → input* → compute → output* → vote_to_halt) and
/// hand the results back to the master.
///
/// Scheduling is priority-driven: every program carries a static priority
/// (for Sn sweeps, combined_priority(angle, patch) from graph/priority.hpp)
/// and each worker pops its highest-priority queued program. When a stream
/// targets an inactive program, the master assigns the program to the
/// lightest-loaded worker (dynamic owner assignment, Sec. IV-B; ties break
/// on a seeded rotation so repeated runs make the same choices).
///
/// Workers steal: instead of blocking the moment its own queue drains, an
/// idle worker scans the other workers' queues in a seeded victim order,
/// takes the highest-priority stealable entry, and only falls back to a
/// timed block after a bounded number of empty scan rounds. Stealing moves
/// *scheduling* only — program execution stays bitwise-identical because
/// flux algebra never depends on which worker ran a program, or when.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/termination.hpp"
#include "core/buffer_pool.hpp"
#include "core/patch_program.hpp"
#include "support/timer.hpp"

namespace jsweep::trace {
class Recorder;
class Track;
}  // namespace jsweep::trace

namespace jsweep::metrics {
class Counter;
class Gauge;
class Histogram;
class Registry;
}  // namespace jsweep::metrics

namespace jsweep::core {

/// How a run decides that all ranks are globally done.
enum class TerminationMode {
  /// Workload known in advance (Sn sweeps): one collective when every
  /// rank's remaining-work counter hits zero.
  KnownWorkload,
  /// General negotiation: Safra's token algorithm (particle tracing etc.).
  Safra,
};

/// Construction-time knobs of one Engine instance.
struct EngineConfig {
  int num_workers = 2;  ///< worker threads executing patch-programs
  /// Global-termination detection scheme (see TerminationMode).
  TerminationMode termination = TerminationMode::KnownWorkload;
  /// When non-null, the engine records execution/stream/route/idle events
  /// into this recorder (trace/trace.hpp). Null (the default) disables
  /// tracing: the hot path then pays one pointer check per would-be event.
  trace::Recorder* recorder = nullptr;
  /// When non-null, the engine publishes live `jsweep_engine_*` counters
  /// and gauges (executions, stream traffic, queue depth, busy/idle
  /// seconds, pool hit rate) into this registry, labelled by rank
  /// (metrics/metrics.hpp). Null (the default) disables metrics at one
  /// pointer check per update site, mirroring the recorder.
  metrics::Registry* metrics = nullptr;
  /// Work stealing between this rank's workers: an idle worker scans the
  /// other queues (seeded victim order) for the highest-priority stealable
  /// entry instead of blocking immediately. The environment variable
  /// JSWEEP_WORK_STEALING=0|1, when set, overrides this at construction.
  bool work_stealing = true;
  /// Bounded spin: empty steal-scan rounds an idle worker burns before it
  /// falls back to a timed block on its condition variable. Overridable
  /// via the JSWEEP_STEAL_SPIN environment variable.
  int steal_spin_rounds = 64;
  /// Seed for the deterministic scheduling tie-breaks (enqueue-target
  /// rotation and per-worker steal-victim order). Same seed, same inputs
  /// -> same decisions, so traces line up across runs.
  std::uint64_t scheduler_seed = 0;
};

/// Counters and timings of the most recent Engine::run().
struct EngineStats {
  double elapsed_seconds = 0.0;      ///< wall time of the run
  std::int64_t executions = 0;       ///< patch-program executions
  std::int64_t streams_local = 0;    ///< streams delivered within the rank
  std::int64_t streams_remote = 0;   ///< streams sent across ranks
  std::int64_t stream_bytes = 0;     ///< payload bytes of remote streams
  std::int64_t messages_sent = 0;    ///< wire messages (batched streams)
  double master_route_seconds = 0.0; ///< master time spent routing/packing
  double master_idle_seconds = 0.0;  ///< master time blocked waiting
  double worker_busy_seconds = 0.0;  ///< summed across workers
  double worker_idle_seconds = 0.0;  ///< summed across workers
  std::int64_t steal_attempts = 0;   ///< idle-worker steal scans
  std::int64_t steals = 0;           ///< scans that took another's entry

  /// Fraction of total worker time spent idle (waiting, spinning or
  /// scanning for work): worker_idle / (elapsed x workers).
  [[nodiscard]] double idle_fraction() const {
    const double total = worker_busy_seconds + worker_idle_seconds;
    return total > 0.0 ? worker_idle_seconds / total : 0.0;
  }
};

/// The per-rank data-driven runtime (see \ref engine.hpp): routes streams,
/// schedules patch-programs onto worker threads and detects termination.
class Engine {
 public:
  /// `ctx` must outlive the engine; `config` is fixed for its lifetime.
  Engine(comm::Context& ctx, EngineConfig config);
  ~Engine();  ///< joins nothing; workers stop at the end of each run()

  Engine(const Engine&) = delete;             ///< non-copyable
  Engine& operator=(const Engine&) = delete;  ///< non-copyable

  /// Register a patch-program owned by this rank. `priority` orders
  /// scheduling (higher first). Initially-active programs are queued at
  /// startup; inactive ones wait for their first stream.
  void add_program(std::unique_ptr<PatchProgram> program, double priority,
                   bool initially_active);

  /// Route table: owner rank of every patch (same on all ranks).
  void set_routes(std::vector<RankId> patch_owner);

  /// Enable or disable a registered program for subsequent run() calls.
  /// Disabled programs contribute nothing to the known-workload commitment
  /// and are never queued; delivering a stream to one is an error (the
  /// route tables and tag namespaces must keep disabled subsets closed).
  /// All programs start enabled. The sweep service uses this to run only
  /// the request lanes of the current batch over one shared task system.
  void set_program_enabled(const ProgramKey& key, bool enabled);

  /// Run to global termination. Collective: every rank must call run()
  /// once per logical iteration. Re-entrant across calls: every enabled
  /// program is reset and re-initialized, so one engine serves any number
  /// of sweeps (and interleaved request batches) back to back.
  void run();

  /// Counters and timings of the most recent run().
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

  /// Number of registered local programs.
  [[nodiscard]] std::size_t num_programs() const { return programs_.size(); }

  /// Recycling pool for stream payload buffers: programs draw encode
  /// buffers here; the engine returns every payload once it is consumed
  /// (applied locally or packed onto the wire).
  [[nodiscard]] BufferPool& buffer_pool() { return buffer_pool_; }

 private:
  struct ProgramState;
  struct Worker;
  struct Completion;

  void worker_loop(Worker& w);
  void master_loop(comm::SafraDetector* det, IntervalAccumulator& route_time);
  Completion execute(ProgramState& ps);
  ProgramState* take_local(Worker& w);  ///< pop own top (w.mutex held)
  ProgramState* acquire_work(Worker& w);
  ProgramState* try_steal(Worker& w);
  void deliver_local(Stream stream);
  void enqueue(ProgramState& ps);
  void route_outputs(std::vector<Stream>&& outputs);
  void flush_remote();
  void process_message(const comm::Message& msg,
                       comm::SafraDetector* detector);
  [[nodiscard]] bool locally_idle() const;

  comm::Context& ctx_;
  EngineConfig config_;
  EngineStats stats_;
  BufferPool buffer_pool_;
  trace::Track* trace_master_ = nullptr;  ///< this rank's master track

  // Live instruments, created once at construction when config_.metrics is
  // set (all null otherwise — the hot path checks one pointer).
  metrics::Counter* metric_executions_ = nullptr;
  metrics::Counter* metric_streams_local_ = nullptr;
  metrics::Counter* metric_streams_remote_ = nullptr;
  metrics::Counter* metric_stream_bytes_ = nullptr;
  metrics::Counter* metric_messages_ = nullptr;
  metrics::Counter* metric_runs_ = nullptr;
  metrics::Gauge* metric_queue_depth_ = nullptr;
  metrics::Gauge* metric_worker_busy_ = nullptr;
  metrics::Gauge* metric_worker_idle_ = nullptr;
  metrics::Gauge* metric_master_idle_ = nullptr;
  metrics::Gauge* metric_pool_hit_ratio_ = nullptr;
  metrics::Counter* metric_steal_hits_ = nullptr;
  metrics::Counter* metric_steal_misses_ = nullptr;
  metrics::Histogram* metric_steal_latency_ = nullptr;
  metrics::Gauge* metric_idle_fraction_ = nullptr;

  std::unordered_map<ProgramKey, std::unique_ptr<ProgramState>> programs_;
  std::vector<RankId> patch_owner_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Master-side completion queue (workers push, master drains).
  std::mutex completion_mutex_;
  std::vector<Completion> completions_;
  std::atomic<std::int64_t> completions_pending_{0};

  // First exception thrown inside a worker; rethrown by the master.
  std::mutex error_mutex_;
  std::exception_ptr worker_error_;

  // Remote streams staged per destination rank, flushed as one message.
  std::vector<std::vector<Stream>> remote_staging_;

  std::int64_t local_remaining_ = 0;
  std::int64_t active_programs_ = 0;  ///< programs Queued or Running
  std::uint64_t enqueue_seq_ = 0;

  /// Entries sitting in any worker queue (not yet popped). Idle workers
  /// spin on this before blocking: > 0 means a steal scan can succeed.
  std::atomic<std::int64_t> queued_total_{0};
};

}  // namespace jsweep::core
