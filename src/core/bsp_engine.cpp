#include "core/bsp_engine.hpp"

#include "core/stream.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace jsweep::core {

BspEngine::BspEngine(comm::Context& ctx, BspConfig config)
    : ctx_(ctx), config_(config) {
  JSWEEP_CHECK(config_.num_threads >= 0);
}

void BspEngine::add_program(std::unique_ptr<PatchProgram> program,
                            bool initially_active) {
  JSWEEP_CHECK(program != nullptr);
  auto slot = std::make_unique<Slot>();
  slot->program = std::move(program);
  slot->initially_active = initially_active;
  const ProgramKey key = slot->program->key();
  JSWEEP_CHECK_MSG(by_key_.emplace(key, slot.get()).second,
                   "duplicate patch-program " << key);
  slots_.push_back(std::move(slot));
}

void BspEngine::set_routes(std::vector<RankId> patch_owner) {
  patch_owner_ = std::move(patch_owner);
}

void BspEngine::deliver(Stream s) {
  const auto it = by_key_.find(s.dst);
  JSWEEP_CHECK_MSG(it != by_key_.end(),
                   "stream routed to " << s.dst << " but no such program");
  it->second->inbox.push_back(std::move(s));
  it->second->active = true;
}

void BspEngine::run() {
  JSWEEP_CHECK_MSG(!patch_owner_.empty(), "set_routes() before run()");
  stats_ = BspStats{};
  WallTimer total_timer;
  ThreadPool pool(config_.num_threads);

  std::int64_t local_remaining = 0;
  for (auto& slot : slots_) {
    slot->initialized = false;
    slot->active = slot->initially_active;
    slot->halted = false;
    slot->inbox.clear();
    slot->outbox.clear();
    local_remaining += slot->program->total_work();
  }
  std::int64_t global_remaining = ctx_.allreduce_sum(local_remaining);

  std::vector<std::vector<Stream>> staging(
      static_cast<std::size_t>(ctx_.size()));

  while (global_remaining > 0) {
    ++stats_.supersteps;

    // --- Compute phase: every active program executes once, in parallel.
    std::vector<Slot*> round;
    for (auto& slot : slots_)
      if (slot->active) round.push_back(slot.get());

    std::atomic<std::int64_t> retired{0};
    std::atomic<std::int64_t> executions{0};
    pool.parallel_for(
        static_cast<std::int64_t>(round.size()), [&](std::int64_t i) {
          Slot& slot = *round[static_cast<std::size_t>(i)];
          PatchProgram& prog = *slot.program;
          if (!slot.initialized) {
            prog.init();
            slot.initialized = true;
          }
          for (const auto& s : slot.inbox) prog.input(s);
          slot.inbox.clear();
          const auto before = prog.remaining_work();
          prog.compute();
          retired.fetch_add(before - prog.remaining_work(),
                            std::memory_order_relaxed);
          executions.fetch_add(1, std::memory_order_relaxed);
          while (auto out = prog.output())
            slot.outbox.push_back(std::move(*out));
          slot.halted = prog.vote_to_halt();
        });
    local_remaining -= retired.load();
    stats_.executions += executions.load();

    // --- Exchange phase (superstep boundary): local streams also wait
    // until here — BSP semantics, Sec. II-B.
    std::vector<Stream> local_pending;
    for (Slot* slot : round) {
      slot->active = !slot->halted;
      for (auto& s : slot->outbox) {
        const RankId dest =
            patch_owner_[static_cast<std::size_t>(s.dst.patch.value())];
        if (dest == ctx_.rank()) {
          ++stats_.streams_local;
          local_pending.push_back(std::move(s));
        } else {
          ++stats_.streams_remote;
          stats_.stream_bytes += static_cast<std::int64_t>(s.data.size());
          staging[static_cast<std::size_t>(dest.value())].push_back(
              std::move(s));
        }
      }
      slot->outbox.clear();
    }
    for (int r = 0; r < ctx_.size(); ++r) {
      auto& staged = staging[static_cast<std::size_t>(r)];
      if (staged.empty()) continue;
      ctx_.send(RankId{r}, comm::kTagStream, pack_streams(staged));
      staged.clear();
    }

    // In-process sends are delivered synchronously, so after the barrier
    // every rank's mailbox holds everything sent this superstep.
    ctx_.barrier();
    while (auto msg = ctx_.try_recv()) {
      JSWEEP_CHECK(msg->tag == comm::kTagStream);
      for (auto& s : unpack_streams(msg->payload)) deliver(std::move(s));
    }
    for (auto& s : local_pending) deliver(std::move(s));

    global_remaining = ctx_.allreduce_sum(local_remaining);
  }

  stats_.elapsed_seconds = total_timer.seconds();
}

}  // namespace jsweep::core
