#include "core/bsp_engine.hpp"

#include <algorithm>

#include "core/stream.hpp"
#include "metrics/metrics.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"
#include "trace/trace.hpp"

namespace jsweep::core {

namespace {

/// Execution interval captured during the fork-join compute phase. The
/// pool does not expose which thread ran which program, so executions are
/// assigned to non-overlapping "lanes" afterwards (lane count is bounded
/// by the pool's parallelism) and each lane becomes one worker track.
struct ExecSpan {
  std::int64_t t0 = 0;
  std::int64_t t1 = 0;
  ProgramKey key{};
};

void record_exec_lanes(trace::Recorder& rec, std::int32_t rank,
                       std::vector<ExecSpan>& spans,
                       std::vector<trace::Track*>& lanes) {
  std::sort(spans.begin(), spans.end(),
            [](const ExecSpan& a, const ExecSpan& b) {
              if (a.t0 != b.t0) return a.t0 < b.t0;
              return a.t1 < b.t1;
            });
  std::vector<std::int64_t> lane_end;
  for (const ExecSpan& s : spans) {
    std::size_t lane = 0;
    while (lane < lane_end.size() && lane_end[lane] > s.t0) ++lane;
    if (lane == lane_end.size()) lane_end.push_back(0);
    lane_end[lane] = s.t1;
    if (lane >= lanes.size()) lanes.resize(lane + 1, nullptr);
    if (lanes[lane] == nullptr)
      lanes[lane] = &rec.track(rank, static_cast<std::int32_t>(lane));
    auto e = trace::make_span(trace::EventKind::Exec, s.t0, s.t1);
    e.src = s.key;
    lanes[lane]->record(e);
  }
}

}  // namespace

BspEngine::BspEngine(comm::Context& ctx, BspConfig config)
    : ctx_(ctx), config_(config) {
  JSWEEP_CHECK(config_.num_threads >= 0);
  if (metrics::Registry* reg = config_.metrics; reg != nullptr) {
    const std::string rank = std::to_string(ctx_.rank().value());
    metric_supersteps_ =
        &reg->counter("jsweep_bsp_supersteps_total",
                      "barrier-separated supersteps", {{"rank", rank}});
    metric_executions_ =
        &reg->counter("jsweep_bsp_executions_total",
                      "program compute() executions", {{"rank", rank}});
    metric_streams_local_ = &reg->counter(
        "jsweep_bsp_streams_total", "streams exchanged, by delivery path",
        {{"rank", rank}, {"path", "local"}});
    metric_streams_remote_ = &reg->counter(
        "jsweep_bsp_streams_total", "streams exchanged, by delivery path",
        {{"rank", rank}, {"path", "remote"}});
    metric_stream_bytes_ = &reg->counter(
        "jsweep_bsp_stream_bytes_total",
        "payload bytes of streams shipped across ranks", {{"rank", rank}});
  }
}

void BspEngine::add_program(std::unique_ptr<PatchProgram> program,
                            bool initially_active) {
  JSWEEP_CHECK(program != nullptr);
  auto slot = std::make_unique<Slot>();
  slot->program = std::move(program);
  slot->initially_active = initially_active;
  const ProgramKey key = slot->program->key();
  JSWEEP_CHECK_MSG(by_key_.emplace(key, slot.get()).second,
                   "duplicate patch-program " << key);
  slots_.push_back(std::move(slot));
}

void BspEngine::set_routes(std::vector<RankId> patch_owner) {
  patch_owner_ = std::move(patch_owner);
}

void BspEngine::deliver(Stream s) {
  const auto it = by_key_.find(s.dst);
  JSWEEP_CHECK_MSG(it != by_key_.end(),
                   "stream routed to " << s.dst << " but no such program");
  if (trace_master_ != nullptr) {
    auto e = trace::make_instant(trace::EventKind::StreamRecv,
                                 config_.recorder->now_ns());
    e.src = s.src;
    e.dst = s.dst;
    e.bytes = static_cast<std::int64_t>(s.data.size());
    trace_master_->record(e);
  }
  it->second->inbox.push_back(std::move(s));
  it->second->active = true;
}

void BspEngine::run() {
  JSWEEP_CHECK_MSG(!patch_owner_.empty(), "set_routes() before run()");
  stats_ = BspStats{};
  WallTimer total_timer;
  ThreadPool pool(config_.num_threads);
  trace::Recorder* const rec = config_.recorder;
  trace_master_ =
      rec != nullptr
          ? &rec->track(ctx_.rank().value(), trace::kMasterTrack)
          : nullptr;
  std::vector<ExecSpan> exec_spans;
  std::vector<trace::Track*> exec_lanes;

  std::int64_t local_remaining = 0;
  for (auto& slot : slots_) {
    slot->initialized = false;
    slot->active = slot->initially_active;
    slot->halted = false;
    slot->inbox.clear();
    slot->outbox.clear();
    local_remaining += slot->program->total_work();
  }
  std::int64_t global_remaining = ctx_.allreduce_sum(local_remaining);

  std::vector<std::vector<Stream>> staging(
      static_cast<std::size_t>(ctx_.size()));

  while (global_remaining > 0) {
    ++stats_.supersteps;
    if (metric_supersteps_ != nullptr) metric_supersteps_->inc();
    const std::int64_t step_t0 = rec != nullptr ? rec->now_ns() : 0;

    // --- Compute phase: every active program executes once, in parallel.
    std::vector<Slot*> round;
    for (auto& slot : slots_)
      if (slot->active) round.push_back(slot.get());
    if (rec != nullptr) exec_spans.assign(round.size(), ExecSpan{});

    std::atomic<std::int64_t> retired{0};
    std::atomic<std::int64_t> executions{0};
    pool.parallel_for(
        static_cast<std::int64_t>(round.size()), [&](std::int64_t i) {
          Slot& slot = *round[static_cast<std::size_t>(i)];
          PatchProgram& prog = *slot.program;
          const std::int64_t exec_t0 = rec != nullptr ? rec->now_ns() : 0;
          if (!slot.initialized) {
            prog.init();
            slot.initialized = true;
          }
          for (auto& s : slot.inbox) {
            prog.input(s);
            buffer_pool_.release(std::move(s.data));
          }
          slot.inbox.clear();
          const auto before = prog.remaining_work();
          prog.compute();
          retired.fetch_add(before - prog.remaining_work(),
                            std::memory_order_relaxed);
          executions.fetch_add(1, std::memory_order_relaxed);
          while (auto out = prog.output())
            slot.outbox.push_back(std::move(*out));
          slot.halted = prog.vote_to_halt();
          if (rec != nullptr)
            exec_spans[static_cast<std::size_t>(i)] =
                ExecSpan{exec_t0, rec->now_ns(), prog.key()};
        });
    local_remaining -= retired.load();
    stats_.executions += executions.load();
    if (metric_executions_ != nullptr)
      metric_executions_->inc(executions.load());
    if (rec != nullptr && !exec_spans.empty())
      record_exec_lanes(*rec, ctx_.rank().value(), exec_spans, exec_lanes);

    // --- Exchange phase (superstep boundary): local streams also wait
    // until here — BSP semantics, Sec. II-B.
    std::vector<Stream> local_pending;
    for (Slot* slot : round) {
      slot->active = !slot->halted;
      for (auto& s : slot->outbox) {
        const RankId dest =
            patch_owner_[static_cast<std::size_t>(s.dst.patch.value())];
        if (trace_master_ != nullptr) {
          auto e = trace::make_instant(trace::EventKind::StreamSend,
                                       rec->now_ns());
          e.src = s.src;
          e.dst = s.dst;
          e.bytes = static_cast<std::int64_t>(s.data.size());
          trace_master_->record(e);
        }
        if (dest == ctx_.rank()) {
          ++stats_.streams_local;
          if (metric_streams_local_ != nullptr) metric_streams_local_->inc();
          local_pending.push_back(std::move(s));
        } else {
          ++stats_.streams_remote;
          stats_.stream_bytes += static_cast<std::int64_t>(s.data.size());
          if (metric_streams_remote_ != nullptr) {
            metric_streams_remote_->inc();
            metric_stream_bytes_->inc(
                static_cast<std::int64_t>(s.data.size()));
          }
          staging[static_cast<std::size_t>(dest.value())].push_back(
              std::move(s));
        }
      }
      slot->outbox.clear();
    }
    for (int r = 0; r < ctx_.size(); ++r) {
      auto& staged = staging[static_cast<std::size_t>(r)];
      if (staged.empty()) continue;
      ctx_.send(RankId{r}, comm::kTagStream, pack_streams(staged));
      for (auto& s : staged) buffer_pool_.release(std::move(s.data));
      staged.clear();
    }

    // In-process sends are delivered synchronously, so after the barrier
    // every rank's mailbox holds everything sent this superstep.
    ctx_.barrier();
    while (auto msg = ctx_.try_recv()) {
      JSWEEP_CHECK(msg->tag == comm::kTagStream);
      for (auto& s : unpack_streams(msg->payload)) deliver(std::move(s));
    }
    for (auto& s : local_pending) deliver(std::move(s));

    const std::int64_t coll_t0 = rec != nullptr ? rec->now_ns() : 0;
    global_remaining = ctx_.allreduce_sum(local_remaining);
    if (trace_master_ != nullptr) {
      trace_master_->record(trace::make_span(trace::EventKind::Collective,
                                             coll_t0, rec->now_ns()));
      auto e = trace::make_span(trace::EventKind::Superstep, step_t0,
                                rec->now_ns());
      e.bytes = stats_.supersteps;
      trace_master_->record(e);
    }
  }

  stats_.elapsed_seconds = total_timer.seconds();
}

}  // namespace jsweep::core
