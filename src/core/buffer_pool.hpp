#pragma once

/// \file buffer_pool.hpp
/// Recycling pool for stream payload byte buffers. Every compute batch
/// used to heap-allocate a fresh comm::Bytes per destination stream and
/// free it after delivery; instead, programs draw buffers here (worker
/// threads) and the engine returns them once the payload is consumed —
/// after a local stream's items are applied, or after remote streams are
/// packed into a wire message. Steady-state sweeps then recycle a small
/// working set of buffers instead of churning the allocator.

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "comm/serialize.hpp"

namespace jsweep::core {

/// Thread-safe recycling pool of payload buffers (see
/// \ref buffer_pool.hpp). One instance per engine.
class BufferPool {
 public:
  /// An empty buffer, recycled (with its old capacity) when one is free.
  [[nodiscard]] comm::Bytes acquire() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++acquires_;
    if (free_.empty()) return {};
    ++reuses_;
    comm::Bytes b = std::move(free_.back());
    free_.pop_back();
    b.clear();  // keeps capacity
    return b;
  }

  /// Return a consumed payload. Capacity is retained for reuse; the free
  /// list is capped so a traffic burst cannot pin memory forever.
  void release(comm::Bytes&& b) {
    if (b.capacity() == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (free_.size() >= kMaxFree) return;  // drop: deallocates
    free_.push_back(std::move(b));
    free_.back().clear();
  }

  /// Total acquire() calls (observability for tests/benches).
  [[nodiscard]] std::int64_t acquires() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return acquires_;
  }
  /// Acquires served from the free list instead of a fresh buffer.
  [[nodiscard]] std::int64_t reuses() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return reuses_;
  }

 private:
  static constexpr std::size_t kMaxFree = 4096;

  mutable std::mutex mutex_;
  std::vector<comm::Bytes> free_;
  std::int64_t acquires_ = 0;
  std::int64_t reuses_ = 0;
};

}  // namespace jsweep::core
