#include "core/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "support/check.hpp"

namespace jsweep::core {

struct ThreadPool::Batch {
  std::int64_t n = 0;
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<int> running{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  bool done = false;
};

ThreadPool::ThreadPool(int threads) {
  JSWEEP_CHECK(threads >= 0);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || batch_ != nullptr; });
      if (stop_) return;
      batch = batch_;
      batch->running.fetch_add(1, std::memory_order_relaxed);
    }
    for (;;) {
      const auto i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->n) break;
      try {
        (*batch->fn)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(batch->error_mutex);
        if (!batch->error) batch->error = std::current_exception();
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (batch->running.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          batch_ == batch) {
        // Last worker out flags completion; caller also participates, so
        // "done" really means the index space is exhausted.
      }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  JSWEEP_CHECK(n >= 0);
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
  }
  work_cv_.notify_all();

  // The caller works too — no idle spin while the pool churns.
  for (;;) {
    const auto i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) break;
    try {
      fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.error) batch.error = std::current_exception();
    }
  }

  // Wait for stragglers still inside fn.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_ = nullptr;  // prevent new workers from joining this batch
    done_cv_.wait(lock, [&] {
      return batch.running.load(std::memory_order_acquire) == 0;
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace jsweep::core
