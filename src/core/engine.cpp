#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <queue>
#include <thread>

#include "metrics/metrics.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "trace/trace.hpp"

namespace jsweep::core {

namespace {

/// Idle waits shorter than this are not worth a trace event.
constexpr std::int64_t kMinTracedIdleNs = 1000;

/// Timed-block quantum for stealing workers: long enough to keep the cv
/// cheap, short enough that a worker re-scans for stealable work soon even
/// if it missed a notify aimed at another worker.
constexpr auto kStealBlockQuantum = std::chrono::microseconds(100);

/// splitmix64 finalizer: a cheap, well-mixed hash for the seeded
/// scheduling tie-breaks (enqueue-target rotation, steal-victim order).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Environment override for an integer-valued engine knob; returns
/// `fallback` when the variable is unset or empty.
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

}  // namespace

struct Engine::ProgramState {
  std::unique_ptr<PatchProgram> program;
  double priority = 0.0;
  bool initially_active = true;
  /// Disabled programs sit out whole runs: no workload contribution, no
  /// startup queueing, and any stream delivered to one is an error.
  bool enabled = true;
  bool initialized = false;
  /// Idle = not queued or running (the paper's "inactive"); Active covers
  /// both queued and running — a program has at most one outstanding
  /// execution at a time.
  enum class St { Idle, Active } state = St::Idle;
  std::mutex inbox_mutex;
  std::vector<Stream> inbox;
};

struct Engine::Completion {
  ProgramState* ps = nullptr;
  bool halted = true;
  std::int64_t retired = 0;
  std::vector<Stream> outputs;
};

struct Engine::Worker {
  explicit Worker(int id_in) : id(id_in) {}

  struct Entry {
    double priority;
    std::uint64_t seq;
    ProgramState* ps;
    /// Max-heap by priority; FIFO (by sequence) among equals.
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return seq > o.seq;
    }
  };

  int id;
  std::mutex mutex;
  std::condition_variable cv;
  std::priority_queue<Entry> queue;
  std::atomic<std::int64_t> load{0};
  std::atomic<bool> stop{false};
  std::thread thread;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  /// Seeded victim-rotation state (advanced per steal scan): every run
  /// with the same scheduler seed visits victims in the same order.
  std::uint64_t rng = 0;
  std::int64_t steal_attempts = 0;
  std::int64_t steals = 0;
};

Engine::Engine(comm::Context& ctx, EngineConfig config)
    : ctx_(ctx), config_(config) {
  JSWEEP_CHECK_MSG(config_.num_workers >= 1,
                   "engine needs at least one worker thread");
  // Runtime knobs get the final say, so CI and operators can force a
  // scheduling mode without touching call sites.
  config_.work_stealing =
      env_int("JSWEEP_WORK_STEALING", config_.work_stealing ? 1 : 0) != 0;
  config_.steal_spin_rounds = std::max(
      0, env_int("JSWEEP_STEAL_SPIN", config_.steal_spin_rounds));
  remote_staging_.resize(static_cast<std::size_t>(ctx_.size()));
  if (metrics::Registry* reg = config_.metrics; reg != nullptr) {
    const metrics::Labels rank{{"rank", std::to_string(ctx_.rank().value())}};
    metric_executions_ = &reg->counter("jsweep_engine_executions_total",
                                       "patch-program executions", rank);
    metric_streams_local_ =
        &reg->counter("jsweep_engine_streams_total",
                      "streams routed, by delivery path",
                      {{"rank", std::to_string(ctx_.rank().value())},
                       {"path", "local"}});
    metric_streams_remote_ =
        &reg->counter("jsweep_engine_streams_total",
                      "streams routed, by delivery path",
                      {{"rank", std::to_string(ctx_.rank().value())},
                       {"path", "remote"}});
    metric_stream_bytes_ = &reg->counter(
        "jsweep_engine_stream_bytes_total",
        "payload bytes of streams shipped across ranks", rank);
    metric_messages_ = &reg->counter("jsweep_engine_messages_total",
                                     "wire messages (batched streams)", rank);
    metric_runs_ =
        &reg->counter("jsweep_engine_runs_total", "engine run() calls", rank);
    metric_queue_depth_ =
        &reg->gauge("jsweep_engine_queue_depth",
                    "patch-programs queued or running on workers", rank);
    metric_worker_busy_ = &reg->gauge(
        "jsweep_engine_worker_busy_seconds",
        "cumulative worker busy seconds (execution + bookkeeping)", rank);
    metric_worker_idle_ =
        &reg->gauge("jsweep_engine_worker_idle_seconds",
                    "cumulative worker seconds blocked with no work", rank);
    metric_master_idle_ =
        &reg->gauge("jsweep_engine_master_idle_seconds",
                    "cumulative master seconds blocked waiting for messages",
                    rank);
    metric_pool_hit_ratio_ =
        &reg->gauge("jsweep_engine_buffer_pool_hit_ratio",
                    "fraction of stream-buffer acquires served from the "
                    "free list (lifetime)",
                    rank);
    metric_steal_hits_ =
        &reg->counter("jsweep_engine_steals_total",
                      "idle-worker steal scans, by result",
                      {{"rank", std::to_string(ctx_.rank().value())},
                       {"result", "hit"}});
    metric_steal_misses_ =
        &reg->counter("jsweep_engine_steals_total",
                      "idle-worker steal scans, by result",
                      {{"rank", std::to_string(ctx_.rank().value())},
                       {"result", "miss"}});
    metric_steal_latency_ = &reg->histogram(
        "jsweep_engine_steal_latency_seconds",
        "latency of one steal scan (peek every queue, take the best)",
        metrics::Registry::exponential_buckets(1e-7, 4.0, 10), rank);
    metric_idle_fraction_ =
        &reg->gauge("jsweep_engine_idle_fraction",
                    "worker idle seconds / (elapsed x workers), last run",
                    rank);
  }
}

Engine::~Engine() = default;

void Engine::add_program(std::unique_ptr<PatchProgram> program,
                         double priority, bool initially_active) {
  JSWEEP_CHECK(program != nullptr);
  const ProgramKey key = program->key();
  auto ps = std::make_unique<ProgramState>();
  ps->program = std::move(program);
  ps->priority = priority;
  ps->initially_active = initially_active;
  const auto [it, inserted] = programs_.emplace(key, std::move(ps));
  JSWEEP_CHECK_MSG(inserted, "duplicate patch-program " << key);
}

void Engine::set_routes(std::vector<RankId> patch_owner) {
  patch_owner_ = std::move(patch_owner);
}

void Engine::set_program_enabled(const ProgramKey& key, bool enabled) {
  const auto it = programs_.find(key);
  JSWEEP_CHECK_MSG(it != programs_.end(),
                   "set_program_enabled: no program " << key << " on rank "
                                                      << ctx_.rank());
  it->second->enabled = enabled;
}

Engine::ProgramState* Engine::take_local(Worker& w) {
  ProgramState* ps = w.queue.top().ps;
  w.queue.pop();
  queued_total_.fetch_sub(1, std::memory_order_acq_rel);
  return ps;
}

Engine::ProgramState* Engine::try_steal(Worker& w) {
  ++w.steal_attempts;
  WallTimer scan_timer;
  const std::size_t n = workers_.size();
  // Seeded victim rotation: advance the worker's private LCG and start
  // the scan at a pseudo-random (but run-reproducible) offset, so thieves
  // spread over victims without contending on one queue.
  w.rng = w.rng * 6364136223846793005ULL + 1442695040888963407ULL;
  const std::size_t start = static_cast<std::size_t>((w.rng >> 33) % n);
  // Pass 1: peek every queue a try_lock can reach (own queue included —
  // it may have been fed during the spin) and remember the globally best
  // entry: highest priority, earliest sequence among equals.
  std::size_t best = n;
  double best_priority = 0.0;
  std::uint64_t best_seq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t v = (start + i) % n;
    Worker& victim = *workers_[v];
    if (!victim.mutex.try_lock()) continue;
    if (!victim.queue.empty()) {
      const Worker::Entry& top = victim.queue.top();
      if (best == n || top.priority > best_priority ||
          (top.priority == best_priority && top.seq < best_seq)) {
        best = v;
        best_priority = top.priority;
        best_seq = top.seq;
      }
    }
    victim.mutex.unlock();
  }
  // Pass 2: re-lock the winner and take its (possibly changed) top. The
  // victim may have drained in between; that is a miss, not an error.
  ProgramState* ps = nullptr;
  bool stolen = false;
  if (best < n) {
    Worker& victim = *workers_[best];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      ps = take_local(victim);
      if (&victim != &w) {
        // The entry's load unit moves with it; the thief's own
        // end-of-execution decrement then balances the books.
        victim.load.fetch_sub(1, std::memory_order_relaxed);
        w.load.fetch_add(1, std::memory_order_relaxed);
        ++w.steals;
        stolen = true;
      }
    }
  }
  if (metric_steal_latency_ != nullptr)
    metric_steal_latency_->observe(scan_timer.seconds(), w.id);
  if (stolen) {
    if (metric_steal_hits_ != nullptr) metric_steal_hits_->inc(1, w.id);
  } else if (ps == nullptr) {
    if (metric_steal_misses_ != nullptr) metric_steal_misses_->inc(1, w.id);
  }
  return ps;
}

Engine::ProgramState* Engine::acquire_work(Worker& w) {
  const bool stealing = config_.work_stealing && workers_.size() > 1;
  for (;;) {
    if (stealing) {
      // Bounded spin: scan for stealable work while any queue is
      // non-empty, up to the configured round budget, then block.
      for (int round = 0; round < config_.steal_spin_rounds; ++round) {
        if (w.stop.load(std::memory_order_relaxed)) break;
        if (queued_total_.load(std::memory_order_acquire) > 0) {
          if (ProgramState* ps = try_steal(w)) return ps;
        }
        std::this_thread::yield();
      }
    }
    std::unique_lock<std::mutex> lock(w.mutex);
    if (!w.queue.empty()) return take_local(w);
    if (w.stop.load(std::memory_order_relaxed)) return nullptr;
    if (stealing) {
      // Timed block: a notify targeted at another worker (or a missed
      // spin window) must not strand this one while work exists, so wake
      // periodically and re-run the steal scan.
      w.cv.wait_for(lock, kStealBlockQuantum);
    } else {
      w.cv.wait(lock, [&] {
        return w.stop.load(std::memory_order_relaxed) || !w.queue.empty();
      });
    }
    if (!w.queue.empty()) return take_local(w);
    if (w.stop.load(std::memory_order_relaxed)) return nullptr;
  }
}

void Engine::worker_loop(Worker& w) {
  trace::Recorder* const rec = config_.recorder;
  trace::Track* const tr =
      rec != nullptr ? &rec->track(ctx_.rank().value(), w.id) : nullptr;
  // Every instant of the loop's lifetime lands in exactly one of the two
  // buckets — idle while hunting for work (steal scans, bounded spins and
  // blocked waits all count as idle), busy otherwise (execution plus
  // queue/completion bookkeeping) — so that
  // busy + idle ≈ elapsed × num_workers holds for EngineStats.
  WallTimer timer;
  for (;;) {
    ProgramState* ps = nullptr;
    {
      const std::lock_guard<std::mutex> lock(w.mutex);
      if (!w.queue.empty()) ps = take_local(w);
    }
    if (ps == nullptr) {
      const double busy_delta = timer.seconds();
      w.busy_seconds += busy_delta;
      if (metric_worker_busy_ != nullptr) metric_worker_busy_->add(busy_delta);
      timer.reset();
      const std::int64_t idle_t0 = tr != nullptr ? rec->now_ns() : 0;
      ps = acquire_work(w);
      const double idle_delta = timer.seconds();
      w.idle_seconds += idle_delta;
      if (metric_worker_idle_ != nullptr) metric_worker_idle_->add(idle_delta);
      timer.reset();
      if (tr != nullptr) {
        const std::int64_t idle_t1 = rec->now_ns();
        if (idle_t1 - idle_t0 >= kMinTracedIdleNs)
          tr->record(
              trace::make_span(trace::EventKind::Idle, idle_t0, idle_t1));
      }
      if (ps == nullptr) return;
    }
    if (metric_queue_depth_ != nullptr) metric_queue_depth_->add(-1.0);
    const std::int64_t exec_t0 = tr != nullptr ? rec->now_ns() : 0;
    try {
      Completion c = execute(*ps);
      if (tr != nullptr) {
        auto e =
            trace::make_span(trace::EventKind::Exec, exec_t0, rec->now_ns());
        e.src = ps->program->key();
        e.bytes = c.retired;
        tr->record(e);
      }
      {
        const std::lock_guard<std::mutex> lock(completion_mutex_);
        completions_.push_back(std::move(c));
      }
      completions_pending_.fetch_add(1, std::memory_order_release);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    w.load.fetch_sub(1, std::memory_order_relaxed);
  }
}

Engine::Completion Engine::execute(ProgramState& ps) {
  PatchProgram& prog = *ps.program;
  if (!ps.initialized) {
    prog.init();
    ps.initialized = true;
  }
  std::vector<Stream> arrived;
  {
    const std::lock_guard<std::mutex> lock(ps.inbox_mutex);
    arrived.swap(ps.inbox);
  }
  for (auto& s : arrived) {
    prog.input(s);
    // Payload consumed; recycle the buffer for a future encode.
    buffer_pool_.release(std::move(s.data));
  }

  const std::int64_t before = prog.remaining_work();
  prog.compute();
  const std::int64_t after = prog.remaining_work();

  Completion c;
  c.ps = &ps;
  c.retired = before - after;
  while (auto out = prog.output()) c.outputs.push_back(std::move(*out));
  // Stamp the producer's LDCP priority onto every output: receiving
  // masters (remote or local) route higher-priority streams first.
  for (auto& s : c.outputs) s.priority = ps.priority;
  c.halted = prog.vote_to_halt();
  return c;
}

void Engine::enqueue(ProgramState& ps) {
  // Dynamic owner assignment: route the program to the lightest worker
  // (Sec. IV-B). Ties break on a seeded rotation of the scan start — a
  // splitmix64 hash of (scheduler seed, enqueue sequence) — rather than
  // first-wins, so repeated runs with the same seed make the same choices
  // and trace comparisons line up.
  const std::size_t n = workers_.size();
  const std::size_t start = static_cast<std::size_t>(
      mix64(config_.scheduler_seed ^ enqueue_seq_) % n);
  Worker* lightest = workers_[start].get();
  std::int64_t lightest_load = lightest->load.load(std::memory_order_relaxed);
  for (std::size_t i = 1; i < n; ++i) {
    Worker& cand = *workers_[(start + i) % n];
    const std::int64_t cand_load = cand.load.load(std::memory_order_relaxed);
    if (cand_load < lightest_load) {
      lightest = &cand;
      lightest_load = cand_load;
    }
  }
  lightest->load.fetch_add(1, std::memory_order_relaxed);
  if (metric_queue_depth_ != nullptr) metric_queue_depth_->add(1.0);
  {
    const std::lock_guard<std::mutex> lock(lightest->mutex);
    lightest->queue.push(Worker::Entry{ps.priority, enqueue_seq_++, &ps});
    queued_total_.fetch_add(1, std::memory_order_release);
  }
  lightest->cv.notify_one();
}

void Engine::deliver_local(Stream stream) {
  const auto it = programs_.find(stream.dst);
  JSWEEP_CHECK_MSG(it != programs_.end(),
                   "stream routed to " << stream.dst
                                       << " but no such program on rank "
                                       << ctx_.rank());
  ProgramState& ps = *it->second;
  JSWEEP_CHECK_MSG(ps.enabled, "stream from " << stream.src << " targets "
                                              << stream.dst
                                              << ", which is disabled");
  if (trace_master_ != nullptr) {
    auto e = trace::make_instant(trace::EventKind::StreamRecv,
                                 config_.recorder->now_ns());
    e.src = stream.src;
    e.dst = stream.dst;
    e.bytes = static_cast<std::int64_t>(stream.data.size());
    trace_master_->record(e);
  }
  {
    const std::lock_guard<std::mutex> lock(ps.inbox_mutex);
    ps.inbox.push_back(std::move(stream));
  }
  if (ps.state == ProgramState::St::Idle) {
    ps.state = ProgramState::St::Active;
    ++active_programs_;
    enqueue(ps);
  }
}

void Engine::route_outputs(std::vector<Stream>&& outputs) {
  for (auto& s : outputs) {
    JSWEEP_CHECK_MSG(
        s.dst.patch.valid() &&
            static_cast<std::size_t>(s.dst.patch.value()) <
                patch_owner_.size(),
        "stream targets unknown patch " << s.dst.patch);
    const RankId dest =
        patch_owner_[static_cast<std::size_t>(s.dst.patch.value())];
    if (trace_master_ != nullptr) {
      auto e = trace::make_instant(trace::EventKind::StreamSend,
                                   config_.recorder->now_ns());
      e.src = s.src;
      e.dst = s.dst;
      e.bytes = static_cast<std::int64_t>(s.data.size());
      trace_master_->record(e);
    }
    if (dest == ctx_.rank()) {
      ++stats_.streams_local;
      if (metric_streams_local_ != nullptr) metric_streams_local_->inc();
      deliver_local(std::move(s));
    } else {
      ++stats_.streams_remote;
      stats_.stream_bytes += static_cast<std::int64_t>(s.data.size());
      if (metric_streams_remote_ != nullptr) {
        metric_streams_remote_->inc();
        metric_stream_bytes_->inc(static_cast<std::int64_t>(s.data.size()));
      }
      remote_staging_[static_cast<std::size_t>(dest.value())].push_back(
          std::move(s));
    }
  }
}

void Engine::flush_remote() {
  for (int r = 0; r < ctx_.size(); ++r) {
    auto& staged = remote_staging_[static_cast<std::size_t>(r)];
    if (staged.empty()) continue;
    const std::int64_t pack_t0 =
        trace_master_ != nullptr ? config_.recorder->now_ns() : 0;
    // The message inherits the most urgent stream batched into it, so the
    // whole batch drains ahead of shallower traffic at the receiver.
    double priority = staged.front().priority;
    for (const auto& s : staged) priority = std::max(priority, s.priority);
    comm::Bytes payload = pack_streams(staged);
    const auto payload_bytes = static_cast<std::int64_t>(payload.size());
    ctx_.send(RankId{r}, comm::kTagStream, std::move(payload), priority);
    if (trace_master_ != nullptr) {
      auto e = trace::make_span(trace::EventKind::Pack, pack_t0,
                                config_.recorder->now_ns());
      e.bytes = payload_bytes;
      trace_master_->record(e);
    }
    ++stats_.messages_sent;
    if (metric_messages_ != nullptr) metric_messages_->inc();
    // The streams' payloads were copied onto the wire; recycle them.
    for (auto& s : staged) buffer_pool_.release(std::move(s.data));
    staged.clear();
  }
}

void Engine::process_message(const comm::Message& msg,
                             comm::SafraDetector* detector) {
  switch (msg.tag) {
    case comm::kTagStream: {
      if (detector != nullptr) detector->note_basic_recv();
      // Within the batch, deliver deepest-critical-path streams first:
      // their target programs get queued (and stolen) ahead of the rest.
      auto streams = unpack_streams(msg.payload);
      std::stable_sort(streams.begin(), streams.end(),
                       [](const Stream& a, const Stream& b) {
                         return a.priority > b.priority;
                       });
      for (auto& s : streams) deliver_local(std::move(s));
      break;
    }
    case comm::kTagToken:
      JSWEEP_CHECK(detector != nullptr);
      detector->on_token(msg);
      break;
    case comm::kTagTerminate:
      JSWEEP_CHECK(detector != nullptr);
      detector->on_terminate();
      break;
    default:
      JSWEEP_CHECK_MSG(false, "unexpected message tag " << msg.tag);
  }
}

bool Engine::locally_idle() const {
  if (active_programs_ != 0) return false;
  if (completions_pending_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& staged : remote_staging_)
    if (!staged.empty()) return false;
  return ctx_.pending_messages() == 0;
}

void Engine::run() {
  JSWEEP_CHECK_MSG(!patch_owner_.empty(), "set_routes() before run()");
  stats_ = EngineStats{};
  if (metric_runs_ != nullptr) metric_runs_->inc();
  WallTimer total_timer;
  IntervalAccumulator route_time;
  trace_master_ = config_.recorder != nullptr
                      ? &config_.recorder->track(ctx_.rank().value(),
                                                 trace::kMasterTrack)
                      : nullptr;

  // Reset per-run program state; init() re-runs on first execution, which
  // is exactly Listing 1's per-sweep re-initialization.
  worker_error_ = nullptr;
  local_remaining_ = 0;
  active_programs_ = 0;
  for (auto& [key, ps] : programs_) {
    ps->initialized = false;
    ps->state = ProgramState::St::Idle;
    ps->inbox.clear();
    if (ps->enabled) local_remaining_ += ps->program->total_work();
  }

  // Launch workers. Each gets a private, seed-derived rotation state so
  // steal-victim orders are reproducible run to run.
  workers_.clear();
  queued_total_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(i));
    workers_.back()->rng =
        mix64(config_.scheduler_seed ^ (static_cast<std::uint64_t>(i) + 1));
  }
  for (auto& w : workers_)
    w->thread = std::thread([this, &w = *w] { worker_loop(w); });

  // Queue the initially-active programs, highest priority first so worker
  // queues start in priority order.
  {
    std::vector<ProgramState*> initial;
    for (auto& [key, ps] : programs_)
      if (ps->enabled && ps->initially_active) initial.push_back(ps.get());
    std::sort(initial.begin(), initial.end(),
              [](const ProgramState* a, const ProgramState* b) {
                if (a->priority != b->priority)
                  return a->priority > b->priority;
                return a->program->key() < b->program->key();
              });
    for (auto* ps : initial) {
      ps->state = ProgramState::St::Active;
      ++active_programs_;
      enqueue(*ps);
    }
  }

  std::optional<comm::SafraDetector> detector;
  if (config_.termination == TerminationMode::Safra) detector.emplace(ctx_);
  comm::SafraDetector* det = detector ? &*detector : nullptr;

  // Whatever happens in the master loop, workers must be stopped and
  // joined before leaving (a joinable std::thread destructor terminates).
  const auto stop_workers = [this] {
    for (auto& w : workers_) {
      {
        const std::lock_guard<std::mutex> lock(w->mutex);
        w->stop.store(true, std::memory_order_relaxed);
      }
      w->cv.notify_all();
    }
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
      stats_.worker_busy_seconds += w->busy_seconds;
      stats_.worker_idle_seconds += w->idle_seconds;
      stats_.steal_attempts += w->steal_attempts;
      stats_.steals += w->steals;
    }
    workers_.clear();
  };

  try {
    master_loop(det, route_time);
  } catch (...) {
    stop_workers();
    throw;
  }
  stop_workers();

  stats_.master_route_seconds = route_time.seconds();
  stats_.elapsed_seconds = total_timer.seconds();
  if (metric_idle_fraction_ != nullptr)
    metric_idle_fraction_->set(stats_.idle_fraction());
  if (metric_pool_hit_ratio_ != nullptr) {
    const auto acquires = buffer_pool_.acquires();
    metric_pool_hit_ratio_->set(
        acquires > 0 ? static_cast<double>(buffer_pool_.reuses()) /
                           static_cast<double>(acquires)
                     : 0.0);
  }
  JSWEEP_CHECK_MSG(local_remaining_ == 0 || det != nullptr,
                   "engine terminated with " << local_remaining_
                                             << " work units outstanding");
}

void Engine::master_loop(comm::SafraDetector* det,
                         IntervalAccumulator& route_time) {
  trace::Recorder* const rec = config_.recorder;
  trace::Track* const mt = trace_master_;
  // Consecutive empty polls coalesce into one master idle span, closed at
  // the timestamp where the next iteration's work began (iter_t0) so idle
  // never overlaps the Route/Pack/Collective spans recorded after it.
  std::int64_t idle_t0 = -1;
  std::int64_t iter_t0 = 0;
  for (;;) {
    bool progress = false;
    if (mt != nullptr) iter_t0 = rec->now_ns();

    // 0. Worker failures abort the run.
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (worker_error_) std::rethrow_exception(worker_error_);
    }

    // 1. Incoming messages.
    while (auto msg = ctx_.try_recv()) {
      route_time.start();
      const std::int64_t route_t0 = mt != nullptr ? rec->now_ns() : 0;
      process_message(*msg, det);
      if (mt != nullptr)
        mt->record(trace::make_span(trace::EventKind::Route, route_t0,
                                    rec->now_ns()));
      route_time.stop();
      progress = true;
    }

    // 2. Worker completions.
    if (completions_pending_.load(std::memory_order_acquire) > 0) {
      std::vector<Completion> batch;
      {
        const std::lock_guard<std::mutex> lock(completion_mutex_);
        batch.swap(completions_);
      }
      completions_pending_.fetch_sub(
          static_cast<std::int64_t>(batch.size()), std::memory_order_release);
      if (metric_executions_ != nullptr)
        metric_executions_->inc(static_cast<std::int64_t>(batch.size()));
      route_time.start();
      const std::int64_t route_t0 = mt != nullptr ? rec->now_ns() : 0;
      for (auto& c : batch) {
        ++stats_.executions;
        local_remaining_ -= c.retired;
        if (det != nullptr && !c.outputs.empty()) det->on_active();
        route_outputs(std::move(c.outputs));
        ProgramState& ps = *c.ps;
        bool inbox_nonempty;
        {
          const std::lock_guard<std::mutex> lock(ps.inbox_mutex);
          inbox_nonempty = !ps.inbox.empty();
        }
        if (!c.halted || inbox_nonempty) {
          enqueue(ps);  // still Active
        } else {
          ps.state = ProgramState::St::Idle;
          --active_programs_;
        }
      }
      if (mt != nullptr)
        mt->record(trace::make_span(trace::EventKind::Route, route_t0,
                                    rec->now_ns()));
      route_time.stop();
      progress = true;
    }

    // 3. Ship staged remote streams.
    route_time.start();
    if (det != nullptr) {
      // Safra counts wire messages, not streams.
      const std::int64_t before = stats_.messages_sent;
      flush_remote();
      for (std::int64_t i = before; i < stats_.messages_sent; ++i)
        det->note_basic_send();
    } else {
      flush_remote();
    }
    route_time.stop();

    // Close a pending master idle span once progress resumes.
    if (mt != nullptr && idle_t0 >= 0 && progress) {
      mt->record(
          trace::make_span(trace::EventKind::Idle, idle_t0, iter_t0));
      idle_t0 = -1;
    }

    // 4. Termination.
    if (config_.termination == TerminationMode::KnownWorkload) {
      if (local_remaining_ == 0 && active_programs_ == 0 &&
          completions_pending_.load(std::memory_order_acquire) == 0) {
        // Workload-commitment fast path (Sec. III-B): every rank joins one
        // collective when its committed workload is fully retired.
        const std::int64_t coll_t0 = mt != nullptr ? rec->now_ns() : 0;
        ctx_.allreduce_sum(std::int64_t{0});
        if (mt != nullptr)
          mt->record(trace::make_span(trace::EventKind::Collective, coll_t0,
                                      rec->now_ns()));
        break;
      }
    } else {
      if (det->terminated()) break;
      if (!progress && locally_idle()) {
        det->on_idle();
        if (det->terminated()) break;
      }
    }

    if (!progress) {
      if (mt != nullptr && idle_t0 < 0) idle_t0 = rec->now_ns();
      // Master idle is accounted per blocked wait (always on, unlike the
      // coalesced trace spans): the polling overhead between waits is
      // negligible next to the 50 µs wait quantum.
      WallTimer wait_timer;
      ctx_.wait_message(std::chrono::microseconds(50));
      const double waited = wait_timer.seconds();
      stats_.master_idle_seconds += waited;
      if (metric_master_idle_ != nullptr) metric_master_idle_->add(waited);
    }
  }
  if (mt != nullptr && idle_t0 >= 0)
    mt->record(trace::make_span(trace::EventKind::Idle, idle_t0, iter_t0));
}

}  // namespace jsweep::core
