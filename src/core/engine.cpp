#include "core/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <queue>
#include <thread>

#include "metrics/metrics.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "trace/trace.hpp"

namespace jsweep::core {

namespace {

/// Idle waits shorter than this are not worth a trace event.
constexpr std::int64_t kMinTracedIdleNs = 1000;

}  // namespace

struct Engine::ProgramState {
  std::unique_ptr<PatchProgram> program;
  double priority = 0.0;
  bool initially_active = true;
  /// Disabled programs sit out whole runs: no workload contribution, no
  /// startup queueing, and any stream delivered to one is an error.
  bool enabled = true;
  bool initialized = false;
  /// Idle = not queued or running (the paper's "inactive"); Active covers
  /// both queued and running — a program has at most one outstanding
  /// execution at a time.
  enum class St { Idle, Active } state = St::Idle;
  std::mutex inbox_mutex;
  std::vector<Stream> inbox;
};

struct Engine::Completion {
  ProgramState* ps = nullptr;
  bool halted = true;
  std::int64_t retired = 0;
  std::vector<Stream> outputs;
};

struct Engine::Worker {
  explicit Worker(int id_in) : id(id_in) {}

  struct Entry {
    double priority;
    std::uint64_t seq;
    ProgramState* ps;
    /// Max-heap by priority; FIFO (by sequence) among equals.
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return seq > o.seq;
    }
  };

  int id;
  std::mutex mutex;
  std::condition_variable cv;
  std::priority_queue<Entry> queue;
  std::atomic<std::int64_t> load{0};
  bool stop = false;
  std::thread thread;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
};

Engine::Engine(comm::Context& ctx, EngineConfig config)
    : ctx_(ctx), config_(config) {
  JSWEEP_CHECK_MSG(config_.num_workers >= 1,
                   "engine needs at least one worker thread");
  remote_staging_.resize(static_cast<std::size_t>(ctx_.size()));
  if (metrics::Registry* reg = config_.metrics; reg != nullptr) {
    const metrics::Labels rank{{"rank", std::to_string(ctx_.rank().value())}};
    metric_executions_ = &reg->counter("jsweep_engine_executions_total",
                                       "patch-program executions", rank);
    metric_streams_local_ =
        &reg->counter("jsweep_engine_streams_total",
                      "streams routed, by delivery path",
                      {{"rank", std::to_string(ctx_.rank().value())},
                       {"path", "local"}});
    metric_streams_remote_ =
        &reg->counter("jsweep_engine_streams_total",
                      "streams routed, by delivery path",
                      {{"rank", std::to_string(ctx_.rank().value())},
                       {"path", "remote"}});
    metric_stream_bytes_ = &reg->counter(
        "jsweep_engine_stream_bytes_total",
        "payload bytes of streams shipped across ranks", rank);
    metric_messages_ = &reg->counter("jsweep_engine_messages_total",
                                     "wire messages (batched streams)", rank);
    metric_runs_ =
        &reg->counter("jsweep_engine_runs_total", "engine run() calls", rank);
    metric_queue_depth_ =
        &reg->gauge("jsweep_engine_queue_depth",
                    "patch-programs queued or running on workers", rank);
    metric_worker_busy_ = &reg->gauge(
        "jsweep_engine_worker_busy_seconds",
        "cumulative worker busy seconds (execution + bookkeeping)", rank);
    metric_worker_idle_ =
        &reg->gauge("jsweep_engine_worker_idle_seconds",
                    "cumulative worker seconds blocked with no work", rank);
    metric_master_idle_ =
        &reg->gauge("jsweep_engine_master_idle_seconds",
                    "cumulative master seconds blocked waiting for messages",
                    rank);
    metric_pool_hit_ratio_ =
        &reg->gauge("jsweep_engine_buffer_pool_hit_ratio",
                    "fraction of stream-buffer acquires served from the "
                    "free list (lifetime)",
                    rank);
  }
}

Engine::~Engine() = default;

void Engine::add_program(std::unique_ptr<PatchProgram> program,
                         double priority, bool initially_active) {
  JSWEEP_CHECK(program != nullptr);
  const ProgramKey key = program->key();
  auto ps = std::make_unique<ProgramState>();
  ps->program = std::move(program);
  ps->priority = priority;
  ps->initially_active = initially_active;
  const auto [it, inserted] = programs_.emplace(key, std::move(ps));
  JSWEEP_CHECK_MSG(inserted, "duplicate patch-program " << key);
}

void Engine::set_routes(std::vector<RankId> patch_owner) {
  patch_owner_ = std::move(patch_owner);
}

void Engine::set_program_enabled(const ProgramKey& key, bool enabled) {
  const auto it = programs_.find(key);
  JSWEEP_CHECK_MSG(it != programs_.end(),
                   "set_program_enabled: no program " << key << " on rank "
                                                      << ctx_.rank());
  it->second->enabled = enabled;
}

void Engine::worker_loop(Worker& w) {
  trace::Recorder* const rec = config_.recorder;
  trace::Track* const tr =
      rec != nullptr ? &rec->track(ctx_.rank().value(), w.id) : nullptr;
  // Every instant of the loop's lifetime lands in exactly one of the two
  // buckets — idle while blocked in the condition wait, busy otherwise
  // (execution plus queue/completion bookkeeping) — so that
  // busy + idle ≈ elapsed × num_workers holds for EngineStats.
  WallTimer timer;
  for (;;) {
    ProgramState* ps = nullptr;
    {
      std::unique_lock<std::mutex> lock(w.mutex);
      const double busy_delta = timer.seconds();
      w.busy_seconds += busy_delta;
      if (metric_worker_busy_ != nullptr) metric_worker_busy_->add(busy_delta);
      timer.reset();
      const std::int64_t idle_t0 = tr != nullptr ? rec->now_ns() : 0;
      w.cv.wait(lock, [&] { return w.stop || !w.queue.empty(); });
      const double idle_delta = timer.seconds();
      w.idle_seconds += idle_delta;
      if (metric_worker_idle_ != nullptr) metric_worker_idle_->add(idle_delta);
      timer.reset();
      if (tr != nullptr) {
        const std::int64_t idle_t1 = rec->now_ns();
        if (idle_t1 - idle_t0 >= kMinTracedIdleNs)
          tr->record(
              trace::make_span(trace::EventKind::Idle, idle_t0, idle_t1));
      }
      if (w.queue.empty()) {
        if (w.stop) return;
        continue;
      }
      ps = w.queue.top().ps;
      w.queue.pop();
    }
    if (metric_queue_depth_ != nullptr) metric_queue_depth_->add(-1.0);
    const std::int64_t exec_t0 = tr != nullptr ? rec->now_ns() : 0;
    try {
      Completion c = execute(*ps);
      if (tr != nullptr) {
        auto e =
            trace::make_span(trace::EventKind::Exec, exec_t0, rec->now_ns());
        e.src = ps->program->key();
        e.bytes = c.retired;
        tr->record(e);
      }
      {
        const std::lock_guard<std::mutex> lock(completion_mutex_);
        completions_.push_back(std::move(c));
      }
      completions_pending_.fetch_add(1, std::memory_order_release);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    w.load.fetch_sub(1, std::memory_order_relaxed);
  }
}

Engine::Completion Engine::execute(ProgramState& ps) {
  PatchProgram& prog = *ps.program;
  if (!ps.initialized) {
    prog.init();
    ps.initialized = true;
  }
  std::vector<Stream> arrived;
  {
    const std::lock_guard<std::mutex> lock(ps.inbox_mutex);
    arrived.swap(ps.inbox);
  }
  for (auto& s : arrived) {
    prog.input(s);
    // Payload consumed; recycle the buffer for a future encode.
    buffer_pool_.release(std::move(s.data));
  }

  const std::int64_t before = prog.remaining_work();
  prog.compute();
  const std::int64_t after = prog.remaining_work();

  Completion c;
  c.ps = &ps;
  c.retired = before - after;
  while (auto out = prog.output()) c.outputs.push_back(std::move(*out));
  c.halted = prog.vote_to_halt();
  return c;
}

void Engine::enqueue(ProgramState& ps) {
  // Dynamic owner assignment: route the program to the lightest worker
  // (Sec. IV-B). Deterministic tie-break on worker id.
  Worker* lightest = workers_.front().get();
  for (const auto& w : workers_) {
    if (w->load.load(std::memory_order_relaxed) <
        lightest->load.load(std::memory_order_relaxed))
      lightest = w.get();
  }
  lightest->load.fetch_add(1, std::memory_order_relaxed);
  if (metric_queue_depth_ != nullptr) metric_queue_depth_->add(1.0);
  {
    const std::lock_guard<std::mutex> lock(lightest->mutex);
    lightest->queue.push(Worker::Entry{ps.priority, enqueue_seq_++, &ps});
  }
  lightest->cv.notify_one();
}

void Engine::deliver_local(Stream stream) {
  const auto it = programs_.find(stream.dst);
  JSWEEP_CHECK_MSG(it != programs_.end(),
                   "stream routed to " << stream.dst
                                       << " but no such program on rank "
                                       << ctx_.rank());
  ProgramState& ps = *it->second;
  JSWEEP_CHECK_MSG(ps.enabled, "stream from " << stream.src << " targets "
                                              << stream.dst
                                              << ", which is disabled");
  if (trace_master_ != nullptr) {
    auto e = trace::make_instant(trace::EventKind::StreamRecv,
                                 config_.recorder->now_ns());
    e.src = stream.src;
    e.dst = stream.dst;
    e.bytes = static_cast<std::int64_t>(stream.data.size());
    trace_master_->record(e);
  }
  {
    const std::lock_guard<std::mutex> lock(ps.inbox_mutex);
    ps.inbox.push_back(std::move(stream));
  }
  if (ps.state == ProgramState::St::Idle) {
    ps.state = ProgramState::St::Active;
    ++active_programs_;
    enqueue(ps);
  }
}

void Engine::route_outputs(std::vector<Stream>&& outputs) {
  for (auto& s : outputs) {
    JSWEEP_CHECK_MSG(
        s.dst.patch.valid() &&
            static_cast<std::size_t>(s.dst.patch.value()) <
                patch_owner_.size(),
        "stream targets unknown patch " << s.dst.patch);
    const RankId dest =
        patch_owner_[static_cast<std::size_t>(s.dst.patch.value())];
    if (trace_master_ != nullptr) {
      auto e = trace::make_instant(trace::EventKind::StreamSend,
                                   config_.recorder->now_ns());
      e.src = s.src;
      e.dst = s.dst;
      e.bytes = static_cast<std::int64_t>(s.data.size());
      trace_master_->record(e);
    }
    if (dest == ctx_.rank()) {
      ++stats_.streams_local;
      if (metric_streams_local_ != nullptr) metric_streams_local_->inc();
      deliver_local(std::move(s));
    } else {
      ++stats_.streams_remote;
      stats_.stream_bytes += static_cast<std::int64_t>(s.data.size());
      if (metric_streams_remote_ != nullptr) {
        metric_streams_remote_->inc();
        metric_stream_bytes_->inc(static_cast<std::int64_t>(s.data.size()));
      }
      remote_staging_[static_cast<std::size_t>(dest.value())].push_back(
          std::move(s));
    }
  }
}

void Engine::flush_remote() {
  for (int r = 0; r < ctx_.size(); ++r) {
    auto& staged = remote_staging_[static_cast<std::size_t>(r)];
    if (staged.empty()) continue;
    const std::int64_t pack_t0 =
        trace_master_ != nullptr ? config_.recorder->now_ns() : 0;
    comm::Bytes payload = pack_streams(staged);
    const auto payload_bytes = static_cast<std::int64_t>(payload.size());
    ctx_.send(RankId{r}, comm::kTagStream, std::move(payload));
    if (trace_master_ != nullptr) {
      auto e = trace::make_span(trace::EventKind::Pack, pack_t0,
                                config_.recorder->now_ns());
      e.bytes = payload_bytes;
      trace_master_->record(e);
    }
    ++stats_.messages_sent;
    if (metric_messages_ != nullptr) metric_messages_->inc();
    // The streams' payloads were copied onto the wire; recycle them.
    for (auto& s : staged) buffer_pool_.release(std::move(s.data));
    staged.clear();
  }
}

void Engine::process_message(const comm::Message& msg,
                             comm::SafraDetector* detector) {
  switch (msg.tag) {
    case comm::kTagStream: {
      if (detector != nullptr) detector->note_basic_recv();
      for (auto& s : unpack_streams(msg.payload)) deliver_local(std::move(s));
      break;
    }
    case comm::kTagToken:
      JSWEEP_CHECK(detector != nullptr);
      detector->on_token(msg);
      break;
    case comm::kTagTerminate:
      JSWEEP_CHECK(detector != nullptr);
      detector->on_terminate();
      break;
    default:
      JSWEEP_CHECK_MSG(false, "unexpected message tag " << msg.tag);
  }
}

bool Engine::locally_idle() const {
  if (active_programs_ != 0) return false;
  if (completions_pending_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& staged : remote_staging_)
    if (!staged.empty()) return false;
  return ctx_.pending_messages() == 0;
}

void Engine::run() {
  JSWEEP_CHECK_MSG(!patch_owner_.empty(), "set_routes() before run()");
  stats_ = EngineStats{};
  if (metric_runs_ != nullptr) metric_runs_->inc();
  WallTimer total_timer;
  IntervalAccumulator route_time;
  trace_master_ = config_.recorder != nullptr
                      ? &config_.recorder->track(ctx_.rank().value(),
                                                 trace::kMasterTrack)
                      : nullptr;

  // Reset per-run program state; init() re-runs on first execution, which
  // is exactly Listing 1's per-sweep re-initialization.
  worker_error_ = nullptr;
  local_remaining_ = 0;
  active_programs_ = 0;
  for (auto& [key, ps] : programs_) {
    ps->initialized = false;
    ps->state = ProgramState::St::Idle;
    ps->inbox.clear();
    if (ps->enabled) local_remaining_ += ps->program->total_work();
  }

  // Launch workers.
  workers_.clear();
  for (int i = 0; i < config_.num_workers; ++i)
    workers_.push_back(std::make_unique<Worker>(i));
  for (auto& w : workers_)
    w->thread = std::thread([this, &w = *w] { worker_loop(w); });

  // Queue the initially-active programs, highest priority first so worker
  // queues start in priority order.
  {
    std::vector<ProgramState*> initial;
    for (auto& [key, ps] : programs_)
      if (ps->enabled && ps->initially_active) initial.push_back(ps.get());
    std::sort(initial.begin(), initial.end(),
              [](const ProgramState* a, const ProgramState* b) {
                if (a->priority != b->priority)
                  return a->priority > b->priority;
                return a->program->key() < b->program->key();
              });
    for (auto* ps : initial) {
      ps->state = ProgramState::St::Active;
      ++active_programs_;
      enqueue(*ps);
    }
  }

  std::optional<comm::SafraDetector> detector;
  if (config_.termination == TerminationMode::Safra) detector.emplace(ctx_);
  comm::SafraDetector* det = detector ? &*detector : nullptr;

  // Whatever happens in the master loop, workers must be stopped and
  // joined before leaving (a joinable std::thread destructor terminates).
  const auto stop_workers = [this] {
    for (auto& w : workers_) {
      {
        const std::lock_guard<std::mutex> lock(w->mutex);
        w->stop = true;
      }
      w->cv.notify_all();
    }
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
      stats_.worker_busy_seconds += w->busy_seconds;
      stats_.worker_idle_seconds += w->idle_seconds;
    }
    workers_.clear();
  };

  try {
    master_loop(det, route_time);
  } catch (...) {
    stop_workers();
    throw;
  }
  stop_workers();

  stats_.master_route_seconds = route_time.seconds();
  stats_.elapsed_seconds = total_timer.seconds();
  if (metric_pool_hit_ratio_ != nullptr) {
    const auto acquires = buffer_pool_.acquires();
    metric_pool_hit_ratio_->set(
        acquires > 0 ? static_cast<double>(buffer_pool_.reuses()) /
                           static_cast<double>(acquires)
                     : 0.0);
  }
  JSWEEP_CHECK_MSG(local_remaining_ == 0 || det != nullptr,
                   "engine terminated with " << local_remaining_
                                             << " work units outstanding");
}

void Engine::master_loop(comm::SafraDetector* det,
                         IntervalAccumulator& route_time) {
  trace::Recorder* const rec = config_.recorder;
  trace::Track* const mt = trace_master_;
  // Consecutive empty polls coalesce into one master idle span, closed at
  // the timestamp where the next iteration's work began (iter_t0) so idle
  // never overlaps the Route/Pack/Collective spans recorded after it.
  std::int64_t idle_t0 = -1;
  std::int64_t iter_t0 = 0;
  for (;;) {
    bool progress = false;
    if (mt != nullptr) iter_t0 = rec->now_ns();

    // 0. Worker failures abort the run.
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (worker_error_) std::rethrow_exception(worker_error_);
    }

    // 1. Incoming messages.
    while (auto msg = ctx_.try_recv()) {
      route_time.start();
      const std::int64_t route_t0 = mt != nullptr ? rec->now_ns() : 0;
      process_message(*msg, det);
      if (mt != nullptr)
        mt->record(trace::make_span(trace::EventKind::Route, route_t0,
                                    rec->now_ns()));
      route_time.stop();
      progress = true;
    }

    // 2. Worker completions.
    if (completions_pending_.load(std::memory_order_acquire) > 0) {
      std::vector<Completion> batch;
      {
        const std::lock_guard<std::mutex> lock(completion_mutex_);
        batch.swap(completions_);
      }
      completions_pending_.fetch_sub(
          static_cast<std::int64_t>(batch.size()), std::memory_order_release);
      if (metric_executions_ != nullptr)
        metric_executions_->inc(static_cast<std::int64_t>(batch.size()));
      route_time.start();
      const std::int64_t route_t0 = mt != nullptr ? rec->now_ns() : 0;
      for (auto& c : batch) {
        ++stats_.executions;
        local_remaining_ -= c.retired;
        if (det != nullptr && !c.outputs.empty()) det->on_active();
        route_outputs(std::move(c.outputs));
        ProgramState& ps = *c.ps;
        bool inbox_nonempty;
        {
          const std::lock_guard<std::mutex> lock(ps.inbox_mutex);
          inbox_nonempty = !ps.inbox.empty();
        }
        if (!c.halted || inbox_nonempty) {
          enqueue(ps);  // still Active
        } else {
          ps.state = ProgramState::St::Idle;
          --active_programs_;
        }
      }
      if (mt != nullptr)
        mt->record(trace::make_span(trace::EventKind::Route, route_t0,
                                    rec->now_ns()));
      route_time.stop();
      progress = true;
    }

    // 3. Ship staged remote streams.
    route_time.start();
    if (det != nullptr) {
      // Safra counts wire messages, not streams.
      const std::int64_t before = stats_.messages_sent;
      flush_remote();
      for (std::int64_t i = before; i < stats_.messages_sent; ++i)
        det->note_basic_send();
    } else {
      flush_remote();
    }
    route_time.stop();

    // Close a pending master idle span once progress resumes.
    if (mt != nullptr && idle_t0 >= 0 && progress) {
      mt->record(
          trace::make_span(trace::EventKind::Idle, idle_t0, iter_t0));
      idle_t0 = -1;
    }

    // 4. Termination.
    if (config_.termination == TerminationMode::KnownWorkload) {
      if (local_remaining_ == 0 && active_programs_ == 0 &&
          completions_pending_.load(std::memory_order_acquire) == 0) {
        // Workload-commitment fast path (Sec. III-B): every rank joins one
        // collective when its committed workload is fully retired.
        const std::int64_t coll_t0 = mt != nullptr ? rec->now_ns() : 0;
        ctx_.allreduce_sum(std::int64_t{0});
        if (mt != nullptr)
          mt->record(trace::make_span(trace::EventKind::Collective, coll_t0,
                                      rec->now_ns()));
        break;
      }
    } else {
      if (det->terminated()) break;
      if (!progress && locally_idle()) {
        det->on_idle();
        if (det->terminated()) break;
      }
    }

    if (!progress) {
      if (mt != nullptr && idle_t0 < 0) idle_t0 = rec->now_ns();
      // Master idle is accounted per blocked wait (always on, unlike the
      // coalesced trace spans): the polling overhead between waits is
      // negligible next to the 50 µs wait quantum.
      WallTimer wait_timer;
      ctx_.wait_message(std::chrono::microseconds(50));
      const double waited = wait_timer.seconds();
      stats_.master_idle_seconds += waited;
      if (metric_master_idle_ != nullptr) metric_master_idle_->add(waited);
    }
  }
  if (mt != nullptr && idle_t0 >= 0)
    mt->record(trace::make_span(trace::EventKind::Idle, idle_t0, iter_t0));
}

}  // namespace jsweep::core
