#pragma once

/// \file bsp_engine.hpp
/// Bulk-synchronous baseline engine: the "previous JAxMIN" execution model
/// the paper compares against (Fig. 17). The same patch-programs run in
/// supersteps — every active program computes once per superstep using the
/// data available at the step's start, then all streams are exchanged at
/// the superstep boundary, then a collective checks for termination.
///
/// Because a patch-program typically cannot finish in one execution (zig-
/// zag dependencies, Sec. II-D), a sweep needs many supersteps, each paying
/// a full barrier + allreduce — exactly the inefficiency that motivates the
/// data-driven engine.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "comm/cluster.hpp"
#include "core/buffer_pool.hpp"
#include "core/patch_program.hpp"
#include "core/thread_pool.hpp"

namespace jsweep::trace {
class Recorder;
class Track;
}  // namespace jsweep::trace

namespace jsweep::core {

struct BspConfig {
  /// Threads used for the compute phase (the calling thread also works, so
  /// effective parallelism is num_threads + 1).
  int num_threads = 1;
  /// When non-null, supersteps/executions/streams are recorded into this
  /// recorder (trace/trace.hpp); null disables tracing.
  trace::Recorder* recorder = nullptr;
};

struct BspStats {
  double elapsed_seconds = 0.0;
  std::int64_t supersteps = 0;
  std::int64_t executions = 0;
  std::int64_t streams_local = 0;
  std::int64_t streams_remote = 0;
  std::int64_t stream_bytes = 0;
};

class BspEngine {
 public:
  BspEngine(comm::Context& ctx, BspConfig config);

  void add_program(std::unique_ptr<PatchProgram> program,
                   bool initially_active = true);
  void set_routes(std::vector<RankId> patch_owner);

  /// Run supersteps to global termination (remaining work reaches zero on
  /// every rank). Collective.
  void run();

  [[nodiscard]] const BspStats& stats() const { return stats_; }

  /// Stream payload recycling (see core::Engine::buffer_pool).
  [[nodiscard]] BufferPool& buffer_pool() { return buffer_pool_; }

 private:
  struct Slot {
    std::unique_ptr<PatchProgram> program;
    bool initialized = false;
    bool initially_active = true;
    bool active = false;
    std::vector<Stream> inbox;
    std::vector<Stream> outbox;
    bool halted = false;
  };

  void deliver(Stream s);

  comm::Context& ctx_;
  BspConfig config_;
  BspStats stats_;
  BufferPool buffer_pool_;
  trace::Track* trace_master_ = nullptr;  ///< this rank's master track
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unordered_map<ProgramKey, Slot*> by_key_;
  std::vector<RankId> patch_owner_;
};

}  // namespace jsweep::core
