#pragma once

/// \file bsp_engine.hpp
/// Bulk-synchronous baseline engine: the "previous JAxMIN" execution model
/// the paper compares against (Fig. 17). The same patch-programs run in
/// supersteps — every active program computes once per superstep using the
/// data available at the step's start, then all streams are exchanged at
/// the superstep boundary, then a collective checks for termination.
///
/// Because a patch-program typically cannot finish in one execution (zig-
/// zag dependencies, Sec. II-D), a sweep needs many supersteps, each paying
/// a full barrier + allreduce — exactly the inefficiency that motivates the
/// data-driven engine.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "comm/cluster.hpp"
#include "core/buffer_pool.hpp"
#include "core/patch_program.hpp"
#include "core/thread_pool.hpp"

namespace jsweep::trace {
class Recorder;
class Track;
}  // namespace jsweep::trace

namespace jsweep::metrics {
class Counter;
class Registry;
}  // namespace jsweep::metrics

namespace jsweep::core {

/// Construction-time knobs of the BSP engine.
struct BspConfig {
  /// Threads used for the compute phase (the calling thread also works, so
  /// effective parallelism is num_threads + 1).
  int num_threads = 1;
  /// When non-null, supersteps/executions/streams are recorded into this
  /// recorder (trace/trace.hpp); null disables tracing.
  trace::Recorder* recorder = nullptr;
  /// When non-null, the engine publishes live `jsweep_bsp_*` counters
  /// (supersteps, executions, stream traffic) into this registry, labelled
  /// by rank; null (the default) disables metrics (one pointer check).
  metrics::Registry* metrics = nullptr;
};

/// Counters of the last BspEngine::run().
struct BspStats {
  double elapsed_seconds = 0.0;      ///< wall time of the run
  std::int64_t supersteps = 0;       ///< barrier-separated supersteps
  std::int64_t executions = 0;       ///< program compute() executions
  std::int64_t streams_local = 0;    ///< streams delivered on-rank
  std::int64_t streams_remote = 0;   ///< streams shipped across ranks
  std::int64_t stream_bytes = 0;     ///< payload bytes moved
};

/// The superstep baseline engine (see \ref bsp_engine.hpp). Same
/// registration surface as core::Engine, barriered execution model.
class BspEngine {
 public:
  /// `ctx` must outlive the engine; `config` is fixed for its lifetime.
  BspEngine(comm::Context& ctx, BspConfig config);

  /// Register a program (pre-run). `initially_active` = false parks it
  /// until its first incoming stream (e.g. pipelined multigroup gates).
  void add_program(std::unique_ptr<PatchProgram> program,
                   bool initially_active = true);
  /// Install the patch → owner-rank route table (pre-run, all ranks).
  void set_routes(std::vector<RankId> patch_owner);

  /// Run supersteps to global termination (remaining work reaches zero on
  /// every rank). Collective.
  void run();

  /// Counters of the last run().
  [[nodiscard]] const BspStats& stats() const { return stats_; }

  /// Stream payload recycling (see core::Engine::buffer_pool).
  [[nodiscard]] BufferPool& buffer_pool() { return buffer_pool_; }

 private:
  struct Slot {
    std::unique_ptr<PatchProgram> program;
    bool initialized = false;
    bool initially_active = true;
    bool active = false;
    std::vector<Stream> inbox;
    std::vector<Stream> outbox;
    bool halted = false;
  };

  void deliver(Stream s);

  comm::Context& ctx_;
  BspConfig config_;
  BspStats stats_;
  BufferPool buffer_pool_;
  trace::Track* trace_master_ = nullptr;  ///< this rank's master track

  // Live instruments, created once at construction when config_.metrics is
  // set (all null otherwise).
  metrics::Counter* metric_supersteps_ = nullptr;
  metrics::Counter* metric_executions_ = nullptr;
  metrics::Counter* metric_streams_local_ = nullptr;
  metrics::Counter* metric_streams_remote_ = nullptr;
  metrics::Counter* metric_stream_bytes_ = nullptr;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unordered_map<ProgramKey, Slot*> by_key_;
  std::vector<RankId> patch_owner_;
};

}  // namespace jsweep::core
