#pragma once

/// \file coarsen.hpp
/// Coarsened graph (Sec. V-E): cache the vertex-clustering decisions of a
/// first data-driven sweep and replay later iterations on the much smaller
/// cluster-level task graph. The coarse graph is a property graph
/// CG = (CV, CE, P(CV), P(CE)): P(cv) is the ordered list of fine vertices
/// a cluster executes, P(ce) the fine edges a coarse edge aggregates.
///
/// Theorem 1 of the paper: if the fine graph is acyclic and clusters are
/// formed by a valid execution (cluster indices never decrease along fine
/// edges), the coarsened graph is acyclic. `coarsen` checks the premise and
/// the test suite property-tests the conclusion.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace jsweep::graph {

/// The property graph CG = (CV, CE, P(CV), P(CE)) produced by coarsen().
struct CoarsenedGraph {
  std::int32_t num_clusters = 0;  ///< |CV|
  Digraph coarse;  ///< cluster-level DAG (deduplicated edges)
  /// P(CV): fine vertices per cluster, in execution order.
  std::vector<std::vector<std::int32_t>> members;
  /// CE as (source, target) cluster pairs, in `coarse`'s edge order.
  std::vector<std::pair<std::int32_t, std::int32_t>> coarse_edges;
  /// P(CE): fine (u, v) edges aggregated by each coarse edge, indexed the
  /// same way as `coarse_edges`.
  std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> edge_members;
};

/// Build the coarsened graph from a cluster assignment. `cluster_of[v]`
/// must be in [0, num_clusters) for every fine vertex, and for every fine
/// edge (u, v), cluster_of[u] <= cluster_of[v] (the condition a sequential
/// patch-program execution guarantees); violations throw. Intra-cluster
/// edges are absorbed into the cluster.
CoarsenedGraph coarsen(const Digraph& fine,
                       const std::vector<std::int32_t>& cluster_of,
                       std::int32_t num_clusters);

}  // namespace jsweep::graph
