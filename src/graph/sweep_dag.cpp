#include "graph/sweep_dag.hpp"

#include <cmath>

#include "support/check.hpp"

namespace jsweep::graph {

namespace {

/// Finalize shared parts: build the CSR local digraph and initial counts.
void finalize(PatchTaskGraph& g) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(g.local_edges.size());
  for (const auto& e : g.local_edges) edges.emplace_back(e.u, e.v);
  g.local = Digraph(g.num_vertices, edges);

  g.initial_counts.assign(static_cast<std::size_t>(g.num_vertices), 0);
  for (const auto& e : g.local_edges)
    ++g.initial_counts[static_cast<std::size_t>(e.v)];
  for (const auto& e : g.remote_in)
    ++g.initial_counts[static_cast<std::size_t>(e.v)];
}

/// Enumerate every downwind cell-to-cell dependence of the mesh for one
/// direction as fn(upwind_cell, downwind_cell, face). Single source of
/// truth for the grazing test and face convention shared by the global
/// digraph builder and the cycle analyzer.
template <class Fn>
void for_each_downwind_edge(const mesh::TetMesh& m, const mesh::Vec3& omega,
                            Fn&& fn) {
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    for (const auto f : m.cell_faces(CellId{c})) {
      const mesh::Vec3 area = m.outward_area(f, CellId{c});
      if (dot(area, omega) <= kGrazingTol * norm(area)) continue;
      const CellId nb = m.across(f, CellId{c});
      if (!nb.valid()) continue;
      fn(static_cast<std::int32_t>(c), static_cast<std::int32_t>(nb.value()),
         f);
    }
  }
}

}  // namespace

PatchTaskGraph build_patch_task_graph(const mesh::StructuredMesh& m,
                                      const partition::PatchSet& ps,
                                      PatchId patch, const mesh::Vec3& omega,
                                      AngleId angle, const CycleCut* cut) {
  PatchTaskGraph g;
  g.patch = patch;
  g.angle = angle;
  const auto& cells = ps.cells(patch);
  g.num_vertices = static_cast<std::int32_t>(cells.size());
  const auto lagged = [&](std::int64_t face) {
    return cut != nullptr && cut->contains(face);
  };

  for (std::int32_t li = 0; li < g.num_vertices; ++li) {
    const CellId c = cells[static_cast<std::size_t>(li)];
    for (int d = 0; d < 6; ++d) {
      const auto dir = static_cast<mesh::FaceDir>(d);
      const double mu =
          dot(mesh::kFaceNormals[static_cast<std::size_t>(d)], omega);
      if (mu <= kGrazingTol) continue;  // only outgoing faces from c
      const auto nb = m.neighbor(c, dir);
      if (!nb) continue;  // domain boundary
      const std::int64_t face = structured_face_id(c, dir);
      const PatchId nb_patch = ps.patch_of(*nb);
      if (nb_patch == patch) {
        (lagged(face) ? g.lagged_local : g.local_edges)
            .push_back({li, ps.local_index(*nb), face});
      } else {
        (lagged(face) ? g.lagged_out : g.remote_out)
            .push_back({li, face, nb_patch, nb->value()});
      }
    }
    // Incoming remote edges: upwind neighbors in other patches.
    for (int d = 0; d < 6; ++d) {
      const auto dir = static_cast<mesh::FaceDir>(d);
      const double mu =
          dot(mesh::kFaceNormals[static_cast<std::size_t>(d)], omega);
      if (mu >= -kGrazingTol) continue;  // only incoming faces of c
      const auto nb = m.neighbor(c, dir);
      if (!nb) continue;
      const PatchId nb_patch = ps.patch_of(*nb);
      if (nb_patch == patch) continue;  // covered as a local edge of nb
      // The face, named from the upwind cell nb's outgoing direction.
      const std::int64_t face = structured_face_id(*nb, mesh::opposite(dir));
      (lagged(face) ? g.lagged_in : g.remote_in)
          .push_back({nb_patch, nb->value(), face, li});
    }
  }
  finalize(g);
  return g;
}

PatchTaskGraph build_patch_task_graph(const mesh::TetMesh& m,
                                      const partition::PatchSet& ps,
                                      PatchId patch, const mesh::Vec3& omega,
                                      AngleId angle, const CycleCut* cut) {
  PatchTaskGraph g;
  g.patch = patch;
  g.angle = angle;
  const auto& cells = ps.cells(patch);
  g.num_vertices = static_cast<std::int32_t>(cells.size());
  const auto lagged = [&](std::int64_t face) {
    return cut != nullptr && cut->contains(face);
  };

  for (std::int32_t li = 0; li < g.num_vertices; ++li) {
    const CellId c = cells[static_cast<std::size_t>(li)];
    for (const auto f : m.cell_faces(c)) {
      const mesh::Vec3 area = m.outward_area(f, c);
      const double an = norm(area);
      const double flux = dot(area, omega);
      if (flux <= kGrazingTol * an) continue;  // not an outflow face of c
      const CellId nb = m.across(f, c);
      if (!nb.valid()) continue;  // domain boundary
      const PatchId nb_patch = ps.patch_of(nb);
      if (nb_patch == patch) {
        (lagged(f) ? g.lagged_local : g.local_edges)
            .push_back({li, ps.local_index(nb), f});
      } else {
        (lagged(f) ? g.lagged_out : g.remote_out)
            .push_back({li, f, nb_patch, nb.value()});
      }
    }
    for (const auto f : m.cell_faces(c)) {
      const mesh::Vec3 area = m.outward_area(f, c);
      const double an = norm(area);
      const double flux = dot(area, omega);
      if (flux >= -kGrazingTol * an) continue;  // not an inflow face of c
      const CellId nb = m.across(f, c);
      if (!nb.valid()) continue;
      const PatchId nb_patch = ps.patch_of(nb);
      if (nb_patch == patch) continue;
      (lagged(f) ? g.lagged_in : g.remote_in)
          .push_back({nb_patch, nb.value(), f, li});
    }
  }
  finalize(g);
  return g;
}

CycleCut compute_cycle_cut(const mesh::TetMesh& m, const mesh::Vec3& omega) {
  JSWEEP_CHECK_MSG(m.num_cells() < (1LL << 31),
                   "cycle analysis limited to 2^31 cells");
  // Whole-mesh edge list with the carrying face kept alongside, so cut
  // edges map straight back to face ids.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  std::vector<std::int64_t> edge_face;
  for_each_downwind_edge(
      m, omega, [&](std::int32_t u, std::int32_t v, std::int64_t f) {
        edges.emplace_back(u, v);
        edge_face.push_back(f);
      });
  CycleCut cut;
  // Cheap acyclicity test first: the common case pays one Kahn pass and no
  // SCC machinery.
  if (Digraph(static_cast<std::int32_t>(m.num_cells()), edges).is_acyclic())
    return cut;
  const CycleBreak broken =
      break_cycles(static_cast<std::int32_t>(m.num_cells()), edges);
  cut.stats = broken.stats;
  for (std::size_t e = 0; e < edges.size(); ++e)
    if (broken.cut[e]) cut.lagged_faces.insert(edge_face[e]);
  return cut;
}

CycleCut compute_cycle_cut(const mesh::StructuredMesh& m,
                           const mesh::Vec3& omega) {
  // An orthogonal structured grid orders totally along each axis sign, so
  // no direction can induce a cycle — nothing to analyze.
  (void)m;
  (void)omega;
  return {};
}

Digraph build_patch_level_digraph(const std::vector<PatchTaskGraph>& graphs,
                                  int num_patches) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (const auto& g : graphs) {
    for (const auto& e : g.remote_out) {
      edges.emplace_back(g.patch.value(), e.dst_patch.value());
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Digraph(num_patches, edges);
}

namespace {

template <class EdgeFn>
Digraph patch_digraph_from_edges(int num_patches, EdgeFn&& emit_edges) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  emit_edges(edges);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Digraph(num_patches, edges);
}

}  // namespace

Digraph build_patch_digraph(const mesh::StructuredMesh& m,
                            const partition::PatchSet& ps,
                            const mesh::Vec3& omega) {
  return patch_digraph_from_edges(
      ps.num_patches(),
      [&](std::vector<std::pair<std::int32_t, std::int32_t>>& edges) {
        for (std::int64_t c = 0; c < m.num_cells(); ++c) {
          const PatchId pc = ps.patch_of(CellId{c});
          for (int d = 0; d < 6; ++d) {
            const double mu =
                dot(mesh::kFaceNormals[static_cast<std::size_t>(d)], omega);
            if (mu <= kGrazingTol) continue;
            const auto nb =
                m.neighbor(CellId{c}, static_cast<mesh::FaceDir>(d));
            if (!nb) continue;
            const PatchId pn = ps.patch_of(*nb);
            if (pn != pc) edges.emplace_back(pc.value(), pn.value());
          }
        }
      });
}

Digraph build_patch_digraph(const mesh::TetMesh& m,
                            const partition::PatchSet& ps,
                            const mesh::Vec3& omega) {
  return patch_digraph_from_edges(
      ps.num_patches(),
      [&](std::vector<std::pair<std::int32_t, std::int32_t>>& edges) {
        for (std::int64_t c = 0; c < m.num_cells(); ++c) {
          const PatchId pc = ps.patch_of(CellId{c});
          for (const auto f : m.cell_faces(CellId{c})) {
            const mesh::Vec3 area = m.outward_area(f, CellId{c});
            if (dot(area, omega) <= kGrazingTol * norm(area)) continue;
            const CellId nb = m.across(f, CellId{c});
            if (!nb.valid()) continue;
            const PatchId pn = ps.patch_of(nb);
            if (pn != pc) edges.emplace_back(pc.value(), pn.value());
          }
        }
      });
}

Digraph build_global_cell_digraph(const mesh::StructuredMesh& m,
                                  const mesh::Vec3& omega,
                                  const CycleCut* cut) {
  JSWEEP_CHECK_MSG(m.num_cells() < (1LL << 31),
                   "global digraph limited to 2^31 cells");
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    for (int d = 0; d < 6; ++d) {
      const double mu =
          dot(mesh::kFaceNormals[static_cast<std::size_t>(d)], omega);
      if (mu <= kGrazingTol) continue;
      const auto nb = m.neighbor(CellId{c}, static_cast<mesh::FaceDir>(d));
      if (!nb) continue;
      if (cut != nullptr &&
          cut->contains(structured_face_id(CellId{c},
                                           static_cast<mesh::FaceDir>(d))))
        continue;
      edges.emplace_back(static_cast<std::int32_t>(c),
                         static_cast<std::int32_t>(nb->value()));
    }
  }
  return Digraph(static_cast<std::int32_t>(m.num_cells()), edges);
}

Digraph build_global_cell_digraph(const mesh::TetMesh& m,
                                  const mesh::Vec3& omega,
                                  const CycleCut* cut) {
  JSWEEP_CHECK_MSG(m.num_cells() < (1LL << 31),
                   "global digraph limited to 2^31 cells");
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for_each_downwind_edge(
      m, omega, [&](std::int32_t u, std::int32_t v, std::int64_t f) {
        if (cut != nullptr && cut->contains(f)) return;
        edges.emplace_back(u, v);
      });
  return Digraph(static_cast<std::int32_t>(m.num_cells()), edges);
}

}  // namespace jsweep::graph
