#pragma once

/// \file digraph.hpp
/// Directed graph in CSR form plus the topological utilities the sweep
/// scheduler relies on.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace jsweep::graph {

/// Immutable CSR directed graph over vertices [0, n).
class Digraph {
 public:
  Digraph() = default;  ///< empty graph (no vertices, no edges)

  /// Build from an edge list. Parallel edges are kept (callers that care
  /// deduplicate first); vertex count must cover all endpoints.
  Digraph(std::int32_t num_vertices,
          const std::vector<std::pair<std::int32_t, std::int32_t>>& edges);

  /// Number of vertices.
  [[nodiscard]] std::int32_t num_vertices() const { return n_; }
  /// Number of directed edges (parallel edges counted individually).
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(targets_.size());
  }

  /// Number of outgoing edges of vertex v.
  [[nodiscard]] std::int64_t out_degree(std::int32_t v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] -
           offsets_[static_cast<std::size_t>(v)];
  }

  /// i-th out-neighbor of v (0 ≤ i < out_degree(v)); cursor-style access
  /// for iterative DFS algorithms that cannot use for_out().
  [[nodiscard]] std::int32_t out_neighbor(std::int32_t v,
                                          std::int64_t i) const {
    return targets_[static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(v)] + i)];
  }

  /// Invoke `fn(target)` for every out-neighbor of v, in CSR order.
  template <class Fn>
  void for_out(std::int32_t v, Fn&& fn) const {
    for (auto e = offsets_[static_cast<std::size_t>(v)];
         e < offsets_[static_cast<std::size_t>(v) + 1]; ++e)
      fn(targets_[static_cast<std::size_t>(e)]);
  }

  /// In-degree of every vertex.
  [[nodiscard]] std::vector<std::int32_t> in_degrees() const;

  /// Edge-reversed copy.
  [[nodiscard]] Digraph reversed() const;

  /// Kahn topological order; nullopt if the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<std::int32_t>> topological_order()
      const;

  /// Whether the graph has no directed cycle.
  [[nodiscard]] bool is_acyclic() const {
    return topological_order().has_value();
  }

  /// Some cycle as a vertex sequence (v0, v1, ..., v0-reachable), empty if
  /// acyclic. Used for diagnostics when a mesh+direction is unsweepable.
  [[nodiscard]] std::vector<std::int32_t> find_cycle() const;

 private:
  std::int32_t n_ = 0;
  std::vector<std::int64_t> offsets_{0};
  std::vector<std::int32_t> targets_;
};

}  // namespace jsweep::graph
