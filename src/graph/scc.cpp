#include "graph/scc.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace jsweep::graph {

std::vector<std::int32_t> SccResult::component_sizes() const {
  std::vector<std::int32_t> sizes(static_cast<std::size_t>(num_components),
                                  0);
  for (const auto c : component_of) ++sizes[static_cast<std::size_t>(c)];
  return sizes;
}

SccResult strongly_connected_components(const Digraph& g) {
  const std::int32_t n = g.num_vertices();
  constexpr std::int32_t kUnvisited = -1;

  SccResult result;
  result.component_of.assign(static_cast<std::size_t>(n), kUnvisited);

  std::vector<std::int32_t> index(static_cast<std::size_t>(n), kUnvisited);
  std::vector<std::int32_t> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> stack;  // Tarjan's vertex stack
  std::int32_t next_index = 0;

  // Explicit DFS frame: vertex + out-edge cursor (index into its CSR row).
  struct Frame {
    std::int32_t v;
    std::int64_t cursor;
  };
  std::vector<Frame> dfs;

  for (std::int32_t root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = next_index;
    lowlink[static_cast<std::size_t>(root)] = next_index;
    ++next_index;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = 1;

    while (!dfs.empty()) {
      Frame& fr = dfs.back();
      const std::int32_t v = fr.v;
      if (fr.cursor < g.out_degree(v)) {
        const std::int32_t next = g.out_neighbor(v, fr.cursor);
        ++fr.cursor;
        const auto u = static_cast<std::size_t>(next);
        if (index[u] == kUnvisited) {
          index[u] = next_index;
          lowlink[u] = next_index;
          ++next_index;
          stack.push_back(next);
          on_stack[u] = 1;
          dfs.push_back({next, 0});
        } else if (on_stack[u]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)], index[u]);
        }
        continue;
      }
      // v's out-edges exhausted: close the frame.
      dfs.pop_back();
      if (!dfs.empty()) {
        auto& parent = lowlink[static_cast<std::size_t>(dfs.back().v)];
        parent = std::min(parent, lowlink[static_cast<std::size_t>(v)]);
      }
      if (lowlink[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        // v is an SCC root: pop its component off the stack.
        const std::int32_t comp = result.num_components++;
        for (;;) {
          const std::int32_t w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          result.component_of[static_cast<std::size_t>(w)] = comp;
          if (w == v) break;
        }
      }
    }
  }
  return result;
}

Digraph condensation(const Digraph& g, const SccResult& scc) {
  JSWEEP_CHECK(static_cast<std::int32_t>(scc.component_of.size()) ==
               g.num_vertices());
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const auto cv = scc.component_of[static_cast<std::size_t>(v)];
    g.for_out(v, [&](std::int32_t u) {
      const auto cu = scc.component_of[static_cast<std::size_t>(u)];
      if (cv != cu) edges.emplace_back(cv, cu);
    });
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Digraph(scc.num_components, edges);
}

CycleBreak break_cycles(
    std::int32_t num_vertices,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges) {
  CycleBreak result;
  result.cut.assign(edges.size(), 0);

  // CSR over *edge indices* so back edges can be marked in the input list.
  std::vector<std::int64_t> off(static_cast<std::size_t>(num_vertices) + 1,
                                0);
  for (const auto& [u, v] : edges) {
    JSWEEP_CHECK_MSG(u >= 0 && u < num_vertices && v >= 0 &&
                         v < num_vertices,
                     "edge (" << u << "," << v << ") outside [0,"
                              << num_vertices << ")");
    ++off[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < off.size(); ++i) off[i] += off[i - 1];
  std::vector<std::int64_t> edge_ids(edges.size());
  {
    std::vector<std::int64_t> cursor(off.begin(), off.end() - 1);
    for (std::size_t e = 0; e < edges.size(); ++e)
      edge_ids[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(edges[e].first)]++)] =
          static_cast<std::int64_t>(e);
  }

  // Iterative coloring DFS: cut every edge into a gray (on-stack) vertex.
  enum : char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<char> color(static_cast<std::size_t>(num_vertices), kWhite);
  struct Frame {
    std::int32_t v;
    std::int64_t cursor;  // offset within v's CSR row
  };
  std::vector<Frame> dfs;
  for (std::int32_t root = 0; root < num_vertices; ++root) {
    if (color[static_cast<std::size_t>(root)] != kWhite) continue;
    color[static_cast<std::size_t>(root)] = kGray;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& fr = dfs.back();
      const auto begin = off[static_cast<std::size_t>(fr.v)];
      const auto end = off[static_cast<std::size_t>(fr.v) + 1];
      if (begin + fr.cursor >= end) {
        color[static_cast<std::size_t>(fr.v)] = kBlack;
        dfs.pop_back();
        continue;
      }
      const std::int64_t e =
          edge_ids[static_cast<std::size_t>(begin + fr.cursor)];
      ++fr.cursor;
      const std::int32_t u = edges[static_cast<std::size_t>(e)].second;
      if (color[static_cast<std::size_t>(u)] == kWhite) {
        color[static_cast<std::size_t>(u)] = kGray;
        dfs.push_back({u, 0});
      } else if (color[static_cast<std::size_t>(u)] == kGray) {
        result.cut[static_cast<std::size_t>(e)] = 1;
        ++result.stats.edges_cut;
      }
    }
  }

  // Diagnostics: SCC structure of the *original* graph.
  result.scc = strongly_connected_components(Digraph(num_vertices, edges));
  std::vector<char> has_self_loop(
      static_cast<std::size_t>(result.scc.num_components), 0);
  for (const auto& [u, v] : edges)
    if (u == v)
      has_self_loop[static_cast<std::size_t>(
          result.scc.component_of[static_cast<std::size_t>(u)])] = 1;
  const auto sizes = result.scc.component_sizes();
  for (std::int32_t c = 0; c < result.scc.num_components; ++c) {
    if (sizes[static_cast<std::size_t>(c)] >= 2 ||
        has_self_loop[static_cast<std::size_t>(c)]) {
      ++result.stats.cyclic_components;
      result.stats.largest_component = std::max(
          result.stats.largest_component, sizes[static_cast<std::size_t>(c)]);
    }
  }
  return result;
}

}  // namespace jsweep::graph
