#include "graph/digraph.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace jsweep::graph {

Digraph::Digraph(
    std::int32_t num_vertices,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges)
    : n_(num_vertices) {
  JSWEEP_CHECK(num_vertices >= 0);
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : edges) {
    JSWEEP_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                     "edge (" << u << "," << v << ") outside [0," << n_ << ")");
    ++offsets_[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i)
    offsets_[i] += offsets_[i - 1];
  targets_.resize(edges.size());
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges)
    targets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] =
        v;
}

std::vector<std::int32_t> Digraph::in_degrees() const {
  std::vector<std::int32_t> deg(static_cast<std::size_t>(n_), 0);
  for (const auto t : targets_) ++deg[static_cast<std::size_t>(t)];
  return deg;
}

Digraph Digraph::reversed() const {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(targets_.size());
  for (std::int32_t v = 0; v < n_; ++v)
    for_out(v, [&](std::int32_t u) { edges.emplace_back(u, v); });
  return Digraph(n_, edges);
}

std::optional<std::vector<std::int32_t>> Digraph::topological_order() const {
  auto deg = in_degrees();
  std::vector<std::int32_t> order;
  order.reserve(static_cast<std::size_t>(n_));
  std::deque<std::int32_t> ready;
  for (std::int32_t v = 0; v < n_; ++v)
    if (deg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  while (!ready.empty()) {
    const auto v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for_out(v, [&](std::int32_t u) {
      if (--deg[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
    });
  }
  if (static_cast<std::int32_t>(order.size()) != n_) return std::nullopt;
  return order;
}

std::vector<std::int32_t> Digraph::find_cycle() const {
  // Iterative DFS with colors; returns the vertex sequence of the first
  // back-edge cycle found.
  enum : char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<char> color(static_cast<std::size_t>(n_), kWhite);
  std::vector<std::int32_t> parent(static_cast<std::size_t>(n_), -1);

  for (std::int32_t root = 0; root < n_; ++root) {
    if (color[static_cast<std::size_t>(root)] != kWhite) continue;
    // Stack holds (vertex, edge cursor).
    std::vector<std::pair<std::int32_t, std::int64_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = kGray;
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      const auto begin = offsets_[static_cast<std::size_t>(v)];
      const auto end = offsets_[static_cast<std::size_t>(v) + 1];
      if (begin + cursor >= end) {
        color[static_cast<std::size_t>(v)] = kBlack;
        stack.pop_back();
        continue;
      }
      const auto u =
          targets_[static_cast<std::size_t>(begin + cursor)];
      ++cursor;
      if (color[static_cast<std::size_t>(u)] == kWhite) {
        parent[static_cast<std::size_t>(u)] = v;
        color[static_cast<std::size_t>(u)] = kGray;
        stack.emplace_back(u, 0);
      } else if (color[static_cast<std::size_t>(u)] == kGray) {
        // Found a cycle u -> ... -> v -> u.
        std::vector<std::int32_t> cycle{u};
        for (std::int32_t w = v; w != u && w >= 0;
             w = parent[static_cast<std::size_t>(w)])
          cycle.push_back(w);
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
    }
  }
  return {};
}

}  // namespace jsweep::graph
