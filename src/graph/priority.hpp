#pragma once

/// \file priority.hpp
/// The paper's priority strategies (Sec. V-D), usable at both levels of the
/// two-level hierarchy:
///   - vertex level: orders ready vertices inside one patch-program;
///   - patch level:  orders active patch-programs on a rank.
///
/// Strategies (higher priority value = scheduled earlier):
///   BFS   breadth-first level from the DAG's sources: upwind first, favors
///         exposing parallelism early;
///   LDCP  longest distance on critical path: vertices with the longest
///         remaining downstream chain first (structured meshes);
///   SLBD  shortest local boundary distance: vertices nearest (in sweep
///         direction) to a cross-patch boundary first, so streams leave the
///         patch as soon as possible (a DFS-flavored strategy; the paper's
///         best performer).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/sweep_dag.hpp"

namespace jsweep::graph {

/// Priority strategy selector (see the file comment for semantics).
enum class PriorityStrategy {
  None,  ///< no ordering hint (FIFO)
  BFS,   ///< breadth-first levels, upwind first
  LDCP,  ///< longest distance on critical path
  SLBD,  ///< shortest local boundary distance (the paper's default)
};

/// Lower-case name of a strategy ("none", "bfs", "ldcp", "slbd").
[[nodiscard]] std::string to_string(PriorityStrategy s);
/// Parse a strategy name (inverse of to_string; unknown names throw).
[[nodiscard]] PriorityStrategy priority_from_string(const std::string& name);

/// BFS level of every vertex (sources = level 0), following edges forward.
/// Tolerates cycles: cycle members are never enqueued by the Kahn
/// wavefront, but may still inherit nonzero levels relaxed from upstream
/// acyclic vertices — levels are scheduling hints, not cycle detection.
std::vector<std::int32_t> bfs_levels(const Digraph& g);

/// Length (in edges) of the longest path from each vertex to any sink.
/// Requires an acyclic graph; vertex_priorities/patch_priorities fall back
/// to SCC-condensation depths on cyclic graphs instead of calling this.
std::vector<std::int32_t> ldcp_depths(const Digraph& g);

/// Shortest forward distance from each vertex to any vertex in `targets`
/// (distance 0 for target vertices; INT32_MAX when unreachable).
std::vector<std::int32_t> forward_distance_to(const Digraph& g,
                                              const std::vector<char>& targets);

/// Vertex priorities for one patch task graph. `strategy` maps to:
///   BFS  : -level        (upwind levels first)
///   LDCP : +depth        (longest remaining chain first)
///   SLBD : -distance to a vertex with a remote outgoing edge
///   None : 0 everywhere  (FIFO order)
std::vector<double> vertex_priorities(PriorityStrategy strategy,
                                      const PatchTaskGraph& g);

/// Patch priorities for one direction's patch-level digraph (same
/// semantics, with SLBD's boundary set = patches that feed other patches).
std::vector<double> patch_priorities(PriorityStrategy strategy,
                                     const Digraph& patch_graph);

/// The C of the paper's combined (patch, angle) priority
///   prior(p, a) = prior(a) * C + prior(p),
/// large enough that angle priority always dominates.
inline constexpr double kAngleFactor = 1e8;

/// The combined (patch, angle) priority (see kAngleFactor).
[[nodiscard]] inline double combined_priority(double angle_prior,
                                              double patch_prior) {
  return angle_prior * kAngleFactor + patch_prior;
}

}  // namespace jsweep::graph
