#pragma once

/// \file scc.hpp
/// Strongly connected components and cycle breaking. Real unstructured /
/// deformed meshes can induce *cyclic* sweep dependence graphs (non-convex
/// or twisted cells — the headline problem of "Massively Parallel Transport
/// Sweeps on Meshes with Cyclic Dependencies"). This module supplies the
/// graph machinery the solver uses to handle them:
///
///   - strongly_connected_components(): iterative Tarjan SCC;
///   - condensation(): the acyclic component-level quotient graph;
///   - break_cycles(): a deterministic feedback-edge selection (DFS back
///     edges) that marks a small set of edges whose removal makes the graph
///     acyclic. Every selected edge provably lies inside an SCC, so the
///     sweep treats exactly the cyclic part as *lagged* (old-iterate)
///     inputs and keeps true dependencies everywhere else.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace jsweep::graph {

/// Output of strongly_connected_components().
struct SccResult {
  std::int32_t num_components = 0;  ///< number of SCCs found
  /// Component id per vertex. Ids are assigned in *reverse* topological
  /// order of the condensation (Tarjan completion order): if the
  /// condensation has an edge C1 → C2 then C1's id is greater than C2's.
  std::vector<std::int32_t> component_of;

  /// Vertex count of every component, indexed by component id.
  [[nodiscard]] std::vector<std::int32_t> component_sizes() const;
};

/// Iterative Tarjan over the CSR digraph (no recursion — safe for
/// million-vertex cell graphs).
SccResult strongly_connected_components(const Digraph& g);

/// Component-level quotient graph (deduplicated edges). Always acyclic.
Digraph condensation(const Digraph& g, const SccResult& scc);

/// Cycle diagnostics, accumulated per sweep direction by the solver.
struct CycleStats {
  std::int32_t cyclic_components = 0;  ///< SCCs of size ≥ 2 (or self-loops)
  std::int32_t largest_component = 0;  ///< vertices in the largest such SCC
  std::int64_t edges_cut = 0;          ///< feedback edges selected

  /// Whether any feedback edge was cut.
  [[nodiscard]] bool any() const { return edges_cut > 0; }
  /// Accumulate another direction's diagnostics into this one.
  void merge(const CycleStats& o) {
    cyclic_components += o.cyclic_components;
    largest_component = std::max(largest_component, o.largest_component);
    edges_cut += o.edges_cut;
  }
};

/// Output of break_cycles().
struct CycleBreak {
  /// cut[e] = 1 iff edges[e] is a selected feedback edge. Removing all
  /// selected edges leaves an acyclic graph.
  std::vector<char> cut;
  SccResult scc;     ///< the SCC decomposition the cut was checked against
  CycleStats stats;  ///< cut-edge / component diagnostics
};

/// Deterministic feedback-edge selection: a global iterative DFS (roots in
/// vertex order, edges in list order) marks every back edge — an edge into
/// a vertex currently on the DFS stack — as cut. The DFS forest minus its
/// back edges is acyclic, and a back edge's endpoints are always mutually
/// reachable, so every cut edge lies inside an SCC. Acyclic inputs come
/// back with zero edges cut.
CycleBreak break_cycles(
    std::int32_t num_vertices,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges);

}  // namespace jsweep::graph
