#include "graph/coarsen.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace jsweep::graph {

CoarsenedGraph coarsen(const Digraph& fine,
                       const std::vector<std::int32_t>& cluster_of,
                       std::int32_t num_clusters) {
  const auto n = fine.num_vertices();
  JSWEEP_CHECK(static_cast<std::int32_t>(cluster_of.size()) == n);
  JSWEEP_CHECK(num_clusters > 0);

  CoarsenedGraph cg;
  cg.num_clusters = num_clusters;
  cg.members.resize(static_cast<std::size_t>(num_clusters));
  for (std::int32_t v = 0; v < n; ++v) {
    const auto c = cluster_of[static_cast<std::size_t>(v)];
    JSWEEP_CHECK_MSG(c >= 0 && c < num_clusters,
                     "vertex " << v << " in cluster " << c);
    cg.members[static_cast<std::size_t>(c)].push_back(v);
  }

  // Aggregate fine edges per (cluster_u, cluster_v) pair, checking the
  // execution-order premise along the way.
  std::map<std::pair<std::int32_t, std::int32_t>,
           std::vector<std::pair<std::int32_t, std::int32_t>>>
      agg;
  for (std::int32_t u = 0; u < n; ++u) {
    const auto cu = cluster_of[static_cast<std::size_t>(u)];
    fine.for_out(u, [&](std::int32_t v) {
      const auto cv = cluster_of[static_cast<std::size_t>(v)];
      JSWEEP_CHECK_MSG(cu <= cv, "fine edge (" << u << "→" << v
                                               << ") goes backward in "
                                                  "cluster order: "
                                               << cu << "→" << cv);
      if (cu != cv) agg[{cu, cv}].emplace_back(u, v);
    });
  }

  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(agg.size());
  cg.edge_members.reserve(agg.size());
  for (auto& [key, fines] : agg) {
    edges.push_back(key);
    cg.coarse_edges.push_back(key);
    cg.edge_members.push_back(std::move(fines));
  }
  cg.coarse = Digraph(num_clusters, edges);
  return cg;
}

}  // namespace jsweep::graph
