#include "graph/priority.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "graph/scc.hpp"
#include "support/check.hpp"

namespace jsweep::graph {

std::string to_string(PriorityStrategy s) {
  switch (s) {
    case PriorityStrategy::None: return "None";
    case PriorityStrategy::BFS: return "BFS";
    case PriorityStrategy::LDCP: return "LDCP";
    case PriorityStrategy::SLBD: return "SLBD";
  }
  return "?";
}

PriorityStrategy priority_from_string(const std::string& name) {
  if (name == "None") return PriorityStrategy::None;
  if (name == "BFS") return PriorityStrategy::BFS;
  if (name == "LDCP") return PriorityStrategy::LDCP;
  if (name == "SLBD") return PriorityStrategy::SLBD;
  JSWEEP_CHECK_MSG(false, "unknown priority strategy '" << name << "'");
  return PriorityStrategy::None;
}

std::vector<std::int32_t> bfs_levels(const Digraph& g) {
  const auto n = g.num_vertices();
  auto deg = g.in_degrees();
  std::vector<std::int32_t> level(static_cast<std::size_t>(n), 0);
  std::deque<std::int32_t> ready;
  for (std::int32_t v = 0; v < n; ++v)
    if (deg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  // Level = longest distance from any source along the Kahn wavefronts.
  while (!ready.empty()) {
    const auto v = ready.front();
    ready.pop_front();
    g.for_out(v, [&](std::int32_t u) {
      level[static_cast<std::size_t>(u)] =
          std::max(level[static_cast<std::size_t>(u)],
                   level[static_cast<std::size_t>(v)] + 1);
      if (--deg[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
    });
  }
  return level;
}

namespace {

/// Longest-path-to-sink depths given a precomputed topological order.
std::vector<std::int32_t> depths_from_order(
    const Digraph& g, const std::vector<std::int32_t>& order) {
  std::vector<std::int32_t> depth(static_cast<std::size_t>(g.num_vertices()),
                                  0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto v = *it;
    g.for_out(v, [&](std::int32_t u) {
      depth[static_cast<std::size_t>(v)] =
          std::max(depth[static_cast<std::size_t>(v)],
                   depth[static_cast<std::size_t>(u)] + 1);
    });
  }
  return depth;
}

}  // namespace

std::vector<std::int32_t> ldcp_depths(const Digraph& g) {
  const auto order = g.topological_order();
  JSWEEP_CHECK_MSG(order.has_value(), "LDCP requires an acyclic graph");
  return depths_from_order(g, *order);
}

std::vector<std::int32_t> forward_distance_to(
    const Digraph& g, const std::vector<char>& targets) {
  const auto n = g.num_vertices();
  JSWEEP_CHECK(static_cast<std::int32_t>(targets.size()) == n);
  constexpr auto kInf = std::numeric_limits<std::int32_t>::max();
  std::vector<std::int32_t> dist(static_cast<std::size_t>(n), kInf);
  // Multi-source BFS on the reversed graph.
  const Digraph rev = g.reversed();
  std::deque<std::int32_t> queue;
  for (std::int32_t v = 0; v < n; ++v) {
    if (targets[static_cast<std::size_t>(v)]) {
      dist[static_cast<std::size_t>(v)] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const auto v = queue.front();
    queue.pop_front();
    rev.for_out(v, [&](std::int32_t u) {
      if (dist[static_cast<std::size_t>(u)] == kInf) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    });
  }
  return dist;
}

namespace {

std::vector<double> priorities_impl(PriorityStrategy strategy,
                                    const Digraph& g,
                                    const std::vector<char>& boundary) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> prio(n, 0.0);
  switch (strategy) {
    case PriorityStrategy::None:
      break;
    case PriorityStrategy::BFS: {
      const auto level = bfs_levels(g);
      for (std::size_t v = 0; v < n; ++v) prio[v] = -level[v];
      break;
    }
    case PriorityStrategy::LDCP: {
      if (const auto order = g.topological_order(); order) {
        const auto depth = depths_from_order(g, *order);
        for (std::size_t v = 0; v < n; ++v) prio[v] = depth[v];
      } else {
        // Cyclic graph (a patch-level graph over a cyclic mesh): fall back
        // to critical-path depths on the SCC condensation — every vertex
        // of one component shares its component's depth.
        const auto scc = strongly_connected_components(g);
        const auto depth = ldcp_depths(condensation(g, scc));
        for (std::size_t v = 0; v < n; ++v)
          prio[v] = depth[static_cast<std::size_t>(scc.component_of[v])];
      }
      break;
    }
    case PriorityStrategy::SLBD: {
      const auto dist = forward_distance_to(g, boundary);
      constexpr auto kInf = std::numeric_limits<std::int32_t>::max();
      for (std::size_t v = 0; v < n; ++v) {
        // Unreachable-from-boundary vertices (interior sinks) get the
        // lowest priority: they can't unblock anyone else.
        prio[v] = dist[v] == kInf ? -static_cast<double>(kInf) : -dist[v];
      }
      break;
    }
  }
  return prio;
}

}  // namespace

std::vector<double> vertex_priorities(PriorityStrategy strategy,
                                      const PatchTaskGraph& g) {
  std::vector<char> boundary(static_cast<std::size_t>(g.num_vertices), 0);
  for (const auto& e : g.remote_out)
    boundary[static_cast<std::size_t>(e.u)] = 1;
  return priorities_impl(strategy, g.local, boundary);
}

std::vector<double> patch_priorities(PriorityStrategy strategy,
                                     const Digraph& patch_graph) {
  std::vector<char> boundary(
      static_cast<std::size_t>(patch_graph.num_vertices()), 0);
  // SLBD at patch level: boundary = patches that feed another patch.
  for (std::int32_t p = 0; p < patch_graph.num_vertices(); ++p)
    if (patch_graph.out_degree(p) > 0)
      boundary[static_cast<std::size_t>(p)] = 1;
  return priorities_impl(strategy, patch_graph, boundary);
}

}  // namespace jsweep::graph
