#pragma once

/// \file sweep_dag.hpp
/// Sweep dependency graphs: for a patch p and sweeping direction Ω, the
/// induced subgraph G_{p,t} of the paper (Sec. V-A) — vertices are the
/// patch's local cells, edges point from upwind to downwind cells, and
/// cross-patch dependencies are recorded as remote-in / remote-out edge
/// lists that the runtime turns into streams.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"
#include "partition/patch_set.hpp"
#include "support/ids.hpp"

namespace jsweep::graph {

/// Dependency edge inside a patch: local vertex u feeds local vertex v
/// through mesh face `face`.
struct LocalEdge {
  std::int32_t u;     ///< upwind local vertex
  std::int32_t v;     ///< downwind local vertex
  std::int64_t face;  ///< mesh face carrying the flux
};

/// Dependency entering the patch: remote cell `src_cell` (owned by
/// `src_patch`) feeds local vertex v through `face`.
struct RemoteInEdge {
  PatchId src_patch;      ///< patch owning the upwind cell
  std::int64_t src_cell;  ///< global id of the upwind cell
  std::int64_t face;      ///< mesh face carrying the flux
  std::int32_t v;         ///< downwind local vertex
};

/// Dependency leaving the patch: local vertex u feeds remote cell
/// `dst_cell` (owned by `dst_patch`) through `face`.
struct RemoteOutEdge {
  std::int32_t u;         ///< upwind local vertex
  std::int64_t face;      ///< mesh face carrying the flux
  PatchId dst_patch;      ///< patch owning the downwind cell
  std::int64_t dst_cell;  ///< global id of the downwind cell
};

/// Face id encoding for structured meshes, where faces have no global
/// table: face = cell*6 + dir, with `cell` the cell on the *low* side of
/// the face... — we instead encode from the upwind cell's perspective:
/// face = upwind_cell*6 + outgoing FaceDir. Helpers below decode.
[[nodiscard]] inline std::int64_t structured_face_id(CellId upwind,
                                                     mesh::FaceDir out_dir) {
  return upwind.value() * 6 + static_cast<int>(out_dir);
}
/// The upwind cell encoded in a structured face id.
[[nodiscard]] inline CellId structured_face_cell(std::int64_t face) {
  return CellId{face / 6};
}
/// The outgoing face direction encoded in a structured face id.
[[nodiscard]] inline mesh::FaceDir structured_face_dir(std::int64_t face) {
  return static_cast<mesh::FaceDir>(face % 6);
}

/// The full dependency structure of one (patch, angle) task.
///
/// Lagged edges: when the task graph was built against a CycleCut, edges
/// whose face lies in the cut are recorded in the `lagged_*` lists instead
/// of the dependency lists above — they never count toward `initial_counts`
/// and never carry streams. Their face flux is read from the previous
/// sweep's value (old iterate) and the freshly computed value is staged for
/// the next sweep, which makes the remaining graph acyclic while keeping
/// results independent of execution order.
struct PatchTaskGraph {
  PatchId patch;                  ///< the patch this graph describes
  AngleId angle;                  ///< the sweep direction's angle id
  std::int32_t num_vertices = 0;  ///< = patch's local cell count
  Digraph local;                  ///< intra-patch dependencies
  std::vector<LocalEdge> local_edges;    ///< intra-patch edges with faces
  std::vector<RemoteInEdge> remote_in;   ///< dependencies entering the patch
  std::vector<RemoteOutEdge> remote_out; ///< dependencies leaving the patch
  /// Initial dependency count per local vertex (local + remote upwind).
  std::vector<std::int32_t> initial_counts;
  /// Cut (lagged) edges, excluded from the dependency structure above.
  std::vector<LocalEdge> lagged_local;
  std::vector<RemoteInEdge> lagged_in;   ///< lagged edges entering the patch
  std::vector<RemoteOutEdge> lagged_out; ///< lagged edges leaving the patch

  /// Work units this task retires (one per local cell).
  [[nodiscard]] std::int64_t total_work() const { return num_vertices; }
  /// Whether any edge of this task was cut (lagged).
  [[nodiscard]] bool has_lagged() const {
    return !lagged_local.empty() || !lagged_in.empty() ||
           !lagged_out.empty();
  }
};

/// The feedback edges of one sweep direction, identified by the face that
/// carries the flux (faces are globally unique per direction: a face moves
/// flux one way only). Computed identically on every rank from the global
/// cell digraph, so all ranks agree on what is lagged.
struct CycleCut {
  std::unordered_set<std::int64_t> lagged_faces;  ///< faces with lagged flux
  CycleStats stats;                               ///< SCC / cut diagnostics

  /// Whether the direction needed no cutting.
  [[nodiscard]] bool empty() const { return lagged_faces.empty(); }
  /// Whether `face` is a cut (lagged) face.
  [[nodiscard]] bool contains(std::int64_t face) const {
    return lagged_faces.count(face) != 0;
  }
};

/// Detect and break cycles of the whole-mesh sweep digraph for direction
/// `omega`. Returns the faces of a deterministic feedback-edge set (empty
/// when the direction is acyclic) plus SCC diagnostics. The structured
/// overload is a free no-op: an orthogonal grid's sweep graph is acyclic
/// for every direction.
CycleCut compute_cycle_cut(const mesh::TetMesh& m, const mesh::Vec3& omega);
/// \copydoc compute_cycle_cut(const mesh::TetMesh&, const mesh::Vec3&)
CycleCut compute_cycle_cut(const mesh::StructuredMesh& m,
                           const mesh::Vec3& omega);

/// Tolerance for grazing faces: |Ω·n̂| below this treats the face as
/// carrying no flux (no dependency either way).
inline constexpr double kGrazingTol = 1e-12;

/// Build G_{p,t} for a structured mesh. A non-null `cut` diverts cut faces
/// into the lagged edge lists.
PatchTaskGraph build_patch_task_graph(const mesh::StructuredMesh& m,
                                      const partition::PatchSet& ps,
                                      PatchId patch, const mesh::Vec3& omega,
                                      AngleId angle,
                                      const CycleCut* cut = nullptr);

/// Build G_{p,t} for a tetrahedral mesh.
PatchTaskGraph build_patch_task_graph(const mesh::TetMesh& m,
                                      const partition::PatchSet& ps,
                                      PatchId patch, const mesh::Vec3& omega,
                                      AngleId angle,
                                      const CycleCut* cut = nullptr);

/// Patch-level digraph for one direction: vertex = patch, edge p→q iff any
/// cell of p feeds any cell of q. Input is the per-patch task graphs of
/// that direction (indexed by patch id). Used by patch-priority strategies.
Digraph build_patch_level_digraph(const std::vector<PatchTaskGraph>& graphs,
                                  int num_patches);

/// Patch-level digraph built directly from the mesh (every rank can build
/// the global patch graph without materializing all patch task graphs).
Digraph build_patch_digraph(const mesh::StructuredMesh& m,
                            const partition::PatchSet& ps,
                            const mesh::Vec3& omega);
/// Tet-mesh overload of \ref build_patch_digraph: same contract, face
/// orientation taken from the tet face normals.
Digraph build_patch_digraph(const mesh::TetMesh& m,
                            const partition::PatchSet& ps,
                            const mesh::Vec3& omega);

/// Whole-mesh sweep digraph over (cell) vertices for one direction —
/// O(cells) memory; used by tests and the serial reference solver to
/// validate acyclicity and ordering. A non-null `cut` omits the cut faces'
/// edges (the graph is then acyclic by construction).
Digraph build_global_cell_digraph(const mesh::StructuredMesh& m,
                                  const mesh::Vec3& omega,
                                  const CycleCut* cut = nullptr);
/// Tet-mesh overload of \ref build_global_cell_digraph: same contract,
/// with edges induced by the tet face normals.
Digraph build_global_cell_digraph(const mesh::TetMesh& m,
                                  const mesh::Vec3& omega,
                                  const CycleCut* cut = nullptr);

}  // namespace jsweep::graph
