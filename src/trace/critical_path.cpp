#include "trace/critical_path.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "trace/trace.hpp"

namespace jsweep::trace {

namespace {

/// One program execution, a node of the reconstructed task graph.
struct Node {
  ProgramKey prog{};
  std::int32_t rank = 0;
  std::int64_t t0 = 0;
  std::int64_t t1 = 0;
  double cp = 0.0;        ///< best chain length ending here (seconds)
  double gap = 0.0;       ///< wait before this hop on that chain
  std::int64_t pred = -1;

  [[nodiscard]] double dur() const {
    return static_cast<double>(t1 - t0) * 1e-9;
  }
};

std::string key_str(const ProgramKey& k) {
  std::ostringstream os;
  os << k;
  return os.str();
}

}  // namespace

ProfileReport analyze(const Recorder& recorder,
                      const ProfileOptions& options) {
  ProfileReport rep;
  rep.dropped = recorder.dropped_events();

  std::vector<Node> nodes;
  struct Recv {
    std::int64_t t;
    ProgramKey src;
    ProgramKey dst;
  };
  std::vector<Recv> recvs;

  std::int64_t span_t0 = std::numeric_limits<std::int64_t>::max();
  std::int64_t span_t1 = std::numeric_limits<std::int64_t>::min();
  std::unordered_map<std::int32_t, RankBreakdown> ranks;
  std::unordered_map<ProgramKey, HotProgram> hot;

  for (const Track* track : recorder.tracks()) {
    RankBreakdown& rb = ranks[track->rank()];
    rb.rank = track->rank();
    if (!track->is_master()) ++rb.workers;
    const EventRing& ring = track->ring();
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const Event& e = ring.at(i);
      ++rep.events;
      span_t0 = std::min(span_t0, e.t0_ns);
      span_t1 = std::max(span_t1, e.t1_ns);
      switch (e.kind) {
        case EventKind::Exec: {
          Node n;
          n.prog = e.src;
          n.rank = e.rank;
          n.t0 = e.t0_ns;
          n.t1 = e.t1_ns;
          nodes.push_back(n);
          rb.busy_seconds += e.seconds();
          ++rb.executions;
          HotProgram& h = hot[e.src];
          h.prog = e.src;
          ++h.executions;
          h.exec_seconds += e.seconds();
          break;
        }
        case EventKind::StreamRecv:
          recvs.push_back(Recv{e.t0_ns, e.src, e.dst});
          break;
        case EventKind::Route:
          rb.route_seconds += e.seconds();
          break;
        case EventKind::Pack:
          rb.pack_seconds += e.seconds();
          break;
        case EventKind::Idle:
          rb.idle_seconds += e.seconds();
          break;
        case EventKind::Collective:
          rb.collective_seconds += e.seconds();
          break;
        case EventKind::StreamSend:
        case EventKind::Superstep:
          break;  // counted in `events` only
      }
    }
  }
  if (rep.events == 0) return rep;
  rep.span_seconds = static_cast<double>(span_t1 - span_t0) * 1e-9;

  for (const auto& [rank, rb] : ranks) rep.ranks.push_back(rb);
  std::sort(rep.ranks.begin(), rep.ranks.end(),
            [](const RankBreakdown& a, const RankBreakdown& b) {
              return a.rank < b.rank;
            });

  for (const auto& [key, h] : hot) rep.hottest.push_back(h);
  std::sort(rep.hottest.begin(), rep.hottest.end(),
            [](const HotProgram& a, const HotProgram& b) {
              if (a.exec_seconds != b.exec_seconds)
                return a.exec_seconds > b.exec_seconds;
              if (a.executions != b.executions)
                return a.executions > b.executions;
              return a.prog < b.prog;
            });
  if (rep.hottest.size() > static_cast<std::size_t>(options.top_k))
    rep.hottest.resize(static_cast<std::size_t>(options.top_k));

  // --- Critical path over the executed task graph --------------------------
  std::sort(nodes.begin(), nodes.end(), [](const Node& a, const Node& b) {
    if (a.t0 != b.t0) return a.t0 < b.t0;
    if (a.t1 != b.t1) return a.t1 < b.t1;
    return a.prog < b.prog;
  });
  std::unordered_map<ProgramKey, std::vector<std::int64_t>> by_prog;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    by_prog[nodes[i].prog].push_back(static_cast<std::int64_t>(i));

  // Incoming edges: (producer node, wait seconds). Serial edges chain each
  // program's consecutive executions and carry zero wait — they only model
  // one-execution-at-a-time ordering, and a halted program's dead time is
  // not dependency latency. Stream edges link the execution that produced a
  // delivered stream to the first downstream execution able to consume it;
  // their wait is the full producer-end to consumer-start latency (routing,
  // wire time, queueing). Both kinds keep producer-index < consumer-index,
  // so a single pass in t0 order is a topological sweep.
  std::vector<std::vector<std::pair<std::int64_t, double>>> in(nodes.size());
  const auto gap_seconds = [&](std::int64_t pred, std::int64_t succ) {
    const Node& a = nodes[static_cast<std::size_t>(pred)];
    const Node& b = nodes[static_cast<std::size_t>(succ)];
    return std::max(0.0, static_cast<double>(b.t0 - a.t1) * 1e-9);
  };
  for (const auto& [key, idxs] : by_prog)
    for (std::size_t k = 1; k < idxs.size(); ++k)
      in[static_cast<std::size_t>(idxs[k])].push_back({idxs[k - 1], 0.0});
  for (const Recv& r : recvs) {
    const auto src_it = by_prog.find(r.src);
    const auto dst_it = by_prog.find(r.dst);
    if (src_it == by_prog.end() || dst_it == by_prog.end()) continue;
    // Producer: the source program's last execution finished by delivery
    // time. Executions of one program never overlap, so t1 is sorted too.
    const auto& src_idx = src_it->second;
    const auto pit = std::partition_point(
        src_idx.begin(), src_idx.end(), [&](std::int64_t i) {
          return nodes[static_cast<std::size_t>(i)].t1 <= r.t;
        });
    if (pit == src_idx.begin()) continue;  // producer lost to ring overflow
    const std::int64_t producer = *(pit - 1);
    // Consumer: the destination program's first execution starting at or
    // after delivery.
    const auto& dst_idx = dst_it->second;
    const auto cit = std::partition_point(
        dst_idx.begin(), dst_idx.end(), [&](std::int64_t i) {
          return nodes[static_cast<std::size_t>(i)].t0 < r.t;
        });
    if (cit == dst_idx.end()) continue;
    const std::int64_t consumer = *cit;
    if (producer >= consumer) continue;
    in[static_cast<std::size_t>(consumer)].push_back(
        {producer, gap_seconds(producer, consumer)});
  }

  double best = -1.0;
  std::int64_t best_i = -1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Node& n = nodes[i];
    n.cp = n.dur();
    for (const auto& [pred, gap] : in[i]) {
      const double via =
          nodes[static_cast<std::size_t>(pred)].cp + gap + n.dur();
      if (via > n.cp) {
        n.cp = via;
        n.pred = pred;
        n.gap = gap;
      }
    }
    if (n.cp > best) {
      best = n.cp;
      best_i = static_cast<std::int64_t>(i);
    }
  }
  if (best_i >= 0) {
    rep.critical_path_seconds = best;
    std::vector<std::int64_t> chain;
    for (std::int64_t i = best_i; i >= 0;
         i = nodes[static_cast<std::size_t>(i)].pred)
      chain.push_back(i);
    std::reverse(chain.begin(), chain.end());
    for (const std::int64_t i : chain) {
      const Node& n = nodes[static_cast<std::size_t>(i)];
      rep.critical_path.push_back(
          CriticalHop{n.prog, n.rank, n.dur(), n.gap});
    }
  }
  return rep;
}

Table critical_path_table(const ProfileReport& report, std::size_t max_rows) {
  Table t({"hop", "program", "rank", "exec(s)", "wait(s)"});
  const std::size_t n = report.critical_path.size();
  for (std::size_t i = 0; i < n && i < max_rows; ++i) {
    const CriticalHop& h = report.critical_path[i];
    t.add_row({Table::num(static_cast<std::int64_t>(i)), key_str(h.prog),
               Table::num(static_cast<std::int64_t>(h.rank)),
               Table::num(h.exec_seconds, 6), Table::num(h.wait_seconds, 6)});
  }
  if (n > max_rows)
    t.add_row({"...",
               "(+" + std::to_string(n - max_rows) + " more hops)", "", "",
               ""});
  return t;
}

Table rank_breakdown_table(const ProfileReport& report) {
  Table t({"rank", "workers", "execs", "busy(s)", "idle(s)", "route(s)",
           "pack(s)", "coll(s)"});
  for (const RankBreakdown& r : report.ranks)
    t.add_row({Table::num(static_cast<std::int64_t>(r.rank)),
               Table::num(static_cast<std::int64_t>(r.workers)),
               Table::num(r.executions), Table::num(r.busy_seconds, 4),
               Table::num(r.idle_seconds, 4), Table::num(r.route_seconds, 4),
               Table::num(r.pack_seconds, 4),
               Table::num(r.collective_seconds, 4)});
  return t;
}

Table hot_programs_table(const ProfileReport& report) {
  double total_busy = 0.0;
  for (const RankBreakdown& r : report.ranks) total_busy += r.busy_seconds;
  Table t({"program", "execs", "exec(s)", "% busy"});
  for (const HotProgram& h : report.hottest)
    t.add_row({key_str(h.prog), Table::num(h.executions),
               Table::num(h.exec_seconds, 6),
               Table::num(total_busy > 0.0
                              ? h.exec_seconds / total_busy * 100.0
                              : 0.0,
                          1)});
  return t;
}

std::string render_profile(const ProfileReport& report) {
  std::ostringstream os;
  os << "trace profile: " << report.events << " events";
  if (report.dropped > 0) os << " (" << report.dropped << " dropped)";
  os << ", span " << Table::num(report.span_seconds, 4) << " s\n";
  os << "critical path: " << Table::num(report.critical_path_seconds, 4)
     << " s across " << report.critical_path.size() << " executions";
  if (report.span_seconds > 0.0)
    os << " ("
       << Table::num(
              report.critical_path_seconds / report.span_seconds * 100.0, 1)
       << "% of span)";
  os << "\n\nper-rank breakdown\n"
     << rank_breakdown_table(report).str() << "\nhottest patch-programs\n"
     << hot_programs_table(report).str() << "\ncritical path\n"
     << critical_path_table(report).str();
  return os.str();
}

}  // namespace jsweep::trace
