#include "trace/trace.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace jsweep::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Exec:
      return "exec";
    case EventKind::StreamSend:
      return "stream send";
    case EventKind::StreamRecv:
      return "stream recv";
    case EventKind::Route:
      return "route";
    case EventKind::Pack:
      return "pack";
    case EventKind::Idle:
      return "idle";
    case EventKind::Collective:
      return "collective";
    case EventKind::Superstep:
      return "superstep";
  }
  return "?";
}

EventRing::EventRing(std::size_t capacity)
    : buf_(std::max<std::size_t>(1, capacity)) {}

const Event& EventRing::at(std::size_t i) const {
  JSWEEP_CHECK_MSG(i < count_, "EventRing index " << i << " out of " << count_);
  const std::size_t oldest = count_ < buf_.size() ? 0 : next_;
  std::size_t idx = oldest + i;
  if (idx >= buf_.size()) idx -= buf_.size();
  return buf_[idx];
}

Recorder::Recorder(RecorderOptions options)
    : options_(options), epoch_(WallTimer::clock::now()) {}

Track& Recorder::track(std::int32_t rank, std::int32_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& t : tracks_)
    if (t->rank() == rank && t->id() == id) return *t;
  tracks_.push_back(
      std::make_unique<Track>(rank, id, options_.events_per_track));
  return *tracks_.back();
}

std::vector<const Track*> Recorder::tracks() const {
  std::vector<const Track*> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(tracks_.size());
    for (const auto& t : tracks_) out.push_back(t.get());
  }
  std::sort(out.begin(), out.end(), [](const Track* a, const Track* b) {
    if (a->rank() != b->rank()) return a->rank() < b->rank();
    // Master track first within a rank, then workers by id.
    if (a->is_master() != b->is_master()) return a->is_master();
    return a->id() < b->id();
  });
  return out;
}

std::int64_t Recorder::total_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t n = 0;
  for (const auto& t : tracks_)
    n += static_cast<std::int64_t>(t->ring().size());
  return n;
}

std::int64_t Recorder::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t n = 0;
  for (const auto& t : tracks_) n += t->ring().dropped();
  return n;
}

}  // namespace jsweep::trace
