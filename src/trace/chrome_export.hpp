#pragma once

/// \file chrome_export.hpp
/// Chrome trace-event JSON export of a trace::Recorder.
///
/// The output is the catapult "trace event format" consumed by
/// chrome://tracing and https://ui.perfetto.dev: a top-level object with a
/// `traceEvents` array. Ranks map to processes (pid), tracks to threads
/// (tid 0 is the master, worker w is tid w+1); spans are complete ("X")
/// events with microsecond timestamps, stream send/recv are instants.

#include <iosfwd>
#include <string>

namespace jsweep::trace {

class Recorder;

/// Write the recorder's events as Chrome trace-event JSON.
void write_chrome_trace(const Recorder& recorder, std::ostream& os);

/// Write to `path`; returns false (after logging) when the file cannot be
/// opened or fully written.
bool write_chrome_trace_file(const Recorder& recorder,
                             const std::string& path);

}  // namespace jsweep::trace
