#pragma once

/// \file trace.hpp
/// Low-overhead runtime tracing: typed events in per-track append-only ring
/// buffers, one track per (rank, worker) plus a master track per rank.
///
/// The recorder exists so the paper's performance *breakdowns* (Fig. 16's
/// master-routing vs worker-compute vs idle split, the Fig. 9/13 ablations)
/// can be read off a real or simulated run instead of inferred from scalar
/// totals. Engines hold a `Recorder*` that is null when tracing is off: the
/// hot path pays exactly one pointer check per would-be event and never
/// allocates (rings are preallocated at track creation). Exporters live in
/// chrome_export.hpp (Chrome trace-event JSON for Perfetto /
/// chrome://tracing) and critical_path.hpp (executed-task-graph analysis).
///
/// Threading contract: Recorder::track() is thread-safe (tracks are created
/// under a mutex and have stable addresses); each returned Track must then
/// be written by a single thread only — exactly the engine's structure,
/// where every worker thread and the master own their track. Readers
/// (export/analysis) run after the traced region completes.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "support/ids.hpp"
#include "support/timer.hpp"

namespace jsweep::trace {

/// Typed runtime events. Spans carry [t0, t1]; instants have t1 == t0.
enum class EventKind : std::uint8_t {
  Exec,        ///< one patch-program execution (worker track)
  StreamSend,  ///< master routed an outgoing stream (instant)
  StreamRecv,  ///< stream delivered into the destination inbox (instant)
  Route,       ///< master routing/dispatch service
  Pack,        ///< master pack/unpack of wire messages
  Idle,        ///< a worker or the master waited with nothing to do
  Collective,  ///< termination / reduction collective
  Superstep,   ///< one BSP superstep (master track; `bytes` is the index)
};

[[nodiscard]] const char* to_string(EventKind kind);

/// Track id of a rank's master thread; workers use their ids 0..W-1.
inline constexpr std::int32_t kMasterTrack = -1;

/// One recorded event. Fixed-size POD: recording is a copy into a
/// preallocated ring slot, nothing more.
struct Event {
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;  ///< == t0_ns for instantaneous events
  EventKind kind = EventKind::Exec;
  std::int32_t rank = 0;
  std::int32_t track = kMasterTrack;
  ProgramKey src{};    ///< executing / sending program (when known)
  ProgramKey dst{};    ///< stream destination program (when known)
  std::int64_t bytes = 0;  ///< payload bytes, retired work, or aux index

  [[nodiscard]] double seconds() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-9;
  }
};

/// Span [t0, t1] of `kind`; rank/track are filled in by Track::record().
[[nodiscard]] inline Event make_span(EventKind kind, std::int64_t t0_ns,
                                     std::int64_t t1_ns) {
  Event e;
  e.kind = kind;
  e.t0_ns = t0_ns;
  e.t1_ns = t1_ns;
  return e;
}

/// Instantaneous event of `kind` at `t_ns`.
[[nodiscard]] inline Event make_instant(EventKind kind, std::int64_t t_ns) {
  return make_span(kind, t_ns, t_ns);
}

/// Fixed-capacity ring of events: appends are O(1) and allocation-free;
/// once full, the oldest events are overwritten (and counted as dropped) so
/// a long run keeps its most recent window instead of failing.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  void push(const Event& e) {
    buf_[next_] = e;
    next_ = next_ + 1 == buf_.size() ? 0 : next_ + 1;
    if (count_ < buf_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  /// Events currently held (≤ capacity).
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }

  /// i-th event in record order (0 = oldest retained).
  [[nodiscard]] const Event& at(std::size_t i) const;

 private:
  std::vector<Event> buf_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::int64_t dropped_ = 0;
};

/// One event timeline: a (rank, worker-or-master) pair. Single-writer.
class Track {
 public:
  Track(std::int32_t rank, std::int32_t id, std::size_t capacity)
      : rank_(rank), id_(id), ring_(capacity) {}

  void record(Event e) {
    e.rank = rank_;
    e.track = id_;
    ring_.push(e);
  }

  [[nodiscard]] std::int32_t rank() const { return rank_; }
  /// kMasterTrack for the rank's master thread, else the worker id.
  [[nodiscard]] std::int32_t id() const { return id_; }
  [[nodiscard]] bool is_master() const { return id_ == kMasterTrack; }
  [[nodiscard]] const EventRing& ring() const { return ring_; }

 private:
  std::int32_t rank_;
  std::int32_t id_;
  EventRing ring_;
};

struct RecorderOptions {
  /// Ring capacity per track; ~56 B/event, so the default holds ~16k
  /// events (<1 MiB) per track.
  std::size_t events_per_track = std::size_t{1} << 14;
};

/// Owns the tracks of one traced run (all ranks of the in-process
/// cluster). Construction fixes the shared steady-clock epoch so every
/// rank's timestamps are directly comparable.
class Recorder {
 public:
  explicit Recorder(RecorderOptions options = {});

  /// Nanoseconds since the recorder's construction (steady clock).
  [[nodiscard]] std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               WallTimer::clock::now() - epoch_)
        .count();
  }

  /// The track for (rank, id), created on first use. Thread-safe; the
  /// returned reference stays valid for the recorder's lifetime. A given
  /// track must only be written by one thread at a time.
  Track& track(std::int32_t rank, std::int32_t id);

  /// All tracks ordered by (rank, master-first, id). Call after the traced
  /// region has completed.
  [[nodiscard]] std::vector<const Track*> tracks() const;

  [[nodiscard]] std::int64_t total_events() const;
  [[nodiscard]] std::int64_t dropped_events() const;

 private:
  RecorderOptions options_;
  WallTimer::clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Track>> tracks_;
};

}  // namespace jsweep::trace
