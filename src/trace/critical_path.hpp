#pragma once

/// \file critical_path.hpp
/// Post-mortem analysis of a recorded trace: reconstructs the executed
/// task graph (program executions linked by stream deliveries and by each
/// program's serial execution order), extracts the critical path — the
/// longest chain of execution time plus inter-execution latency — and
/// aggregates per-rank busy/idle/route/pack breakdowns and the hottest
/// patch-programs. This is the instrument behind the paper's Fig. 16-style
/// "why is this sweep slow" questions.

#include <cstdint>
#include <string>
#include <vector>

#include "support/ids.hpp"
#include "support/table.hpp"

namespace jsweep::trace {

class Recorder;

struct ProfileOptions {
  int top_k = 10;  ///< hottest-program rows to keep
};

/// One execution on the critical path.
struct CriticalHop {
  ProgramKey prog{};
  std::int32_t rank = 0;
  double exec_seconds = 0.0;  ///< duration of this execution
  /// Stream latency (producer end → this start: routing, wire, queueing)
  /// when this hop was reached via a stream; 0 for serial continuation.
  double wait_seconds = 0.0;
};

/// Per-rank time breakdown summed over the rank's tracks.
struct RankBreakdown {
  std::int32_t rank = 0;
  int workers = 0;  ///< worker tracks observed
  std::int64_t executions = 0;
  double busy_seconds = 0.0;        ///< worker execution time
  double idle_seconds = 0.0;        ///< recorded worker + master idle
  double route_seconds = 0.0;       ///< master routing service
  double pack_seconds = 0.0;        ///< master pack/unpack
  double collective_seconds = 0.0;  ///< collectives (termination etc.)
};

struct HotProgram {
  ProgramKey prog{};
  std::int64_t executions = 0;
  double exec_seconds = 0.0;
};

struct ProfileReport {
  std::int64_t events = 0;
  std::int64_t dropped = 0;
  double span_seconds = 0.0;  ///< last event end − first event begin
  double critical_path_seconds = 0.0;
  std::vector<CriticalHop> critical_path;  ///< first hop first
  std::vector<RankBreakdown> ranks;        ///< ordered by rank
  std::vector<HotProgram> hottest;         ///< by exec time, descending
};

/// Analyze a completed trace. Tolerant of ring overflow: edges whose
/// producer or consumer execution was overwritten are simply skipped.
[[nodiscard]] ProfileReport analyze(const Recorder& recorder,
                                    const ProfileOptions& options = {});

/// Render pieces of the report as support::Table (for tests and drivers).
[[nodiscard]] Table critical_path_table(const ProfileReport& report,
                                        std::size_t max_rows = 24);
[[nodiscard]] Table rank_breakdown_table(const ProfileReport& report);
[[nodiscard]] Table hot_programs_table(const ProfileReport& report);

/// Full human-readable profile: summary lines plus the three tables.
[[nodiscard]] std::string render_profile(const ProfileReport& report);

}  // namespace jsweep::trace
