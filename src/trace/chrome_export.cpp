#include "trace/chrome_export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/log.hpp"
#include "trace/trace.hpp"

namespace jsweep::trace {

namespace {

/// Chrome's tid space has no negative ids: master = 0, worker w = w + 1.
int tid_of(const Track& t) { return t.is_master() ? 0 : t.id() + 1; }

/// Microsecond timestamp with sub-µs precision (the format allows doubles).
std::string us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) * 1e-3);
  return buf;
}

void write_metadata(std::ostream& os, const Track& t, bool& first) {
  const auto open = [&](const char* name) {
    os << (first ? "" : ",") << "\n    {\"name\": \"" << name
       << "\", \"ph\": \"M\", \"pid\": " << t.rank()
       << ", \"tid\": " << tid_of(t) << ", \"args\": {";
    first = false;
  };
  if (t.is_master()) {
    open("process_name");
    os << "\"name\": \"rank " << t.rank() << "\"}}";
    open("thread_name");
    os << "\"name\": \"master\"}}";
  } else {
    open("thread_name");
    os << "\"name\": \"worker " << t.id() << "\"}}";
  }
  open("thread_sort_index");
  os << "\"sort_index\": " << tid_of(t) << "}}";
}

void write_event(std::ostream& os, const Track& t, const Event& e,
                 bool& first) {
  os << (first ? "" : ",") << "\n    {\"name\": \"";
  first = false;
  if (e.kind == EventKind::Exec) {
    os << "exec " << e.src;
  } else {
    os << to_string(e.kind);
  }
  os << "\", \"cat\": \"" << to_string(e.kind) << "\", \"pid\": " << t.rank()
     << ", \"tid\": " << tid_of(t) << ", \"ts\": " << us(e.t0_ns);
  if (e.t1_ns > e.t0_ns) {
    os << ", \"ph\": \"X\", \"dur\": " << us(e.t1_ns - e.t0_ns);
  } else {
    os << ", \"ph\": \"i\", \"s\": \"t\"";
  }
  os << ", \"args\": {";
  bool first_arg = true;
  const auto arg_key = [&](const char* name, const ProgramKey& key) {
    os << (first_arg ? "" : ", ") << "\"" << name << "\": \"" << key << "\"";
    first_arg = false;
  };
  if (e.src.patch.valid()) arg_key("src", e.src);
  if (e.dst.patch.valid()) arg_key("dst", e.dst);
  if (e.bytes != 0)
    os << (first_arg ? "" : ", ") << "\"bytes\": " << e.bytes;
  os << "}}";
}

}  // namespace

void write_chrome_trace(const Recorder& recorder, std::ostream& os) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": "
     << "{\"dropped_events\": " << recorder.dropped_events()
     << "},\n  \"traceEvents\": [";
  bool first = true;
  const auto tracks = recorder.tracks();
  for (const Track* t : tracks) write_metadata(os, *t, first);
  for (const Track* t : tracks) {
    const EventRing& ring = t->ring();
    for (std::size_t i = 0; i < ring.size(); ++i)
      write_event(os, *t, ring.at(i), first);
  }
  os << "\n  ]\n}\n";
}

bool write_chrome_trace_file(const Recorder& recorder,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    JSWEEP_ERROR("trace: cannot open " << path << " for writing");
    return false;
  }
  write_chrome_trace(recorder, f);
  f.flush();
  if (!f) {
    JSWEEP_ERROR("trace: failed writing " << path);
    return false;
  }
  return true;
}

}  // namespace jsweep::trace
