#include "sn/multigroup.hpp"

#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace jsweep::sn {

MultigroupXs::MultigroupXs(int groups, std::int64_t cells)
    : groups_(groups), cells_(cells) {
  JSWEEP_CHECK(groups >= 1 && cells >= 1);
  sigma_t_.assign(static_cast<std::size_t>(cells) * groups_, 0.0);
  source_.assign(static_cast<std::size_t>(cells) * groups_, 0.0);
  sigma_s_.assign(static_cast<std::size_t>(cells) * groups_ * groups_, 0.0);
}

CellXs MultigroupXs::group_view(int g) const {
  JSWEEP_CHECK(g >= 0 && g < groups_);
  CellXs xs;
  xs.sigma_t.resize(static_cast<std::size_t>(cells_));
  xs.sigma_s.resize(static_cast<std::size_t>(cells_));
  xs.source.resize(static_cast<std::size_t>(cells_));
  for (std::int64_t c = 0; c < cells_; ++c) {
    xs.sigma_t[static_cast<std::size_t>(c)] = sigma_t(g, c);
    xs.sigma_s[static_cast<std::size_t>(c)] = sigma_s(g, g, c);
    // The external part of group g's source is filled per outer iteration
    // by solve_multigroup; group_view carries only the material source.
    xs.source[static_cast<std::size_t>(c)] = source(g, c);
  }
  return xs;
}

bool MultigroupXs::has_upscatter() const {
  for (std::int64_t c = 0; c < cells_; ++c)
    for (int from = 0; from < groups_; ++from)
      for (int to = 0; to < from; ++to)
        if (sigma_s(from, to, c) != 0.0) return true;
  return false;
}

MultigroupXs MultigroupXs::cascade(const MaterialTable& table,
                                   const std::vector<int>& materials,
                                   std::int64_t cells, int groups,
                                   double within) {
  JSWEEP_CHECK(within >= 0.0 && within <= 1.0);
  MultigroupXs xs(groups, cells);
  for (std::int64_t c = 0; c < cells; ++c) {
    const int mat =
        materials.empty() ? 0 : materials[static_cast<std::size_t>(c)];
    const CrossSection& base = table.at(mat);
    for (int g = 0; g < groups; ++g) {
      // Harder (higher) groups are slightly more absorbing.
      xs.sigma_t(g, c) = base.sigma_t * (1.0 + 0.25 * g);
      // External source enters the fastest group only (fission-like).
      xs.source(g, c) = g == 0 ? base.source : 0.0;
      const double total_scatter = base.sigma_s * (1.0 + 0.25 * g);
      if (g + 1 < groups) {
        xs.sigma_s(g, g, c) = within * total_scatter;
        xs.sigma_s(g, g + 1, c) = (1.0 - within) * total_scatter;
      } else {
        xs.sigma_s(g, g, c) = total_scatter;  // terminal group
      }
    }
  }
  return xs;
}

MultigroupResult solve_multigroup(const MultigroupXs& xs,
                                  const GroupSweepFactory& sweeps,
                                  const MultigroupOptions& options) {
  const int G = xs.groups();
  const std::int64_t n = xs.cells();
  constexpr double kInvFourPi = 1.0 / (4.0 * std::numbers::pi);

  MultigroupResult result;
  result.phi.assign(static_cast<std::size_t>(G),
                    std::vector<double>(static_cast<std::size_t>(n), 0.0));

  std::vector<SweepOperator> group_sweep;
  group_sweep.reserve(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g) group_sweep.push_back(sweeps(g));

  const int outers =
      xs.has_upscatter() ? options.max_outer_iterations : 1;

  for (int outer = 0; outer < outers; ++outer) {
    double outer_error = 0.0;
    for (int g = 0; g < G; ++g) {
      // Fixed in-scatter from the other groups' latest fluxes.
      std::vector<double> inscatter(static_cast<std::size_t>(n), 0.0);
      for (int from = 0; from < G; ++from) {
        if (from == g) continue;
        for (std::int64_t c = 0; c < n; ++c)
          inscatter[static_cast<std::size_t>(c)] +=
              xs.sigma_s(from, g, c) *
              result.phi[static_cast<std::size_t>(from)]
                        [static_cast<std::size_t>(c)];
      }

      // Within-group source iteration: q = (σ_gg φ_g + Q_g + inscatter)/4π.
      CellXs view = xs.group_view(g);
      std::vector<double> phi = result.phi[static_cast<std::size_t>(g)];
      double error = 0.0;
      int iterations = 0;
      for (int it = 0; it < options.inner.max_iterations; ++it) {
        std::vector<double> q(static_cast<std::size_t>(n));
        for (std::int64_t c = 0; c < n; ++c)
          q[static_cast<std::size_t>(c)] =
              (view.sigma_s[static_cast<std::size_t>(c)] *
                   phi[static_cast<std::size_t>(c)] +
               view.source[static_cast<std::size_t>(c)] +
               inscatter[static_cast<std::size_t>(c)]) *
              kInvFourPi;
        std::vector<double> phi_new =
            group_sweep[static_cast<std::size_t>(g)](q);
        ++result.total_sweeps;
        error = relative_linf(phi_new, phi);
        phi = std::move(phi_new);
        iterations = it + 1;
        if (error < options.inner.tolerance) break;
      }
      (void)iterations;
      outer_error = std::max(
          outer_error,
          relative_linf(phi, result.phi[static_cast<std::size_t>(g)]));
      result.phi[static_cast<std::size_t>(g)] = std::move(phi);
    }
    result.outer_iterations = outer + 1;
    result.error = outer_error;
    if (outer_error < options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }
  if (!xs.has_upscatter()) result.converged = true;
  return result;
}

}  // namespace jsweep::sn
