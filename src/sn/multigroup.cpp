#include "sn/multigroup.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

#include "support/check.hpp"

namespace jsweep::sn {

MultigroupXs::MultigroupXs(int groups, std::int64_t cells)
    : groups_(groups), cells_(cells) {
  JSWEEP_CHECK(groups >= 1 && cells >= 1);
  sigma_t_.assign(static_cast<std::size_t>(cells) * groups_, 0.0);
  source_.assign(static_cast<std::size_t>(cells) * groups_, 0.0);
  sigma_s_.assign(static_cast<std::size_t>(cells) * groups_ * groups_, 0.0);
}

CellXs MultigroupXs::group_view(int g) const {
  JSWEEP_CHECK(g >= 0 && g < groups_);
  CellXs xs;
  xs.sigma_t.resize(static_cast<std::size_t>(cells_));
  xs.sigma_s.resize(static_cast<std::size_t>(cells_));
  xs.source.resize(static_cast<std::size_t>(cells_));
  for (std::int64_t c = 0; c < cells_; ++c) {
    xs.sigma_t[static_cast<std::size_t>(c)] = sigma_t(g, c);
    xs.sigma_s[static_cast<std::size_t>(c)] = sigma_s(g, g, c);
    // The external part of group g's source is filled per outer iteration
    // by solve_multigroup; group_view carries only the material source.
    xs.source[static_cast<std::size_t>(c)] = source(g, c);
  }
  return xs;
}

bool MultigroupXs::has_upscatter() const {
  for (std::int64_t c = 0; c < cells_; ++c)
    for (int from = 0; from < groups_; ++from)
      for (int to = 0; to < from; ++to)
        if (sigma_s(from, to, c) != 0.0) return true;
  return false;
}

void MultigroupXs::validate() const {
  for (std::int64_t c = 0; c < cells_; ++c) {
    for (int g = 0; g < groups_; ++g) {
      const double st = sigma_t(g, c);
      JSWEEP_CHECK_MSG(std::isfinite(st) && st >= 0.0,
                       "σ_t[" << g << "] = " << st << " at cell " << c);
      const double q = source(g, c);
      JSWEEP_CHECK_MSG(std::isfinite(q) && q >= 0.0,
                       "source[" << g << "] = " << q << " at cell " << c);
      double out_scatter = 0.0;
      for (int to = 0; to < groups_; ++to) {
        const double ss = sigma_s(g, to, c);
        JSWEEP_CHECK_MSG(std::isfinite(ss) && ss >= 0.0,
                         "σ_s[" << g << "→" << to << "] = " << ss
                                << " at cell " << c);
        out_scatter += ss;
      }
      // Pure scattering (Σ σ_s == σ_t) is a legal physical limit; the
      // summation above can land a hair over σ_t in floating point, so the
      // supercritical check carries both relative and absolute slack.
      JSWEEP_CHECK_MSG(
          out_scatter <= st + 1e-12 * std::max(1.0, st),
          "group " << g << " scatters Σ_to σ_s = " << out_scatter
                   << " > σ_t = " << st << " at cell " << c
                   << " (scattering ratio above one diverges)");
    }
  }
}

MultigroupXs MultigroupXs::cascade(const MaterialTable& table,
                                   const std::vector<int>& materials,
                                   std::int64_t cells, int groups,
                                   double within) {
  JSWEEP_CHECK(within >= 0.0 && within <= 1.0);
  MultigroupXs xs(groups, cells);
  for (std::int64_t c = 0; c < cells; ++c) {
    const int mat =
        materials.empty() ? 0 : materials[static_cast<std::size_t>(c)];
    const CrossSection& base = table.at(mat);
    for (int g = 0; g < groups; ++g) {
      // Harder (higher) groups are slightly more absorbing.
      xs.sigma_t(g, c) = base.sigma_t * (1.0 + 0.25 * g);
      // External source enters the fastest group only (fission-like).
      xs.source(g, c) = g == 0 ? base.source : 0.0;
      const double total_scatter = base.sigma_s * (1.0 + 0.25 * g);
      if (g + 1 < groups) {
        xs.sigma_s(g, g, c) = within * total_scatter;
        xs.sigma_s(g, g + 1, c) = (1.0 - within) * total_scatter;
      } else {
        xs.sigma_s(g, g, c) = total_scatter;  // terminal group
      }
    }
  }
  return xs;
}

MultigroupResult solve_multigroup(const MultigroupXs& xs,
                                  const GroupSweepFactory& sweeps,
                                  const MultigroupOptions& options) {
  const int G = xs.groups();
  const std::int64_t n = xs.cells();

  MultigroupResult result;
  result.phi.assign(static_cast<std::size_t>(G),
                    std::vector<double>(static_cast<std::size_t>(n), 0.0));

  std::vector<SweepOperator> group_sweep;
  group_sweep.reserve(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g) group_sweep.push_back(sweeps(g));

  const int outers =
      xs.has_upscatter() ? options.max_outer_iterations : 1;

  for (int outer = 0; outer < outers; ++outer) {
    double outer_error = 0.0;
    for (int g = 0; g < G; ++g) {
      // Fixed in-scatter from the other groups' latest fluxes.
      std::vector<double> inscatter(static_cast<std::size_t>(n), 0.0);
      for (int from = 0; from < G; ++from) {
        if (from == g) continue;
        for (std::int64_t c = 0; c < n; ++c)
          inscatter[static_cast<std::size_t>(c)] +=
              xs.sigma_s(from, g, c) *
              result.phi[static_cast<std::size_t>(from)]
                        [static_cast<std::size_t>(c)];
      }

      // Within-group source iteration: q = (σ_gg φ_g + Q_g + inscatter)/4π.
      CellXs view = xs.group_view(g);
      std::vector<double> phi = result.phi[static_cast<std::size_t>(g)];
      double error = 0.0;
      int iterations = 0;
      for (int it = 0; it < options.inner.max_iterations; ++it) {
        std::vector<double> q(static_cast<std::size_t>(n));
        for (std::int64_t c = 0; c < n; ++c)
          q[static_cast<std::size_t>(c)] =
              (view.sigma_s[static_cast<std::size_t>(c)] *
                   phi[static_cast<std::size_t>(c)] +
               view.source[static_cast<std::size_t>(c)] +
               inscatter[static_cast<std::size_t>(c)]) *
              kInvFourPi;
        std::vector<double> phi_new =
            group_sweep[static_cast<std::size_t>(g)](q);
        ++result.total_sweeps;
        error = relative_linf(phi_new, phi);
        phi = std::move(phi_new);
        iterations = it + 1;
        if (error < options.inner.tolerance) break;
      }
      (void)iterations;
      outer_error = std::max(
          outer_error,
          relative_linf(phi, result.phi[static_cast<std::size_t>(g)]));
      result.phi[static_cast<std::size_t>(g)] = std::move(phi);
    }
    result.outer_iterations = outer + 1;
    result.error = outer_error;
    if (outer_error < options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }
  if (!xs.has_upscatter()) result.converged = true;
  return result;
}

MultigroupSweepPass sequential_sweep_pass(const MultigroupXs& xs,
                                          const GroupSweepFactory& sweeps) {
  return sequential_sweep_pass(xs, sweeps, 1);
}

MultigroupSweepPass sequential_sweep_pass(const MultigroupXs& xs,
                                          const GroupSweepFactory& sweeps,
                                          int group_set_width) {
  JSWEEP_CHECK(group_set_width >= 1);
  auto group_sweep = std::make_shared<std::vector<SweepOperator>>();
  group_sweep->reserve(static_cast<std::size_t>(xs.groups()));
  for (int g = 0; g < xs.groups(); ++g) group_sweep->push_back(sweeps(g));
  return [&xs, group_sweep, group_set_width](
             const std::vector<std::vector<double>>& q_base,
             std::vector<std::vector<double>>& phi) {
    const int G = xs.groups();
    const std::int64_t n = xs.cells();
    std::vector<double> q;
    for (int g = 0; g < G; ++g) {
      q = q_base[static_cast<std::size_t>(g)];
      // Fresh Gauss-Seidel downscatter from groups of *earlier sets* —
      // they were already swept this pass. Within-set downscatter is
      // lagged and already inside q_base. `from` ascends — the
      // accumulation order every pass implementation must share (see
      // inscatter_term). At width 1 the bound is g, the classic scheme.
      const int fresh_bound = group_set_base(g, group_set_width);
      for (int from = 0; from < fresh_bound; ++from) {
        const auto& phi_from = phi[static_cast<std::size_t>(from)];
        for (std::int64_t c = 0; c < n; ++c)
          q[static_cast<std::size_t>(c)] += inscatter_term(
              xs, from, g, c, phi_from[static_cast<std::size_t>(c)]);
      }
      phi[static_cast<std::size_t>(g)] =
          (*group_sweep)[static_cast<std::size_t>(g)](q);
    }
  };
}

MultigroupResult solve_multigroup_sweeps(const MultigroupXs& xs,
                                         const MultigroupSweepPass& pass,
                                         const MultigroupOptions& options) {
  xs.validate();
  const int G = xs.groups();
  const std::int64_t n = xs.cells();
  const int W = options.group_set_width;
  JSWEEP_CHECK_MSG(W >= 1, "group_set_width must be >= 1, got " << W);

  MultigroupResult result;
  result.phi.assign(static_cast<std::size_t>(G),
                    std::vector<double>(static_cast<std::size_t>(n), 0.0));

  // Cached one-group views: σ_gg and Q_g feed the lagged part of q_base
  // through the SAME emission_density() the single-group path uses, which
  // is what makes G == 1 degenerate bitwise to source_iteration().
  std::vector<CellXs> views;
  views.reserve(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g) views.push_back(xs.group_view(g));

  const bool upscatter = xs.has_upscatter();
  const int outers = upscatter ? options.max_outer_iterations : 1;

  std::vector<std::vector<double>> q_base(static_cast<std::size_t>(G));
  std::vector<std::vector<double>> phi_frozen;  ///< upscatter sources
  std::vector<std::vector<double>> phi_old;

  for (int outer = 0; outer < outers; ++outer) {
    if (upscatter) phi_frozen = result.phi;
    bool inner_converged = false;
    double inner_error = 0.0;
    for (int it = 0; it < options.inner.max_iterations; ++it) {
      for (int g = 0; g < G; ++g) {
        auto& q = q_base[static_cast<std::size_t>(g)];
        // Source-tail overlap: a provider that precomputed this group's
        // emission + lagged within-set downscatter during the previous
        // pass supersedes the serial formation below (bitwise-identical
        // by contract; see MultigroupOptions::q_base_provider).
        const bool provided =
            options.q_base_provider && options.q_base_provider(g, q);
        if (!provided) {
          q = emission_density(views[static_cast<std::size_t>(g)],
                               result.phi[static_cast<std::size_t>(g)]);
          // Within-set downscatter, lagged one pass (previous pass's φ):
          // the set's groups sweep together, so they cannot see each
          // other's fresh flux. Empty at W == 1 — the classic scheme is
          // untouched bitwise. `from` ascends, matching inscatter_term's
          // accumulation-order contract.
          for (int from = group_set_base(g, W); from < g; ++from) {
            const auto& pf = result.phi[static_cast<std::size_t>(from)];
            for (std::int64_t c = 0; c < n; ++c)
              q[static_cast<std::size_t>(c)] += inscatter_term(
                  xs, from, g, c, pf[static_cast<std::size_t>(c)]);
          }
        }
        if (upscatter) {
          for (int from = g + 1; from < G; ++from) {
            const auto& pf = phi_frozen[static_cast<std::size_t>(from)];
            for (std::int64_t c = 0; c < n; ++c)
              q[static_cast<std::size_t>(c)] += inscatter_term(
                  xs, from, g, c, pf[static_cast<std::size_t>(c)]);
          }
        }
      }
      phi_old = result.phi;
      pass(q_base, result.phi);
      result.total_sweeps += G;
      ++result.pass_iterations;
      inner_error = 0.0;
      for (int g = 0; g < G; ++g)
        inner_error = std::max(
            inner_error,
            relative_linf(result.phi[static_cast<std::size_t>(g)],
                          phi_old[static_cast<std::size_t>(g)]));
      if (inner_error < options.inner.tolerance) {
        inner_converged = true;
        break;
      }
    }
    result.outer_iterations = outer + 1;
    if (!upscatter) {
      result.converged = inner_converged;
      result.error = inner_error;
      break;
    }
    double outer_error = 0.0;
    for (int g = 0; g < G; ++g)
      outer_error = std::max(
          outer_error, relative_linf(result.phi[static_cast<std::size_t>(g)],
                                     phi_frozen[static_cast<std::size_t>(g)]));
    result.error = outer_error;
    if (outer_error < options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace jsweep::sn
