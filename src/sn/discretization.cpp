#include "sn/discretization.hpp"

#include <cmath>

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include "support/check.hpp"

namespace jsweep::sn {

namespace {

double lookup(const FaceFluxMap& flux, std::int64_t face) {
  const auto it = flux.find(face);
  return it == flux.end() ? 0.0 : it->second;  // vacuum boundary
}

}  // namespace

StructuredDD::StructuredDD(const mesh::StructuredMesh& m, CellXs xs,
                           bool negative_flux_fixup, BoundarySpec boundary)
    : mesh_(m),
      xs_(std::move(xs)),
      fixup_(negative_flux_fixup),
      boundary_(boundary) {
  JSWEEP_CHECK(static_cast<std::int64_t>(xs_.sigma_t.size()) ==
               m.num_cells());
  boundary_.validate();
}

// The dense and map kernels must perform the identical floating-point
// operations in the identical order — the dense path replaces only *where*
// face fluxes live, never the arithmetic — so results stay bitwise equal.

double StructuredDD::sweep_cell(CellId c, const Ordinate& ang,
                                const std::vector<double>& q_per_ster,
                                const FaceFluxView& flux) const {
  const mesh::Vec3 sp = mesh_.spacing();
  const mesh::Vec3 omega = ang.dir;

  const std::array<double, 3> absmu{std::abs(omega.x), std::abs(omega.y),
                                    std::abs(omega.z)};
  const std::array<double, 3> width{sp.x, sp.y, sp.z};

  double numerator = q_per_ster[static_cast<std::size_t>(c.value())];
  double denominator = xs_.sigma_t[static_cast<std::size_t>(c.value())];
  std::array<double, 3> psi_in{};
  for (int axis = 0; axis < 3; ++axis) {
    const double alpha = 2.0 * absmu[static_cast<std::size_t>(axis)] /
                         width[static_cast<std::size_t>(axis)];
    const double in = flux.read_in(axis);  // vacuum slot reads 0
    psi_in[static_cast<std::size_t>(axis)] = in;
    numerator += alpha * in;
    denominator += alpha;
  }

  const double psi_c = numerator / denominator;

  for (int axis = 0; axis < 3; ++axis) {
    double out = 2.0 * psi_c - psi_in[static_cast<std::size_t>(axis)];
    if (fixup_ && out < 0.0) out = 0.0;
    flux.write_out(axis, out);
  }
  return psi_c;
}

double StructuredDD::sweep_cell(CellId c, const Ordinate& ang,
                                const std::vector<double>& q_per_ster,
                                FaceFluxMap& flux) const {
  const mesh::Vec3 sp = mesh_.spacing();
  const mesh::Vec3 omega = ang.dir;

  // Per-axis upwind/downwind faces for this ordinate.
  const std::array<double, 3> absmu{std::abs(omega.x), std::abs(omega.y),
                                    std::abs(omega.z)};
  const std::array<double, 3> width{sp.x, sp.y, sp.z};
  const std::array<mesh::FaceDir, 3> in_dir{
      omega.x > 0 ? mesh::FaceDir::XLo : mesh::FaceDir::XHi,
      omega.y > 0 ? mesh::FaceDir::YLo : mesh::FaceDir::YHi,
      omega.z > 0 ? mesh::FaceDir::ZLo : mesh::FaceDir::ZHi};

  double numerator = q_per_ster[static_cast<std::size_t>(c.value())];
  double denominator = xs_.sigma_t[static_cast<std::size_t>(c.value())];
  std::array<double, 3> psi_in{};
  for (int axis = 0; axis < 3; ++axis) {
    const double alpha = 2.0 * absmu[static_cast<std::size_t>(axis)] /
                         width[static_cast<std::size_t>(axis)];
    const auto d = in_dir[static_cast<std::size_t>(axis)];
    const auto nb = mesh_.neighbor(c, d);
    // Boundary faces on an albedo side read the seeded slot named from
    // this cell (the mirror angle's outflow face); an unseeded read is 0,
    // so with vacuum sides nothing changes bitwise.
    const double in =
        nb ? lookup(flux, graph::structured_face_id(*nb, mesh::opposite(d)))
        : boundary_.side(d) != 0.0
            ? lookup(flux, graph::structured_face_id(c, d))
            : 0.0;
    psi_in[static_cast<std::size_t>(axis)] = in;
    numerator += alpha * in;
    denominator += alpha;
  }

  const double psi_c = numerator / denominator;

  for (int axis = 0; axis < 3; ++axis) {
    double out = 2.0 * psi_c - psi_in[static_cast<std::size_t>(axis)];
    if (fixup_ && out < 0.0) out = 0.0;
    const mesh::FaceDir out_dir =
        mesh::opposite(in_dir[static_cast<std::size_t>(axis)]);
    flux[graph::structured_face_id(c, out_dir)] = out;
  }
  return psi_c;
}

// The set kernel runs the scalar op sequence in every lane: per axis the
// same alpha (geometry is lane-independent), the same add order into
// numerator/denominator, one divide, the same extrapolation + fixup. The
// lanes only share loop control, never operands, so no reassociation can
// occur and lane l is bitwise the scalar sweep of group g0+l wherever the
// target does not contract a*b+c into an FMA.

void StructuredDD::sweep_cell_set(CellId c, const Ordinate& ang, int width,
                                  const double* q_per_ster,
                                  const double* sigma_t,
                                  const FaceFluxSetView& flux,
                                  double* psi_out) const {
  JSWEEP_ASSERT(width >= 1 && width <= kMaxGroupSetWidth);
  const mesh::Vec3 sp = mesh_.spacing();
  const mesh::Vec3 omega = ang.dir;

  const std::array<double, 3> absmu{std::abs(omega.x), std::abs(omega.y),
                                    std::abs(omega.z)};
  const std::array<double, 3> cell_width{sp.x, sp.y, sp.z};
  std::array<double, 3> alpha{};
  for (int axis = 0; axis < 3; ++axis)
    alpha[static_cast<std::size_t>(axis)] =
        2.0 * absmu[static_cast<std::size_t>(axis)] /
        cell_width[static_cast<std::size_t>(axis)];

  const std::size_t base =
      static_cast<std::size_t>(c.value()) * static_cast<std::size_t>(width);

  // Gather lanes (epoch-checked workspace reads stay scalar)...
  alignas(64) double psi_in[3][kMaxGroupSetWidth];
  for (int axis = 0; axis < 3; ++axis)
    for (int l = 0; l < width; ++l)
      psi_in[axis][l] = flux.read_in(axis, l);  // vacuum slot reads 0

#ifdef __AVX2__
  if (width == 4) {
    __m256d num = _mm256_loadu_pd(q_per_ster + base);
    __m256d den = _mm256_loadu_pd(sigma_t + base);
    __m256d in[3];
    for (int axis = 0; axis < 3; ++axis) {
      in[axis] = _mm256_load_pd(psi_in[axis]);
      const __m256d a = _mm256_set1_pd(alpha[static_cast<std::size_t>(axis)]);
      // Explicit mul+add intrinsics — never contracted into an FMA, so
      // lanes match the scalar kernel bitwise.
      num = _mm256_add_pd(num, _mm256_mul_pd(a, in[axis]));
      den = _mm256_add_pd(den, a);
    }
    const __m256d psi = _mm256_div_pd(num, den);
    _mm256_storeu_pd(psi_out, psi);
    const __m256d two = _mm256_set1_pd(2.0);
    const __m256d zero = _mm256_setzero_pd();
    for (int axis = 0; axis < 3; ++axis) {
      __m256d out =
          _mm256_sub_pd(_mm256_mul_pd(two, psi), in[axis]);
      if (fixup_) {
        // Zero exactly the lanes with out < 0. (max_pd would also flush
        // -0.0 to +0.0, diverging from the scalar `if (out < 0)` fixup.)
        const __m256d neg = _mm256_cmp_pd(out, zero, _CMP_LT_OQ);
        out = _mm256_andnot_pd(neg, out);
      }
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, out);
      for (int l = 0; l < 4; ++l) flux.write_out(axis, l, lanes[l]);
    }
    return;
  }
#endif

  alignas(64) double numerator[kMaxGroupSetWidth];
  alignas(64) double denominator[kMaxGroupSetWidth];
#pragma omp simd
  for (int l = 0; l < width; ++l) {
    double num = q_per_ster[base + static_cast<std::size_t>(l)];
    double den = sigma_t[base + static_cast<std::size_t>(l)];
    for (int axis = 0; axis < 3; ++axis) {
      num += alpha[static_cast<std::size_t>(axis)] * psi_in[axis][l];
      den += alpha[static_cast<std::size_t>(axis)];
    }
    numerator[l] = num;
    denominator[l] = den;
  }
#pragma omp simd
  for (int l = 0; l < width; ++l)
    psi_out[l] = numerator[l] / denominator[l];

  for (int axis = 0; axis < 3; ++axis) {
    alignas(64) double out[kMaxGroupSetWidth];
#pragma omp simd
    for (int l = 0; l < width; ++l) {
      double v = 2.0 * psi_out[l] - psi_in[axis][l];
      if (fixup_ && v < 0.0) v = 0.0;
      out[l] = v;
    }
    for (int l = 0; l < width; ++l) flux.write_out(axis, l, out[l]);
  }
}

void StructuredDD::face_ids(CellId c, const Ordinate& ang,
                            CellFaceIds& ids) const {
  const mesh::Vec3 omega = ang.dir;
  const std::array<mesh::FaceDir, 3> in_dir{
      omega.x > 0 ? mesh::FaceDir::XLo : mesh::FaceDir::XHi,
      omega.y > 0 ? mesh::FaceDir::YLo : mesh::FaceDir::YHi,
      omega.z > 0 ? mesh::FaceDir::ZLo : mesh::FaceDir::ZHi};
  ids = CellFaceIds{};
  ids.count = 3;
  for (int axis = 0; axis < 3; ++axis) {
    const auto d = in_dir[static_cast<std::size_t>(axis)];
    const auto nb = mesh_.neighbor(c, d);
    // Albedo sides: the incoming boundary face is structured_face_id(c, d)
    // — the very face the mirror angle writes as its outflow from this
    // cell — so the plan's boundary store can couple the pair.
    ids.in[static_cast<std::size_t>(axis)] =
        nb                            ? graph::structured_face_id(
                                            *nb, mesh::opposite(d))
        : boundary_.side(d) != 0.0 ? graph::structured_face_id(c, d)
                                      : CellFaceIds::kNone;
    ids.out[static_cast<std::size_t>(axis)] =
        graph::structured_face_id(c, mesh::opposite(d));
  }
}

TetStep::TetStep(const mesh::TetMesh& m, CellXs xs)
    : mesh_(m), xs_(std::move(xs)) {
  JSWEEP_CHECK(static_cast<std::int64_t>(xs_.sigma_t.size()) ==
               m.num_cells());
}

double TetStep::sweep_cell(CellId c, const Ordinate& ang,
                           const std::vector<double>& q_per_ster,
                           const FaceFluxView& flux) const {
  const double volume = mesh_.cell_volume(c);
  const mesh::Vec3 omega = ang.dir;

  double numerator =
      q_per_ster[static_cast<std::size_t>(c.value())] * volume;
  double denominator =
      xs_.sigma_t[static_cast<std::size_t>(c.value())] * volume;

  // First pass: gather inflow and accumulate outflow coefficients, in cell
  // face order (entry k of the slot record is cell_faces(c)[k]).
  const auto& faces = mesh_.cell_faces(c);
  std::array<double, 4> adot{};
  for (int k = 0; k < 4; ++k) {
    const mesh::Vec3 area =
        mesh_.outward_area(faces[static_cast<std::size_t>(k)], c);
    const double a = dot(area, omega);
    adot[static_cast<std::size_t>(k)] = a;
    if (a > 0.0) {
      denominator += a;
    } else if (a < 0.0) {
      numerator += (-a) * flux.read_in(k);
    }
  }
  const double psi_c = numerator / denominator;

  // Second pass: the step scheme's outgoing face flux equals ψ_c.
  for (int k = 0; k < 4; ++k)
    if (adot[static_cast<std::size_t>(k)] > 0.0) flux.write_out(k, psi_c);
  return psi_c;
}

double TetStep::sweep_cell(CellId c, const Ordinate& ang,
                           const std::vector<double>& q_per_ster,
                           FaceFluxMap& flux) const {
  const double volume = mesh_.cell_volume(c);
  const mesh::Vec3 omega = ang.dir;

  double numerator =
      q_per_ster[static_cast<std::size_t>(c.value())] * volume;
  double denominator =
      xs_.sigma_t[static_cast<std::size_t>(c.value())] * volume;

  // First pass: gather inflow and accumulate outflow coefficients.
  for (const auto f : mesh_.cell_faces(c)) {
    const mesh::Vec3 area = mesh_.outward_area(f, c);
    const double adot = dot(area, omega);
    if (adot > 0.0) {
      denominator += adot;
    } else if (adot < 0.0) {
      numerator += (-adot) * lookup(flux, f);
    }
  }
  const double psi_c = numerator / denominator;

  // Second pass: the step scheme's outgoing face flux equals ψ_c.
  for (const auto f : mesh_.cell_faces(c)) {
    const mesh::Vec3 area = mesh_.outward_area(f, c);
    if (dot(area, omega) > 0.0) flux[f] = psi_c;
  }
  return psi_c;
}

void TetStep::sweep_cell_set(CellId c, const Ordinate& ang, int width,
                             const double* q_per_ster, const double* sigma_t,
                             const FaceFluxSetView& flux,
                             double* psi_out) const {
  JSWEEP_ASSERT(width >= 1 && width <= kMaxGroupSetWidth);
  const double volume = mesh_.cell_volume(c);
  const mesh::Vec3 omega = ang.dir;

  const std::size_t base =
      static_cast<std::size_t>(c.value()) * static_cast<std::size_t>(width);

  // Face geometry is lane-independent; gather inflow lanes scalar.
  const auto& faces = mesh_.cell_faces(c);
  std::array<double, 4> adot{};
  alignas(64) double psi_in[4][kMaxGroupSetWidth];
  for (int k = 0; k < 4; ++k) {
    const mesh::Vec3 area =
        mesh_.outward_area(faces[static_cast<std::size_t>(k)], c);
    const double a = dot(area, omega);
    adot[static_cast<std::size_t>(k)] = a;
    if (a < 0.0)
      for (int l = 0; l < width; ++l) psi_in[k][l] = flux.read_in(k, l);
  }

  alignas(64) double numerator[kMaxGroupSetWidth];
  alignas(64) double denominator[kMaxGroupSetWidth];
#pragma omp simd
  for (int l = 0; l < width; ++l) {
    numerator[l] = q_per_ster[base + static_cast<std::size_t>(l)] * volume;
    denominator[l] = sigma_t[base + static_cast<std::size_t>(l)] * volume;
  }
  // Same k order and the same conditional adds as the scalar kernel.
  for (int k = 0; k < 4; ++k) {
    const double a = adot[static_cast<std::size_t>(k)];
    if (a > 0.0) {
#pragma omp simd
      for (int l = 0; l < width; ++l) denominator[l] += a;
    } else if (a < 0.0) {
#pragma omp simd
      for (int l = 0; l < width; ++l) numerator[l] += (-a) * psi_in[k][l];
    }
  }
#pragma omp simd
  for (int l = 0; l < width; ++l)
    psi_out[l] = numerator[l] / denominator[l];

  for (int k = 0; k < 4; ++k)
    if (adot[static_cast<std::size_t>(k)] > 0.0)
      for (int l = 0; l < width; ++l) flux.write_out(k, l, psi_out[l]);
}

void TetStep::face_ids(CellId c, const Ordinate& ang,
                       CellFaceIds& ids) const {
  const mesh::Vec3 omega = ang.dir;
  ids = CellFaceIds{};
  ids.count = 4;
  const auto& faces = mesh_.cell_faces(c);
  for (int k = 0; k < 4; ++k) {
    const std::int64_t f = faces[static_cast<std::size_t>(k)];
    const double adot = dot(mesh_.outward_area(f, c), omega);
    // Same exact sign tests as the kernels: a grazing face (adot == 0)
    // carries no flux either way.
    if (adot < 0.0) ids.in[static_cast<std::size_t>(k)] = f;
    if (adot > 0.0) ids.out[static_cast<std::size_t>(k)] = f;
  }
}

}  // namespace jsweep::sn
