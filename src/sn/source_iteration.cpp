#include "sn/source_iteration.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/check.hpp"
#include "support/log.hpp"

namespace jsweep::sn {

std::vector<double> emission_density(const CellXs& xs,
                                     const std::vector<double>& phi) {
  JSWEEP_CHECK(phi.size() == xs.sigma_s.size());
  constexpr double kInvFourPi = 1.0 / (4.0 * std::numbers::pi);
  std::vector<double> q(phi.size());
  for (std::size_t c = 0; c < phi.size(); ++c)
    q[c] = (xs.sigma_s[c] * phi[c] + xs.source[c]) * kInvFourPi;
  return q;
}

double relative_linf(const std::vector<double>& a,
                     const std::vector<double>& b) {
  JSWEEP_CHECK(a.size() == b.size());
  double diff = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff, std::abs(a[i] - b[i]));
    scale = std::max(scale, std::abs(a[i]));
  }
  return scale > 0.0 ? diff / scale : diff;
}

SourceIterationResult source_iteration(
    const CellXs& xs, const SweepOperator& sweep,
    const SourceIterationOptions& options) {
  SourceIterationResult result;
  result.phi.assign(xs.sigma_t.size(), 0.0);

  for (int it = 0; it < options.max_iterations; ++it) {
    const std::vector<double> q = emission_density(xs, result.phi);
    std::vector<double> phi_new = sweep(q);
    JSWEEP_CHECK(phi_new.size() == result.phi.size());
    result.error = relative_linf(phi_new, result.phi);
    result.phi = std::move(phi_new);
    result.iterations = it + 1;
    if (options.verbose)
      JSWEEP_INFO("source iteration " << result.iterations << " error "
                                      << result.error);
    if (result.error < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace jsweep::sn
