#pragma once

/// \file source_iteration.hpp
/// Source iteration: the outer loop of an Sn solve. Each iteration
/// recomputes the isotropic emission density from the previous scalar flux
/// and applies one full transport sweep; convergence is the relative L∞
/// change of the scalar flux. The sweep itself is pluggable — serial
/// reference, JSweep data-driven engine, BSP engine or KBA all fit behind
/// the same operator signature.

#include <functional>
#include <vector>

#include "sn/xs.hpp"

namespace jsweep::sn {

/// φ = sweep(q_per_ster): one transport sweep over all angles given the
/// per-steradian total source (scattering + external) in every cell.
using SweepOperator =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Convergence control of the outer source iteration.
struct SourceIterationOptions {
  double tolerance = 1e-5;   ///< stop when relative L∞ change drops below
  int max_iterations = 200;  ///< hard iteration cap
  bool verbose = false;      ///< log per-iteration errors
};

/// Outcome of a source-iteration solve.
struct SourceIterationResult {
  std::vector<double> phi;  ///< converged (or last-iterate) scalar flux
  int iterations = 0;       ///< sweeps applied
  double error = 0.0;       ///< last relative L∞ change
  bool converged = false;   ///< true when error beat tolerance
};

/// Run source iteration with cross sections `xs` (per cell) and the given
/// sweep operator.
SourceIterationResult source_iteration(const CellXs& xs,
                                       const SweepOperator& sweep,
                                       const SourceIterationOptions& options = {});

/// The per-steradian emission density q = (σ_s φ + Q) / 4π.
std::vector<double> emission_density(const CellXs& xs,
                                     const std::vector<double>& phi);

/// Relative L∞ difference max|a-b| / max|a|.
double relative_linf(const std::vector<double>& a,
                     const std::vector<double>& b);

}  // namespace jsweep::sn
