#include "sn/serial_sweep.hpp"

#include <algorithm>
#include <cmath>

#include "graph/sweep_dag.hpp"
#include "support/check.hpp"

namespace jsweep::sn {

std::vector<double> serial_sweep(const StructuredDD& disc,
                                 const Quadrature& quad,
                                 const std::vector<double>& q_per_ster) {
  const mesh::StructuredMesh& m = disc.mesh();
  const mesh::Index3 d = m.dims();
  std::vector<double> phi(static_cast<std::size_t>(m.num_cells()), 0.0);

  FaceFluxMap flux;
  for (const auto& ang : quad.ordinates()) {
    flux.clear();
    // Upwind-to-downwind nested loops per axis sign.
    const int i0 = ang.dir.x > 0 ? 0 : d.i - 1;
    const int istep = ang.dir.x > 0 ? 1 : -1;
    const int j0 = ang.dir.y > 0 ? 0 : d.j - 1;
    const int jstep = ang.dir.y > 0 ? 1 : -1;
    const int k0 = ang.dir.z > 0 ? 0 : d.k - 1;
    const int kstep = ang.dir.z > 0 ? 1 : -1;
    for (int kk = 0, k = k0; kk < d.k; ++kk, k += kstep) {
      for (int jj = 0, j = j0; jj < d.j; ++jj, j += jstep) {
        for (int ii = 0, i = i0; ii < d.i; ++ii, i += istep) {
          const CellId c = m.cell_at({i, j, k});
          const double psi = disc.sweep_cell(c, ang, q_per_ster, flux);
          phi[static_cast<std::size_t>(c.value())] += ang.weight * psi;
        }
      }
    }
  }
  return phi;
}

std::vector<double> serial_sweep(const TetStep& disc, const Quadrature& quad,
                                 const std::vector<double>& q_per_ster) {
  const mesh::TetMesh& m = disc.mesh();
  std::vector<double> phi(static_cast<std::size_t>(m.num_cells()), 0.0);

  FaceFluxMap flux;
  for (const auto& ang : quad.ordinates()) {
    flux.clear();
    const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
    const auto order = g.topological_order();
    JSWEEP_CHECK_MSG(order.has_value(),
                     "mesh induces a cyclic sweep dependency for direction "
                         << ang.dir);
    for (const auto v : *order) {
      const CellId c{v};
      const double psi = disc.sweep_cell(c, ang, q_per_ster, flux);
      phi[static_cast<std::size_t>(c.value())] += ang.weight * psi;
    }
  }
  return phi;
}

namespace {

/// The side angle ω *enters* along `axis` (ω_x > 0 travels +x, entering
/// through XLo).
mesh::FaceDir serial_inflow_side(const mesh::Vec3& omega, int axis) {
  const double w = axis == 0 ? omega.x : axis == 1 ? omega.y : omega.z;
  return static_cast<mesh::FaceDir>(2 * axis + (w > 0.0 ? 0 : 1));
}

}  // namespace

StructuredSerialSweeper::StructuredSerialSweeper(const StructuredDD& disc,
                                                 const Quadrature& quad)
    : disc_(disc), quad_(quad) {
  const mesh::StructuredMesh& m = disc_.mesh();
  const BoundarySpec& bc = disc_.boundary();
  bc.validate();
  // Identity slot layout: structured face ids (cell·6 + dir) are dense.
  JSWEEP_CHECK(m.num_cells() * 6 < INT32_MAX);
  flux_.prepare(m.num_cells() * 6);

  std::array<std::vector<int>, 3> mirror;
  for (int axis = 0; axis < 3; ++axis) {
    const auto lo = static_cast<mesh::FaceDir>(2 * axis);
    if (bc.side(lo) == 0.0 && bc.side(mesh::opposite(lo)) == 0.0) continue;
    mirror[static_cast<std::size_t>(axis)].resize(
        static_cast<std::size_t>(quad_.num_angles()));
    for (int a = 0; a < quad_.num_angles(); ++a)
      mirror[static_cast<std::size_t>(axis)][static_cast<std::size_t>(a)] =
          mirror_ordinate(quad_, a, axis);
  }

  angles_.resize(static_cast<std::size_t>(quad_.num_angles()));
  for (int a = 0; a < quad_.num_angles(); ++a) {
    AngleState& st = angles_[static_cast<std::size_t>(a)];
    st.slots = build_identity_slots(disc_, quad_.angle(a));
    if (!bc.any()) continue;
    const mesh::Vec3 omega = quad_.angle(a).dir;
    for (std::int64_t c = 0; c < m.num_cells(); ++c) {
      for (int axis = 0; axis < 3; ++axis) {
        const mesh::FaceDir d_in = serial_inflow_side(omega, axis);
        const mesh::FaceDir d_out = mesh::opposite(d_in);
        if (bc.side(d_in) != 0.0 && !m.neighbor(CellId{c}, d_in))
          st.reads.push_back(BoundaryRead{
              graph::structured_face_id(CellId{c}, d_in),
              mirror[static_cast<std::size_t>(axis)]
                    [static_cast<std::size_t>(a)],
              bc.side(d_in)});
        if (bc.side(d_out) != 0.0 && !m.neighbor(CellId{c}, d_out)) {
          const std::int64_t face =
              graph::structured_face_id(CellId{c}, d_out);
          st.writes.push_back(face);
          st.prev.emplace(face, 0.0);
        }
      }
    }
  }
}

std::vector<double> StructuredSerialSweeper::sweep(
    const std::vector<double>& q_per_ster) {
  const mesh::StructuredMesh& m = disc_.mesh();
  const mesh::Index3 d = m.dims();
  std::vector<double> phi(static_cast<std::size_t>(m.num_cells()), 0.0);
  // Staged fresh outflows, committed after ALL angles swept — the same
  // once-per-sweep cadence as LaggedFluxStore::commit.
  std::vector<std::vector<double>> staged(angles_.size());

  for (int a = 0; a < quad_.num_angles(); ++a) {
    AngleState& st = angles_[static_cast<std::size_t>(a)];
    const Ordinate& ang = quad_.angle(a);
    flux_.reset();
    // Seed every boundary read with albedo × the mirror angle's committed
    // outflow — the identical multiplication the parallel seed performs.
    for (const auto& r : st.reads) {
      const auto& mprev =
          angles_[static_cast<std::size_t>(r.mirror_angle)].prev;
      const auto it = mprev.find(r.face);
      JSWEEP_CHECK_MSG(it != mprev.end(),
                       "boundary face " << r.face
                                        << " has no mirror-angle iterate");
      flux_.write(static_cast<std::int32_t>(r.face),
                  r.albedo * it->second);
    }
    const int i0 = ang.dir.x > 0 ? 0 : d.i - 1;
    const int istep = ang.dir.x > 0 ? 1 : -1;
    const int j0 = ang.dir.y > 0 ? 0 : d.j - 1;
    const int jstep = ang.dir.y > 0 ? 1 : -1;
    const int k0 = ang.dir.z > 0 ? 0 : d.k - 1;
    const int kstep = ang.dir.z > 0 ? 1 : -1;
    for (int kk = 0, k = k0; kk < d.k; ++kk, k += kstep) {
      for (int jj = 0, j = j0; jj < d.j; ++jj, j += jstep) {
        for (int ii = 0, i = i0; ii < d.i; ++ii, i += istep) {
          const CellId c = m.cell_at({i, j, k});
          const FaceFluxView view{
              &flux_, &st.slots[static_cast<std::size_t>(c.value())]};
          const double psi = disc_.sweep_cell(c, ang, q_per_ster, view);
          phi[static_cast<std::size_t>(c.value())] += ang.weight * psi;
        }
      }
    }
    // Stage the fresh outflows (each boundary face is written by exactly
    // one cell, so reading after the loop sees the kernel's value).
    auto& fresh = staged[static_cast<std::size_t>(a)];
    fresh.reserve(st.writes.size());
    for (const auto face : st.writes) {
      const auto slot = static_cast<std::int32_t>(face);
      JSWEEP_ASSERT(flux_.has(slot));
      fresh.push_back(flux_.read(slot));
    }
  }

  // Commit: promote the staged outflows and report the residual.
  residual_ = 0.0;
  for (std::size_t a = 0; a < angles_.size(); ++a) {
    AngleState& st = angles_[a];
    for (std::size_t i = 0; i < st.writes.size(); ++i) {
      double& prev = st.prev[st.writes[i]];
      residual_ = std::max(residual_, std::abs(staged[a][i] - prev));
      prev = staged[a][i];
    }
  }
  return phi;
}

SerialSweeper::SerialSweeper(const TetStep& disc, const Quadrature& quad)
    : disc_(disc), quad_(quad) {
  const mesh::TetMesh& m = disc_.mesh();
  // Dense face-flux layout: mesh face ids are already dense, so the
  // workspace slot of a face is the face id itself (identity resolution).
  JSWEEP_CHECK(m.num_faces() < INT32_MAX);
  flux_.prepare(m.num_faces());
  angles_.resize(static_cast<std::size_t>(quad_.num_angles()));
  for (int a = 0; a < quad_.num_angles(); ++a) {
    AngleState& st = angles_[static_cast<std::size_t>(a)];
    st.cut = graph::compute_cycle_cut(m, quad_.angle(a).dir);
    if (!st.cut.empty()) {
      stats_.merge(st.cut.stats);
      ++cyclic_angles_;
      for (const auto face : st.cut.lagged_faces) st.prev.emplace(face, 0.0);
    }
    const graph::Digraph g = graph::build_global_cell_digraph(
        m, quad_.angle(a).dir, st.cut.empty() ? nullptr : &st.cut);
    const auto order = g.topological_order();
    JSWEEP_CHECK_MSG(order.has_value(),
                     "cut graph still cyclic for direction "
                         << quad_.angle(a).dir);
    st.order = *order;
    st.slots = build_identity_slots(disc_, quad_.angle(a));
  }
}

std::vector<double> SerialSweeper::sweep(
    const std::vector<double>& q_per_ster) {
  const mesh::TetMesh& m = disc_.mesh();
  std::vector<double> phi(static_cast<std::size_t>(m.num_cells()), 0.0);

  for (int a = 0; a < quad_.num_angles(); ++a) {
    AngleState& st = angles_[static_cast<std::size_t>(a)];
    const Ordinate& ang = quad_.angle(a);
    flux_.reset();
    // Seed the cut faces with the previous sweep's iterates.
    for (const auto& [face, value] : st.prev)
      flux_.write(static_cast<std::int32_t>(face), value);
    for (const auto v : st.order) {
      const CellId c{v};
      const FaceFluxView view{
          &flux_, &st.slots[static_cast<std::size_t>(v)]};
      const double psi = disc_.sweep_cell(c, ang, q_per_ster, view);
      phi[static_cast<std::size_t>(c.value())] += ang.weight * psi;
      if (st.cut.empty()) continue;
      // Stage freshly written cut faces and restore the old iterate so
      // later readers see exactly what the cut promised (matching the
      // parallel programs' save/restore).
      for (const auto f : m.cell_faces(c)) {
        if (!st.cut.contains(f)) continue;
        const mesh::Vec3 area = m.outward_area(f, c);
        if (dot(area, ang.dir) <= graph::kGrazingTol * norm(area)) continue;
        const auto slot = static_cast<std::int32_t>(f);
        JSWEEP_ASSERT(flux_.has(slot));
        st.next[f] = flux_.read(slot);
        flux_.write(slot, st.prev[f]);
      }
    }
  }

  // Commit: promote the staged iterates for the next sweep.
  residual_ = 0.0;
  for (auto& st : angles_) {
    for (const auto& [face, value] : st.next) {
      residual_ = std::max(residual_, std::abs(value - st.prev[face]));
      st.prev[face] = value;
    }
    st.next.clear();
  }
  return phi;
}

}  // namespace jsweep::sn
