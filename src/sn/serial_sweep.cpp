#include "sn/serial_sweep.hpp"

#include "graph/sweep_dag.hpp"
#include "support/check.hpp"

namespace jsweep::sn {

std::vector<double> serial_sweep(const StructuredDD& disc,
                                 const Quadrature& quad,
                                 const std::vector<double>& q_per_ster) {
  const mesh::StructuredMesh& m = disc.mesh();
  const mesh::Index3 d = m.dims();
  std::vector<double> phi(static_cast<std::size_t>(m.num_cells()), 0.0);

  FaceFluxMap flux;
  for (const auto& ang : quad.ordinates()) {
    flux.clear();
    // Upwind-to-downwind nested loops per axis sign.
    const int i0 = ang.dir.x > 0 ? 0 : d.i - 1;
    const int istep = ang.dir.x > 0 ? 1 : -1;
    const int j0 = ang.dir.y > 0 ? 0 : d.j - 1;
    const int jstep = ang.dir.y > 0 ? 1 : -1;
    const int k0 = ang.dir.z > 0 ? 0 : d.k - 1;
    const int kstep = ang.dir.z > 0 ? 1 : -1;
    for (int kk = 0, k = k0; kk < d.k; ++kk, k += kstep) {
      for (int jj = 0, j = j0; jj < d.j; ++jj, j += jstep) {
        for (int ii = 0, i = i0; ii < d.i; ++ii, i += istep) {
          const CellId c = m.cell_at({i, j, k});
          const double psi = disc.sweep_cell(c, ang, q_per_ster, flux);
          phi[static_cast<std::size_t>(c.value())] += ang.weight * psi;
        }
      }
    }
  }
  return phi;
}

std::vector<double> serial_sweep(const TetStep& disc, const Quadrature& quad,
                                 const std::vector<double>& q_per_ster) {
  const mesh::TetMesh& m = disc.mesh();
  std::vector<double> phi(static_cast<std::size_t>(m.num_cells()), 0.0);

  FaceFluxMap flux;
  for (const auto& ang : quad.ordinates()) {
    flux.clear();
    const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
    const auto order = g.topological_order();
    JSWEEP_CHECK_MSG(order.has_value(),
                     "mesh induces a cyclic sweep dependency for direction "
                         << ang.dir);
    for (const auto v : *order) {
      const CellId c{v};
      const double psi = disc.sweep_cell(c, ang, q_per_ster, flux);
      phi[static_cast<std::size_t>(c.value())] += ang.weight * psi;
    }
  }
  return phi;
}

}  // namespace jsweep::sn
