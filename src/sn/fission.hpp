#pragma once

/// \file fission.hpp
/// Fission production data for k-eigenvalue problems: per-cell νΣ_f per
/// group plus a global emission spectrum χ. A power iteration
/// (sweep/eigen.hpp) folds these into the multigroup fixed source as
/// Q_g(c) = χ_g · S(c) / k with S(c) = Σ_g νΣ_f[g](c) φ_g(c), so the
/// existing multigroup transport solve needs no changes — only its source
/// is rewritten between outer iterations.

#include <cstdint>
#include <vector>

namespace jsweep::sn {

/// Fission cross sections over the same (group, cell) index space as
/// MultigroupXs: νΣ_f flattened [cell * G + group], χ one entry per group.
class FissionXs {
 public:
  /// Zero-initialized table for `groups` × `cells` (both ≥ 1). χ starts
  /// all-zero and must be filled to sum to one before validate().
  FissionXs(int groups, std::int64_t cells);

  /// Energy groups G.
  [[nodiscard]] int groups() const { return groups_; }
  /// Mesh cells covered.
  [[nodiscard]] std::int64_t cells() const { return cells_; }

  /// ν·Σ_f of group g in cell c (mutable).
  double& nu_sigma_f(int g, std::int64_t c) {
    return nu_sigma_f_[index(g, c)];
  }
  /// ν·Σ_f of group g in cell c.
  [[nodiscard]] double nu_sigma_f(int g, std::int64_t c) const {
    return nu_sigma_f_[index(g, c)];
  }
  /// Fission emission probability into group g (mutable).
  double& chi(int g) { return chi_[static_cast<std::size_t>(g)]; }
  /// Fission emission probability into group g.
  [[nodiscard]] double chi(int g) const {
    return chi_[static_cast<std::size_t>(g)];
  }

  /// The cell-local fission production S(c) = Σ_g νΣ_f[g](c) · φ_g(c),
  /// accumulated in ascending group order — the ONE summation order every
  /// k-eigenvalue driver (serial and parallel) must share for bitwise
  /// agreement. `phi[g]` must hold cells() entries for each group.
  [[nodiscard]] std::vector<double> production(
      const std::vector<std::vector<double>>& phi) const;

  /// Reject malformed data before a solve: every νΣ_f and χ entry must be
  /// finite and non-negative, χ must sum to one within 1e-12, and at least
  /// one νΣ_f entry must be positive (a fission-free problem has no
  /// eigenvalue — the power iteration would divide by a zero production).
  /// Throws CheckError naming the offending entry on violation.
  void validate() const;

 private:
  [[nodiscard]] std::size_t index(int g, std::int64_t c) const {
    return static_cast<std::size_t>(c) * groups_ +
           static_cast<std::size_t>(g);
  }

  int groups_;
  std::int64_t cells_;
  std::vector<double> nu_sigma_f_;
  std::vector<double> chi_;
};

}  // namespace jsweep::sn
