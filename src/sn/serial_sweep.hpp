#pragma once

/// \file serial_sweep.hpp
/// Serial reference sweeps: single-threaded, topologically ordered
/// traversals used as ground truth by the test suite and as the inner
/// operator of the serial solver examples. The parallel engines must
/// reproduce these results bit-for-bit (the kernels are deterministic and
/// execution order along the DAG does not change any operand).

#include <unordered_map>
#include <vector>

#include "graph/scc.hpp"
#include "graph/sweep_dag.hpp"
#include "sn/discretization.hpp"
#include "sn/face_flux.hpp"
#include "sn/quadrature.hpp"

namespace jsweep::sn {

/// One full sweep over all angles on a structured mesh (octant-ordered
/// nested loops — no explicit graph needed). Returns the scalar flux
/// φ = Σ_m w_m ψ_m.
std::vector<double> serial_sweep(const StructuredDD& disc,
                                 const Quadrature& quad,
                                 const std::vector<double>& q_per_ster);

/// One full sweep over all angles on a tetrahedral mesh (explicit
/// topological order per angle). Throws if any direction induces a cyclic
/// dependency.
std::vector<double> serial_sweep(const TetStep& disc, const Quadrature& quad,
                                 const std::vector<double>& q_per_ster);

/// Boundary-aware serial reference sweeper for structured meshes. The
/// stateless serial_sweep() overload above covers the vacuum-only case;
/// this class additionally carries the reflecting/albedo boundary
/// iterates of a non-vacuum BoundarySpec from sweep to sweep: angle m's
/// incoming value at a boundary face is `albedo ×` the *previous* sweep's
/// outgoing flux of the mirror angle at the same face, committed once per
/// sweep — exactly the lagged store protocol the parallel plan uses
/// (sweep/plan.cpp), so sweep() reproduces the engines' scalar flux
/// bit-for-bit, sweep after sweep. With an all-vacuum spec it degenerates
/// to the stateless sweep (identical results, no state).
class StructuredSerialSweeper {
 public:
  /// Precomputes dense slots, the per-axis mirror table and the boundary
  /// read/write lists; `disc` and `quad` must outlive the sweeper.
  StructuredSerialSweeper(const StructuredDD& disc, const Quadrature& quad);

  /// One full sweep over all angles (octant-ordered loops, ascending
  /// angle); stages every boundary outflow and commits the iterates at
  /// the end. Returns φ = Σ_m w_m ψ_m.
  std::vector<double> sweep(const std::vector<double>& q_per_ster);

  /// Max |change| over boundary faces at the last commit (0 when vacuum).
  [[nodiscard]] double last_lag_residual() const { return residual_; }

 private:
  /// A boundary face this angle reads: seeded before the cell loop.
  struct BoundaryRead {
    std::int64_t face;  ///< global face id (== workspace slot)
    int mirror_angle;   ///< angle whose stored outflow seeds the read
    double albedo;      ///< the side's reflection coefficient
  };

  struct AngleState {
    std::vector<CellFaceSlots> slots;      ///< identity-resolved per cell
    std::vector<BoundaryRead> reads;       ///< faces to seed
    std::vector<std::int64_t> writes;      ///< outflow faces to stage
    std::unordered_map<std::int64_t, double> prev;  ///< committed iterates
  };

  const StructuredDD& disc_;
  const Quadrature& quad_;
  std::vector<AngleState> angles_;
  FaceFluxWorkspace flux_;  ///< whole-mesh workspace (reset per angle)
  double residual_ = 0.0;
};

/// Cycle-aware serial reference sweeper for tetrahedral meshes. Stateful:
/// it computes the same per-direction feedback-edge cut as the parallel
/// solver (graph::compute_cycle_cut), sweeps the acyclic remainder in
/// topological order, and carries the cut faces' fluxes from sweep to
/// sweep as lagged (old-iterate) inputs. Because the cut and the lag
/// semantics are identical to SweepSolver with CyclePolicy::Lag and
/// max_lag_sweeps = 1, sweep() reproduces the parallel engines' scalar
/// flux bit-for-bit, sweep after sweep — the ground truth of the
/// cross-engine equivalence suite on cyclic meshes.
class SerialSweeper {
 public:
  /// Computes each direction's cycle cut up front; `disc` and `quad` must
  /// outlive the sweeper.
  SerialSweeper(const TetStep& disc, const Quadrature& quad);

  /// One full sweep over all angles; commits the lagged iterates at the
  /// end, so successive calls converge toward the cycle-resolved solution.
  std::vector<double> sweep(const std::vector<double>& q_per_ster);

  /// Cut diagnostics accumulated over all angles (zero ⇒ mesh acyclic).
  [[nodiscard]] const graph::CycleStats& cycle_stats() const {
    return stats_;
  }
  [[nodiscard]] int cyclic_angles() const { return cyclic_angles_; }
  /// Max |change| over lagged faces at the last commit.
  [[nodiscard]] double last_lag_residual() const { return residual_; }

 private:
  struct AngleState {
    graph::CycleCut cut;
    std::vector<std::int32_t> order;  ///< topo order of the cut graph
    /// Identity-resolved dense slots per cell (slot == mesh face id) —
    /// the same dense layout the parallel programs sweep against.
    std::vector<CellFaceSlots> slots;
    std::unordered_map<std::int64_t, double> prev;  ///< lagged iterates
    std::unordered_map<std::int64_t, double> next;
  };

  const TetStep& disc_;
  const Quadrature& quad_;
  std::vector<AngleState> angles_;
  /// Dense face-flux workspace over the whole mesh (reset per angle).
  FaceFluxWorkspace flux_;
  graph::CycleStats stats_;
  int cyclic_angles_ = 0;
  double residual_ = 0.0;
};

}  // namespace jsweep::sn
