#pragma once

/// \file serial_sweep.hpp
/// Serial reference sweeps: single-threaded, topologically ordered
/// traversals used as ground truth by the test suite and as the inner
/// operator of the serial solver examples. The parallel engines must
/// reproduce these results bit-for-bit (the kernels are deterministic and
/// execution order along the DAG does not change any operand).

#include <vector>

#include "sn/discretization.hpp"
#include "sn/quadrature.hpp"

namespace jsweep::sn {

/// One full sweep over all angles on a structured mesh (octant-ordered
/// nested loops — no explicit graph needed). Returns the scalar flux
/// φ = Σ_m w_m ψ_m.
std::vector<double> serial_sweep(const StructuredDD& disc,
                                 const Quadrature& quad,
                                 const std::vector<double>& q_per_ster);

/// One full sweep over all angles on a tetrahedral mesh (explicit
/// topological order per angle). Throws if any direction induces a cyclic
/// dependency.
std::vector<double> serial_sweep(const TetStep& disc, const Quadrature& quad,
                                 const std::vector<double>& q_per_ster);

}  // namespace jsweep::sn
