#pragma once

/// \file multigroup.hpp
/// Multigroup Sn transport: G energy groups coupled through a scattering
/// matrix. The paper's JSNT-U evaluation runs S4 with 4 energy groups
/// (Sec. VI-B). Two outer schemes live here:
///
///   - solve_multigroup(): the classic Gauss-Seidel loop over groups with a
///     *converged* within-group source iteration per group. Simple, but the
///     groups are strictly sequential — nothing can overlap.
///   - solve_multigroup_sweeps(): the sweep-pass formulation used by the
///     parallel solver. Each pass applies ONE transport sweep per group, in
///     ascending group order; within-pass downscatter in-scatter is
///     Gauss-Seidel fresh (group g reads the pass's own φ of groups < g),
///     within-group scattering is lagged one pass, and upscatter sources
///     are frozen at the enclosing outer iteration. Because group g+1's
///     source is a *cell-local* function of group g's flux, the per-group
///     sweeps of one pass can be pipelined per patch — exactly what
///     sweep::SweepSolver's group-aware engines do. Pure downscatter needs
///     one outer (the pass loop alone converges); upscatter wraps the pass
///     loop in an outer Gauss-Seidel that refreshes the frozen sources.
///
/// Both schemes converge to the same fixed point; the sweep-pass scheme
/// degenerates bitwise to plain source_iteration() when G == 1.
///
/// Each group's sweep reuses the same patch task graphs and engine: only
/// cross sections and sources change, which is exactly the reuse the
/// coarsened graph exploits across iterations.

#include <functional>
#include <numbers>
#include <vector>

#include "sn/source_iteration.hpp"
#include "sn/xs.hpp"

namespace jsweep::sn {

/// Group-wise material data: for each group g, total cross section and
/// external source per cell, plus the scattering matrix σ_s[g'→g] per
/// cell (flattened [cell * G * G + from * G + to]).
class MultigroupXs {
 public:
  /// Zero-initialized table for `groups` × `cells` (both ≥ 1).
  MultigroupXs(int groups, std::int64_t cells);

  /// Energy groups G.
  [[nodiscard]] int groups() const { return groups_; }
  /// Mesh cells covered.
  [[nodiscard]] std::int64_t cells() const { return cells_; }

  /// Total cross section of group g in cell c (mutable).
  double& sigma_t(int g, std::int64_t c) {
    return sigma_t_[index(g, c)];
  }
  /// Total cross section of group g in cell c.
  [[nodiscard]] double sigma_t(int g, std::int64_t c) const {
    return sigma_t_[index(g, c)];
  }
  /// External volumetric source of group g in cell c (mutable).
  double& source(int g, std::int64_t c) { return source_[index(g, c)]; }
  /// External volumetric source of group g in cell c.
  [[nodiscard]] double source(int g, std::int64_t c) const {
    return source_[index(g, c)];
  }
  /// σ_s[from → to] in cell c (mutable).
  double& sigma_s(int from, int to, std::int64_t c) {
    return sigma_s_[smatrix_index(from, to, c)];
  }
  /// σ_s[from → to] in cell c.
  [[nodiscard]] double sigma_s(int from, int to, std::int64_t c) const {
    return sigma_s_[smatrix_index(from, to, c)];
  }

  /// One-group view of group g with within-group scattering only — the
  /// cross sections the inner (within-group) iteration needs.
  [[nodiscard]] CellXs group_view(int g) const;

  /// True if any σ_s[from→to] with from > to is nonzero (upscatter), in
  /// which case converge_upscatter iterations are needed.
  [[nodiscard]] bool has_upscatter() const;

  /// Reject malformed data before a solve: every σ_t, σ_s and source entry
  /// must be finite and non-negative, and each group's total outgoing
  /// scattering Σ_to σ_s[g→to] must not exceed σ_t[g] (a scattering ratio
  /// above one makes source iteration divergent). Throws CheckError with
  /// the offending (group, cell) on violation.
  void validate() const;

  /// Build a G-group table from a one-group material map with a simple
  /// downscatter cascade: group g keeps `within` of its scattering within
  /// group and sends the rest to group g+1. A standard synthetic spectrum
  /// for testing and benchmarks.
  static MultigroupXs cascade(const MaterialTable& table,
                              const std::vector<int>& materials,
                              std::int64_t cells, int groups,
                              double within = 0.6);

 private:
  [[nodiscard]] std::size_t index(int g, std::int64_t c) const {
    return static_cast<std::size_t>(c) * groups_ +
           static_cast<std::size_t>(g);
  }
  [[nodiscard]] std::size_t smatrix_index(int from, int to,
                                          std::int64_t c) const {
    return (static_cast<std::size_t>(c) * groups_ +
            static_cast<std::size_t>(from)) *
               groups_ +
           static_cast<std::size_t>(to);
  }

  int groups_;
  std::int64_t cells_;
  std::vector<double> sigma_t_;
  std::vector<double> source_;
  std::vector<double> sigma_s_;
};

/// Per-group sweep operator factory: returns the sweep operator to use for
/// group g (they may share one solver or use per-group discretizations).
using GroupSweepFactory = std::function<SweepOperator(int group)>;

/// Iteration control of both multigroup outer schemes.
struct MultigroupOptions {
  SourceIterationOptions inner;      ///< within-group / pass-loop control
  int max_outer_iterations = 20;     ///< Gauss-Seidel passes over groups
  double outer_tolerance = 1e-5;     ///< relative L∞ over all groups
  /// Group-set width W of the sweep-pass scheme: groups are batched into
  /// contiguous sets [s*W, min((s+1)*W, G)) that sweep together.
  /// Downscatter from *earlier sets* stays Gauss-Seidel fresh within a
  /// pass; downscatter *within a set* is lagged one pass (Jacobi) so the
  /// set's groups are independent and can run in SIMD lanes. W == 1 is the
  /// classic per-group scheme, bitwise unchanged. Both fixed points agree;
  /// the pass loop absorbs the within-set lag.
  int group_set_width = 1;
  /// Optional source-tail-overlap hook of solve_multigroup_sweeps: when
  /// set and the call returns true for group g, the callee has filled `q`
  /// with group g's emission density AND its lagged within-set downscatter
  /// — the serial formation of both is skipped (the frozen upscatter part
  /// is still added by the solver). A parallel pass implementation uses
  /// this to precompute next-pass sources on otherwise-idle workers while
  /// the current sweep's tail drains; the supplied values must be
  /// bitwise-identical to the serial formation on every cell the pass
  /// reads. Returning false falls back to the serial formation (e.g. on
  /// the first pass, when no precomputed source exists yet).
  std::function<bool(int group, std::vector<double>& q)> q_base_provider;
};

/// First group of the set containing group g at set width `width`.
[[nodiscard]] constexpr int group_set_base(int g, int width) {
  return (g / width) * width;
}

/// Result of a multigroup solve (either outer scheme).
struct MultigroupResult {
  /// phi[g] is group g's scalar flux.
  std::vector<std::vector<double>> phi;
  int outer_iterations = 0;  ///< outer Gauss-Seidel iterations executed
  /// Multigroup sweep passes executed (solve_multigroup_sweeps only):
  /// total across all outers; each pass sweeps every group once.
  int pass_iterations = 0;
  double error = 0.0;      ///< final convergence metric (relative L∞)
  bool converged = false;  ///< true when the final error beat tolerance
  std::int64_t total_sweeps = 0;  ///< transport sweeps applied in total
};

/// Solve the multigroup system by Gauss-Seidel over groups: for each group
/// in order, build its source from the latest fluxes of all other groups
/// and run within-group source iteration. Pure downscatter converges in
/// one outer pass; upscatter iterates to `outer_tolerance`.
MultigroupResult solve_multigroup(const MultigroupXs& xs,
                                  const GroupSweepFactory& sweeps,
                                  const MultigroupOptions& options = {});

// ---------------------------------------------------------------------------
// Sweep-pass formulation (the parallel solver's outer scheme)
// ---------------------------------------------------------------------------

inline constexpr double kInvFourPi = 1.0 / (4.0 * std::numbers::pi);

/// One fresh (Gauss-Seidel) in-scatter contribution: group `from`'s new
/// flux φ scattering into group `to` at cell c, per steradian. ONE shared
/// expression so the serial reference pass, the barriered per-group pass
/// and the pipelined engines accumulate bitwise-identically — every caller
/// must apply it as `q[c] += inscatter_term(...)` with `from` ascending.
[[nodiscard]] inline double inscatter_term(const MultigroupXs& xs, int from,
                                           int to, std::int64_t c,
                                           double phi) {
  return xs.sigma_s(from, to, c) * phi * kInvFourPi;
}

/// One multigroup sweep pass. On entry `q_base[g]` holds the per-steradian
/// source of group g *without* the fresh downscatter part from earlier
/// sets: external source, within-group scattering of the previous pass's
/// φ, the previous pass's *within-set* downscatter (groups in
/// [set_base(g), g) at the scheme's set width — empty at W == 1), and
/// (when upscatter exists) the frozen upscatter in-scatter of the
/// enclosing outer. The pass must, for g ascending, form
/// q_g = q_base[g] + Σ_{g' < set_base(g)} inscatter_term(g'→g, φ_new[g'])
/// and overwrite `phi[g]` with one transport sweep of group g against q_g.
/// The incoming contents of `phi` must not be read (all lagged terms are
/// already inside q_base).
using MultigroupSweepPass =
    std::function<void(const std::vector<std::vector<double>>& q_base,
                       std::vector<std::vector<double>>& phi)>;

/// The sequential reference pass: per-group sweep operators applied in
/// ascending group order with fresh in-scatter accumulated via
/// inscatter_term. Serial sweeps make this the ground truth the parallel
/// (pipelined or barriered) passes must reproduce; solver-backed operators
/// make it the group-barriered parallel baseline of the pipelining
/// ablation.
[[nodiscard]] MultigroupSweepPass sequential_sweep_pass(
    const MultigroupXs& xs, const GroupSweepFactory& sweeps);

/// Width-aware variant: the fresh in-scatter bound drops from g to
/// set_base(g), matching a solve whose options carry the same
/// `group_set_width`. The 2-argument overload is this at width 1.
[[nodiscard]] MultigroupSweepPass sequential_sweep_pass(
    const MultigroupXs& xs, const GroupSweepFactory& sweeps,
    int group_set_width);

/// Solve the multigroup system by iterating sweep passes: each inner
/// iteration runs `pass` once (one sweep per group) and converges the
/// joint downscatter + within-group system; with upscatter an outer
/// Gauss-Seidel refreshes the frozen upscatter sources between inner
/// sequences. Pure downscatter finishes in outer_iterations == 1. For
/// G == 1 the iterates are bitwise-identical to source_iteration() with
/// the same inner options. With options.group_set_width == W > 1 the
/// q_base built here additionally carries the lagged within-set
/// downscatter, and `pass` must use the set-relative fresh bound (see
/// MultigroupSweepPass).
MultigroupResult solve_multigroup_sweeps(const MultigroupXs& xs,
                                         const MultigroupSweepPass& pass,
                                         const MultigroupOptions& options = {});

}  // namespace jsweep::sn
