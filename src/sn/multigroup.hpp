#pragma once

/// \file multigroup.hpp
/// Multigroup Sn transport: G energy groups coupled through a scattering
/// matrix. The paper's JSNT-U evaluation runs S4 with 4 energy groups
/// (Sec. VI-B); this module supplies the outer machinery — within-group
/// source iteration wrapped in a Gauss-Seidel loop over groups, with
/// downscatter (and optional upscatter) feeding each group's source.
///
/// Each group's sweep reuses the same patch task graphs and engine: only
/// cross sections and sources change, which is exactly the reuse the
/// coarsened graph exploits across iterations.

#include <functional>
#include <vector>

#include "sn/source_iteration.hpp"
#include "sn/xs.hpp"

namespace jsweep::sn {

/// Group-wise material data: for each group g, total cross section and
/// external source per cell, plus the scattering matrix σ_s[g'→g] per
/// cell (flattened [cell * G * G + from * G + to]).
class MultigroupXs {
 public:
  MultigroupXs(int groups, std::int64_t cells);

  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] std::int64_t cells() const { return cells_; }

  double& sigma_t(int g, std::int64_t c) {
    return sigma_t_[index(g, c)];
  }
  [[nodiscard]] double sigma_t(int g, std::int64_t c) const {
    return sigma_t_[index(g, c)];
  }
  double& source(int g, std::int64_t c) { return source_[index(g, c)]; }
  [[nodiscard]] double source(int g, std::int64_t c) const {
    return source_[index(g, c)];
  }
  /// σ_s[from → to] in cell c.
  double& sigma_s(int from, int to, std::int64_t c) {
    return sigma_s_[smatrix_index(from, to, c)];
  }
  [[nodiscard]] double sigma_s(int from, int to, std::int64_t c) const {
    return sigma_s_[smatrix_index(from, to, c)];
  }

  /// One-group view of group g with within-group scattering only — the
  /// cross sections the inner (within-group) iteration needs.
  [[nodiscard]] CellXs group_view(int g) const;

  /// True if any σ_s[from→to] with from > to is nonzero (upscatter), in
  /// which case converge_upscatter iterations are needed.
  [[nodiscard]] bool has_upscatter() const;

  /// Build a G-group table from a one-group material map with a simple
  /// downscatter cascade: group g keeps `within` of its scattering within
  /// group and sends the rest to group g+1. A standard synthetic spectrum
  /// for testing and benchmarks.
  static MultigroupXs cascade(const MaterialTable& table,
                              const std::vector<int>& materials,
                              std::int64_t cells, int groups,
                              double within = 0.6);

 private:
  [[nodiscard]] std::size_t index(int g, std::int64_t c) const {
    return static_cast<std::size_t>(c) * groups_ +
           static_cast<std::size_t>(g);
  }
  [[nodiscard]] std::size_t smatrix_index(int from, int to,
                                          std::int64_t c) const {
    return (static_cast<std::size_t>(c) * groups_ +
            static_cast<std::size_t>(from)) *
               groups_ +
           static_cast<std::size_t>(to);
  }

  int groups_;
  std::int64_t cells_;
  std::vector<double> sigma_t_;
  std::vector<double> source_;
  std::vector<double> sigma_s_;
};

/// Per-group sweep operator factory: returns the sweep operator to use for
/// group g (they may share one solver or use per-group discretizations).
using GroupSweepFactory = std::function<SweepOperator(int group)>;

struct MultigroupOptions {
  SourceIterationOptions inner;      ///< within-group iteration control
  int max_outer_iterations = 20;     ///< Gauss-Seidel passes over groups
  double outer_tolerance = 1e-5;     ///< relative L∞ over all groups
};

struct MultigroupResult {
  /// phi[g] is group g's scalar flux.
  std::vector<std::vector<double>> phi;
  int outer_iterations = 0;
  double error = 0.0;
  bool converged = false;
  std::int64_t total_sweeps = 0;
};

/// Solve the multigroup system by Gauss-Seidel over groups: for each group
/// in order, build its source from the latest fluxes of all other groups
/// and run within-group source iteration. Pure downscatter converges in
/// one outer pass; upscatter iterates to `outer_tolerance`.
MultigroupResult solve_multigroup(const MultigroupXs& xs,
                                  const GroupSweepFactory& sweeps,
                                  const MultigroupOptions& options = {});

}  // namespace jsweep::sn
