#include "sn/xs.hpp"

#include <cmath>

namespace jsweep::sn {

void CellXs::validate() const {
  JSWEEP_CHECK_MSG(sigma_s.size() == sigma_t.size() &&
                       source.size() == sigma_t.size(),
                   "CellXs arrays disagree: sigma_t covers "
                       << sigma_t.size() << " cells, sigma_s "
                       << sigma_s.size() << ", source " << source.size()
                       << " — all three must be sized to the mesh");
  for (std::size_t c = 0; c < sigma_t.size(); ++c) {
    JSWEEP_CHECK_MSG(std::isfinite(sigma_t[c]) && sigma_t[c] >= 0.0,
                     "CellXs::sigma_t[" << c << "] = " << sigma_t[c]
                                        << " must be finite and >= 0");
    JSWEEP_CHECK_MSG(std::isfinite(sigma_s[c]) && sigma_s[c] >= 0.0,
                     "CellXs::sigma_s[" << c << "] = " << sigma_s[c]
                                        << " must be finite and >= 0");
    JSWEEP_CHECK_MSG(std::isfinite(source[c]),
                     "CellXs::source[" << c << "] = " << source[c]
                                       << " must be finite");
  }
}

MaterialTable MaterialTable::kobayashi() {
  // Indexed by mesh::Material: kMatSource=0, kMatVoid=1, kMatShield=2.
  // Values follow the Kobayashi benchmark's "case with 50% scattering".
  return MaterialTable({
      {0.10, 0.05, 1.0},    // source
      {1e-4, 5e-5, 0.0},    // void duct
      {0.10, 0.05, 0.0},    // shield
  });
}

MaterialTable MaterialTable::reactor() {
  return MaterialTable({
      {0.0, 0.0, 0.0},      // (unused id 0)
      {0.0, 0.0, 0.0},      // (unused id 1)
      {0.0, 0.0, 0.0},      // (unused id 2)
      {1.0, 0.80, 1.0},     // kMatCore
      {0.5, 0.45, 0.0},     // kMatReflector
  });
}

MaterialTable MaterialTable::ball() {
  return MaterialTable({
      {0.0, 0.0, 0.0},      // (unused id 0)
      {0.0, 0.0, 0.0},      // (unused id 1)
      {0.20, 0.10, 0.0},    // kMatShield (outer)
      {0.50, 0.25, 1.0},    // kMatCore (inner source)
  });
}

MaterialTable MaterialTable::pure_absorber(double sigma_t, double source) {
  return MaterialTable({{sigma_t, 0.0, source}});
}

CellXs expand(const MaterialTable& table, const std::vector<int>& materials,
              std::int64_t num_cells) {
  CellXs out;
  out.sigma_t.resize(static_cast<std::size_t>(num_cells));
  out.sigma_s.resize(static_cast<std::size_t>(num_cells));
  out.source.resize(static_cast<std::size_t>(num_cells));
  for (std::int64_t c = 0; c < num_cells; ++c) {
    const int mat = materials.empty()
                        ? 0
                        : materials[static_cast<std::size_t>(c)];
    const CrossSection& xs = table.at(mat);
    out.sigma_t[static_cast<std::size_t>(c)] = xs.sigma_t;
    out.sigma_s[static_cast<std::size_t>(c)] = xs.sigma_s;
    out.source[static_cast<std::size_t>(c)] = xs.source;
  }
  return out;
}

}  // namespace jsweep::sn
