#include "sn/xs.hpp"

namespace jsweep::sn {

MaterialTable MaterialTable::kobayashi() {
  // Indexed by mesh::Material: kMatSource=0, kMatVoid=1, kMatShield=2.
  // Values follow the Kobayashi benchmark's "case with 50% scattering".
  return MaterialTable({
      {0.10, 0.05, 1.0},    // source
      {1e-4, 5e-5, 0.0},    // void duct
      {0.10, 0.05, 0.0},    // shield
  });
}

MaterialTable MaterialTable::reactor() {
  return MaterialTable({
      {0.0, 0.0, 0.0},      // (unused id 0)
      {0.0, 0.0, 0.0},      // (unused id 1)
      {0.0, 0.0, 0.0},      // (unused id 2)
      {1.0, 0.80, 1.0},     // kMatCore
      {0.5, 0.45, 0.0},     // kMatReflector
  });
}

MaterialTable MaterialTable::ball() {
  return MaterialTable({
      {0.0, 0.0, 0.0},      // (unused id 0)
      {0.0, 0.0, 0.0},      // (unused id 1)
      {0.20, 0.10, 0.0},    // kMatShield (outer)
      {0.50, 0.25, 1.0},    // kMatCore (inner source)
  });
}

MaterialTable MaterialTable::pure_absorber(double sigma_t, double source) {
  return MaterialTable({{sigma_t, 0.0, source}});
}

CellXs expand(const MaterialTable& table, const std::vector<int>& materials,
              std::int64_t num_cells) {
  CellXs out;
  out.sigma_t.resize(static_cast<std::size_t>(num_cells));
  out.sigma_s.resize(static_cast<std::size_t>(num_cells));
  out.source.resize(static_cast<std::size_t>(num_cells));
  for (std::int64_t c = 0; c < num_cells; ++c) {
    const int mat = materials.empty()
                        ? 0
                        : materials[static_cast<std::size_t>(c)];
    const CrossSection& xs = table.at(mat);
    out.sigma_t[static_cast<std::size_t>(c)] = xs.sigma_t;
    out.sigma_s[static_cast<std::size_t>(c)] = xs.sigma_s;
    out.source[static_cast<std::size_t>(c)] = xs.source;
  }
  return out;
}

}  // namespace jsweep::sn
