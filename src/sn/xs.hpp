#pragma once

/// \file xs.hpp
/// One-group cross sections and the material tables of the benchmark
/// problems.

#include <vector>

#include "mesh/generators.hpp"
#include "support/check.hpp"

namespace jsweep::sn {

/// One-group, isotropic-scattering material.
struct CrossSection {
  double sigma_t = 0.0;  ///< total macroscopic cross section (1/cm)
  double sigma_s = 0.0;  ///< isotropic scattering cross section (1/cm)
  double source = 0.0;   ///< external volumetric source (n/cm³·s)
};

/// Material table indexed by mesh material id.
class MaterialTable {
 public:
  MaterialTable() = default;
  explicit MaterialTable(std::vector<CrossSection> xs) : xs_(std::move(xs)) {}

  [[nodiscard]] const CrossSection& at(int material) const {
    JSWEEP_CHECK_MSG(material >= 0 &&
                         material < static_cast<int>(xs_.size()),
                     "material " << material << " not in table");
    return xs_[static_cast<std::size_t>(material)];
  }

  [[nodiscard]] int size() const { return static_cast<int>(xs_.size()); }

  /// Kobayashi-style table (ids from mesh::Material): source region with
  /// 50% scattering, near-void duct, absorbing shield.
  static MaterialTable kobayashi();

  /// Reactor-style table: multiplying-ish core (high scattering ratio,
  /// distributed source) and a reflector.
  static MaterialTable reactor();

  /// Ball: source core inside a scattering shield.
  static MaterialTable ball();

  /// Pure absorber everywhere (σs = 0) — used by the analytic attenuation
  /// tests.
  static MaterialTable pure_absorber(double sigma_t, double source);

 private:
  std::vector<CrossSection> xs_;
};

/// Expand per-cell arrays from a material map.
struct CellXs {
  std::vector<double> sigma_t;
  std::vector<double> sigma_s;
  std::vector<double> source;
};

CellXs expand(const MaterialTable& table, const std::vector<int>& materials,
              std::int64_t num_cells);

}  // namespace jsweep::sn
