#pragma once

/// \file xs.hpp
/// One-group cross sections and the material tables of the benchmark
/// problems.

#include <vector>

#include "mesh/generators.hpp"
#include "support/check.hpp"

namespace jsweep::sn {

/// One-group, isotropic-scattering material.
struct CrossSection {
  double sigma_t = 0.0;  ///< total macroscopic cross section (1/cm)
  double sigma_s = 0.0;  ///< isotropic scattering cross section (1/cm)
  double source = 0.0;   ///< external volumetric source (n/cm³·s)
};

/// Material table indexed by mesh material id.
class MaterialTable {
 public:
  MaterialTable() = default;  ///< empty table
  /// Table over the given materials (index = mesh material id).
  explicit MaterialTable(std::vector<CrossSection> xs) : xs_(std::move(xs)) {}

  /// Cross sections of a material id; throws CheckError when absent.
  [[nodiscard]] const CrossSection& at(int material) const {
    JSWEEP_CHECK_MSG(material >= 0 &&
                         material < static_cast<int>(xs_.size()),
                     "material " << material << " not in table");
    return xs_[static_cast<std::size_t>(material)];
  }

  /// Materials in the table.
  [[nodiscard]] int size() const { return static_cast<int>(xs_.size()); }

  /// Kobayashi-style table (ids from mesh::Material): source region with
  /// 50% scattering, near-void duct, absorbing shield.
  static MaterialTable kobayashi();

  /// Reactor-style table: multiplying-ish core (high scattering ratio,
  /// distributed source) and a reflector.
  static MaterialTable reactor();

  /// Ball: source core inside a scattering shield.
  static MaterialTable ball();

  /// Pure absorber everywhere (σs = 0) — used by the analytic attenuation
  /// tests.
  static MaterialTable pure_absorber(double sigma_t, double source);

 private:
  std::vector<CrossSection> xs_;
};

/// Per-cell cross-section arrays (each sized to the mesh's cell count).
struct CellXs {
  std::vector<double> sigma_t;  ///< total cross section per cell
  std::vector<double> sigma_s;  ///< isotropic scattering per cell
  std::vector<double> source;   ///< external volumetric source per cell

  /// Structural sanity check, throwing CheckError with an actionable
  /// message on the first violation: the three arrays must have identical
  /// length and every entry must be finite with σ_t ≥ 0 and σ_s ≥ 0.
  /// SweepPlan::build and the sweep service run this up front so malformed
  /// tables fail at request admission instead of mid-solve.
  void validate() const;
};

/// Expand per-cell arrays from a material map (empty map = material 0).
CellXs expand(const MaterialTable& table, const std::vector<int>& materials,
              std::int64_t num_cells);

}  // namespace jsweep::sn
