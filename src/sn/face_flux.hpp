#pragma once

/// \file face_flux.hpp
/// Dense face-flux storage for the sweep hot path.
///
/// The per-cell kernels used to read and write angular face fluxes through
/// a std::unordered_map keyed by global face id — 4–6 hash operations per
/// cell per angle. Instead, every face a (patch, angle) task can touch is
/// assigned a dense local *slot* at build time, and the kernels run against
/// a FaceFluxWorkspace: a flat double array with an epoch stamp per slot.
///
///   - read(slot)  : one indexed load + one epoch compare; a slot not
///     written in the current epoch reads 0 (the vacuum boundary, matching
///     the map's missing-key semantics);
///   - write(slot) : one indexed store + epoch stamp;
///   - reset()     : O(1) — bump the epoch instead of clearing memory.
///
/// ## Epoch semantics (the invariants kernels rely on)
///
/// Each slot carries a uint32 stamp; a slot is "written" iff its stamp
/// equals the workspace's current epoch. The invariants:
///
///   1. After prepare()/reset(), every slot reads 0 and has(slot) is
///      false — regardless of what a previous borrower stored. Stale
///      values can never leak across programs, sweeps, or pool reuses.
///   2. write(s, v) makes read(s) == v and has(s) == true until the next
///      reset — values are never silently dropped within an epoch.
///   3. Epoch wrap (2^32 resets) is handled: the stamps are re-zeroed and
///      the epoch restarts at 1, preserving invariant 1.
///   4. prepare(n) only grows capacity; shrinking keeps the allocation so
///      pool reuse never reallocates. num_slots() reflects the prepared
///      size, and JSWEEP_ASSERT guards every access against it.
///
/// Workspaces are recycled through a FaceFluxPool shared by all programs of
/// a solver: a program borrows one sized for its slot count at init() and
/// returns it when its last vertex retires, so steady-state sweeps allocate
/// nothing and the number of live workspaces tracks the number of
/// *concurrently active* programs, not the total program count.

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "support/check.hpp"
#include "support/ids.hpp"

namespace jsweep::sn {

/// Global face ids a kernel touches when sweeping one cell for one
/// ordinate, in kernel-defined entry order (structured: 3 axis pairs;
/// tets: the 4 cell faces). -1 marks "no face in this role" — a vacuum
/// boundary inflow or an entry the kernel will not write.
struct CellFaceIds {
  static constexpr std::int64_t kNone = -1;  ///< "no face in this role"
  int count = 0;  ///< active entries (3 for StructuredDD, 4 for TetStep)
  /// Inflow faces per entry.
  std::array<std::int64_t, 4> in{kNone, kNone, kNone, kNone};
  /// Outflow faces per entry.
  std::array<std::int64_t, 4> out{kNone, kNone, kNone, kNone};
};

/// The dense counterpart of CellFaceIds: each global face id resolved to a
/// workspace slot. Precomputed once per (patch, angle) task.
struct CellFaceSlots {
  static constexpr std::int32_t kNone = -1;  ///< no slot (vacuum inflow)
  /// Inflow slots per entry.
  std::array<std::int32_t, 4> in{kNone, kNone, kNone, kNone};
  /// Outflow slots per entry.
  std::array<std::int32_t, 4> out{kNone, kNone, kNone, kNone};
};

/// Identity resolution for whole-mesh sweeps (serial reference, benches,
/// calibration) where global face ids are already dense: slot == face id.
[[nodiscard]] inline CellFaceSlots identity_slots(const CellFaceIds& ids) {
  CellFaceSlots s;
  for (int k = 0; k < ids.count; ++k) {
    JSWEEP_ASSERT(ids.in[static_cast<std::size_t>(k)] < INT32_MAX &&
                  ids.out[static_cast<std::size_t>(k)] < INT32_MAX);
    s.in[static_cast<std::size_t>(k)] =
        static_cast<std::int32_t>(ids.in[static_cast<std::size_t>(k)]);
    s.out[static_cast<std::size_t>(k)] =
        static_cast<std::int32_t>(ids.out[static_cast<std::size_t>(k)]);
  }
  return s;
}

/// Identity-resolved slots for every cell of a whole-mesh sweep: one
/// record per cell. `Disc` is any kernel exposing num_cells() and
/// face_ids() — a template so this header need not depend on
/// sn/discretization.hpp.
template <class Disc, class Ord>
[[nodiscard]] std::vector<CellFaceSlots> build_identity_slots(
    const Disc& disc, const Ord& ang) {
  std::vector<CellFaceSlots> slots(
      static_cast<std::size_t>(disc.num_cells()));
  CellFaceIds ids;
  for (std::int64_t c = 0; c < disc.num_cells(); ++c) {
    disc.face_ids(CellId{c}, ang, ids);
    slots[static_cast<std::size_t>(c)] = identity_slots(ids);
  }
  return slots;
}

/// Flat face-flux array with per-slot epoch stamps. Not thread-safe; one
/// workspace belongs to one program execution at a time.
class FaceFluxWorkspace {
 public:
  /// Make the workspace usable for `num_slots` slots and reset it. Only
  /// grows capacity; shrinking keeps the allocation (pool reuse).
  void prepare(std::int64_t num_slots) {
    JSWEEP_CHECK(num_slots >= 0 && num_slots < INT32_MAX);
    if (static_cast<std::size_t>(num_slots) > values_.size()) {
      values_.resize(static_cast<std::size_t>(num_slots));
      epoch_.resize(static_cast<std::size_t>(num_slots), 0);
    }
    num_slots_ = num_slots;
    reset();
  }

  /// O(1) bulk reset: every slot becomes "unwritten" (reads 0).
  void reset() {
    if (++current_ == 0) {  // epoch wrapped: re-zero stamps, restart at 1
      std::fill(epoch_.begin(), epoch_.end(), 0u);
      current_ = 1;
    }
  }

  /// Value of a slot, or 0 when unwritten this epoch (vacuum boundary).
  [[nodiscard]] double read(std::int32_t slot) const {
    JSWEEP_ASSERT(slot >= 0 && slot < num_slots_);
    return epoch_[static_cast<std::size_t>(slot)] == current_
               ? values_[static_cast<std::size_t>(slot)]
               : 0.0;
  }

  /// True iff the slot was written since the last reset().
  [[nodiscard]] bool has(std::int32_t slot) const {
    JSWEEP_ASSERT(slot >= 0 && slot < num_slots_);
    return epoch_[static_cast<std::size_t>(slot)] == current_;
  }

  /// Store a value and stamp the slot as written this epoch.
  void write(std::int32_t slot, double value) {
    JSWEEP_ASSERT(slot >= 0 && slot < num_slots_);
    values_[static_cast<std::size_t>(slot)] = value;
    epoch_[static_cast<std::size_t>(slot)] = current_;
  }

  /// Slots prepared for the current borrower.
  [[nodiscard]] std::int64_t num_slots() const { return num_slots_; }
  /// Allocated slots (≥ num_slots(); pool fit decisions use this).
  [[nodiscard]] std::int64_t capacity() const {
    return static_cast<std::int64_t>(values_.size());
  }

 private:
  std::vector<double> values_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t current_ = 1;
  std::int32_t num_slots_ = 0;
};

/// What a kernel sees for one cell: the workspace plus that cell's
/// precomputed slots. Missing `in` slots read 0 (vacuum boundary).
struct FaceFluxView {
  FaceFluxWorkspace* ws = nullptr;        ///< backing workspace
  const CellFaceSlots* slots = nullptr;   ///< this cell's resolved slots

  /// Incoming flux in entry k (0 for vacuum-boundary entries).
  [[nodiscard]] double read_in(int k) const {
    const std::int32_t s = slots->in[static_cast<std::size_t>(k)];
    return s >= 0 ? ws->read(s) : 0.0;
  }
  /// Store the outgoing flux of entry k (must have a slot).
  void write_out(int k, double value) const {
    const std::int32_t s = slots->out[static_cast<std::size_t>(k)];
    JSWEEP_ASSERT(s >= 0);
    ws->write(s, value);
  }
};

/// Widest group set a batched kernel supports (kernel lane arrays are
/// fixed-size so `#pragma omp simd` loops have compile-time trip bounds).
inline constexpr int kMaxGroupSetWidth = 8;

/// The group-set counterpart of FaceFluxView: slot `s` of the scalar
/// layout becomes `width` consecutive lanes at workspace index
/// `s * width + lane`, one lane per group of the set. Keeping the lanes of
/// one face adjacent makes the inner kernel loop unit-stride across the
/// set. Missing `in` slots read 0 in every lane (vacuum boundary).
struct FaceFluxSetView {
  FaceFluxWorkspace* ws = nullptr;       ///< backing workspace
  const CellFaceSlots* slots = nullptr;  ///< this cell's resolved slots
  int width = 1;                         ///< lanes per slot (set width)

  /// Incoming flux of entry k, lane `lane` (0 for vacuum entries).
  [[nodiscard]] double read_in(int k, int lane) const {
    const std::int32_t s = slots->in[static_cast<std::size_t>(k)];
    return s >= 0 ? ws->read(s * width + lane) : 0.0;
  }
  /// Store the outgoing flux of entry k, lane `lane` (must have a slot).
  void write_out(int k, int lane, double value) const {
    const std::int32_t s = slots->out[static_cast<std::size_t>(k)];
    JSWEEP_ASSERT(s >= 0);
    ws->write(s * width + lane, value);
  }
};

/// Thread-safe recycling pool of workspaces, shared by every program of a
/// solver (workers borrow lazily, return at retirement). Keyed by slot
/// count: the free list stays sorted by capacity, so acquire() finds the
/// smallest free workspace that already fits in O(log n) — large tasks do
/// not pin oversized buffers forever and small ones do not grow them.
class FaceFluxPool {
 public:
  /// Borrow a workspace prepared for `num_slots` slots (smallest free fit,
  /// or a fresh allocation when none is free).
  [[nodiscard]] FaceFluxWorkspace* acquire(std::int64_t num_slots) {
    FaceFluxWorkspace* ws = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++acquires_;
      if (!free_.empty()) {
        ++reuses_;
        // Smallest free workspace with enough capacity; no fit means all
        // are smaller — grow the largest (the back).
        auto it = std::lower_bound(
            free_.begin(), free_.end(), num_slots,
            [](const FaceFluxWorkspace* w, std::int64_t n) {
              return w->capacity() < n;
            });
        if (it == free_.end()) --it;
        ws = *it;
        free_.erase(it);
      } else {
        owned_.push_back(std::make_unique<FaceFluxWorkspace>());
        ws = owned_.back().get();
      }
    }
    ws->prepare(num_slots);
    return ws;
  }

  /// Return a borrowed workspace to the free list (null is a no-op).
  void release(FaceFluxWorkspace* ws) {
    if (ws == nullptr) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = std::upper_bound(
        free_.begin(), free_.end(), ws->capacity(),
        [](std::int64_t cap, const FaceFluxWorkspace* w) {
          return cap < w->capacity();
        });
    free_.insert(it, ws);
  }

  /// Workspaces ever allocated — with pooling this tracks the peak number
  /// of concurrently active programs, not the total program count.
  [[nodiscard]] std::int64_t created() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::int64_t>(owned_.size());
  }
  /// Total acquire() calls.
  [[nodiscard]] std::int64_t acquires() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return acquires_;
  }
  /// acquire() calls served from the free list (no allocation).
  [[nodiscard]] std::int64_t reuses() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return reuses_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<FaceFluxWorkspace>> owned_;
  std::vector<FaceFluxWorkspace*> free_;
  std::int64_t acquires_ = 0;
  std::int64_t reuses_ = 0;
};

}  // namespace jsweep::sn
