#include "sn/fission.hpp"

#include <cmath>

#include "support/check.hpp"

namespace jsweep::sn {

FissionXs::FissionXs(int groups, std::int64_t cells)
    : groups_(groups), cells_(cells) {
  JSWEEP_CHECK(groups >= 1);
  JSWEEP_CHECK(cells >= 1);
  nu_sigma_f_.assign(
      static_cast<std::size_t>(cells) * static_cast<std::size_t>(groups),
      0.0);
  chi_.assign(static_cast<std::size_t>(groups), 0.0);
}

std::vector<double> FissionXs::production(
    const std::vector<std::vector<double>>& phi) const {
  JSWEEP_CHECK(static_cast<int>(phi.size()) == groups_);
  std::vector<double> s(static_cast<std::size_t>(cells_), 0.0);
  for (int g = 0; g < groups_; ++g) {
    const auto& pg = phi[static_cast<std::size_t>(g)];
    JSWEEP_CHECK(static_cast<std::int64_t>(pg.size()) == cells_);
    for (std::int64_t c = 0; c < cells_; ++c)
      s[static_cast<std::size_t>(c)] +=
          nu_sigma_f(g, c) * pg[static_cast<std::size_t>(c)];
  }
  return s;
}

void FissionXs::validate() const {
  double chi_sum = 0.0;
  for (int g = 0; g < groups_; ++g) {
    const double x = chi(g);
    JSWEEP_CHECK_MSG(std::isfinite(x) && x >= 0.0,
                     "χ[" << g << "] = " << x);
    chi_sum += x;
  }
  JSWEEP_CHECK_MSG(std::abs(chi_sum - 1.0) <= 1e-12,
                   "χ sums to " << chi_sum
                                << " (the emission spectrum must be a "
                                   "probability distribution)");
  bool any_fission = false;
  for (std::int64_t c = 0; c < cells_; ++c) {
    for (int g = 0; g < groups_; ++g) {
      const double f = nu_sigma_f(g, c);
      JSWEEP_CHECK_MSG(std::isfinite(f) && f >= 0.0,
                       "νΣ_f[" << g << "] = " << f << " at cell " << c);
      if (f > 0.0) any_fission = true;
    }
  }
  JSWEEP_CHECK_MSG(any_fission,
                   "every νΣ_f entry is zero — a fission-free problem has "
                   "no k-eigenvalue");
}

}  // namespace jsweep::sn
