#pragma once

/// \file quadrature.hpp
/// Angular quadrature sets for discrete-ordinates (Sn) transport.
///
/// Two families:
///   - level-symmetric LQn sets (S2..S8) with the standard ordinates and
///     weights, the sets the paper's experiments use (S2 for SnSweep-S,
///     S4 = 24 angles for JSNT-U);
///   - product (Gauss-Legendre polar × uniform azimuthal) sets for
///     arbitrary direction counts (the paper's Kobayashi runs use 320
///     directions).
///
/// Weights are normalized so they sum to 4π; the scalar flux is
/// φ = Σ_m w_m ψ_m.

#include <vector>

#include "mesh/geometry.hpp"

namespace jsweep::sn {

struct Ordinate {
  mesh::Vec3 dir;     ///< unit direction Ω
  double weight = 0;  ///< quadrature weight (Σ = 4π)
  int octant = 0;     ///< 0..7, bit 0: Ωx<0, bit 1: Ωy<0, bit 2: Ωz<0
};

/// An ordered set of ordinates with weights summing to 4π.
class Quadrature {
 public:
  /// Level-symmetric LQn quadrature; n ∈ {2, 4, 6, 8}; n(n+2) directions.
  static Quadrature level_symmetric(int n);

  /// Product quadrature: `npolar` Gauss-Legendre polar levels × `nazim`
  /// uniformly weighted azimuthal angles = npolar*nazim directions.
  static Quadrature product(int npolar, int nazim);

  /// Ordinates in the set.
  [[nodiscard]] int num_angles() const {
    return static_cast<int>(ordinates_.size());
  }
  /// Ordinate a (0-based).
  [[nodiscard]] const Ordinate& angle(int a) const {
    return ordinates_[static_cast<std::size_t>(a)];
  }
  /// All ordinates, in angle-id order.
  [[nodiscard]] const std::vector<Ordinate>& ordinates() const {
    return ordinates_;
  }
  /// Σ_m w_m (should be 4π up to roundoff).
  [[nodiscard]] double total_weight() const;

 private:
  explicit Quadrature(std::vector<Ordinate> ords)
      : ordinates_(std::move(ords)) {}

  std::vector<Ordinate> ordinates_;
};

/// Octant id of a direction.
[[nodiscard]] int octant_of(const mesh::Vec3& dir);

}  // namespace jsweep::sn
