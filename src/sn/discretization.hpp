#pragma once

/// \file discretization.hpp
/// Per-cell sweep kernels: the "user-defined numerical computation" of
/// Listing 1. Given the incoming face angular fluxes of a cell, the kernel
/// computes the cell flux and its outgoing face fluxes.
///
/// - StructuredDD: diamond-difference on uniform hexahedral cells (the
///   JSNT-S / TORT-style kernel).
/// - TetStep: upwind step (first-order finite volume) on tetrahedra (the
///   JSNT-U-style kernel). Always positive and strictly conservative.
///
/// Two flux interfaces, bitwise-identical in results:
///   - the *dense* hot path: face fluxes live in a FaceFluxWorkspace
///     (sn/face_flux.hpp) and the kernel receives the cell's precomputed
///     slots through a FaceFluxView — no hashing, no allocation. face_ids()
///     enumerates the global faces a cell touches so callers can build the
///     slot index up front.
///   - the retained *reference* path: a FaceFluxMap keyed by global face id
///     (the mesh face index for tets, structured_face_id(upwind_cell,
///     out_dir) for structured meshes). A missing key reads as 0 (vacuum
///     boundary). Kept for ground-truth tests and the hash-map side of the
///     bench_micro kernel-grind comparison.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/sweep_dag.hpp"
#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"
#include "sn/boundary.hpp"
#include "sn/face_flux.hpp"
#include "sn/quadrature.hpp"
#include "sn/xs.hpp"

namespace jsweep::sn {

using FaceFluxMap = std::unordered_map<std::int64_t, double>;

/// Abstract per-cell sweep kernel.
class Discretization {
 public:
  virtual ~Discretization() = default;  ///< polymorphic base

  /// Dense hot path: compute cell `c` for ordinate `ang` with per-steradian
  /// total source `q_per_ster[c]`; reads incoming and writes outgoing face
  /// fluxes through `flux` (workspace + this cell's precomputed slots).
  /// Returns the cell-average angular flux ψ_c.
  virtual double sweep_cell(CellId c, const Ordinate& ang,
                            const std::vector<double>& q_per_ster,
                            const FaceFluxView& flux) const = 0;

  /// Reference path (hash map); same arithmetic, same results.
  virtual double sweep_cell(CellId c, const Ordinate& ang,
                            const std::vector<double>& q_per_ster,
                            FaceFluxMap& flux) const = 0;

  /// Group-set hot path: sweep cell `c` for `width` groups at once
  /// (1 <= width <= kMaxGroupSetWidth). `q_per_ster` and `sigma_t` are
  /// set-strided (`[c * width + lane]` — σ_t comes from the caller, not
  /// this kernel's xs(), so one geometry carrier serves every group of the
  /// set); face fluxes go through `flux` (slots strided lane-adjacent).
  /// Writes the per-lane cell fluxes to `psi_out[0..width)`. Each lane
  /// performs exactly the scalar sweep_cell operation sequence — the inner
  /// loops vectorize *across* lanes (`#pragma omp simd`; AVX2 where
  /// compiled in) without reassociating within a lane, so lane results are
  /// bitwise equal to per-group scalar sweeps on targets without
  /// contracted FMA and within 1 ULP otherwise.
  virtual void sweep_cell_set(CellId c, const Ordinate& ang, int width,
                              const double* q_per_ster, const double* sigma_t,
                              const FaceFluxSetView& flux,
                              double* psi_out) const = 0;

  /// Enumerate the global faces sweep_cell touches for (c, ang), in the
  /// entry order the dense kernel consumes slots. Build-time only.
  virtual void face_ids(CellId c, const Ordinate& ang,
                        CellFaceIds& ids) const = 0;

  /// Cells of the discretized mesh.
  [[nodiscard]] virtual std::int64_t num_cells() const = 0;
  /// Volume of cell c (cm³).
  [[nodiscard]] virtual double cell_volume(CellId c) const = 0;
  /// Per-cell cross sections this kernel sweeps with.
  [[nodiscard]] virtual const CellXs& xs() const = 0;
};

/// Diamond difference on a uniform structured mesh.
class StructuredDD final : public Discretization {
 public:
  /// `negative_flux_fixup`: clamp negative extrapolated face fluxes to 0
  /// (set-to-zero fixup, no rebalance). Recommended for void regions.
  /// `boundary`: per-side albedo policy (default: vacuum everywhere). With
  /// a non-vacuum side, face_ids() names that side's incoming boundary
  /// face `structured_face_id(c, side)` — exactly the face the mirror
  /// angle writes as its outflow from the same cell — so the lagged
  /// boundary store (sweep/plan.cpp) can seed it; the kernels' arithmetic
  /// is untouched (the albedo scaling happens at seed time).
  StructuredDD(const mesh::StructuredMesh& m, CellXs xs,
               bool negative_flux_fixup = true,
               BoundarySpec boundary = BoundarySpec{});

  double sweep_cell(CellId c, const Ordinate& ang,
                    const std::vector<double>& q_per_ster,
                    const FaceFluxView& flux) const override;
  double sweep_cell(CellId c, const Ordinate& ang,
                    const std::vector<double>& q_per_ster,
                    FaceFluxMap& flux) const override;
  void sweep_cell_set(CellId c, const Ordinate& ang, int width,
                      const double* q_per_ster, const double* sigma_t,
                      const FaceFluxSetView& flux,
                      double* psi_out) const override;
  void face_ids(CellId c, const Ordinate& ang,
                CellFaceIds& ids) const override;

  [[nodiscard]] std::int64_t num_cells() const override {
    return mesh_.num_cells();
  }
  [[nodiscard]] double cell_volume(CellId) const override {
    return mesh_.cell_volume();
  }
  [[nodiscard]] const CellXs& xs() const override { return xs_; }
  /// The structured mesh this kernel sweeps.
  [[nodiscard]] const mesh::StructuredMesh& mesh() const { return mesh_; }
  /// The negative-flux-fixup setting (so per-group clones of this kernel
  /// can inherit it).
  [[nodiscard]] bool negative_flux_fixup() const { return fixup_; }
  /// The per-side boundary policy (so per-group clones can inherit it and
  /// the plan can register boundary-store slots).
  [[nodiscard]] const BoundarySpec& boundary() const { return boundary_; }

 private:
  const mesh::StructuredMesh& mesh_;
  CellXs xs_;
  bool fixup_;
  BoundarySpec boundary_;
};

/// Upwind step scheme on tetrahedra.
class TetStep final : public Discretization {
 public:
  /// `m` must outlive the kernel; `xs` is copied (per-cell, size cells).
  TetStep(const mesh::TetMesh& m, CellXs xs);

  double sweep_cell(CellId c, const Ordinate& ang,
                    const std::vector<double>& q_per_ster,
                    const FaceFluxView& flux) const override;
  double sweep_cell(CellId c, const Ordinate& ang,
                    const std::vector<double>& q_per_ster,
                    FaceFluxMap& flux) const override;
  void sweep_cell_set(CellId c, const Ordinate& ang, int width,
                      const double* q_per_ster, const double* sigma_t,
                      const FaceFluxSetView& flux,
                      double* psi_out) const override;
  void face_ids(CellId c, const Ordinate& ang,
                CellFaceIds& ids) const override;

  [[nodiscard]] std::int64_t num_cells() const override {
    return mesh_.num_cells();
  }
  [[nodiscard]] double cell_volume(CellId c) const override {
    return mesh_.cell_volume(c);
  }
  [[nodiscard]] const CellXs& xs() const override { return xs_; }
  /// The tetrahedral mesh this kernel sweeps.
  [[nodiscard]] const mesh::TetMesh& mesh() const { return mesh_; }

 private:
  const mesh::TetMesh& mesh_;
  CellXs xs_;
};

}  // namespace jsweep::sn
