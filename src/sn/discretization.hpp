#pragma once

/// \file discretization.hpp
/// Per-cell sweep kernels: the "user-defined numerical computation" of
/// Listing 1. Given the incoming face angular fluxes of a cell, the kernel
/// computes the cell flux and its outgoing face fluxes.
///
/// - StructuredDD: diamond-difference on uniform hexahedral cells (the
///   JSNT-S / TORT-style kernel).
/// - TetStep: upwind step (first-order finite volume) on tetrahedra (the
///   JSNT-U-style kernel). Always positive and strictly conservative.
///
/// Face fluxes live in a FaceFluxMap keyed by global face id: the mesh face
/// index for tets, structured_face_id(upwind_cell, out_dir) for structured
/// meshes. A missing key reads as 0 (vacuum boundary).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/sweep_dag.hpp"
#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"
#include "sn/quadrature.hpp"
#include "sn/xs.hpp"

namespace jsweep::sn {

using FaceFluxMap = std::unordered_map<std::int64_t, double>;

/// Abstract per-cell sweep kernel.
class Discretization {
 public:
  virtual ~Discretization() = default;

  /// Compute cell `c` for ordinate `ang` with per-steradian total source
  /// `q_per_ster[c]`; reads incoming and writes outgoing face fluxes in
  /// `flux`. Returns the cell-average angular flux ψ_c.
  virtual double sweep_cell(CellId c, const Ordinate& ang,
                            const std::vector<double>& q_per_ster,
                            FaceFluxMap& flux) const = 0;

  [[nodiscard]] virtual std::int64_t num_cells() const = 0;
  [[nodiscard]] virtual double cell_volume(CellId c) const = 0;
  [[nodiscard]] virtual const CellXs& xs() const = 0;
};

/// Diamond difference on a uniform structured mesh.
class StructuredDD final : public Discretization {
 public:
  /// `negative_flux_fixup`: clamp negative extrapolated face fluxes to 0
  /// (set-to-zero fixup, no rebalance). Recommended for void regions.
  StructuredDD(const mesh::StructuredMesh& m, CellXs xs,
               bool negative_flux_fixup = true);

  double sweep_cell(CellId c, const Ordinate& ang,
                    const std::vector<double>& q_per_ster,
                    FaceFluxMap& flux) const override;

  [[nodiscard]] std::int64_t num_cells() const override {
    return mesh_.num_cells();
  }
  [[nodiscard]] double cell_volume(CellId) const override {
    return mesh_.cell_volume();
  }
  [[nodiscard]] const CellXs& xs() const override { return xs_; }
  [[nodiscard]] const mesh::StructuredMesh& mesh() const { return mesh_; }

 private:
  const mesh::StructuredMesh& mesh_;
  CellXs xs_;
  bool fixup_;
};

/// Upwind step scheme on tetrahedra.
class TetStep final : public Discretization {
 public:
  TetStep(const mesh::TetMesh& m, CellXs xs);

  double sweep_cell(CellId c, const Ordinate& ang,
                    const std::vector<double>& q_per_ster,
                    FaceFluxMap& flux) const override;

  [[nodiscard]] std::int64_t num_cells() const override {
    return mesh_.num_cells();
  }
  [[nodiscard]] double cell_volume(CellId c) const override {
    return mesh_.cell_volume(c);
  }
  [[nodiscard]] const CellXs& xs() const override { return xs_; }
  [[nodiscard]] const mesh::TetMesh& mesh() const { return mesh_; }

 private:
  const mesh::TetMesh& mesh_;
  CellXs xs_;
};

}  // namespace jsweep::sn
