#include "sn/boundary.hpp"

#include <cmath>

#include "support/check.hpp"

namespace jsweep::sn {

void BoundarySpec::validate() const {
  for (int d = 0; d < 6; ++d) {
    const double a = albedo[static_cast<std::size_t>(d)];
    JSWEEP_CHECK_MSG(std::isfinite(a) && a >= 0.0 && a <= 1.0,
                     "boundary albedo[" << d << "] = " << a
                                        << " must be in [0, 1]");
  }
}

int mirror_ordinate(const Quadrature& quad, int angle, int axis) {
  JSWEEP_CHECK(angle >= 0 && angle < quad.num_angles());
  JSWEEP_CHECK(axis >= 0 && axis < 3);
  mesh::Vec3 want = quad.angle(angle).dir;
  if (axis == 0) want.x = -want.x;
  if (axis == 1) want.y = -want.y;
  if (axis == 2) want.z = -want.z;

  // Deterministic nearest match: smallest index within tolerance wins.
  // Quadrature directions are unit-ish vectors with components well away
  // from each other, so 1e-9 separates "the mirror" from "everything
  // else" by many orders of magnitude for every set we build.
  constexpr double kTol = 1e-9;
  for (int m = 0; m < quad.num_angles(); ++m) {
    const mesh::Vec3 d = quad.angle(m).dir;
    if (std::abs(d.x - want.x) <= kTol && std::abs(d.y - want.y) <= kTol &&
        std::abs(d.z - want.z) <= kTol)
      return m;
  }
  JSWEEP_CHECK_MSG(false, "quadrature is not closed under axis-"
                              << axis << " reflection: angle " << angle
                              << " has no mirror partner (reflecting "
                                 "boundaries need a symmetric set)");
  return -1;  // unreachable
}

}  // namespace jsweep::sn
