#include "sn/quadrature.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace jsweep::sn {

namespace {

constexpr double kFourPi = 4.0 * std::numbers::pi;

/// Level-symmetric LQn data (Lewis & Miller, Table 4-1). `mu` lists the
/// positive direction-cosine levels; each point class is a multiset of
/// three level indices with Σ μ² = 1 plus its per-octant weight
/// (octant weights sum to 1).
struct LqnData {
  std::vector<double> mu;
  struct PointClass {
    std::array<int, 3> levels;  // sorted level indices (0-based)
    double weight;
  };
  std::vector<PointClass> classes;
};

LqnData lqn_data(int n) {
  switch (n) {
    case 2:
      return {{0.5773503}, {{{0, 0, 0}, 1.0}}};
    case 4:
      return {{0.3500212, 0.8688903}, {{{0, 0, 1}, 1.0 / 3.0}}};
    case 6:
      return {{0.2666355, 0.6815076, 0.9261808},
              {{{0, 0, 2}, 0.1761263}, {{0, 1, 1}, 0.1572071}}};
    case 8:
      return {{0.2182179, 0.5773503, 0.7867958, 0.9511897},
              {{{0, 0, 3}, 0.1209877},
               {{0, 1, 2}, 0.0907407},
               {{1, 1, 1}, 0.0925926}}};
    default:
      JSWEEP_CHECK_MSG(false, "level-symmetric S" << n
                                                  << " not tabulated "
                                                     "(use S2/S4/S6/S8 or a "
                                                     "product set)");
  }
  return {};
}

/// All distinct permutations of a sorted index triple.
std::vector<std::array<int, 3>> permutations(std::array<int, 3> levels) {
  std::vector<std::array<int, 3>> perms;
  std::sort(levels.begin(), levels.end());
  do {
    perms.push_back(levels);
  } while (std::next_permutation(levels.begin(), levels.end()));
  return perms;
}

/// Gauss-Legendre nodes/weights on [-1, 1] by Newton iteration.
void gauss_legendre(int n, std::vector<double>& x, std::vector<double>& w) {
  x.assign(static_cast<std::size_t>(n), 0.0);
  w.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < (n + 1) / 2; ++i) {
    // Chebyshev initial guess.
    double z = std::cos(std::numbers::pi * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      double p0 = 1.0;
      double p1 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * j + 1.0) * z * p1 - j * p2) / (j + 1.0);
      }
      pp = n * (z * p0 - p1) / (z * z - 1.0);
      const double z1 = z;
      z = z1 - p0 / pp;
      if (std::abs(z - z1) < 1e-15) break;
    }
    x[static_cast<std::size_t>(i)] = -z;
    x[static_cast<std::size_t>(n - 1 - i)] = z;
    w[static_cast<std::size_t>(i)] = 2.0 / ((1.0 - z * z) * pp * pp);
    w[static_cast<std::size_t>(n - 1 - i)] = w[static_cast<std::size_t>(i)];
  }
}

}  // namespace

int octant_of(const mesh::Vec3& dir) {
  return (dir.x < 0 ? 1 : 0) | (dir.y < 0 ? 2 : 0) | (dir.z < 0 ? 4 : 0);
}

Quadrature Quadrature::level_symmetric(int n) {
  const LqnData data = lqn_data(n);
  std::vector<Ordinate> ords;
  ords.reserve(static_cast<std::size_t>(n * (n + 2)));
  for (int oct = 0; oct < 8; ++oct) {
    const double sx = (oct & 1) ? -1.0 : 1.0;
    const double sy = (oct & 2) ? -1.0 : 1.0;
    const double sz = (oct & 4) ? -1.0 : 1.0;
    for (const auto& cls : data.classes) {
      for (const auto& perm : permutations(cls.levels)) {
        Ordinate o;
        o.dir = {sx * data.mu[static_cast<std::size_t>(perm[0])],
                 sy * data.mu[static_cast<std::size_t>(perm[1])],
                 sz * data.mu[static_cast<std::size_t>(perm[2])]};
        // Per-octant class weights sum to 1; scale so the sphere totals 4π.
        o.weight = cls.weight * kFourPi / 8.0;
        o.octant = oct;
        ords.push_back(o);
      }
    }
  }
  JSWEEP_CHECK(static_cast<int>(ords.size()) == n * (n + 2));
  return Quadrature(std::move(ords));
}

Quadrature Quadrature::product(int npolar, int nazim) {
  JSWEEP_CHECK(npolar >= 2 && nazim >= 4 && nazim % 4 == 0);
  std::vector<double> mu;
  std::vector<double> wmu;
  gauss_legendre(npolar, mu, wmu);

  std::vector<Ordinate> ords;
  ords.reserve(static_cast<std::size_t>(npolar) * nazim);
  for (int i = 0; i < npolar; ++i) {
    const double c = mu[static_cast<std::size_t>(i)];
    const double s = std::sqrt(std::max(0.0, 1.0 - c * c));
    for (int j = 0; j < nazim; ++j) {
      // Offset keeps directions away from the axes (no grazing faces on
      // axis-aligned meshes).
      const double phi =
          2.0 * std::numbers::pi * (j + 0.5) / static_cast<double>(nazim);
      Ordinate o;
      o.dir = {s * std::cos(phi), s * std::sin(phi), c};
      o.weight = wmu[static_cast<std::size_t>(i)] * 2.0 * std::numbers::pi /
                 static_cast<double>(nazim);
      o.octant = octant_of(o.dir);
      ords.push_back(o);
    }
  }
  return Quadrature(std::move(ords));
}

double Quadrature::total_weight() const {
  double sum = 0.0;
  for (const auto& o : ordinates_) sum += o.weight;
  return sum;
}

}  // namespace jsweep::sn
