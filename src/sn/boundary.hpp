#pragma once

/// \file boundary.hpp
/// Boundary conditions of the structured sweep domain. The default —
/// everywhere in the codebase — is vacuum: an incoming boundary face reads
/// exactly 0. A BoundarySpec upgrades individual box sides to albedo
/// (partially reflecting) or fully reflecting boundaries: the incoming
/// angular flux of angle m at a boundary face is `albedo ×` the *previous
/// sweep's* outgoing flux of the mirror angle m′ at the same face. The
/// coupling is always lagged one sweep (the same prev/stage/commit
/// protocol cycle cuts use, see sweep/lagged_flux.hpp), which keeps it
/// schedule-independent: no sweep ordering constraint ties m to m′, so the
/// engines stay bitwise deterministic and the outer iteration absorbs the
/// lag error exactly as it does for cut feedback edges.

#include <array>

#include "mesh/geometry.hpp"
#include "sn/quadrature.hpp"

namespace jsweep::sn {

/// Per-side boundary policy of a structured box domain. `albedo[d]` is the
/// reflection coefficient of side `d` (indexed by mesh::FaceDir): 0 =
/// vacuum (the bitwise-default everywhere), 1 = fully reflecting, values
/// in between model partial reflectors. The albedo multiplies the mirror
/// angle's stored outgoing flux exactly once, at seed time — never inside
/// the sweep kernel — so a spec of all zeros leaves every existing solve
/// bitwise unchanged.
struct BoundarySpec {
  /// Reflection coefficient per box side, indexed by mesh::FaceDir.
  std::array<double, 6> albedo{};

  /// All sides vacuum (the default-constructed state, spelled out).
  [[nodiscard]] static BoundarySpec vacuum() { return BoundarySpec{}; }

  /// Every side reflecting with coefficient `a` (default: mirror, 1.0).
  [[nodiscard]] static BoundarySpec reflecting_all(double a = 1.0) {
    BoundarySpec spec;
    spec.albedo.fill(a);
    return spec;
  }

  /// The albedo of side `d`.
  [[nodiscard]] double side(mesh::FaceDir d) const {
    return albedo[static_cast<std::size_t>(static_cast<int>(d))];
  }

  /// Mutable albedo of side `d`.
  double& side(mesh::FaceDir d) {
    return albedo[static_cast<std::size_t>(static_cast<int>(d))];
  }

  /// True when any side is non-vacuum.
  [[nodiscard]] bool any() const {
    for (const double a : albedo)
      if (a != 0.0) return true;
    return false;
  }

  /// Every coefficient must be finite and in [0, 1]; throws CheckError
  /// otherwise (an albedo above one multiplies flux without bound).
  void validate() const;
};

/// The mirror angle of `angle` across the axis (0 = x, 1 = y, 2 = z): the
/// quadrature index whose direction equals angle's with that component
/// negated. Level-symmetric sets are closed under per-axis sign flips
/// bitwise; product sets are closed structurally but not bitwise, so the
/// match is a deterministic nearest-direction search within a tight
/// tolerance. Throws CheckError when the quadrature has no mirror partner
/// (such a set cannot support a reflecting boundary on that axis).
[[nodiscard]] int mirror_ordinate(const Quadrature& quad, int angle,
                                  int axis);

}  // namespace jsweep::sn
