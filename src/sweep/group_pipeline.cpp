#include "sweep/group_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "metrics/metrics.hpp"
#include "support/check.hpp"
#include "sweep/sweep_data.hpp"

namespace jsweep::sweep {

GroupPipeline::GroupPipeline(
    const sn::MultigroupXs& xs, const partition::PatchSet& ps,
    int num_angles, std::vector<const sn::Discretization*> group_discs,
    int lane_tag_offset)
    : xs_(xs),
      ps_(ps),
      num_angles_(num_angles),
      discs_(std::move(group_discs)),
      lane_tag_offset_(lane_tag_offset) {
  JSWEEP_CHECK(num_angles_ >= 1);
  JSWEEP_CHECK(lane_tag_offset_ >= 0);
  JSWEEP_CHECK_MSG(static_cast<int>(discs_.size()) == xs_.groups(),
                   "need one discretization per group");
  JSWEEP_CHECK_MSG(xs_.cells() == ps_.num_cells(),
                   "multigroup table covers "
                       << xs_.cells() << " cells, mesh has "
                       << ps_.num_cells());
  local_of_patch_.assign(static_cast<std::size_t>(ps_.num_patches()), -1);
  q_groups_.assign(static_cast<std::size_t>(xs_.groups()),
                   std::vector<double>());
  phi_groups_.assign(
      static_cast<std::size_t>(xs_.groups()),
      std::vector<double>(static_cast<std::size_t>(ps_.num_cells()), 0.0));
}

std::size_t GroupPipeline::local_index(PatchId p) const {
  const std::int32_t idx = local_of_patch_[static_cast<std::size_t>(p.value())];
  JSWEEP_CHECK_MSG(idx >= 0, "patch " << p << " not registered");
  return static_cast<std::size_t>(idx);
}

void GroupPipeline::register_patches(const std::vector<PatchId>& patches) {
  JSWEEP_CHECK_MSG(local_patches_.empty(), "patches already registered");
  local_patches_ = patches;
  for (std::size_t i = 0; i < local_patches_.size(); ++i) {
    const PatchId p = local_patches_[i];
    JSWEEP_CHECK(local_of_patch_[static_cast<std::size_t>(p.value())] < 0);
    local_of_patch_[static_cast<std::size_t>(p.value())] =
        static_cast<std::int32_t>(i);
  }
  const std::size_t slots =
      local_patches_.size() * static_cast<std::size_t>(xs_.groups());
  remaining_ = std::make_unique<std::atomic<std::int32_t>[]>(slots);
  phi_ptrs_.assign(slots * static_cast<std::size_t>(num_angles_), nullptr);
}

void GroupPipeline::register_program(PatchId p, AngleId a, GroupId g,
                                     const std::vector<double>* phi_local) {
  JSWEEP_CHECK(phi_local != nullptr);
  const std::size_t slot =
      phi_slot(local_index(p), g.value(), a.value());
  phi_ptrs_[slot] = phi_local;
}

void GroupPipeline::clear_programs() {
  std::fill(phi_ptrs_.begin(), phi_ptrs_.end(), nullptr);
}

void GroupPipeline::begin_pass(
    const std::vector<std::vector<double>>& q_base) {
  JSWEEP_CHECK_MSG(static_cast<int>(q_base.size()) == xs_.groups(),
                   "q_base must hold one source per group");
  for (int g = 0; g < xs_.groups(); ++g) {
    JSWEEP_CHECK(static_cast<std::int64_t>(
                     q_base[static_cast<std::size_t>(g)].size()) ==
                 ps_.num_cells());
    q_groups_[static_cast<std::size_t>(g)] =
        q_base[static_cast<std::size_t>(g)];
    std::fill(phi_groups_[static_cast<std::size_t>(g)].begin(),
              phi_groups_[static_cast<std::size_t>(g)].end(), 0.0);
  }
  const std::size_t slots =
      local_patches_.size() * static_cast<std::size_t>(xs_.groups());
  for (std::size_t i = 0; i < slots; ++i)
    remaining_[i].store(num_angles_, std::memory_order_relaxed);

  if (metrics_ != nullptr) {
    metric_passes_->inc();
    pass_start_seconds_ = metrics_->now_seconds();
    emit_seconds_.assign(slots, 0.0);
    if (first_open_ == nullptr)
      first_open_ = std::make_unique<std::atomic<double>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i)
      first_open_[i].store(std::numeric_limits<double>::infinity(),
                           std::memory_order_relaxed);
  }
}

void GroupPipeline::on_program_complete(PatchId p, GroupId g,
                                        const ProgramKey& src,
                                        std::vector<core::Stream>& pending) {
  const std::size_t idx = local_index(p);
  const std::size_t slot =
      idx * static_cast<std::size_t>(xs_.groups()) +
      static_cast<std::size_t>(g.value());
  // acq_rel: siblings' φ writes happen-before the last completer's reads.
  if (remaining_[slot].fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  const auto& cells = ps_.cells(p);
  const int G = xs_.groups();
  const int gv = g.value();

  // 1. Patch p's group-g scalar flux, ascending angle order (the same
  //    per-cell accumulation order as the serial Σ_a w_a ψ_a).
  auto& phi_out = phi_groups_[static_cast<std::size_t>(gv)];
  for (int a = 0; a < num_angles_; ++a) {
    const std::vector<double>* phi_local =
        phi_ptrs_[phi_slot(idx, gv, a)];
    JSWEEP_CHECK_MSG(phi_local != nullptr,
                     "program (" << p << ", angle " << a << ", group " << gv
                                 << ") never registered");
    for (std::size_t v = 0; v < cells.size(); ++v)
      phi_out[static_cast<std::size_t>(cells[v].value())] += (*phi_local)[v];
  }
  if (gv + 1 >= G) return;

  // 2. Group g+1's source on p: base + fresh in-scatter of groups 0..g,
  //    ascending — one shared expression (inscatter_term) keeps this
  //    bitwise-identical to sequential_sweep_pass.
  auto& q = q_groups_[static_cast<std::size_t>(gv + 1)];
  for (int from = 0; from <= gv; ++from) {
    const auto& phi_from = phi_groups_[static_cast<std::size_t>(from)];
    for (std::size_t v = 0; v < cells.size(); ++v) {
      const std::int64_t c = cells[v].value();
      q[static_cast<std::size_t>(c)] += sn::inscatter_term(
          xs_, from, gv + 1, c, phi_from[static_cast<std::size_t>(c)]);
    }
  }

  // 3. Inject group g+1 on this patch: one empty-payload activation stream
  //    per angle program.
  for (int a = 0; a < num_angles_; ++a) {
    core::Stream s;
    s.src = src;
    s.dst = ProgramKey{
        p, TaskTag{sweep_task_tag(AngleId{a}, GroupId{gv + 1}, num_angles_)
                       .value() +
                   lane_tag_offset_}};
    pending.push_back(std::move(s));
  }
  if (metrics_ != nullptr) {
    // slot indexes (p, gv); its successor (p, gv + 1) is the gated target.
    emit_seconds_[slot + 1] = metrics_->now_seconds();
    metric_activations_->inc(num_angles_);
  }
}

void GroupPipeline::set_metrics(metrics::Registry* registry, int rank) {
  metrics_ = registry;
  if (registry == nullptr) return;
  const metrics::Labels by_rank{{"rank", std::to_string(rank)}};
  metric_passes_ = &registry->counter("jsweep_pipeline_passes_total",
                                      "multigroup sweep passes", by_rank);
  metric_activations_ =
      &registry->counter("jsweep_pipeline_activations_total",
                         "activation streams emitted to gated groups",
                         by_rank);
  metric_activation_latency_ = &registry->histogram(
      "jsweep_pipeline_activation_latency_seconds",
      "latency from activation emit to the patch-group gate opening",
      metrics::Registry::exponential_buckets(1e-6, 4.0, 12), by_rank);
  metric_fill_ = &registry->gauge(
      "jsweep_pipeline_fill_seconds",
      "pass time until every group's first gate opened", by_rank);
  metric_group_open_.clear();
  for (int g = 1; g < xs_.groups(); ++g) {
    metrics::Labels labels = by_rank;
    labels.emplace_back("group", std::to_string(g));
    metric_group_open_.push_back(&registry->gauge(
        "jsweep_pipeline_group_first_open_seconds",
        "pass time at which the group's first gate opened", labels));
  }
}

void GroupPipeline::note_gate_opened(PatchId p, GroupId g) {
  if (metrics_ == nullptr) return;
  const std::size_t slot =
      local_index(p) * static_cast<std::size_t>(xs_.groups()) +
      static_cast<std::size_t>(g.value());
  const double now = metrics_->now_seconds();
  double cur = first_open_[slot].load(std::memory_order_relaxed);
  while (now < cur && !first_open_[slot].compare_exchange_weak(
                          cur, now, std::memory_order_relaxed)) {
  }
}

void GroupPipeline::finish_pass_metrics() {
  if (metrics_ == nullptr || first_open_ == nullptr) return;
  const int G = xs_.groups();
  double fill = 0.0;
  for (int g = 1; g < G; ++g) {
    double group_first = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < local_patches_.size(); ++i) {
      const std::size_t slot =
          i * static_cast<std::size_t>(G) + static_cast<std::size_t>(g);
      const double open = first_open_[slot].load(std::memory_order_relaxed);
      const double emit = emit_seconds_[slot];
      if (std::isfinite(open) && emit > 0.0 && open >= emit)
        metric_activation_latency_->observe(open - emit);
      group_first = std::min(group_first, open);
    }
    if (std::isfinite(group_first)) {
      const double rel = group_first - pass_start_seconds_;
      metric_group_open_[static_cast<std::size_t>(g - 1)]->set(rel);
      fill = std::max(fill, rel);
    }
  }
  metric_fill_->set(fill);
}

}  // namespace jsweep::sweep
