#include "sweep/group_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "metrics/metrics.hpp"
#include "support/check.hpp"
#include "sweep/sweep_data.hpp"

namespace jsweep::sweep {

GroupPipeline::GroupPipeline(
    const sn::MultigroupXs& xs, const partition::PatchSet& ps,
    int num_angles, std::vector<const sn::Discretization*> group_discs,
    int set_width, int lane_tag_offset)
    : xs_(xs),
      ps_(ps),
      num_angles_(num_angles),
      discs_(std::move(group_discs)),
      set_width_(set_width),
      lane_tag_offset_(lane_tag_offset) {
  JSWEEP_CHECK(num_angles_ >= 1);
  JSWEEP_CHECK(lane_tag_offset_ >= 0);
  JSWEEP_CHECK_MSG(
      set_width_ >= 1 && set_width_ <= sn::kMaxGroupSetWidth,
      "group-set width " << set_width_ << " outside [1, "
                         << sn::kMaxGroupSetWidth << "]");
  JSWEEP_CHECK_MSG(static_cast<int>(discs_.size()) == xs_.groups(),
                   "need one discretization per group");
  JSWEEP_CHECK_MSG(xs_.cells() == ps_.num_cells(),
                   "multigroup table covers "
                       << xs_.cells() << " cells, mesh has "
                       << ps_.num_cells());
  num_sets_ = (xs_.groups() + set_width_ - 1) / set_width_;
  q_sets_.assign(static_cast<std::size_t>(num_sets_), std::vector<double>());
  sigma_t_sets_.assign(static_cast<std::size_t>(num_sets_),
                       std::vector<double>());
  for (int s = 0; s < num_sets_; ++s) {
    const int base = s * set_width_;
    const int ws = set_width_of(GroupId{s});
    auto& st = sigma_t_sets_[static_cast<std::size_t>(s)];
    st.assign(static_cast<std::size_t>(ps_.num_cells()) *
                  static_cast<std::size_t>(ws),
              0.0);
    for (std::int64_t c = 0; c < ps_.num_cells(); ++c)
      for (int l = 0; l < ws; ++l)
        st[static_cast<std::size_t>(c) * static_cast<std::size_t>(ws) +
           static_cast<std::size_t>(l)] = xs_.sigma_t(base + l, c);
  }
  phi_groups_.assign(
      static_cast<std::size_t>(xs_.groups()),
      std::vector<double>(static_cast<std::size_t>(ps_.num_cells()), 0.0));
}

std::size_t GroupPipeline::local_index(PatchId p) const {
  const std::int32_t idx = local_of_patch_[static_cast<std::size_t>(p.value())];
  JSWEEP_CHECK_MSG(idx >= 0, "patch " << p << " not registered");
  return static_cast<std::size_t>(idx);
}

void GroupPipeline::register_patches(const std::vector<PatchId>& patches) {
  JSWEEP_CHECK_MSG(local_patches_.empty(), "patches already registered");
  local_patches_ = patches;
  local_of_patch_.assign(static_cast<std::size_t>(ps_.num_patches()), -1);
  for (std::size_t i = 0; i < local_patches_.size(); ++i) {
    const PatchId p = local_patches_[i];
    JSWEEP_CHECK(local_of_patch_[static_cast<std::size_t>(p.value())] < 0);
    local_of_patch_[static_cast<std::size_t>(p.value())] =
        static_cast<std::int32_t>(i);
  }
  const std::size_t slots =
      local_patches_.size() * static_cast<std::size_t>(num_sets_);
  remaining_ = std::make_unique<std::atomic<std::int32_t>[]>(slots);
  phi_ptrs_.assign(slots * static_cast<std::size_t>(num_angles_), nullptr);
}

void GroupPipeline::register_program(PatchId p, AngleId a, GroupId set,
                                     const std::vector<double>* phi_local) {
  JSWEEP_CHECK(phi_local != nullptr);
  const std::size_t slot =
      phi_slot(local_index(p), set.value(), a.value());
  phi_ptrs_[slot] = phi_local;
}

void GroupPipeline::clear_programs() {
  std::fill(phi_ptrs_.begin(), phi_ptrs_.end(), nullptr);
}

void GroupPipeline::begin_pass(
    const std::vector<std::vector<double>>& q_base) {
  JSWEEP_CHECK_MSG(static_cast<int>(q_base.size()) == xs_.groups(),
                   "q_base must hold one source per group");
  const std::int64_t n = ps_.num_cells();
  for (int g = 0; g < xs_.groups(); ++g)
    JSWEEP_CHECK(static_cast<std::int64_t>(
                     q_base[static_cast<std::size_t>(g)].size()) == n);
  // Pack the per-group base sources into the lane-strided per-set layout
  // (at W == 1 this is the plain per-group copy).
  for (int s = 0; s < num_sets_; ++s) {
    const int base = s * set_width_;
    const int ws = set_width_of(GroupId{s});
    auto& q = q_sets_[static_cast<std::size_t>(s)];
    q.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(ws), 0.0);
    for (int l = 0; l < ws; ++l) {
      const auto& src = q_base[static_cast<std::size_t>(base + l)];
      for (std::int64_t c = 0; c < n; ++c)
        q[static_cast<std::size_t>(c) * static_cast<std::size_t>(ws) +
          static_cast<std::size_t>(l)] = src[static_cast<std::size_t>(c)];
    }
  }
  for (auto& phi : phi_groups_) std::fill(phi.begin(), phi.end(), 0.0);
  const std::size_t slots =
      local_patches_.size() * static_cast<std::size_t>(num_sets_);
  for (std::size_t i = 0; i < slots; ++i)
    remaining_[i].store(num_angles_, std::memory_order_relaxed);

  if (metrics_ != nullptr) {
    metric_passes_->inc();
    pass_start_seconds_ = metrics_->now_seconds();
    emit_seconds_.assign(slots, 0.0);
    if (first_open_ == nullptr)
      first_open_ = std::make_unique<std::atomic<double>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i)
      first_open_[i].store(std::numeric_limits<double>::infinity(),
                           std::memory_order_relaxed);
  }
}

void GroupPipeline::on_program_complete(PatchId p, GroupId set,
                                        const ProgramKey& src,
                                        std::vector<core::Stream>& pending) {
  const std::size_t idx = local_index(p);
  const std::size_t slot =
      idx * static_cast<std::size_t>(num_sets_) +
      static_cast<std::size_t>(set.value());
  // acq_rel: siblings' φ writes happen-before the last completer's reads.
  if (remaining_[slot].fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  const auto& cells = ps_.cells(p);
  const int sv = set.value();
  const int base = sv * set_width_;
  const int ws = set_width_of(set);

  // 1. Patch p's per-group scalar fluxes for the set's lanes, ascending
  //    angle order (per group, the same per-cell accumulation order as the
  //    serial Σ_a w_a ψ_a).
  for (int a = 0; a < num_angles_; ++a) {
    const std::vector<double>* phi_local = phi_ptrs_[phi_slot(idx, sv, a)];
    JSWEEP_CHECK_MSG(phi_local != nullptr,
                     "program (" << p << ", angle " << a << ", set " << sv
                                 << ") never registered");
    for (std::size_t v = 0; v < cells.size(); ++v) {
      const auto c = static_cast<std::size_t>(cells[v].value());
      for (int l = 0; l < ws; ++l)
        phi_groups_[static_cast<std::size_t>(base + l)][c] +=
            (*phi_local)[v * static_cast<std::size_t>(ws) +
                         static_cast<std::size_t>(l)];
    }
  }
  // 1b. Source-tail overlap: the NEXT pass's base source for this set's
  //     own groups on p's cells — emission density plus the lagged
  //     within-set downscatter, both functions of the φ accumulated above.
  //     Assignment-then-accumulate per cell keeps lag-loop repeats
  //     idempotent (the last engine run's φ — the committed one — wins).
  //     The per-cell order (emission, then `from` ascending) matches the
  //     serial formation in solve_multigroup_sweeps bitwise.
  if (overlap_) {
    for (int l = 0; l < ws; ++l) {
      const int g = base + l;
      auto& nq = next_q_[static_cast<std::size_t>(g)];
      const auto& phi_g = phi_groups_[static_cast<std::size_t>(g)];
      for (std::size_t v = 0; v < cells.size(); ++v) {
        const std::int64_t c = cells[v].value();
        const auto ci = static_cast<std::size_t>(c);
        nq[ci] = (xs_.sigma_s(g, g, c) * phi_g[ci] + xs_.source(g, c)) *
                 sn::kInvFourPi;
        for (int from = base; from < g; ++from)
          nq[ci] += sn::inscatter_term(
              xs_, from, g, c,
              phi_groups_[static_cast<std::size_t>(from)][ci]);
      }
    }
  }
  if (sv + 1 >= num_sets_) return;

  // 2. Set s+1's sources on p: base part (packed at begin_pass) + fresh
  //    in-scatter of every group below the next set's base, ascending —
  //    one shared expression (inscatter_term) keeps this bitwise-identical
  //    to the width-aware sequential_sweep_pass.
  const int next_base = (sv + 1) * set_width_;
  const int next_ws = set_width_of(GroupId{sv + 1});
  auto& q = q_sets_[static_cast<std::size_t>(sv + 1)];
  for (int t = 0; t < next_ws; ++t) {
    const int to = next_base + t;
    for (int from = 0; from < next_base; ++from) {
      const auto& phi_from = phi_groups_[static_cast<std::size_t>(from)];
      for (std::size_t v = 0; v < cells.size(); ++v) {
        const std::int64_t c = cells[v].value();
        q[static_cast<std::size_t>(c) * static_cast<std::size_t>(next_ws) +
          static_cast<std::size_t>(t)] += sn::inscatter_term(
            xs_, from, to, c, phi_from[static_cast<std::size_t>(c)]);
      }
    }
  }

  // 3. Inject set s+1 on this patch: one empty-payload activation stream
  //    per angle program.
  for (int a = 0; a < num_angles_; ++a) {
    core::Stream s;
    s.src = src;
    s.dst = ProgramKey{
        p, TaskTag{sweep_task_tag(AngleId{a}, GroupId{sv + 1}, num_angles_)
                       .value() +
                   lane_tag_offset_}};
    pending.push_back(std::move(s));
  }
  if (metrics_ != nullptr) {
    // slot indexes (p, sv); its successor (p, sv + 1) is the gated target.
    emit_seconds_[slot + 1] = metrics_->now_seconds();
    metric_activations_->inc(num_angles_);
  }
}

void GroupPipeline::enable_source_overlap() {
  if (overlap_) return;
  overlap_ = true;
  next_q_.assign(
      static_cast<std::size_t>(xs_.groups()),
      std::vector<double>(static_cast<std::size_t>(ps_.num_cells()), 0.0));
}

void GroupPipeline::set_metrics(metrics::Registry* registry, int rank) {
  metrics_ = registry;
  if (registry == nullptr) return;
  const metrics::Labels by_rank{{"rank", std::to_string(rank)},
                                {"set_width", std::to_string(set_width_)}};
  metric_passes_ = &registry->counter("jsweep_pipeline_passes_total",
                                      "multigroup sweep passes", by_rank);
  metric_activations_ =
      &registry->counter("jsweep_pipeline_activations_total",
                         "activation streams emitted to gated group sets",
                         by_rank);
  metric_activation_latency_ = &registry->histogram(
      "jsweep_pipeline_activation_latency_seconds",
      "latency from activation emit to the patch-set gate opening",
      metrics::Registry::exponential_buckets(1e-6, 4.0, 12), by_rank);
  metric_fill_ = &registry->gauge(
      "jsweep_pipeline_fill_seconds",
      "pass time until every group set's first gate opened", by_rank);
  metric_group_open_.clear();
  for (int s = 1; s < num_sets_; ++s) {
    metrics::Labels labels = by_rank;
    // Sets are labelled by their base group so dashboards keep a stable
    // meaning across widths (set s starts at group s*W).
    labels.emplace_back("group", std::to_string(s * set_width_));
    metric_group_open_.push_back(&registry->gauge(
        "jsweep_pipeline_group_first_open_seconds",
        "pass time at which the group set's first gate opened", labels));
  }
}

void GroupPipeline::note_gate_opened(PatchId p, GroupId set) {
  if (metrics_ == nullptr) return;
  const std::size_t slot =
      local_index(p) * static_cast<std::size_t>(num_sets_) +
      static_cast<std::size_t>(set.value());
  const double now = metrics_->now_seconds();
  double cur = first_open_[slot].load(std::memory_order_relaxed);
  while (now < cur && !first_open_[slot].compare_exchange_weak(
                          cur, now, std::memory_order_relaxed)) {
  }
}

void GroupPipeline::finish_pass_metrics() {
  if (metrics_ == nullptr || first_open_ == nullptr) return;
  double fill = 0.0;
  for (int s = 1; s < num_sets_; ++s) {
    double set_first = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < local_patches_.size(); ++i) {
      const std::size_t slot = i * static_cast<std::size_t>(num_sets_) +
                               static_cast<std::size_t>(s);
      const double open = first_open_[slot].load(std::memory_order_relaxed);
      const double emit = emit_seconds_[slot];
      if (std::isfinite(open) && emit > 0.0 && open >= emit)
        metric_activation_latency_->observe(open - emit);
      set_first = std::min(set_first, open);
    }
    if (std::isfinite(set_first)) {
      const double rel = set_first - pass_start_seconds_;
      metric_group_open_[static_cast<std::size_t>(s - 1)]->set(rel);
      fill = std::max(fill, rel);
    }
  }
  metric_fill_->set(fill);
}

}  // namespace jsweep::sweep
