#include "sweep/session.hpp"

#include <algorithm>
#include <string>

#include "metrics/metrics.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace jsweep::sweep {

SweepSession::SweepSession(comm::Context& ctx,
                           std::shared_ptr<const SweepPlan> plan,
                           SolveConfig config)
    : SweepSession(ctx, std::move(plan), config, nullptr, 0) {}

SweepSession::SweepSession(comm::Context& ctx,
                           std::shared_ptr<const SweepPlan> plan,
                           SolveConfig config, core::Engine& host, int lane)
    : SweepSession(ctx, std::move(plan), config, &host, lane) {}

SweepSession::SweepSession(comm::Context& ctx,
                           std::shared_ptr<const SweepPlan> plan,
                           SolveConfig config, core::Engine* host, int lane)
    : ctx_(ctx),
      plan_(std::move(plan)),
      config_(config),
      host_(host),
      lane_(lane) {
  JSWEEP_CHECK_MSG(plan_ != nullptr, "session needs a plan");
  JSWEEP_CHECK_MSG(
      ctx_.size() == plan_->built_size() && ctx_.rank() == plan_->built_rank(),
      "session on rank " << ctx_.rank() << " of " << ctx_.size()
                         << " ranks, but the plan was built on rank "
                         << plan_->built_rank() << " of "
                         << plan_->built_size()
                         << " — a plan binds to the cluster shape it was "
                            "built for");
  JSWEEP_CHECK(lane_ >= 0);
  JSWEEP_CHECK_MSG(host_ == nullptr || config_.engine == EngineKind::DataDriven,
                   "service-attached sessions run on the host data-driven "
                   "engine; EngineKind::Bsp is standalone-only");
  JSWEEP_CHECK_MSG(host_ == nullptr || !config_.use_coarsened_graph,
                   "coarsened replay is unavailable in service-attached "
                   "mode");

  WallTimer timer;
  const PlanConfig& pc = plan_->config();
  shared_.disc = &plan_->disc();
  shared_.patches = &plan_->patches();
  shared_.quad = &plan_->quadrature();

  // Per-session lagged values: the plan's slot layout (identical store
  // slots to the ones its task data was interned against), vacuum values.
  lagged_store_ = plan_->lagged_template();
  if (!lagged_store_.empty()) shared_.lagged = &lagged_store_;
  shared_.flux_pool = &flux_pool_;

  if (pc.multigroup != nullptr && pc.group_pipelining) {
    std::vector<const sn::Discretization*> discs;
    for (int g = 0; g < plan_->num_groups(); ++g)
      discs.push_back(plan_->group_disc(g));
    pipeline_ = std::make_unique<GroupPipeline>(
        *pc.multigroup, plan_->patches(), plan_->num_angles(),
        std::move(discs), pc.group_set_width,
        lane_ * plan_->tags_per_request());
    pipeline_->register_patches(plan_->local_patches());
    pipeline_->set_metrics(config_.metrics.registry, ctx_.rank().value());
    if (config_.overlap_source_tail) pipeline_->enable_source_overlap();
    shared_.pipeline = pipeline_.get();
  }

  if (metrics::Registry* reg = config_.metrics.registry; reg != nullptr) {
    const metrics::Labels labels{{"rank", std::to_string(ctx_.rank().value())},
                                 {"lane", std::to_string(lane_)}};
    metric_sweeps_ = &reg->counter("jsweep_session_sweeps_total",
                                   "transport sweeps executed", labels);
    metric_sweep_seconds_ = &reg->histogram(
        "jsweep_session_sweep_seconds", "wall time per sweep or pass",
        metrics::Registry::exponential_buckets(1e-4, 4.0, 10), labels);
    metric_lag_residual_ = &reg->gauge(
        "jsweep_session_lag_residual",
        "max lagged-face change at the last commit", labels);
    metric_lag_sweeps_ = &reg->gauge(
        "jsweep_session_lag_sweeps",
        "engine runs of the last sweep (cycle-lag convergence)", labels);
    metric_idle_fraction_ = &reg->gauge(
        "jsweep_session_idle_fraction",
        "worker idle share of the last engine run", labels);
  }

  if (!pc.patch_angle_parallelism) {
    patch_mutex_.resize(
        static_cast<std::size_t>(plan_->patches().num_patches()));
    for (const auto p : plan_->local_patches())
      patch_mutex_[static_cast<std::size_t>(p.value())] =
          std::make_unique<std::mutex>();
  }

  stats_.groups = plan_->num_groups();
  stats_.cycles = plan_->cycle_stats();
  stats_.cyclic_angles = plan_->cyclic_angles();

  install_programs(config_.use_coarsened_graph);
  stats_.build_seconds = plan_->build_seconds() + timer.seconds();
}

SweepSession::~SweepSession() = default;

void SweepSession::apply_scheduling(core::EngineConfig& ec) const {
  // Resolution order: explicit SolveConfig > plan tuning (the auto-tuner's
  // calibration) > the engine default. The JSWEEP_WORK_STEALING /
  // JSWEEP_STEAL_SPIN environment overrides are applied by the engine
  // itself and outrank all three.
  const auto& tuning = plan_->config().tuning;
  if (config_.work_stealing >= 0) {
    ec.work_stealing = config_.work_stealing != 0;
  } else if (tuning.has_value()) {
    ec.work_stealing = tuning->work_stealing;
  }
  if (config_.steal_spin_rounds >= 0) {
    ec.steal_spin_rounds = config_.steal_spin_rounds;
  } else if (tuning.has_value()) {
    ec.steal_spin_rounds = tuning->steal_spin_rounds;
  }
  ec.scheduler_seed = config_.scheduler_seed;
}

void SweepSession::install_programs(bool record_clusters) {
  programs_.clear();
  keys_.clear();
  core::Engine* target = host_;
  if (host_ == nullptr) {
    if (config_.engine == EngineKind::DataDriven) {
      core::EngineConfig ec;
      ec.num_workers = config_.num_workers;
      ec.termination = core::TerminationMode::KnownWorkload;
      ec.recorder = config_.trace.recorder;
      ec.metrics = config_.metrics.registry;
      apply_scheduling(ec);
      engine_ = std::make_unique<core::Engine>(ctx_, ec);
      target = engine_.get();
      shared_.stream_buffers = &engine_->buffer_pool();
    } else {
      core::BspConfig bc;
      bc.num_threads = std::max(0, config_.num_workers - 1);
      bc.recorder = config_.trace.recorder;
      bc.metrics = config_.metrics.registry;
      bsp_ = std::make_unique<core::BspEngine>(ctx_, bc);
      shared_.stream_buffers = &bsp_->buffer_pool();
    }
  } else {
    shared_.stream_buffers = &host_->buffer_pool();
  }

  if (pipeline_ != nullptr) pipeline_->clear_programs();
  const int lane_offset = lane_ * plan_->tags_per_request();
  for (const PlanProgram& slot : plan_->programs()) {
    const SweepTaskData& data = plan_->task_data(slot.data_index);
    SweepProgramOptions opts;
    opts.cluster_grain = plan_->config().cluster_grain;
    opts.record_clusters = record_clusters;
    opts.group = slot.group;
    opts.lane_tag_offset = lane_offset;
    if (!plan_->config().patch_angle_parallelism)
      opts.patch_serializer =
          patch_mutex_[static_cast<std::size_t>(data.patch().value())].get();
    auto prog = std::make_unique<SweepPatchProgram>(data, shared_, opts);
    programs_.push_back(prog.get());
    keys_.push_back(prog->key());
    if (pipeline_ != nullptr)
      pipeline_->register_program(data.patch(), data.angle(), slot.group,
                                  &prog->phi_local());
    // Groups > 0 wait for their activation stream (gate); everything else
    // is runnable from the start.
    const bool initially_active = slot.group == GroupId{0};
    if (target != nullptr) {
      target->add_program(std::move(prog), slot.priority, initially_active);
    } else {
      bsp_->add_program(std::move(prog), initially_active);
    }
  }
  // All lanes of one service host share the same plan, hence the same
  // route table — re-setting it per session is idempotent.
  if (target != nullptr) {
    target->set_routes(plan_->patch_owner());
  } else {
    bsp_->set_routes(plan_->patch_owner());
  }
}

void SweepSession::activate_coarsened() {
  WallTimer timer;
  coarse_data_.clear();
  coarse_programs_.clear();
  const auto& slots = plan_->programs();
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    // Each program (not each task data: group programs of one (patch,
    // angle) record their own executions) yields one coarsened replay.
    coarse_data_.push_back(std::make_unique<CoarsenedSweepData>(
        plan_->task_data(slots[i].data_index),
        programs_[i]->recorded_clusters(),
        std::max<std::int32_t>(1, programs_[i]->recorded_num_clusters())));
  }

  // Fresh engine holding the coarsened programs; priorities carry over.
  core::EngineConfig ec;
  ec.num_workers = config_.num_workers;
  ec.termination = core::TerminationMode::KnownWorkload;
  ec.recorder = config_.trace.recorder;
  ec.metrics = config_.metrics.registry;
  apply_scheduling(ec);
  auto coarse_engine = std::make_unique<core::Engine>(ctx_, ec);
  if (pipeline_ != nullptr) pipeline_->clear_programs();
  for (std::size_t i = 0; i < coarse_data_.size(); ++i) {
    auto prog = std::make_unique<CoarsenedSweepProgram>(
        *coarse_data_[i], shared_, slots[i].group);
    coarse_programs_.push_back(prog.get());
    if (pipeline_ != nullptr)
      pipeline_->register_program(coarse_data_[i]->fine().patch(),
                                  coarse_data_[i]->fine().angle(),
                                  slots[i].group, &prog->phi_local());
    coarse_engine->add_program(std::move(prog), slots[i].priority,
                               /*initially_active=*/slots[i].group ==
                                   GroupId{0});
  }
  coarse_engine->set_routes(plan_->patch_owner());
  engine_ = std::move(coarse_engine);
  shared_.stream_buffers = &engine_->buffer_pool();
  programs_.clear();  // fine programs are gone with the old engine
  coarsened_active_ = true;
  stats_.coarsen_seconds += timer.seconds();
}

void SweepSession::collect_phi(std::vector<double>& phi_global) const {
  // Fixed program order + rank-ordered allreduce → bitwise deterministic
  // results regardless of worker count or scheduling.
  const auto accumulate = [&](const auto& progs) {
    for (const auto* prog : progs) {
      const auto& cells = plan_->patches().cells(prog->key().patch);
      const auto& phi = prog->phi_local();
      for (std::size_t v = 0; v < phi.size(); ++v)
        phi_global[static_cast<std::size_t>(cells[v].value())] += phi[v];
    }
  };
  if (coarsened_active_) {
    accumulate(coarse_programs_);
  } else {
    accumulate(programs_);
  }
}

void SweepSession::run_engine_once() {
  if (engine_) {
    engine_->run();
    stats_.engine = engine_->stats();
    const double busy = stats_.engine.worker_busy_seconds;
    const double idle = stats_.engine.worker_idle_seconds;
    stats_.last_idle_fraction =
        busy + idle > 0.0 ? idle / (busy + idle) : 0.0;
  } else {
    bsp_->run();
    stats_.bsp = bsp_->stats();
    stats_.last_idle_fraction = 0.0;  // BSP stats carry no busy/idle split
  }
  if (metric_idle_fraction_ != nullptr)
    metric_idle_fraction_->set(stats_.last_idle_fraction);
}

void SweepSession::run_engines_once() {
  // On a cut (cyclic) mesh, optionally iterate the engine run until the
  // lagged faces stop changing, so one sweep() approximates the true
  // (cycle-resolved) transport application. Every run must commit — even
  // the last — so the next sweep() starts from the freshest iterates.
  stats_.last_lag_sweeps = 0;
  for (;;) {
    run_engine_once();
    ++stats_.last_lag_sweeps;
    if (lagged_store_.empty()) break;
    stats_.last_lag_residual = lagged_store_.commit(ctx_);
    if (stats_.last_lag_sweeps >= std::max(1, config_.max_lag_sweeps)) break;
    if (stats_.last_lag_residual <= config_.lag_tolerance) break;
  }
}

std::vector<double> SweepSession::sweep(
    const std::vector<double>& q_per_ster) {
  JSWEEP_CHECK_MSG(!attached(),
                   "attached sessions are driven by the SweepService "
                   "(begin_sweep/finish_sweep), not sweep()");
  JSWEEP_CHECK_MSG(pipeline_ == nullptr,
                   "this plan was built group-pipelined; use "
                   "solve_multigroup() instead of sweep()");
  JSWEEP_CHECK(static_cast<std::int64_t>(q_per_ster.size()) ==
               plan_->patches().num_cells());
  WallTimer timer;
  q_current_ = q_per_ster;
  shared_.q_per_ster = &q_current_;

  run_engines_once();

  std::vector<double> phi(
      static_cast<std::size_t>(plan_->patches().num_cells()), 0.0);
  collect_phi(phi);
  ctx_.allreduce_sum(phi);

  // After the first recorded sweep, switch to the coarsened graph.
  if (config_.use_coarsened_graph && !coarsened_active_ && engine_)
    activate_coarsened();

  ++stats_.sweeps;
  stats_.last_sweep_seconds = timer.seconds();
  if (metric_sweeps_ != nullptr) {
    metric_sweeps_->inc();
    metric_sweep_seconds_->observe(stats_.last_sweep_seconds);
    metric_lag_sweeps_->set(stats_.last_lag_sweeps);
    metric_lag_residual_->set(stats_.last_lag_residual);
  }
  return phi;
}

void SweepSession::set_kernel(const sn::Discretization* disc) {
  JSWEEP_CHECK_MSG(plan_->config().multigroup == nullptr,
                   "per-request kernels apply to single-group plans only "
                   "(multigroup plans own one kernel per group)");
  if (disc == nullptr) {
    shared_.disc = &plan_->disc();
    return;
  }
  JSWEEP_CHECK_MSG(disc->num_cells() == plan_->patches().num_cells(),
                   "request kernel covers " << disc->num_cells()
                                            << " cells, the plan "
                                            << plan_->patches().num_cells()
                                            << " — per-request kernels must "
                                               "discretize the plan's mesh");
  disc->xs().validate();
  shared_.disc = disc;
}

void SweepSession::begin_sweep(const std::vector<double>& q_per_ster) {
  JSWEEP_CHECK_MSG(pipeline_ == nullptr,
                   "the lane sweep protocol is single-group; multigroup "
                   "plans solve standalone via solve_multigroup()");
  JSWEEP_CHECK(static_cast<std::int64_t>(q_per_ster.size()) ==
               plan_->patches().num_cells());
  q_current_ = q_per_ster;
  shared_.q_per_ster = &q_current_;
}

double SweepSession::commit_lagged() {
  if (lagged_store_.empty()) return 0.0;
  stats_.last_lag_residual = lagged_store_.commit(ctx_);
  if (metric_lag_residual_ != nullptr)
    metric_lag_residual_->set(stats_.last_lag_residual);
  return stats_.last_lag_residual;
}

std::vector<double> SweepSession::finish_sweep() {
  std::vector<double> phi(
      static_cast<std::size_t>(plan_->patches().num_cells()), 0.0);
  collect_phi(phi);
  ctx_.allreduce_sum(phi);
  if (host_ != nullptr) stats_.engine = host_->stats();
  ++stats_.sweeps;
  if (metric_sweeps_ != nullptr) metric_sweeps_->inc();
  return phi;
}

std::vector<double> SweepSession::sweep_group(
    GroupId g, const std::vector<double>& q_per_ster) {
  JSWEEP_CHECK_MSG(plan_->config().multigroup != nullptr,
                   "sweep_group() needs a multigroup plan "
                   "(PlanConfig::multigroup)");
  JSWEEP_CHECK_MSG(pipeline_ == nullptr,
                   "group-pipelined plans sweep all groups per engine "
                   "run; use solve_multigroup()");
  JSWEEP_CHECK_MSG(
      lagged_store_.empty() || plan_->num_groups() == 1,
      "standalone per-group sweeps on a cut (cyclic) mesh would commit "
      "lagged fluxes per group; use solve_multigroup()");
  JSWEEP_CHECK(g.value() >= 0 && g.value() < plan_->num_groups());
  // Swap in group g's kernel; the task system (graphs, slots, programs) is
  // group-independent and shared by every group.
  const sn::Discretization* base = shared_.disc;
  shared_.disc = plan_->group_disc(g.value());
  shared_.current_group = g;
  std::vector<double> phi = sweep(q_per_ster);
  shared_.current_group = GroupId{0};
  shared_.disc = base;
  return phi;
}

void SweepSession::multigroup_pass(
    const std::vector<std::vector<double>>& q_base,
    std::vector<std::vector<double>>& phi) {
  WallTimer timer;
  const sn::MultigroupXs& xs = *plan_->config().multigroup;
  const int G = xs.groups();
  const std::int64_t n = plan_->patches().num_cells();

  // Cyclic meshes: the lag loop repeats the WHOLE pass, committing the
  // lagged store once per pass over all groups — identical protocol in
  // pipelined and barriered mode (and the reason standalone sweep_group()
  // refuses cut multigroup meshes). Pipelined gates re-arm per repeat via
  // begin_pass.
  stats_.last_lag_sweeps = 0;
  for (;;) {
    if (pipeline_ != nullptr) {
      pipeline_->begin_pass(q_base);
      run_engine_once();
      pipeline_->finish_pass_metrics();
    } else {
      // Group-barriered baseline: one engine run (global barrier) per
      // group, ascending, with the same fresh in-scatter accumulation the
      // serial reference and the pipeline use (inscatter_term). At group
      // set width W > 1 the fresh bound drops to the set base — within-set
      // downscatter is already in q_base, lagged one pass by the solve —
      // so barriered and pipelined passes stay bitwise comparable.
      const int W = plan_->config().group_set_width;
      const sn::Discretization* base_disc = shared_.disc;
      for (int g = 0; g < G; ++g) {
        q_current_ = q_base[static_cast<std::size_t>(g)];
        const int fresh_bound = sn::group_set_base(g, W);
        for (int from = 0; from < fresh_bound; ++from) {
          const auto& pf = phi[static_cast<std::size_t>(from)];
          for (std::int64_t c = 0; c < n; ++c)
            q_current_[static_cast<std::size_t>(c)] += sn::inscatter_term(
                xs, from, g, c, pf[static_cast<std::size_t>(c)]);
        }
        shared_.q_per_ster = &q_current_;
        shared_.disc = plan_->group_disc(g);
        shared_.current_group = GroupId{g};
        run_engine_once();
        auto& phi_g = phi[static_cast<std::size_t>(g)];
        phi_g.assign(static_cast<std::size_t>(n), 0.0);
        collect_phi(phi_g);
        ctx_.allreduce_sum(phi_g);
      }
      shared_.current_group = GroupId{0};
      shared_.disc = base_disc;
    }
    ++stats_.last_lag_sweeps;
    if (lagged_store_.empty()) break;
    stats_.last_lag_residual = lagged_store_.commit(ctx_);
    if (stats_.last_lag_sweeps >= std::max(1, config_.max_lag_sweeps)) break;
    if (stats_.last_lag_residual <= config_.lag_tolerance) break;
  }
  if (pipeline_ != nullptr) {
    for (int g = 0; g < G; ++g) {
      phi[static_cast<std::size_t>(g)] = pipeline_->phi_group(GroupId{g});
      ctx_.allreduce_sum(phi[static_cast<std::size_t>(g)]);
    }
    // The gate completions of this pass precomputed the next pass's base
    // sources (source-tail overlap) — arm the q_base provider for the
    // solver's next formation step.
    next_q_armed_ = pipeline_->source_overlap_enabled();
  }
  // After the first recorded pass, replay on the coarsened graph.
  if (config_.use_coarsened_graph && !coarsened_active_ && engine_)
    activate_coarsened();
  ++stats_.multigroup_passes;
  stats_.sweeps += G;
  stats_.last_sweep_seconds = timer.seconds();
  if (metric_sweeps_ != nullptr) {
    metric_sweeps_->inc(G);
    metric_sweep_seconds_->observe(stats_.last_sweep_seconds);
    metric_lag_sweeps_->set(stats_.last_lag_sweeps);
    metric_lag_residual_->set(stats_.last_lag_residual);
  }
}

sn::MultigroupResult SweepSession::solve_multigroup(
    const sn::MultigroupOptions& options) {
  JSWEEP_CHECK_MSG(!attached(),
                   "attached sessions are driven by the SweepService; "
                   "multigroup solves run standalone");
  JSWEEP_CHECK_MSG(plan_->config().multigroup != nullptr,
                   "solve_multigroup() needs a multigroup plan "
                   "(PlanConfig::multigroup)");
  // The block scheme must match the plan's program structure: the solve's
  // group-set width is the plan's (callers leave the option at its default;
  // anything else would desynchronize the fresh/lagged in-scatter split).
  JSWEEP_CHECK_MSG(
      options.group_set_width == 1 ||
          options.group_set_width == plan_->config().group_set_width,
      "MultigroupOptions::group_set_width = "
          << options.group_set_width << " but the plan was built with "
          << plan_->config().group_set_width
          << " — the session derives the width from its plan");
  sn::MultigroupOptions opts = options;
  opts.group_set_width = plan_->config().group_set_width;
  // Source-tail overlap: serve precomputed q_base parts once a pipelined
  // pass has run (the first pass of a solve always forms serially).
  next_q_armed_ = false;
  if (pipeline_ != nullptr && pipeline_->source_overlap_enabled() &&
      options.q_base_provider == nullptr) {
    opts.q_base_provider = [this](int g, std::vector<double>& q) {
      if (!next_q_armed_) return false;
      q = pipeline_->next_pass_q(GroupId{g});
      return true;
    };
  }
  return sn::solve_multigroup_sweeps(
      *plan_->config().multigroup,
      [this](const std::vector<std::vector<double>>& q_base,
             std::vector<std::vector<double>>& phi) {
        multigroup_pass(q_base, phi);
      },
      opts);
}

}  // namespace jsweep::sweep
