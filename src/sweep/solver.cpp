#include "sweep/solver.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace jsweep::sweep {

std::string to_string(CyclePolicy p) {
  switch (p) {
    case CyclePolicy::Assume: return "assume";
    case CyclePolicy::Error: return "error";
    case CyclePolicy::Lag: return "lag";
  }
  return "?";
}

CyclePolicy cycle_policy_from_string(const std::string& name) {
  if (name == "assume") return CyclePolicy::Assume;
  if (name == "error") return CyclePolicy::Error;
  if (name == "lag") return CyclePolicy::Lag;
  JSWEEP_CHECK_MSG(false, "unknown cycle policy '" << name
                                                   << "' (assume|error|lag)");
  return CyclePolicy::Error;
}

SweepSolver::SweepSolver(comm::Context& ctx, const mesh::StructuredMesh& m,
                         const partition::PatchSet& ps,
                         std::vector<RankId> patch_owner,
                         const sn::StructuredDD& disc,
                         const sn::Quadrature& quad, SolverConfig config)
    : ctx_(ctx),
      ps_(ps),
      owner_(std::move(patch_owner)),
      quad_(quad),
      config_(config) {
  shared_.disc = &disc;
  shared_.patches = &ps_;
  shared_.quad = &quad_;
  build(
      [&](PatchId p, const mesh::Vec3& omega, AngleId a,
          const graph::CycleCut* cut) {
        return graph::build_patch_task_graph(m, ps_, p, omega, a, cut);
      },
      [&](const mesh::Vec3& omega) {
        return graph::build_patch_digraph(m, ps_, omega);
      },
      [&](const mesh::Vec3& omega) {
        return graph::compute_cycle_cut(m, omega);
      });
}

SweepSolver::SweepSolver(comm::Context& ctx, const mesh::TetMesh& m,
                         const partition::PatchSet& ps,
                         std::vector<RankId> patch_owner,
                         const sn::TetStep& disc, const sn::Quadrature& quad,
                         SolverConfig config)
    : ctx_(ctx),
      ps_(ps),
      owner_(std::move(patch_owner)),
      quad_(quad),
      config_(config) {
  shared_.disc = &disc;
  shared_.patches = &ps_;
  shared_.quad = &quad_;
  build(
      [&](PatchId p, const mesh::Vec3& omega, AngleId a,
          const graph::CycleCut* cut) {
        return graph::build_patch_task_graph(m, ps_, p, omega, a, cut);
      },
      [&](const mesh::Vec3& omega) {
        return graph::build_patch_digraph(m, ps_, omega);
      },
      [&](const mesh::Vec3& omega) {
        return graph::compute_cycle_cut(m, omega);
      });
}

SweepSolver::~SweepSolver() = default;

void SweepSolver::build(
    const std::function<graph::PatchTaskGraph(
        PatchId, const mesh::Vec3&, AngleId, const graph::CycleCut*)>&
        task_builder,
    const std::function<graph::Digraph(const mesh::Vec3&)>&
        patch_digraph_builder,
    const std::function<graph::CycleCut(const mesh::Vec3&)>& cut_builder) {
  JSWEEP_CHECK_MSG(static_cast<int>(owner_.size()) == ps_.num_patches(),
                   "patch owner table size mismatch");
  WallTimer timer;

  std::vector<PatchId> local_patches;
  for (int p = 0; p < ps_.num_patches(); ++p)
    if (owner_[static_cast<std::size_t>(p)] == ctx_.rank())
      local_patches.push_back(PatchId{p});

  if (!config_.patch_angle_parallelism) {
    patch_mutex_.resize(static_cast<std::size_t>(ps_.num_patches()));
    for (const auto p : local_patches)
      patch_mutex_[static_cast<std::size_t>(p.value())] =
          std::make_unique<std::mutex>();
  }

  // Outer loop over angles so all programs of one angle share its
  // patch-priority vector; programs are stored angle-major, a fixed order
  // reused by the deterministic φ collection.
  for (int a = 0; a < quad_.num_angles(); ++a) {
    const mesh::Vec3 omega = quad_.angle(a).dir;
    // Cycle handling: detect (unless told to assume acyclicity), and either
    // refuse with diagnostics or cut + lag the feedback faces. The cut is a
    // deterministic function of the mesh and direction, so every rank
    // computes the identical set and registers identical store slots.
    graph::CycleCut cut;
    if (config_.cycle_policy != CyclePolicy::Assume) cut = cut_builder(omega);
    if (!cut.empty()) {
      JSWEEP_CHECK_MSG(
          config_.cycle_policy == CyclePolicy::Lag,
          "sweep direction "
              << a << " (" << omega << ") has cyclic dependencies: "
              << cut.stats.cyclic_components << " SCC(s), largest "
              << cut.stats.largest_component << " cells, "
              << cut.stats.edges_cut
              << " feedback edge(s); set SolverConfig::cycle_policy = "
                 "CyclePolicy::Lag to cut and lag them");
      stats_.cycles.merge(cut.stats);
      ++stats_.cyclic_angles;
      std::vector<std::int64_t> faces(cut.lagged_faces.begin(),
                                      cut.lagged_faces.end());
      std::sort(faces.begin(), faces.end());
      for (const auto face : faces) lagged_store_.add_slot(a, face);
    }
    const graph::Digraph patch_graph = patch_digraph_builder(omega);
    const std::vector<double> pprio =
        graph::patch_priorities(config_.patch_priority, patch_graph);
    // Angle priority: earlier (lower-id) angles strictly dominate so
    // same-angle programs chain through the mesh back-to-back (Sec. V-D).
    const double angle_prior = -static_cast<double>(a);
    for (const auto p : local_patches) {
      task_data_.push_back(std::make_unique<SweepTaskData>(
          task_builder(p, omega, AngleId{a}, cut.empty() ? nullptr : &cut),
          config_.vertex_priority, *shared_.disc, ps_, quad_.angle(a),
          lagged_store_.empty() ? nullptr : &lagged_store_));
      program_priority_.push_back(graph::combined_priority(
          angle_prior, pprio[static_cast<std::size_t>(p.value())]));
    }
  }
  if (!lagged_store_.empty()) shared_.lagged = &lagged_store_;
  shared_.flux_pool = &flux_pool_;

  install_programs(config_.use_coarsened_graph);
  stats_.build_seconds = timer.seconds();
}

void SweepSolver::install_programs(bool record_clusters) {
  programs_.clear();
  if (config_.engine == EngineKind::DataDriven) {
    core::EngineConfig ec;
    ec.num_workers = config_.num_workers;
    ec.termination = core::TerminationMode::KnownWorkload;
    ec.recorder = config_.trace.recorder;
    engine_ = std::make_unique<core::Engine>(ctx_, ec);
    shared_.stream_buffers = &engine_->buffer_pool();
  } else {
    core::BspConfig bc;
    bc.num_threads = std::max(0, config_.num_workers - 1);
    bc.recorder = config_.trace.recorder;
    bsp_ = std::make_unique<core::BspEngine>(ctx_, bc);
    shared_.stream_buffers = &bsp_->buffer_pool();
  }

  for (std::size_t i = 0; i < task_data_.size(); ++i) {
    SweepProgramOptions opts;
    opts.cluster_grain = config_.cluster_grain;
    opts.record_clusters = record_clusters;
    if (!config_.patch_angle_parallelism)
      opts.patch_serializer =
          patch_mutex_[static_cast<std::size_t>(
                           task_data_[i]->patch().value())]
              .get();
    auto prog = std::make_unique<SweepPatchProgram>(*task_data_[i], shared_,
                                                    opts);
    programs_.push_back(prog.get());
    if (engine_) {
      engine_->add_program(std::move(prog), program_priority_[i],
                           /*initially_active=*/true);
    } else {
      bsp_->add_program(std::move(prog), /*initially_active=*/true);
    }
  }
  if (engine_) {
    engine_->set_routes(owner_);
  } else {
    bsp_->set_routes(owner_);
  }
}

void SweepSolver::activate_coarsened() {
  WallTimer timer;
  coarse_data_.clear();
  coarse_programs_.clear();
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    coarse_data_.push_back(std::make_unique<CoarsenedSweepData>(
        *task_data_[i], programs_[i]->recorded_clusters(),
        std::max<std::int32_t>(1, programs_[i]->recorded_num_clusters())));
  }

  // Fresh engine holding the coarsened programs; priorities carry over.
  core::EngineConfig ec;
  ec.num_workers = config_.num_workers;
  ec.termination = core::TerminationMode::KnownWorkload;
  ec.recorder = config_.trace.recorder;
  auto coarse_engine = std::make_unique<core::Engine>(ctx_, ec);
  for (std::size_t i = 0; i < coarse_data_.size(); ++i) {
    auto prog =
        std::make_unique<CoarsenedSweepProgram>(*coarse_data_[i], shared_);
    coarse_programs_.push_back(prog.get());
    coarse_engine->add_program(std::move(prog), program_priority_[i],
                               /*initially_active=*/true);
  }
  coarse_engine->set_routes(owner_);
  engine_ = std::move(coarse_engine);
  shared_.stream_buffers = &engine_->buffer_pool();
  programs_.clear();  // fine programs are gone with the old engine
  coarsened_active_ = true;
  stats_.coarsen_seconds += timer.seconds();
}

void SweepSolver::collect_phi(std::vector<double>& phi_global) const {
  // Fixed program order + rank-ordered allreduce → bitwise deterministic
  // results regardless of worker count or scheduling.
  const auto accumulate = [&](const auto& progs) {
    for (const auto* prog : progs) {
      const auto& cells = ps_.cells(prog->key().patch);
      const auto& phi = prog->phi_local();
      for (std::size_t v = 0; v < phi.size(); ++v)
        phi_global[static_cast<std::size_t>(cells[v].value())] += phi[v];
    }
  };
  if (coarsened_active_) {
    accumulate(coarse_programs_);
  } else {
    accumulate(programs_);
  }
}

std::vector<double> SweepSolver::sweep(const std::vector<double>& q_per_ster) {
  JSWEEP_CHECK(static_cast<std::int64_t>(q_per_ster.size()) ==
               ps_.num_cells());
  WallTimer timer;
  q_current_ = q_per_ster;
  shared_.q_per_ster = &q_current_;

  // On a cut (cyclic) mesh, optionally iterate the engine run until the
  // lagged faces stop changing, so one sweep() approximates the true
  // (cycle-resolved) transport application. Every run must commit — even
  // the last — so the next sweep() starts from the freshest iterates.
  stats_.last_lag_sweeps = 0;
  for (;;) {
    if (engine_) {
      engine_->run();
      stats_.engine = engine_->stats();
    } else {
      bsp_->run();
      stats_.bsp = bsp_->stats();
    }
    ++stats_.last_lag_sweeps;
    if (lagged_store_.empty()) break;
    stats_.last_lag_residual = lagged_store_.commit(ctx_);
    if (stats_.last_lag_sweeps >= std::max(1, config_.max_lag_sweeps)) break;
    if (stats_.last_lag_residual <= config_.lag_tolerance) break;
  }

  std::vector<double> phi(static_cast<std::size_t>(ps_.num_cells()), 0.0);
  collect_phi(phi);
  ctx_.allreduce_sum(phi);

  // After the first recorded sweep, switch to the coarsened graph.
  if (config_.use_coarsened_graph && !coarsened_active_ && engine_)
    activate_coarsened();

  ++stats_.sweeps;
  stats_.last_sweep_seconds = timer.seconds();
  return phi;
}

}  // namespace jsweep::sweep
