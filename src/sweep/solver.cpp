#include "sweep/solver.hpp"

namespace jsweep::sweep {

PlanConfig plan_config_of(const SolverConfig& config) {
  PlanConfig pc;
  pc.cluster_grain = config.cluster_grain;
  pc.patch_priority = config.patch_priority;
  pc.vertex_priority = config.vertex_priority;
  pc.patch_angle_parallelism = config.patch_angle_parallelism;
  pc.cycle_policy = config.cycle_policy;
  pc.multigroup = config.multigroup;
  pc.group_pipelining = config.group_pipelining;
  pc.group_set_width = config.group_set_width;
  return pc;
}

SolveConfig solve_config_of(const SolverConfig& config) {
  SolveConfig sc;
  sc.engine = config.engine;
  sc.num_workers = config.num_workers;
  sc.use_coarsened_graph = config.use_coarsened_graph;
  sc.max_lag_sweeps = config.max_lag_sweeps;
  sc.lag_tolerance = config.lag_tolerance;
  sc.work_stealing = config.work_stealing;
  sc.steal_spin_rounds = config.steal_spin_rounds;
  sc.scheduler_seed = config.scheduler_seed;
  sc.overlap_source_tail = config.overlap_source_tail;
  sc.trace = config.trace;
  sc.metrics = config.metrics;
  return sc;
}

SweepSolver::SweepSolver(comm::Context& ctx, const mesh::StructuredMesh& m,
                         const partition::PatchSet& ps,
                         std::vector<RankId> patch_owner,
                         const sn::StructuredDD& disc,
                         const sn::Quadrature& quad, SolverConfig config)
    : plan_(SweepPlan::build(ctx, m, ps, std::move(patch_owner), disc, quad,
                             plan_config_of(config))),
      session_(ctx, plan_, solve_config_of(config)) {}

SweepSolver::SweepSolver(comm::Context& ctx, const mesh::TetMesh& m,
                         const partition::PatchSet& ps,
                         std::vector<RankId> patch_owner,
                         const sn::TetStep& disc, const sn::Quadrature& quad,
                         SolverConfig config)
    : plan_(SweepPlan::build(ctx, m, ps, std::move(patch_owner), disc, quad,
                             plan_config_of(config))),
      session_(ctx, plan_, solve_config_of(config)) {}

SweepSolver::~SweepSolver() = default;

}  // namespace jsweep::sweep
