#include "sweep/solver.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace jsweep::sweep {

std::string to_string(CyclePolicy p) {
  switch (p) {
    case CyclePolicy::Assume: return "assume";
    case CyclePolicy::Error: return "error";
    case CyclePolicy::Lag: return "lag";
  }
  return "?";
}

CyclePolicy cycle_policy_from_string(const std::string& name) {
  if (name == "assume") return CyclePolicy::Assume;
  if (name == "error") return CyclePolicy::Error;
  if (name == "lag") return CyclePolicy::Lag;
  JSWEEP_CHECK_MSG(false, "unknown cycle policy '" << name
                                                   << "' (assume|error|lag)");
  return CyclePolicy::Error;
}

SweepSolver::SweepSolver(comm::Context& ctx, const mesh::StructuredMesh& m,
                         const partition::PatchSet& ps,
                         std::vector<RankId> patch_owner,
                         const sn::StructuredDD& disc,
                         const sn::Quadrature& quad, SolverConfig config)
    : ctx_(ctx),
      ps_(ps),
      owner_(std::move(patch_owner)),
      quad_(quad),
      config_(config) {
  shared_.disc = &disc;
  shared_.patches = &ps_;
  shared_.quad = &quad_;
  init_multigroup([&](const sn::CellXs& xs) {
    return std::make_unique<sn::StructuredDD>(m, xs,
                                              disc.negative_flux_fixup());
  });
  build(
      [&](PatchId p, const mesh::Vec3& omega, AngleId a,
          const graph::CycleCut* cut) {
        return graph::build_patch_task_graph(m, ps_, p, omega, a, cut);
      },
      [&](const mesh::Vec3& omega) {
        return graph::build_patch_digraph(m, ps_, omega);
      },
      [&](const mesh::Vec3& omega) {
        return graph::compute_cycle_cut(m, omega);
      });
}

SweepSolver::SweepSolver(comm::Context& ctx, const mesh::TetMesh& m,
                         const partition::PatchSet& ps,
                         std::vector<RankId> patch_owner,
                         const sn::TetStep& disc, const sn::Quadrature& quad,
                         SolverConfig config)
    : ctx_(ctx),
      ps_(ps),
      owner_(std::move(patch_owner)),
      quad_(quad),
      config_(config) {
  shared_.disc = &disc;
  shared_.patches = &ps_;
  shared_.quad = &quad_;
  init_multigroup([&](const sn::CellXs& xs) {
    return std::make_unique<sn::TetStep>(m, xs);
  });
  build(
      [&](PatchId p, const mesh::Vec3& omega, AngleId a,
          const graph::CycleCut* cut) {
        return graph::build_patch_task_graph(m, ps_, p, omega, a, cut);
      },
      [&](const mesh::Vec3& omega) {
        return graph::build_patch_digraph(m, ps_, omega);
      },
      [&](const mesh::Vec3& omega) {
        return graph::compute_cycle_cut(m, omega);
      });
}

SweepSolver::~SweepSolver() = default;

void SweepSolver::init_multigroup(
    const std::function<std::unique_ptr<sn::Discretization>(
        const sn::CellXs&)>& disc_builder) {
  if (config_.multigroup == nullptr) return;
  const auto& mxs = *config_.multigroup;
  mxs.validate();
  JSWEEP_CHECK_MSG(mxs.cells() == ps_.num_cells(),
                   "multigroup table covers "
                       << mxs.cells() << " cells, mesh has "
                       << ps_.num_cells());
  // One kernel per group: σ_t varies by group, the mesh does not.
  for (int g = 0; g < mxs.groups(); ++g)
    group_discs_.push_back(disc_builder(mxs.group_view(g)));
  if (config_.group_pipelining) {
    groups_built_ = mxs.groups();
    std::vector<const sn::Discretization*> discs;
    for (const auto& d : group_discs_) discs.push_back(d.get());
    pipeline_ = std::make_unique<GroupPipeline>(mxs, ps_, quad_.num_angles(),
                                                std::move(discs));
    shared_.pipeline = pipeline_.get();
  }
  stats_.groups = mxs.groups();
}

void SweepSolver::build(
    const std::function<graph::PatchTaskGraph(
        PatchId, const mesh::Vec3&, AngleId, const graph::CycleCut*)>&
        task_builder,
    const std::function<graph::Digraph(const mesh::Vec3&)>&
        patch_digraph_builder,
    const std::function<graph::CycleCut(const mesh::Vec3&)>& cut_builder) {
  JSWEEP_CHECK_MSG(static_cast<int>(owner_.size()) == ps_.num_patches(),
                   "patch owner table size mismatch");
  WallTimer timer;

  std::vector<PatchId> local_patches;
  for (int p = 0; p < ps_.num_patches(); ++p)
    if (owner_[static_cast<std::size_t>(p)] == ctx_.rank())
      local_patches.push_back(PatchId{p});

  if (pipeline_ != nullptr) pipeline_->register_patches(local_patches);
  // Each lagged (cycle-cut) face carries one old-iterate value per energy
  // group — in BOTH multigroup modes (barriered engine runs select their
  // stride via SweepShared::current_group).
  lagged_store_.set_num_groups(
      config_.multigroup != nullptr ? config_.multigroup->groups() : 1);

  if (!config_.patch_angle_parallelism) {
    patch_mutex_.resize(static_cast<std::size_t>(ps_.num_patches()));
    for (const auto p : local_patches)
      patch_mutex_[static_cast<std::size_t>(p.value())] =
          std::make_unique<std::mutex>();
  }

  // Outer loop over angles so all programs of one angle share its
  // patch-priority vector; programs are stored angle-major, a fixed order
  // reused by the deterministic φ collection.
  for (int a = 0; a < quad_.num_angles(); ++a) {
    const mesh::Vec3 omega = quad_.angle(a).dir;
    // Cycle handling: detect (unless told to assume acyclicity), and either
    // refuse with diagnostics or cut + lag the feedback faces. The cut is a
    // deterministic function of the mesh and direction, so every rank
    // computes the identical set and registers identical store slots.
    graph::CycleCut cut;
    if (config_.cycle_policy != CyclePolicy::Assume) cut = cut_builder(omega);
    if (!cut.empty()) {
      JSWEEP_CHECK_MSG(
          config_.cycle_policy == CyclePolicy::Lag,
          "sweep direction "
              << a << " (" << omega << ") has cyclic dependencies: "
              << cut.stats.cyclic_components << " SCC(s), largest "
              << cut.stats.largest_component << " cells, "
              << cut.stats.edges_cut
              << " feedback edge(s); set SolverConfig::cycle_policy = "
                 "CyclePolicy::Lag to cut and lag them");
      stats_.cycles.merge(cut.stats);
      ++stats_.cyclic_angles;
      std::vector<std::int64_t> faces(cut.lagged_faces.begin(),
                                      cut.lagged_faces.end());
      std::sort(faces.begin(), faces.end());
      for (const auto face : faces) lagged_store_.add_slot(a, face);
    }
    const graph::Digraph patch_graph = patch_digraph_builder(omega);
    const std::vector<double> pprio =
        graph::patch_priorities(config_.patch_priority, patch_graph);
    // The structural task data is group-independent (same DAG, same face
    // slots): built once per (patch, angle), shared by all group programs.
    for (const auto p : local_patches) {
      task_data_.push_back(std::make_unique<SweepTaskData>(
          task_builder(p, omega, AngleId{a}, cut.empty() ? nullptr : &cut),
          config_.vertex_priority, *shared_.disc, ps_, quad_.angle(a),
          lagged_store_.empty() ? nullptr : &lagged_store_));
      const std::size_t data_index = task_data_.size() - 1;
      for (int g = 0; g < groups_built_; ++g) {
        // Task priority: earlier groups strictly dominate (they unblock
        // downstream groups' sources), then earlier (lower-id) angles so
        // same-angle programs chain through the mesh back-to-back
        // (Sec. V-D). For G = 1 this is exactly the classic -angle prior.
        const double task_prior =
            -static_cast<double>(g * quad_.num_angles() + a);
        slots_.push_back(ProgramSlot{
            data_index, GroupId{g},
            graph::combined_priority(
                task_prior, pprio[static_cast<std::size_t>(p.value())])});
      }
    }
  }
  if (!lagged_store_.empty()) shared_.lagged = &lagged_store_;
  shared_.flux_pool = &flux_pool_;

  install_programs(config_.use_coarsened_graph);
  stats_.build_seconds = timer.seconds();
}

void SweepSolver::install_programs(bool record_clusters) {
  programs_.clear();
  if (config_.engine == EngineKind::DataDriven) {
    core::EngineConfig ec;
    ec.num_workers = config_.num_workers;
    ec.termination = core::TerminationMode::KnownWorkload;
    ec.recorder = config_.trace.recorder;
    engine_ = std::make_unique<core::Engine>(ctx_, ec);
    shared_.stream_buffers = &engine_->buffer_pool();
  } else {
    core::BspConfig bc;
    bc.num_threads = std::max(0, config_.num_workers - 1);
    bc.recorder = config_.trace.recorder;
    bsp_ = std::make_unique<core::BspEngine>(ctx_, bc);
    shared_.stream_buffers = &bsp_->buffer_pool();
  }

  if (pipeline_ != nullptr) pipeline_->clear_programs();
  for (const ProgramSlot& slot : slots_) {
    const SweepTaskData& data = *task_data_[slot.data_index];
    SweepProgramOptions opts;
    opts.cluster_grain = config_.cluster_grain;
    opts.record_clusters = record_clusters;
    opts.group = slot.group;
    if (!config_.patch_angle_parallelism)
      opts.patch_serializer =
          patch_mutex_[static_cast<std::size_t>(data.patch().value())].get();
    auto prog = std::make_unique<SweepPatchProgram>(data, shared_, opts);
    programs_.push_back(prog.get());
    if (pipeline_ != nullptr)
      pipeline_->register_program(data.patch(), data.angle(), slot.group,
                                  &prog->phi_local());
    // Groups > 0 wait for their activation stream (gate); everything else
    // is runnable from the start.
    const bool initially_active = slot.group == GroupId{0};
    if (engine_) {
      engine_->add_program(std::move(prog), slot.priority, initially_active);
    } else {
      bsp_->add_program(std::move(prog), initially_active);
    }
  }
  if (engine_) {
    engine_->set_routes(owner_);
  } else {
    bsp_->set_routes(owner_);
  }
}

void SweepSolver::activate_coarsened() {
  WallTimer timer;
  coarse_data_.clear();
  coarse_programs_.clear();
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    // Each program (not each task data: group programs of one (patch,
    // angle) record their own executions) yields one coarsened replay.
    coarse_data_.push_back(std::make_unique<CoarsenedSweepData>(
        *task_data_[slots_[i].data_index], programs_[i]->recorded_clusters(),
        std::max<std::int32_t>(1, programs_[i]->recorded_num_clusters())));
  }

  // Fresh engine holding the coarsened programs; priorities carry over.
  core::EngineConfig ec;
  ec.num_workers = config_.num_workers;
  ec.termination = core::TerminationMode::KnownWorkload;
  ec.recorder = config_.trace.recorder;
  auto coarse_engine = std::make_unique<core::Engine>(ctx_, ec);
  if (pipeline_ != nullptr) pipeline_->clear_programs();
  for (std::size_t i = 0; i < coarse_data_.size(); ++i) {
    auto prog = std::make_unique<CoarsenedSweepProgram>(
        *coarse_data_[i], shared_, slots_[i].group);
    coarse_programs_.push_back(prog.get());
    if (pipeline_ != nullptr)
      pipeline_->register_program(coarse_data_[i]->fine().patch(),
                                  coarse_data_[i]->fine().angle(),
                                  slots_[i].group, &prog->phi_local());
    coarse_engine->add_program(std::move(prog), slots_[i].priority,
                               /*initially_active=*/slots_[i].group ==
                                   GroupId{0});
  }
  coarse_engine->set_routes(owner_);
  engine_ = std::move(coarse_engine);
  shared_.stream_buffers = &engine_->buffer_pool();
  programs_.clear();  // fine programs are gone with the old engine
  coarsened_active_ = true;
  stats_.coarsen_seconds += timer.seconds();
}

void SweepSolver::collect_phi(std::vector<double>& phi_global) const {
  // Fixed program order + rank-ordered allreduce → bitwise deterministic
  // results regardless of worker count or scheduling.
  const auto accumulate = [&](const auto& progs) {
    for (const auto* prog : progs) {
      const auto& cells = ps_.cells(prog->key().patch);
      const auto& phi = prog->phi_local();
      for (std::size_t v = 0; v < phi.size(); ++v)
        phi_global[static_cast<std::size_t>(cells[v].value())] += phi[v];
    }
  };
  if (coarsened_active_) {
    accumulate(coarse_programs_);
  } else {
    accumulate(programs_);
  }
}

void SweepSolver::run_engine_once() {
  if (engine_) {
    engine_->run();
    stats_.engine = engine_->stats();
  } else {
    bsp_->run();
    stats_.bsp = bsp_->stats();
  }
}

void SweepSolver::run_engines_once() {
  // On a cut (cyclic) mesh, optionally iterate the engine run until the
  // lagged faces stop changing, so one sweep() approximates the true
  // (cycle-resolved) transport application. Every run must commit — even
  // the last — so the next sweep() starts from the freshest iterates.
  stats_.last_lag_sweeps = 0;
  for (;;) {
    run_engine_once();
    ++stats_.last_lag_sweeps;
    if (lagged_store_.empty()) break;
    stats_.last_lag_residual = lagged_store_.commit(ctx_);
    if (stats_.last_lag_sweeps >= std::max(1, config_.max_lag_sweeps)) break;
    if (stats_.last_lag_residual <= config_.lag_tolerance) break;
  }
}

std::vector<double> SweepSolver::sweep(const std::vector<double>& q_per_ster) {
  JSWEEP_CHECK_MSG(pipeline_ == nullptr,
                   "this solver was built group-pipelined; use "
                   "solve_multigroup() instead of sweep()");
  JSWEEP_CHECK(static_cast<std::int64_t>(q_per_ster.size()) ==
               ps_.num_cells());
  WallTimer timer;
  q_current_ = q_per_ster;
  shared_.q_per_ster = &q_current_;

  run_engines_once();

  std::vector<double> phi(static_cast<std::size_t>(ps_.num_cells()), 0.0);
  collect_phi(phi);
  ctx_.allreduce_sum(phi);

  // After the first recorded sweep, switch to the coarsened graph.
  if (config_.use_coarsened_graph && !coarsened_active_ && engine_)
    activate_coarsened();

  ++stats_.sweeps;
  stats_.last_sweep_seconds = timer.seconds();
  return phi;
}

std::vector<double> SweepSolver::sweep_group(
    GroupId g, const std::vector<double>& q_per_ster) {
  JSWEEP_CHECK_MSG(config_.multigroup != nullptr,
                   "sweep_group() needs SolverConfig::multigroup");
  JSWEEP_CHECK_MSG(pipeline_ == nullptr,
                   "group-pipelined solvers sweep all groups per engine "
                   "run; use solve_multigroup()");
  JSWEEP_CHECK_MSG(
      lagged_store_.empty() || config_.multigroup->groups() == 1,
      "standalone per-group sweeps on a cut (cyclic) mesh would commit "
      "lagged fluxes per group; use solve_multigroup()");
  JSWEEP_CHECK(g.value() >= 0 &&
               g.value() < static_cast<int>(group_discs_.size()));
  // Swap in group g's kernel; the task system (graphs, slots, programs) is
  // group-independent and shared by every group.
  const sn::Discretization* base = shared_.disc;
  shared_.disc = group_discs_[static_cast<std::size_t>(g.value())].get();
  shared_.current_group = g;
  std::vector<double> phi = sweep(q_per_ster);
  shared_.current_group = GroupId{0};
  shared_.disc = base;
  return phi;
}

void SweepSolver::multigroup_pass(
    const std::vector<std::vector<double>>& q_base,
    std::vector<std::vector<double>>& phi) {
  WallTimer timer;
  const sn::MultigroupXs& xs = *config_.multigroup;
  const int G = xs.groups();
  const std::int64_t n = ps_.num_cells();

  // Cyclic meshes: the lag loop repeats the WHOLE pass, committing the
  // lagged store once per pass over all groups — identical protocol in
  // pipelined and barriered mode (and the reason standalone sweep_group()
  // refuses cut multigroup meshes). Pipelined gates re-arm per repeat via
  // begin_pass.
  stats_.last_lag_sweeps = 0;
  for (;;) {
    if (pipeline_ != nullptr) {
      pipeline_->begin_pass(q_base);
      run_engine_once();
    } else {
      // Group-barriered baseline: one engine run (global barrier) per
      // group, ascending, with the same fresh in-scatter accumulation the
      // serial reference and the pipeline use (inscatter_term).
      const sn::Discretization* base_disc = shared_.disc;
      for (int g = 0; g < G; ++g) {
        q_current_ = q_base[static_cast<std::size_t>(g)];
        for (int from = 0; from < g; ++from) {
          const auto& pf = phi[static_cast<std::size_t>(from)];
          for (std::int64_t c = 0; c < n; ++c)
            q_current_[static_cast<std::size_t>(c)] += sn::inscatter_term(
                xs, from, g, c, pf[static_cast<std::size_t>(c)]);
        }
        shared_.q_per_ster = &q_current_;
        shared_.disc = group_discs_[static_cast<std::size_t>(g)].get();
        shared_.current_group = GroupId{g};
        run_engine_once();
        auto& phi_g = phi[static_cast<std::size_t>(g)];
        phi_g.assign(static_cast<std::size_t>(n), 0.0);
        collect_phi(phi_g);
        ctx_.allreduce_sum(phi_g);
      }
      shared_.current_group = GroupId{0};
      shared_.disc = base_disc;
    }
    ++stats_.last_lag_sweeps;
    if (lagged_store_.empty()) break;
    stats_.last_lag_residual = lagged_store_.commit(ctx_);
    if (stats_.last_lag_sweeps >= std::max(1, config_.max_lag_sweeps)) break;
    if (stats_.last_lag_residual <= config_.lag_tolerance) break;
  }
  if (pipeline_ != nullptr) {
    for (int g = 0; g < G; ++g) {
      phi[static_cast<std::size_t>(g)] = pipeline_->phi_group(GroupId{g});
      ctx_.allreduce_sum(phi[static_cast<std::size_t>(g)]);
    }
  }
  // After the first recorded pass, replay on the coarsened graph.
  if (config_.use_coarsened_graph && !coarsened_active_ && engine_)
    activate_coarsened();
  ++stats_.multigroup_passes;
  stats_.sweeps += G;
  stats_.last_sweep_seconds = timer.seconds();
}

sn::MultigroupResult SweepSolver::solve_multigroup(
    const sn::MultigroupOptions& options) {
  JSWEEP_CHECK_MSG(config_.multigroup != nullptr,
                   "solve_multigroup() needs SolverConfig::multigroup");
  return sn::solve_multigroup_sweeps(
      *config_.multigroup,
      [this](const std::vector<std::vector<double>>& q_base,
             std::vector<std::vector<double>>& phi) {
        multigroup_pass(q_base, phi);
      },
      options);
}

}  // namespace jsweep::sweep
