#pragma once

/// \file group_pipeline.hpp
/// Rank-local coordination of group-pipelined multigroup sweeps — the
/// runtime that turns one engine run into a full multigroup sweep *pass*
/// over (patch, angle, group-set) programs.
///
/// ## Why pipelining works
///
/// In the sweep-pass formulation (sn/multigroup.hpp), group g's source
/// needs the pass's fresh flux of earlier groups — but in-scatter is
/// *cell-local*: q_g(c) depends only on φ_{g'}(c) of the same cell. So the
/// moment patch p has finished a group set (all angles retired), the next
/// set's sources on p are fully determined and p's next-set programs may
/// start, regardless of how far other patches have progressed. Consecutive
/// sets' sweeps overlap instead of being barrier-separated — the same
/// idle-hiding argument the data-driven engine makes for patch-angle
/// parallelism, applied along the energy axis.
///
/// ## Group sets
///
/// At set width W (PlanConfig::group_set_width), set s covers the groups
/// [s·W, min((s+1)·W, G)) — the final set is ragged when W ∤ G. One
/// program sweeps all of a set's groups at once (sn::Discretization::
/// sweep_cell_set, SIMD across the lanes), so gating, activation streams
/// and the counters here are all per (patch, SET): program count and
/// activation traffic drop by W. Within a set the groups cannot see each
/// other's fresh flux; that downscatter is lagged one pass by the solve
/// (sn::MultigroupOptions::group_set_width) and the fresh Gauss-Seidel
/// bound drops from g to set_base(g). W == 1 degenerates bitwise to the
/// per-group pipeline.
///
/// ## Protocol
///
/// Programs carry their set id; sets > 0 are registered inactive and
/// *gated*: they buffer incoming face streams but compute nothing until an
/// empty-payload **activation stream** arrives. When a program retires its
/// last vertex it calls on_program_complete(); the last angle of (p, s)
///   1. accumulates patch p's per-group scalar fluxes φ_g for each lane g
///      of the set (ascending angle order — deterministic),
///   2. forms set s+1's sources on p's cells: for each target group t of
///      set s+1, q_t(c) = q_base-part(c) + Σ_{g' < (s+1)·W, ascending}
///      inscatter_term(g'→t) — bitwise-identical to the width-aware
///      serial reference pass,
///   3. emits one activation stream per (p, angle, s+1) program.
/// Thread safety: the per-(patch, set) remaining-angle counters are
/// atomics (BSP runs sibling programs concurrently); the acq_rel
/// fetch_sub makes every sibling's φ writes visible to the last
/// completer, and the engines' stream delivery orders the q writes before
/// any activated reader runs. Each cell is written by exactly one patch,
/// so no two gate completions ever race on a q or φ entry.
///
/// One pass = begin_pass(q_base) → one engine run → collect per-group φ
/// (each rank contributes its local patches; the solver allreduces).
///
/// ## Source-tail overlap
///
/// With enable_source_overlap(), the last completer of (p, s) additionally
/// precomputes the NEXT pass's base source for the set's own groups on p's
/// cells — emission density plus the lagged within-set downscatter, both
/// functions of the φ it just accumulated — into next_pass_q(). That is
/// exactly the serial per-group formation solve_multigroup_sweeps performs
/// between passes (sn::MultigroupOptions::q_base_provider), moved onto
/// workers that would otherwise idle while the sweep's tail drains.
/// Bitwise-identical by construction: each rank's local pre-allreduce φ
/// equals the global φ on its own cells (every other rank contributes
/// exactly 0.0 and the allreduce folds in rank order), the per-cell
/// accumulation order (emission, then `from` ascending) matches the serial
/// loop, and only locally-owned cells of next_pass_q() are ever consumed.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/stream.hpp"
#include "partition/patch_set.hpp"
#include "sn/discretization.hpp"
#include "sn/multigroup.hpp"
#include "support/ids.hpp"

namespace jsweep::metrics {
class Counter;
class Gauge;
class Histogram;
class Registry;
}  // namespace jsweep::metrics

namespace jsweep::sweep {

/// Rank-local multigroup gate/source coordinator (see
/// \ref group_pipeline.hpp for the why and the protocol).
class GroupPipeline {
 public:
  /// `xs`, `ps` and the discretizations must outlive the pipeline.
  /// `group_discs[g]` is the kernel for group g (σ_t differs per group).
  /// `set_width` is the group-set width W (1 = per-group pipeline).
  /// `lane_tag_offset` shifts the activation streams' task tags into a
  /// session's request-lane namespace (lane_task_tag in sweep_data.hpp);
  /// 0 (the default) is the plain solver namespace.
  GroupPipeline(const sn::MultigroupXs& xs, const partition::PatchSet& ps,
                int num_angles,
                std::vector<const sn::Discretization*> group_discs,
                int set_width = 1, int lane_tag_offset = 0);

  /// Energy groups coordinated by this pipeline.
  [[nodiscard]] int num_groups() const { return xs_.groups(); }
  /// Group-set width W.
  [[nodiscard]] int set_width() const { return set_width_; }
  /// Group sets: ceil(G / W). The tag/gate namespace is per set.
  [[nodiscard]] int num_sets() const { return num_sets_; }
  /// First group of set s.
  [[nodiscard]] int set_base(GroupId s) const {
    return s.value() * set_width_;
  }
  /// Lanes of set s: W except possibly the ragged final set.
  [[nodiscard]] int set_width_of(GroupId s) const {
    return std::min(set_width_, xs_.groups() - set_base(s));
  }
  /// Ordinates per group set (the per-(patch, set) gate width).
  [[nodiscard]] int num_angles() const { return num_angles_; }
  /// Group g's per-cell sweep kernel (σ_t varies by group). Batched
  /// programs use the set's base group as the geometry carrier and pass
  /// the strided σ_t explicitly.
  [[nodiscard]] const sn::Discretization* group_disc(GroupId g) const {
    return discs_[static_cast<std::size_t>(g.value())];
  }
  /// Set s's per-steradian sources for the current pass, lane-strided
  /// `[c * set_width_of(s) + lane]` (at W == 1 this is exactly the scalar
  /// per-group source). Valid for a program once it is active (set 0
  /// after begin_pass; higher sets after their activation stream).
  [[nodiscard]] const std::vector<double>& q_set(GroupId s) const {
    return q_sets_[static_cast<std::size_t>(s.value())];
  }
  /// Set s's σ_t, lane-strided like q_set() (built once at construction).
  [[nodiscard]] const std::vector<double>& sigma_t_set(GroupId s) const {
    return sigma_t_sets_[static_cast<std::size_t>(s.value())];
  }

  /// Build-time: declare this rank's local patches (once, sized in one
  /// shot) and then each of their programs' φ arrays (lane-strided
  /// `[v * set_width_of(s) + lane]` over the patch's cells).
  /// Re-registration (clear_programs + register_program) swaps in the
  /// coarsened programs' arrays.
  void register_patches(const std::vector<PatchId>& patches);
  void register_program(PatchId p, AngleId a, GroupId set,
                        const std::vector<double>* phi_local);
  void clear_programs();

  /// Reset for one multigroup sweep pass: pack the per-group base sources
  /// into the lane-strided per-set layout, zero the per-group flux
  /// accumulators and re-arm the gate counters.
  void begin_pass(const std::vector<std::vector<double>>& q_base);

  /// Called by a (patch, angle, set) program that retired its last
  /// vertex, from worker context. The patch's last angle performs the gate
  /// work above and appends the next set's activation streams to
  /// `pending` (empty payload, dst = (p, sweep_task_tag(a, s+1))).
  void on_program_complete(PatchId p, GroupId set, const ProgramKey& src,
                           std::vector<core::Stream>& pending);

  /// Group g's scalar-flux accumulation after a pass: this rank's local
  /// patches are filled, all other cells are zero (allreduce to assemble).
  [[nodiscard]] const std::vector<double>& phi_group(GroupId g) const {
    return phi_groups_[static_cast<std::size_t>(g.value())];
  }

  /// Turn on the source-tail overlap (see the file doc): gate completions
  /// additionally precompute next_pass_q(). Allocates the per-group
  /// buffers on first call; idempotent.
  void enable_source_overlap();
  /// Whether enable_source_overlap() has been called.
  [[nodiscard]] bool source_overlap_enabled() const { return overlap_; }
  /// Group g's precomputed next-pass base source (emission + lagged
  /// within-set downscatter). Valid on this rank's local cells after a
  /// pass ran with the overlap enabled; all other cells are zero and must
  /// not be consumed.
  [[nodiscard]] const std::vector<double>& next_pass_q(GroupId g) const {
    return next_q_[static_cast<std::size_t>(g.value())];
  }

  /// Observability (optional): publish live `jsweep_pipeline_*` metrics —
  /// pass counts, activation-stream counts, the emit→gate-open latency
  /// histogram and per-set first-open / pipeline-fill times — into
  /// `registry`, labelled by `rank` and the set width. Call once before
  /// the first begin_pass(); null (the default) disables and every hook
  /// below degrades to one pointer check.
  void set_metrics(metrics::Registry* registry, int rank);

  /// Called by a gated program (worker context) when its activation stream
  /// arrives: records the earliest gate-open time of (p, set). num_angles
  /// sibling programs report concurrently; a CAS-min keeps the first.
  /// No-op without set_metrics().
  void note_gate_opened(PatchId p, GroupId set);

  /// End of one pass (call after the engine run): folds the recorded
  /// emit/open timestamps into the activation-latency histogram and the
  /// per-set first-open and fill gauges. No-op without set_metrics().
  void finish_pass_metrics();

 private:
  [[nodiscard]] std::size_t local_index(PatchId p) const;
  [[nodiscard]] std::size_t phi_slot(std::size_t patch_idx, int s,
                                     int a) const {
    return (patch_idx * static_cast<std::size_t>(num_sets_) +
            static_cast<std::size_t>(s)) *
               static_cast<std::size_t>(num_angles_) +
           static_cast<std::size_t>(a);
  }

  const sn::MultigroupXs& xs_;
  const partition::PatchSet& ps_;
  int num_angles_;
  std::vector<const sn::Discretization*> discs_;
  int set_width_ = 1;        ///< lanes per set (W)
  int num_sets_ = 1;         ///< ceil(G / W)
  int lane_tag_offset_ = 0;  ///< request-lane shift of activation tags

  std::vector<PatchId> local_patches_;
  std::vector<std::int32_t> local_of_patch_;  ///< patch id → index or -1
  /// remaining_[patch_idx * num_sets + s]: angle programs of (p, s) still
  /// running.
  std::unique_ptr<std::atomic<std::int32_t>[]> remaining_;
  /// phi_ptrs_[phi_slot(patch_idx, s, a)]: that program's φ array.
  std::vector<const std::vector<double>*> phi_ptrs_;

  /// Per set, lane-strided [c * W_s + lane], global cell count.
  std::vector<std::vector<double>> q_sets_;
  /// Per set, lane-strided σ_t (immutable after construction).
  std::vector<std::vector<double>> sigma_t_sets_;
  /// Per group, global size (the assembled per-group fluxes).
  std::vector<std::vector<double>> phi_groups_;
  /// Per group, global size: next-pass base sources precomputed at gate
  /// completions (source-tail overlap; empty until enable_source_overlap).
  std::vector<std::vector<double>> next_q_;
  bool overlap_ = false;  ///< next-pass precompute armed

  // Live metrics (all null/empty without set_metrics()).
  metrics::Registry* metrics_ = nullptr;
  metrics::Counter* metric_passes_ = nullptr;
  metrics::Counter* metric_activations_ = nullptr;
  metrics::Histogram* metric_activation_latency_ = nullptr;
  metrics::Gauge* metric_fill_ = nullptr;
  std::vector<metrics::Gauge*> metric_group_open_;  ///< one per set >= 1
  double pass_start_seconds_ = 0.0;
  /// emit_seconds_[patch_idx * num_sets + s]: when (p, s)'s activation
  /// streams were emitted. Single writer: the completer of (p, s-1) runs
  /// alone.
  std::vector<double> emit_seconds_;
  /// first_open_[patch_idx * num_sets + s]: earliest gate-open among
  /// (p, s)'s angle programs (CAS-min; siblings open concurrently on
  /// workers).
  std::unique_ptr<std::atomic<double>[]> first_open_;
};

}  // namespace jsweep::sweep
