#pragma once

/// \file group_pipeline.hpp
/// Rank-local coordination of group-pipelined multigroup sweeps — the
/// runtime that turns one engine run into a full multigroup sweep *pass*
/// over (patch, angle, group) programs.
///
/// ## Why pipelining works
///
/// In the sweep-pass formulation (sn/multigroup.hpp), group g's source
/// needs the pass's fresh flux of groups < g — but in-scatter is
/// *cell-local*: q_g(c) depends only on φ_{g'}(c) of the same cell. So the
/// moment patch p has finished group g (all angles retired), group g+1's
/// source on p is fully determined and p's group-(g+1) programs may start,
/// regardless of how far other patches have progressed. Consecutive
/// groups' sweeps overlap instead of being barrier-separated — the same
/// idle-hiding argument the data-driven engine makes for patch-angle
/// parallelism, applied along the energy axis.
///
/// ## Protocol
///
/// Programs carry their GroupId; groups > 0 are registered inactive and
/// *gated*: they buffer incoming face streams but compute nothing until an
/// empty-payload **activation stream** arrives. When a program retires its
/// last vertex it calls on_program_complete(); the last angle of (p, g)
///   1. accumulates patch p's group-g scalar flux φ_g (ascending angle
///      order — deterministic),
///   2. forms group g+1's source on p's cells: q_{g+1}(c) = q_base(c) +
///      Σ_{g'≤g, ascending} inscatter_term(g'→g+1) — bitwise-identical to
///      the serial reference pass,
///   3. emits one activation stream per (p, angle, g+1) program.
/// Thread safety: the per-(patch, group) remaining-angle counters are
/// atomics (BSP runs sibling programs concurrently); the acq_rel
/// fetch_sub makes every sibling's φ writes visible to the last
/// completer, and the engines' stream delivery orders the q writes before
/// any activated reader runs. Each cell is written by exactly one patch,
/// so no two gate completions ever race on a q or φ entry.
///
/// One pass = begin_pass(q_base) → one engine run → collect per-group φ
/// (each rank contributes its local patches; the solver allreduces).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/stream.hpp"
#include "partition/patch_set.hpp"
#include "sn/discretization.hpp"
#include "sn/multigroup.hpp"
#include "support/ids.hpp"

namespace jsweep::metrics {
class Counter;
class Gauge;
class Histogram;
class Registry;
}  // namespace jsweep::metrics

namespace jsweep::sweep {

/// Rank-local multigroup gate/source coordinator (see
/// \ref group_pipeline.hpp for the why and the protocol).
class GroupPipeline {
 public:
  /// `xs`, `ps` and the discretizations must outlive the pipeline.
  /// `group_discs[g]` is the kernel for group g (σ_t differs per group).
  /// `lane_tag_offset` shifts the activation streams' task tags into a
  /// session's request-lane namespace (lane_task_tag in sweep_data.hpp);
  /// 0 (the default) is the plain solver namespace.
  GroupPipeline(const sn::MultigroupXs& xs, const partition::PatchSet& ps,
                int num_angles,
                std::vector<const sn::Discretization*> group_discs,
                int lane_tag_offset = 0);

  /// Energy groups coordinated by this pipeline.
  [[nodiscard]] int num_groups() const { return xs_.groups(); }
  /// Ordinates per group (the per-(patch, group) gate width).
  [[nodiscard]] int num_angles() const { return num_angles_; }
  /// Group g's per-cell sweep kernel (σ_t varies by group).
  [[nodiscard]] const sn::Discretization* group_disc(GroupId g) const {
    return discs_[static_cast<std::size_t>(g.value())];
  }
  /// Group g's per-steradian source for the current pass. Valid for a
  /// program once it is active (group 0 after begin_pass; higher groups
  /// after their activation stream).
  [[nodiscard]] const std::vector<double>& q_group(GroupId g) const {
    return q_groups_[static_cast<std::size_t>(g.value())];
  }

  /// Build-time: declare this rank's local patches (once, sized in one
  /// shot) and then each of their programs' φ arrays. Re-registration
  /// (clear_programs + register_program) swaps in the coarsened programs'
  /// arrays.
  void register_patches(const std::vector<PatchId>& patches);
  void register_program(PatchId p, AngleId a, GroupId g,
                        const std::vector<double>* phi_local);
  void clear_programs();

  /// Reset for one multigroup sweep pass: copy the base sources, zero the
  /// per-group flux accumulators and re-arm the gate counters.
  void begin_pass(const std::vector<std::vector<double>>& q_base);

  /// Called by a (patch, angle, group) program that retired its last
  /// vertex, from worker context. The patch's last angle performs the gate
  /// work above and appends the next group's activation streams to
  /// `pending` (empty payload, dst = (p, sweep_task_tag(a, g+1))).
  void on_program_complete(PatchId p, GroupId g, const ProgramKey& src,
                           std::vector<core::Stream>& pending);

  /// Group g's scalar-flux accumulation after a pass: this rank's local
  /// patches are filled, all other cells are zero (allreduce to assemble).
  [[nodiscard]] const std::vector<double>& phi_group(GroupId g) const {
    return phi_groups_[static_cast<std::size_t>(g.value())];
  }

  /// Observability (optional): publish live `jsweep_pipeline_*` metrics —
  /// pass counts, activation-stream counts, the emit→gate-open latency
  /// histogram and per-group first-open / pipeline-fill times — into
  /// `registry`, labelled by `rank`. Call once before the first
  /// begin_pass(); null (the default) disables and every hook below
  /// degrades to one pointer check.
  void set_metrics(metrics::Registry* registry, int rank);

  /// Called by a gated program (worker context) when its activation stream
  /// arrives: records the earliest gate-open time of (p, g). num_angles
  /// sibling programs report concurrently; a CAS-min keeps the first.
  /// No-op without set_metrics().
  void note_gate_opened(PatchId p, GroupId g);

  /// End of one pass (call after the engine run): folds the recorded
  /// emit/open timestamps into the activation-latency histogram and the
  /// per-group first-open and fill gauges. No-op without set_metrics().
  void finish_pass_metrics();

 private:
  [[nodiscard]] std::size_t local_index(PatchId p) const;
  [[nodiscard]] std::size_t phi_slot(std::size_t patch_idx, int g,
                                     int a) const {
    return (patch_idx * static_cast<std::size_t>(xs_.groups()) +
            static_cast<std::size_t>(g)) *
               static_cast<std::size_t>(num_angles_) +
           static_cast<std::size_t>(a);
  }

  const sn::MultigroupXs& xs_;
  const partition::PatchSet& ps_;
  int num_angles_;
  std::vector<const sn::Discretization*> discs_;
  int lane_tag_offset_ = 0;  ///< request-lane shift of activation tags

  std::vector<PatchId> local_patches_;
  std::vector<std::int32_t> local_of_patch_;  ///< patch id → index or -1
  /// remaining_[patch_idx * G + g]: angle programs of (p, g) still running.
  std::unique_ptr<std::atomic<std::int32_t>[]> remaining_;
  /// phi_ptrs_[phi_slot(patch_idx, g, a)]: that program's φ array.
  std::vector<const std::vector<double>*> phi_ptrs_;

  std::vector<std::vector<double>> q_groups_;    ///< per group, global size
  std::vector<std::vector<double>> phi_groups_;  ///< per group, global size

  // Live metrics (all null/empty without set_metrics()).
  metrics::Registry* metrics_ = nullptr;
  metrics::Counter* metric_passes_ = nullptr;
  metrics::Counter* metric_activations_ = nullptr;
  metrics::Histogram* metric_activation_latency_ = nullptr;
  metrics::Gauge* metric_fill_ = nullptr;
  std::vector<metrics::Gauge*> metric_group_open_;  ///< one per group >= 1
  double pass_start_seconds_ = 0.0;
  /// emit_seconds_[patch_idx * G + g]: when (p, g)'s activation streams
  /// were emitted. Single writer: the completer of (p, g-1) runs alone.
  std::vector<double> emit_seconds_;
  /// first_open_[patch_idx * G + g]: earliest gate-open among (p, g)'s
  /// angle programs (CAS-min; the siblings open concurrently on workers).
  std::unique_ptr<std::atomic<double>[]> first_open_;
};

}  // namespace jsweep::sweep
