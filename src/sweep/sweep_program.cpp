#include "sweep/sweep_program.hpp"

#include "support/check.hpp"

namespace jsweep::sweep {

void seed_lagged_faces(const SweepTaskData& data, const LaggedFluxStore* store,
                       sn::FaceFluxMap& flux) {
  if (!data.has_lagged()) return;
  JSWEEP_CHECK_MSG(store != nullptr,
                   "task graph has lagged edges but no LaggedFluxStore");
  for (const auto face : data.lagged_seed_faces())
    flux[face] = store->prev(data.angle().value(), face);
}

void stage_lagged_writes(const SweepTaskData& data, LaggedFluxStore* store,
                         std::int32_t v, sn::FaceFluxMap& flux) {
  data.for_lagged_writes(v, [&](std::int64_t face) {
    const auto it = flux.find(face);
    JSWEEP_ASSERT(it != flux.end());
    store->stage(data.angle().value(), face, it->second);
    it->second = store->prev(data.angle().value(), face);
  });
}

SweepPatchProgram::SweepPatchProgram(const SweepTaskData& data,
                                     const SweepShared& shared,
                                     SweepProgramOptions options)
    : core::PatchProgram(data.patch(), TaskTag{data.angle().value()}),
      data_(data),
      shared_(shared),
      options_(options) {
  JSWEEP_CHECK(options_.cluster_grain >= 1);
}

void SweepPatchProgram::mark_ready(std::int32_t v) {
  ready_.push(ReadyEntry{data_.vertex_priority(v), v});
}

void SweepPatchProgram::init() {
  counts_ = data_.initial_counts();
  ready_ = {};
  for (std::int32_t v = 0; v < data_.num_vertices(); ++v)
    if (counts_[static_cast<std::size_t>(v)] == 0) mark_ready(v);
  flux_.clear();
  // Cycle-cut faces read the previous sweep's flux instead of waiting.
  seed_lagged_faces(data_, shared_.lagged, flux_);
  out_items_.clear();
  pending_.clear();
  phi_.assign(static_cast<std::size_t>(data_.num_vertices()), 0.0);
  computed_ = 0;
  if (options_.record_clusters) {
    cluster_of_.assign(static_cast<std::size_t>(data_.num_vertices()), -1);
    next_cluster_ = 0;
  }
}

void SweepPatchProgram::input(const core::Stream& s) {
  JSWEEP_CHECK_MSG(s.dst == key(), "stream for " << s.dst << " delivered to "
                                                 << key());
  for (const auto& item : decode_items(s.data)) {
    flux_[item.face] = item.value;
    const CellId cell{item.cell};
    JSWEEP_ASSERT(shared_.patches->patch_of(cell) == data_.patch());
    const std::int32_t v = shared_.patches->local_index(cell);
    auto& count = counts_[static_cast<std::size_t>(v)];
    JSWEEP_CHECK_MSG(count > 0, "dependency underflow at vertex " << v);
    if (--count == 0) mark_ready(v);
  }
}

void SweepPatchProgram::compute() {
  // Optional per-patch serialization (patch-angle parallelism ablation).
  std::unique_lock<std::mutex> serialize_lock;
  if (options_.patch_serializer != nullptr)
    serialize_lock = std::unique_lock<std::mutex>(*options_.patch_serializer);

  const sn::Ordinate& ang = shared_.quad->angle(data_.angle().value());
  const std::vector<double>& q = *shared_.q_per_ster;
  const auto& cells = shared_.patches->cells(data_.patch());

  int in_batch = 0;
  while (!ready_.empty() && in_batch < options_.cluster_grain) {
    const std::int32_t v = ready_.top().v;
    ready_.pop();
    ++in_batch;

    const CellId cell = cells[static_cast<std::size_t>(v)];
    const double psi = shared_.disc->sweep_cell(cell, ang, q, flux_);
    phi_[static_cast<std::size_t>(v)] = ang.weight * psi;
    ++computed_;
    if (options_.record_clusters)
      cluster_of_[static_cast<std::size_t>(v)] = next_cluster_;

    // Downwind updates: local vertices may become ready (possibly within
    // this same batch — Listing 1's inner enqueue); remote edges buffer
    // stream items for their destination patch.
    data_.for_out_local(v, [&](const OutLocal& e) {
      if (--counts_[static_cast<std::size_t>(e.w)] == 0) mark_ready(e.w);
    });
    data_.for_out_remote(v, [&](const graph::RemoteOutEdge& e) {
      const auto it = flux_.find(e.face);
      JSWEEP_ASSERT(it != flux_.end());
      out_items_[e.dst_patch].push_back(
          StreamItem{e.dst_cell, e.face, it->second});
    });
    // Lagged (cycle-cut) faces: stage the fresh value for the next sweep,
    // then restore the old iterate so any later reader — regardless of
    // scheduling order — sees the same value the cut promised it.
    stage_lagged_writes(data_, shared_.lagged, v, flux_);
  }
  if (options_.record_clusters && in_batch > 0) ++next_cluster_;

  // Aggregate this batch's items into one stream per destination patch.
  for (auto& [dst_patch, items] : out_items_) {
    if (items.empty()) continue;
    core::Stream s;
    s.src = key();
    s.dst = ProgramKey{dst_patch, TaskTag{data_.angle().value()}};
    s.data = encode_items(items);
    items.clear();
    pending_.push_back(std::move(s));
  }
}

std::optional<core::Stream> SweepPatchProgram::output() {
  if (pending_.empty()) return std::nullopt;
  core::Stream s = std::move(pending_.back());
  pending_.pop_back();
  return s;
}

bool SweepPatchProgram::vote_to_halt() { return ready_.empty(); }

}  // namespace jsweep::sweep
