#include "sweep/sweep_program.hpp"

#include "support/check.hpp"
#include "sweep/group_pipeline.hpp"

namespace jsweep::sweep {

void seed_lagged_faces(const SweepTaskData& data, const LaggedFluxStore* store,
                       GroupId group, sn::FaceFluxWorkspace& flux,
                       int width) {
  if (!data.has_lagged()) return;
  JSWEEP_CHECK_MSG(store != nullptr,
                   "task graph has lagged edges but no LaggedFluxStore");
  // The scale is 1.0 for cycle-cut faces (1.0 · x is bitwise x) and the
  // side's albedo for reflecting-boundary reads.
  for (const auto& s : data.lagged_seed_slots())
    for (int l = 0; l < width; ++l)
      flux.write(s.ws_slot * width + l,
                 s.scale *
                     store->prev_by_slot(s.store_slot, group.value() + l));
}

void stage_lagged_writes(const SweepTaskData& data, LaggedFluxStore* store,
                         GroupId group, std::int32_t v,
                         sn::FaceFluxWorkspace& flux, int width) {
  data.for_lagged_writes(v, [&](const LaggedSlot& s) {
    for (int l = 0; l < width; ++l) {
      const std::int32_t ws = s.ws_slot * width + l;
      JSWEEP_ASSERT(flux.has(ws));
      store->stage_by_slot(s.store_slot, group.value() + l, flux.read(ws));
      flux.write(ws, store->prev_by_slot(s.store_slot, group.value() + l));
    }
  });
}

void WorkspaceLease::reset_for_run(const SweepShared& shared) {
  // The privately owned fallback workspace must never enter the pool.
  if (flux_ != nullptr && flux_ != &owned_ && shared.flux_pool != nullptr)
    shared.flux_pool->release(flux_);  // stale borrow from an aborted run
  flux_ = nullptr;
}

sn::FaceFluxWorkspace& WorkspaceLease::ensure(const SweepShared& shared,
                                              const SweepTaskData& data,
                                              GroupId group, int width) {
  if (flux_ != nullptr) return *flux_;
  // Borrow a workspace sized for this task's face-slot count (times the
  // set width — the lanes of one face sit adjacent); reset is an O(1)
  // epoch bump, so reuse across sweeps and programs costs nothing.
  const std::int64_t slots = data.num_flux_slots() * width;
  if (shared.flux_pool != nullptr) {
    flux_ = shared.flux_pool->acquire(slots);
  } else {
    owned_.prepare(slots);
    flux_ = &owned_;
  }
  // Cycle-cut faces read the previous sweep's flux instead of waiting.
  seed_lagged_faces(data, shared.lagged, group, *flux_, width);
  return *flux_;
}

void WorkspaceLease::release_if(bool done, const SweepShared& shared) {
  if (!done || shared.flux_pool == nullptr || flux_ == nullptr ||
      flux_ == &owned_)
    return;
  shared.flux_pool->release(flux_);
  flux_ = nullptr;
}

void prepare_out_buffers(const SweepTaskData& data,
                         std::vector<std::vector<StreamItem>>& out_items,
                         std::vector<core::Stream>& pending) {
  out_items.resize(static_cast<std::size_t>(data.num_destinations()));
  for (std::int32_t d = 0; d < data.num_destinations(); ++d) {
    auto& items = out_items[static_cast<std::size_t>(d)];
    items.clear();
    items.reserve(static_cast<std::size_t>(data.destination_capacity(d)));
  }
  pending.clear();
  pending.reserve(static_cast<std::size_t>(data.num_destinations()));
}

void flush_out_streams(const SweepTaskData& data, const SweepShared& shared,
                       const ProgramKey& src,
                       std::vector<std::vector<StreamItem>>& out_items,
                       std::vector<core::Stream>& pending) {
  for (std::int32_t d = 0; d < data.num_destinations(); ++d) {
    auto& items = out_items[static_cast<std::size_t>(d)];
    if (items.empty()) continue;
    core::Stream s;
    s.src = src;
    s.dst = ProgramKey{data.destination(d), src.task};
    s.data = shared.stream_buffers != nullptr
                 ? shared.stream_buffers->acquire()
                 : comm::Bytes{};
    encode_items_into(items, s.data);
    items.clear();
    pending.push_back(std::move(s));
  }
}

void prepare_set_out_buffers(
    const SweepTaskData& data, int width,
    std::vector<std::vector<SetStreamRecord>>& out_records,
    std::vector<std::vector<double>>& out_lanes,
    std::vector<core::Stream>& pending) {
  out_records.resize(static_cast<std::size_t>(data.num_destinations()));
  out_lanes.resize(static_cast<std::size_t>(data.num_destinations()));
  for (std::int32_t d = 0; d < data.num_destinations(); ++d) {
    auto& records = out_records[static_cast<std::size_t>(d)];
    auto& lanes = out_lanes[static_cast<std::size_t>(d)];
    records.clear();
    records.reserve(static_cast<std::size_t>(data.destination_capacity(d)));
    lanes.clear();
    lanes.reserve(static_cast<std::size_t>(data.destination_capacity(d)) *
                  static_cast<std::size_t>(width));
  }
  pending.clear();
  pending.reserve(static_cast<std::size_t>(data.num_destinations()));
}

void flush_set_out_streams(
    const SweepTaskData& data, const SweepShared& shared, int width,
    const ProgramKey& src,
    std::vector<std::vector<SetStreamRecord>>& out_records,
    std::vector<std::vector<double>>& out_lanes,
    std::vector<core::Stream>& pending) {
  // Same ascending-destination emission order as the scalar flush.
  for (std::int32_t d = 0; d < data.num_destinations(); ++d) {
    auto& records = out_records[static_cast<std::size_t>(d)];
    if (records.empty()) continue;
    auto& lanes = out_lanes[static_cast<std::size_t>(d)];
    core::Stream s;
    s.src = src;
    s.dst = ProgramKey{data.destination(d), src.task};
    s.data = shared.stream_buffers != nullptr
                 ? shared.stream_buffers->acquire()
                 : comm::Bytes{};
    encode_set_items_into(records, lanes, width, s.data);
    records.clear();
    lanes.clear();
    pending.push_back(std::move(s));
  }
}

SweepPatchProgram::SweepPatchProgram(const SweepTaskData& data,
                                     const SweepShared& shared,
                                     SweepProgramOptions options)
    : core::PatchProgram(
          data.patch(),
          TaskTag{sweep_task_tag(data.angle(), options.group,
                                 shared.quad->num_angles())
                      .value() +
                  options.lane_tag_offset}),
      data_(data),
      shared_(shared),
      options_(options) {
  JSWEEP_CHECK(options_.cluster_grain >= 1);
  JSWEEP_CHECK(options_.group.value() >= 0);
  JSWEEP_CHECK(options_.lane_tag_offset >= 0);
  JSWEEP_CHECK_MSG(options_.group.value() == 0 || shared_.pipeline != nullptr,
                   "group > 0 programs need a GroupPipeline");
  if (shared_.pipeline != nullptr) {
    JSWEEP_CHECK(options_.group.value() < shared_.pipeline->num_sets());
    set_width_ = shared_.pipeline->set_width_of(options_.group);
    group_base_ = shared_.pipeline->set_base(options_.group);
  }
}

void SweepPatchProgram::mark_ready(std::int32_t v) {
  ready_.push(ReadyEntry{data_.vertex_priority(v), v});
}

void SweepPatchProgram::init() {
  counts_ = data_.initial_counts();
  ready_ = {};
  for (std::int32_t v = 0; v < data_.num_vertices(); ++v)
    if (counts_[static_cast<std::size_t>(v)] == 0) mark_ready(v);
  // The workspace itself is borrowed lazily (WorkspaceLease::ensure) on
  // the first input or compute that touches flux.
  lease_.reset_for_run(shared_);
  if (set_width_ > 1)
    prepare_set_out_buffers(data_, set_width_, out_records_, out_lanes_,
                            pending_);
  else
    prepare_out_buffers(data_, out_items_, pending_);
  phi_.assign(static_cast<std::size_t>(data_.num_vertices()) *
                  static_cast<std::size_t>(set_width_),
              0.0);
  computed_ = 0;
  if (options_.record_clusters) {
    cluster_of_.assign(static_cast<std::size_t>(data_.num_vertices()), -1);
    next_cluster_ = 0;
  }
  gate_open_ =
      shared_.pipeline == nullptr || options_.group == GroupId{0};
  completion_reported_ = false;
}

void SweepPatchProgram::input(const core::Stream& s) {
  JSWEEP_CHECK_MSG(s.dst == key(), "stream for " << s.dst << " delivered to "
                                                 << key());
  JSWEEP_CHECK_MSG(computed_ < data_.num_vertices(),
                   "stream delivered to " << key()
                                          << " after it retired all work");
  if (s.data.empty()) {  // group-activation marker: sources are ready
    gate_open_ = true;
    if (shared_.pipeline != nullptr)
      shared_.pipeline->note_gate_opened(data_.patch(), options_.group);
    return;
  }
  sn::FaceFluxWorkspace& flux =
      lease_.ensure(shared_, data_, lag_group(), set_width_);
  const auto deliver = [&](std::int64_t dst_cell) {
    const CellId cell{dst_cell};
    JSWEEP_ASSERT(shared_.patches->patch_of(cell) == data_.patch());
    const std::int32_t v = shared_.patches->local_index(cell);
    auto& count = counts_[static_cast<std::size_t>(v)];
    JSWEEP_CHECK_MSG(count > 0, "dependency underflow at vertex " << v);
    if (--count == 0) mark_ready(v);
  };
  if (set_width_ > 1) {
    // One record carries the whole set's lane fluxes for a face — one
    // dependency decrement per face delivery, exactly like the scalar path.
    for_each_set_item(
        s.data, set_width_,
        [&](std::int64_t cell, std::int64_t face, const double* lanes) {
          const std::int32_t slot = data_.slot_of_remote_in(face);
          for (int l = 0; l < set_width_; ++l)
            flux.write(slot * set_width_ + l, lanes[l]);
          deliver(cell);
        });
  } else {
    for_each_item(s.data, [&](const StreamItem& item) {
      flux.write(data_.slot_of_remote_in(item.face), item.value);
      deliver(item.cell);
    });
  }
}

void SweepPatchProgram::compute() {
  // Gated (group > 0) programs buffer inputs but compute nothing until the
  // pipeline injects this group on this patch.
  if (!gate_open_) return;

  // Optional per-patch serialization (patch-angle parallelism ablation).
  std::unique_lock<std::mutex> serialize_lock;
  if (options_.patch_serializer != nullptr)
    serialize_lock = std::unique_lock<std::mutex>(*options_.patch_serializer);

  const sn::Ordinate& ang = shared_.quad->angle(data_.angle().value());
  // Group-aware solves resolve kernel and source per set; single-group
  // solves use the solver-installed pair directly.
  const sn::Discretization* disc = shared_.disc;
  const std::vector<double>* q_ptr = shared_.q_per_ster;
  const double* sigma_t_lanes = nullptr;
  if (shared_.pipeline != nullptr) {
    // The base group's kernel carries the geometry; the batched kernel
    // takes the set's strided σ_t explicitly.
    disc = shared_.pipeline->group_disc(GroupId{group_base_});
    q_ptr = &shared_.pipeline->q_set(options_.group);
    sigma_t_lanes = shared_.pipeline->sigma_t_set(options_.group).data();
  }
  const std::vector<double>& q = *q_ptr;
  const auto& cells = shared_.patches->cells(data_.patch());

  int in_batch = 0;
  while (!ready_.empty() && in_batch < options_.cluster_grain) {
    sn::FaceFluxWorkspace& flux =
        lease_.ensure(shared_, data_, lag_group(), set_width_);
    const std::int32_t v = ready_.top().v;
    ready_.pop();
    ++in_batch;

    const CellId cell = cells[static_cast<std::size_t>(v)];
    if (set_width_ > 1) {
      const sn::FaceFluxSetView view{&flux, &data_.cell_slots(v),
                                     set_width_};
      double psi[sn::kMaxGroupSetWidth];
      disc->sweep_cell_set(cell, ang, set_width_, q.data(), sigma_t_lanes,
                           view, psi);
      for (int l = 0; l < set_width_; ++l)
        phi_[static_cast<std::size_t>(v) *
                 static_cast<std::size_t>(set_width_) +
             static_cast<std::size_t>(l)] = ang.weight * psi[l];
    } else {
      const sn::FaceFluxView view{&flux, &data_.cell_slots(v)};
      const double psi = disc->sweep_cell(cell, ang, q, view);
      phi_[static_cast<std::size_t>(v)] = ang.weight * psi;
    }
    ++computed_;
    if (options_.record_clusters)
      cluster_of_[static_cast<std::size_t>(v)] = next_cluster_;

    // Downwind updates: local vertices may become ready (possibly within
    // this same batch — Listing 1's inner enqueue); remote edges buffer
    // stream items for their destination patch.
    data_.for_out_local(v, [&](const OutLocal& e) {
      if (--counts_[static_cast<std::size_t>(e.w)] == 0) mark_ready(e.w);
    });
    if (set_width_ > 1) {
      data_.for_out_remote(v, [&](const RemoteOut& e) {
        out_records_[static_cast<std::size_t>(e.dst)].push_back(
            SetStreamRecord{e.dst_cell, e.face});
        auto& lanes = out_lanes_[static_cast<std::size_t>(e.dst)];
        for (int l = 0; l < set_width_; ++l) {
          const std::int32_t ws = e.slot * set_width_ + l;
          JSWEEP_ASSERT(flux.has(ws));
          lanes.push_back(flux.read(ws));
        }
      });
    } else {
      data_.for_out_remote(v, [&](const RemoteOut& e) {
        JSWEEP_ASSERT(flux.has(e.slot));
        out_items_[static_cast<std::size_t>(e.dst)].push_back(
            StreamItem{e.dst_cell, e.face, flux.read(e.slot)});
      });
    }
    // Lagged (cycle-cut) faces: stage the fresh value for the next sweep,
    // then restore the old iterate so any later reader — regardless of
    // scheduling order — sees the same value the cut promised it.
    stage_lagged_writes(data_, shared_.lagged, lag_group(), v, flux,
                        set_width_);
  }
  if (options_.record_clusters && in_batch > 0) ++next_cluster_;

  if (set_width_ > 1)
    flush_set_out_streams(data_, shared_, set_width_, key(), out_records_,
                          out_lanes_, pending_);
  else
    flush_out_streams(data_, shared_, key(), out_items_, pending_);
  // All vertices retired: the workspace has served its purpose — return it
  // so a not-yet-finished program can reuse the allocation.
  const bool done = computed_ == data_.num_vertices();
  lease_.release_if(done, shared_);
  // Multigroup: tell the pipeline this (patch, angle, group) retired; the
  // patch's last angle accumulates φ, forms group g+1's source and appends
  // its activation streams to pending_.
  if (done && !completion_reported_ && shared_.pipeline != nullptr) {
    completion_reported_ = true;
    shared_.pipeline->on_program_complete(data_.patch(), options_.group,
                                          key(), pending_);
  }
}

std::optional<core::Stream> SweepPatchProgram::output() {
  if (pending_.empty()) return std::nullopt;
  core::Stream s = std::move(pending_.back());
  pending_.pop_back();
  return s;
}

bool SweepPatchProgram::vote_to_halt() {
  return !gate_open_ || ready_.empty();
}

}  // namespace jsweep::sweep
