#pragma once

/// \file service.hpp
/// Sweep-as-a-service: one engine serving many solve requests.
///
/// A **SweepService** accepts solve requests (a shared SweepPlan + the
/// per-request cross sections / source and convergence options), batches
/// requests that share a plan, and runs each batch's source iterations in
/// lockstep over ONE data-driven engine: every request lane registers its
/// programs under its own TaskTag namespace (lane_task_tag), so one engine
/// run sweeps all active lanes concurrently. RHS batching amortizes the
/// task-graph traversal across requests exactly like group pipelining
/// amortizes it across energy groups — the per-vertex scheduling machinery
/// runs once per run, not once per request — while the plan amortizes the
/// build across the whole request stream.
///
/// Determinism: each lane keeps its own φ accumulation order (fixed
/// program order per lane) and its own collectives (issued in lane order),
/// so a batched solve is bitwise identical to the same request solved
/// standalone (with the default max_lag_sweeps = 1 on cut meshes; deeper
/// lag loops share their repeat count across the batch). Lanes that
/// converge early are disabled (core::Engine::set_program_enabled) and
/// stop contributing work to subsequent runs.
///
/// All calls are collective: every rank must enqueue the identical request
/// sequence and call drain() together.

#include <memory>
#include <vector>

#include "sweep/session.hpp"

namespace jsweep::sweep {

/// Construction-time knobs of the service.
struct ServiceConfig {
  int num_workers = 2;  ///< worker threads of each per-plan engine
  /// Max same-plan requests fused into one engine-run batch (= request
  /// lanes per plan engine).
  int max_batch = 4;
  /// Lag-loop depth per sweep on cut (cyclic) meshes; 1 (the default)
  /// keeps batched solves bitwise identical to standalone sessions.
  int max_lag_sweeps = 1;
  double lag_tolerance = 0.0;  ///< stop the lag loop below this residual
  /// When non-null, the service, its engines and its lane sessions publish
  /// live metrics into this registry: request-latency and batch-size
  /// histograms, lane occupancy, retired-lane counts, plus everything the
  /// engines and sessions emit (metrics/metrics.hpp). Null (default) = off.
  metrics::Registry* metrics = nullptr;
};

/// One solve request: a shared plan plus everything this request varies.
struct SolveRequest {
  /// The immutable plan to solve against (single-group; multigroup plans
  /// solve through a standalone SweepSession).
  std::shared_ptr<const SweepPlan> plan;
  /// Per-cell cross sections and external source driving the outer source
  /// iteration (must cover the plan's cells and outlive drain()).
  const sn::CellXs* xs = nullptr;
  /// Outer-iteration convergence control.
  sn::SourceIterationOptions options{};
  /// Optional per-request sweep kernel (request-specific σ_t over the
  /// plan's mesh; must outlive drain()). Null = the plan's kernel.
  const sn::Discretization* disc = nullptr;
};

/// Outcome of one serviced request.
struct SolveResponse {
  sn::SourceIterationResult result;  ///< converged flux + iteration info
  int lanes_in_batch = 1;  ///< requests fused into this request's batch
};

/// Counters accumulated across the service's lifetime.
struct ServiceStats {
  std::int64_t requests = 0;     ///< requests admitted via enqueue()
  std::int64_t batches = 0;      ///< same-plan batches executed
  std::int64_t engine_runs = 0;  ///< engine runs across all batches
  std::int64_t sweeps = 0;       ///< per-lane transport sweeps executed
  double solve_seconds = 0.0;    ///< wall time spent inside drain()
};

/// The multi-request sweep service (see \ref service.hpp). One instance
/// per rank; engines and request lanes are cached per plan, so a request
/// stream over a fixed plan pays the session/program build once.
class SweepService {
 public:
  /// `ctx` must match every enqueued plan's build rank/size and outlive
  /// the service.
  SweepService(comm::Context& ctx, ServiceConfig config = {});
  ~SweepService();  ///< drops cached engines and lanes

  SweepService(const SweepService&) = delete;             ///< non-copyable
  SweepService& operator=(const SweepService&) = delete;  ///< non-copyable

  /// Admit a request (validated up front: plan shape, CellXs sizes and
  /// values — malformed requests throw here, not mid-solve). Collective:
  /// every rank must enqueue the identical sequence.
  void enqueue(SolveRequest request);

  /// Solve everything enqueued and return the responses in enqueue order.
  /// Requests sharing a plan are fused into batches of up to
  /// ServiceConfig::max_batch lanes. Collective.
  std::vector<SolveResponse> drain();

  /// Convenience: enqueue one request and drain immediately. Collective.
  SolveResponse solve(SolveRequest request);

  /// Counters accumulated so far.
  [[nodiscard]] const ServiceStats& stats() const { return stats_; }

 private:
  /// Cached per-plan execution rig: one engine + max_batch request lanes.
  struct PlanRig {
    std::shared_ptr<const SweepPlan> plan;      ///< keeps the plan alive
    std::unique_ptr<core::Engine> engine;       ///< shared by all lanes
    std::vector<std::unique_ptr<SweepSession>> lanes;  ///< tag-offset lanes
  };

  PlanRig& rig_for(const std::shared_ptr<const SweepPlan>& plan);
  void set_lane_enabled(PlanRig& rig, std::size_t lane, bool enabled);
  /// Run the lockstep source iterations of one same-plan batch;
  /// `indices` point into `queue_`, responses land in `out`.
  void solve_batch(PlanRig& rig, const std::vector<std::size_t>& indices,
                   std::vector<SolveResponse>& out);

  comm::Context& ctx_;
  ServiceConfig config_;
  std::vector<SolveRequest> queue_;
  std::vector<std::unique_ptr<PlanRig>> rigs_;
  ServiceStats stats_;

  // Live instruments, created once at construction when config_.metrics is
  // set (all null otherwise).
  metrics::Counter* metric_requests_ = nullptr;
  metrics::Counter* metric_batches_ = nullptr;
  metrics::Counter* metric_engine_runs_ = nullptr;
  metrics::Counter* metric_retired_lanes_ = nullptr;
  metrics::Histogram* metric_request_latency_ = nullptr;
  metrics::Histogram* metric_batch_size_ = nullptr;
  metrics::Gauge* metric_lane_occupancy_ = nullptr;
};

}  // namespace jsweep::sweep
