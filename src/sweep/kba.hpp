#pragma once

/// \file kba.hpp
/// Koch–Baker–Alcouffe (KBA) sweep for regular structured meshes — the
/// classic wavefront algorithm the paper positions JSweep against (Sec. I,
/// Table I). The 3-D mesh is decomposed into a 2-D Px×Py grid of columns
/// (each rank owns a full-z pencil); sweeps pipeline along z in blocks of
/// `z_block` planes, per angle, so downstream ranks start as soon as the
/// first block's boundary fluxes arrive.
///
/// Only meaningful for rectangular structured meshes — which is exactly the
/// paper's point: on unstructured or deforming meshes this decomposition
/// does not exist.

#include <map>
#include <vector>

#include "comm/cluster.hpp"
#include "sn/discretization.hpp"
#include "sn/quadrature.hpp"
#include "sn/source_iteration.hpp"

namespace jsweep::sweep {

/// Process-grid and pipelining knobs of the KBA baseline.
struct KbaConfig {
  int px = 1;       ///< process-grid extent in x (px*py must equal ranks)
  int py = 1;       ///< process-grid extent in y
  int z_block = 4;  ///< planes per pipeline stage
};

/// Per-sweep counters of the KBA baseline.
struct KbaStats {
  double elapsed_seconds = 0.0;  ///< wall time of the last sweep
  double wait_seconds = 0.0;     ///< time blocked on upwind planes
  std::int64_t messages = 0;     ///< plane messages sent
  std::int64_t bytes = 0;        ///< plane payload bytes sent
};

/// The KBA wavefront sweeper (see \ref kba.hpp). One instance per rank.
class KbaSolver {
 public:
  /// `disc` and `quad` must outlive the solver; the mesh must be
  /// rectangular structured and divide evenly into the px×py grid.
  KbaSolver(comm::Context& ctx, const sn::StructuredDD& disc,
            const sn::Quadrature& quad, KbaConfig config);

  /// One full sweep over all angles; returns the global scalar flux
  /// (identical on every rank). Collective.
  std::vector<double> sweep(const std::vector<double>& q_per_ster);

  /// Adapter for sn::source_iteration.
  [[nodiscard]] sn::SweepOperator as_operator() {
    return [this](const std::vector<double>& q) { return sweep(q); };
  }

  /// Last sweep's counters.
  [[nodiscard]] const KbaStats& stats() const { return stats_; }

 private:
  struct PlaneKey {
    int angle;
    int block;
    int axis;  // 0 = x-plane, 1 = y-plane
    auto operator<=>(const PlaneKey&) const = default;
  };

  [[nodiscard]] RankId rank_at(int rx, int ry) const {
    return RankId{ry * config_.px + rx};
  }

  std::vector<double> recv_plane(const PlaneKey& key);
  void send_plane(RankId dest, const PlaneKey& key,
                  const std::vector<double>& values);

  comm::Context& ctx_;
  const sn::StructuredDD& disc_;
  const sn::Quadrature& quad_;
  KbaConfig config_;
  KbaStats stats_;

  int rx_ = 0;  ///< this rank's position in the process grid
  int ry_ = 0;
  int x_lo_ = 0, x_hi_ = 0;  ///< owned cell ranges (half-open)
  int y_lo_ = 0, y_hi_ = 0;

  std::map<PlaneKey, std::vector<double>> plane_buffer_;
};

}  // namespace jsweep::sweep
