#include "sweep/eigen.hpp"

#include <cmath>
#include <utility>

#include "support/check.hpp"
#include "support/ids.hpp"
#include "support/timer.hpp"
#include "sweep/sweep_data.hpp"

namespace jsweep::sweep {

namespace {

/// The production integral F = Σ_c S(c) · V(c), ascending cell order —
/// the shared deterministic reduction of both drivers.
double production_integral(const std::vector<double>& s,
                           const sn::Discretization& disc) {
  double f = 0.0;
  for (std::int64_t c = 0; c < static_cast<std::int64_t>(s.size()); ++c)
    f += s[static_cast<std::size_t>(c)] * disc.cell_volume(CellId{c});
  return f;
}

/// The power-iteration core shared by the serial and parallel drivers:
/// `transport_solve` runs one multigroup solve against the sources
/// currently stored in `xs`. Every floating-point operation outside the
/// transport solve lives here, in one fixed order — the two drivers can
/// only diverge if their transport solves do.
EigenResult power_iteration(
    sn::MultigroupXs& xs, const sn::FissionXs& fission,
    const sn::Discretization& disc, const EigenOptions& options,
    const std::function<sn::MultigroupResult()>& transport_solve) {
  WallTimer timer;
  xs.validate();
  fission.validate();
  JSWEEP_CHECK_MSG(fission.groups() == xs.groups() &&
                       fission.cells() == xs.cells(),
                   "fission table covers " << fission.groups() << "×"
                                           << fission.cells()
                                           << " but the transport XS "
                                           << xs.groups() << "×"
                                           << xs.cells());
  JSWEEP_CHECK_MSG(options.max_outer_iterations >= 1,
                   "EigenOptions::max_outer_iterations must be >= 1");
  const int G = xs.groups();
  const std::int64_t n = xs.cells();
  JSWEEP_CHECK(disc.num_cells() == n);

  EigenResult result;
  result.fission_source.assign(static_cast<std::size_t>(n), 1.0);
  double f_old = production_integral(result.fission_source, disc);

  const std::int64_t built_before = SweepTaskData::total_created();
  for (int outer = 0; outer < options.max_outer_iterations; ++outer) {
    // Stage this outer's fixed source Q_g(c) = χ_g · S(c) / k. The
    // transport solve snapshots its group views per call, so the rewrite
    // is visible to the very next solve and to nothing that is running.
    for (std::int64_t c = 0; c < n; ++c)
      for (int g = 0; g < G; ++g)
        xs.source(g, c) = fission.chi(g) *
                          result.fission_source[static_cast<std::size_t>(c)] /
                          result.k;

    sn::MultigroupResult mg = transport_solve();
    result.stats.transport_sweeps += mg.total_sweeps;

    std::vector<double> s_new = fission.production(mg.phi);
    const double f_new = production_integral(s_new, disc);
    JSWEEP_CHECK_MSG(f_new > 0.0,
                     "fission production vanished at outer " << outer + 1);

    const double k_new = result.k * (f_new / f_old);
    // Scale-invariant source change: compare the new iterate rescaled to
    // the old one's production, so a uniform amplitude drift (absorbed
    // into k) does not mask or fake convergence.
    const double rescale = f_old / f_new;
    double diff = 0.0;
    double scale = 0.0;
    for (std::int64_t c = 0; c < n; ++c) {
      const auto i = static_cast<std::size_t>(c);
      diff = std::max(diff,
                      std::abs(s_new[i] * rescale - result.fission_source[i]));
      scale = std::max(scale, std::abs(result.fission_source[i]));
    }
    result.fission_error = scale > 0.0 ? diff / scale : diff;
    result.k_error = std::abs(k_new - result.k) / std::abs(k_new);

    result.k = k_new;
    result.fission_source = std::move(s_new);
    result.phi = std::move(mg.phi);
    f_old = f_new;
    result.outer_iterations = outer + 1;
    if (result.k_error <= options.k_tolerance &&
        result.fission_error <= options.fission_tolerance) {
      result.converged = true;
      break;
    }
  }
  result.stats.task_data_built =
      SweepTaskData::total_created() - built_before;
  result.stats.solve_seconds = timer.seconds();
  return result;
}

}  // namespace

EigenResult solve_k_eigenvalue(comm::Context& ctx,
                               const std::shared_ptr<const SweepPlan>& plan,
                               sn::MultigroupXs& xs,
                               const sn::FissionXs& fission,
                               const EigenOptions& options,
                               const SolveConfig& solve) {
  JSWEEP_CHECK_MSG(plan != nullptr, "k-eigenvalue solve needs a plan");
  JSWEEP_CHECK_MSG(plan->config().multigroup == &xs,
                   "the plan must be built against the very MultigroupXs "
                   "passed here (PlanConfig::multigroup == &xs) — the "
                   "driver rewrites its sources between outers");
  return power_iteration(xs, fission, plan->disc(), options,
                         [&ctx, &plan, &options, &solve]() {
                           // Fresh session per outer: lagged/boundary
                           // iterates restart from zero, exactly like the
                           // serial reference's fresh sweepers. The plan
                           // (graphs, slots, couplings) is shared.
                           SweepSession session(ctx, plan, solve);
                           return session.solve_multigroup(options.multigroup);
                         });
}

EigenResult solve_k_eigenvalue_serial(
    sn::MultigroupXs& xs, const sn::FissionXs& fission,
    const sn::Discretization& disc,
    const std::function<sn::MultigroupSweepPass()>& make_pass,
    const EigenOptions& options) {
  JSWEEP_CHECK_MSG(make_pass != nullptr,
                   "k-eigenvalue solve needs a pass factory");
  return power_iteration(xs, fission, disc, options,
                         [&xs, &make_pass, &options]() {
                           const sn::MultigroupSweepPass pass = make_pass();
                           return sn::solve_multigroup_sweeps(
                               xs, pass, options.multigroup);
                         });
}

}  // namespace jsweep::sweep
