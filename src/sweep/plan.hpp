#pragma once

/// \file plan.hpp
/// The immutable half of the two-phase solver lifecycle.
///
/// A **SweepPlan** is everything about a sweep that depends only on
/// (mesh, partition, quadrature, plan knobs) and on nothing a solve
/// request brings along: the per-(patch, angle) dependency graphs with
/// their interned dense face-flux slots (SweepTaskData), the SCC cycle
/// cuts and the lagged-slot layout, the per-group kernels, and the
/// two-level LDCP scheduling priorities. Build it once with
/// SweepPlan::build(); it is deeply const afterwards and safely shareable
/// (std::shared_ptr<const SweepPlan>) between any number of SweepSessions,
/// including sessions on different threads — the provably-reusable
/// precomputation the paper's constant-mesh assumption (Sec. V-E) and the
/// Adams et al. optimal-sweeps argument both rest on.
///
/// Everything a request varies — sources, cross sections, workspaces,
/// engines, lagged *values* — lives in SweepSession (session.hpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "graph/priority.hpp"
#include "sn/multigroup.hpp"
#include "sweep/sweep_data.hpp"

namespace jsweep::sweep {

/// What to do when a sweep direction's dependence graph has cycles
/// (non-convex / twisted / perturbed unstructured meshes).
enum class CyclePolicy {
  /// Trust the mesh: skip detection entirely (the pre-cycle-aware
  /// behavior — a genuinely cyclic mesh then hangs the engines).
  Assume,
  /// Detect at build time and throw with SCC diagnostics instead of
  /// deadlocking at run time. The default.
  Error,
  /// Detect, cut a minimal feedback-edge set per direction and run the
  /// acyclic remainder; cut faces read the previous sweep's flux (lagged /
  /// old-iterate inputs) and converge over (source) iterations.
  Lag,
};

/// Human-readable name of a cycle policy ("assume" | "error" | "lag").
[[nodiscard]] std::string to_string(CyclePolicy p);
/// Inverse of to_string(CyclePolicy); throws CheckError on unknown names.
[[nodiscard]] CyclePolicy cycle_policy_from_string(const std::string& name);

/// Calibrated scheduling knobs a plan carries for the sessions executing
/// it — the auto-tuner's output (sweep/autotune.hpp). Sessions resolve
/// their SolveConfig's "auto" (-1) knobs against this; explicit SolveConfig
/// values and the JSWEEP_* environment overrides still win.
struct PlanTuning {
  /// Group-set width the tuner selected (informational once the plan is
  /// built — the width is structural and fixed at build time).
  int group_set_width = 1;
  bool work_stealing = true;  ///< steal between engine workers
  int steal_spin_rounds = 64;  ///< spin budget before a worker blocks
};

/// The structure-determining knobs of a plan — everything that shapes the
/// immutable task system. Execution-time knobs (engine choice, workers,
/// lag iteration control, tracing) live in SolveConfig (session.hpp).
struct PlanConfig {
  int cluster_grain = 64;  ///< max vertices per compute() batch (Sec. V-C)
  /// Orders a rank's programs (angle-major combined priority, Sec. V-D).
  graph::PriorityStrategy patch_priority = graph::PriorityStrategy::SLBD;
  /// Orders ready vertices within one program.
  graph::PriorityStrategy vertex_priority = graph::PriorityStrategy::SLBD;
  /// false = serialize all angles of a patch (the pre-JSweep model).
  bool patch_angle_parallelism = true;
  /// Cyclic-dependence handling (see CyclePolicy).
  CyclePolicy cycle_policy = CyclePolicy::Error;
  /// Multigroup plan: group-wise cross sections (must outlive the plan).
  /// Non-null builds the group-aware task system; sessions then solve via
  /// solve_multigroup() (or sweep_group() when `group_pipelining` is off).
  /// Null = the classic single-group plan.
  const sn::MultigroupXs* multigroup = nullptr;
  /// true (default): one engine run per multigroup pass sweeps all groups,
  /// (patch, angle, group) programs pipelined via activation streams.
  /// false: one engine run per group per pass with a global barrier
  /// between groups — the pipelining-ablation baseline. Both modes compute
  /// bitwise-identical fluxes.
  bool group_pipelining = true;
  /// Group-set width W (Adams-style groupset aggregation): pipelined
  /// multigroup plans build one program per (patch, angle, SET) where set
  /// s covers groups [s*W, min((s+1)*W, G)), cutting program count and
  /// activation traffic by W and batching the kernel inner loop across the
  /// set's groups (SIMD lanes). The scheme's in-scatter bound follows W in
  /// every mode (see sn::MultigroupOptions::group_set_width); W == 1 is
  /// the classic per-group system, bitwise unchanged. Requires multigroup;
  /// 1 <= W <= sn::kMaxGroupSetWidth.
  int group_set_width = 1;
  /// Calibrated scheduling knobs (normally the auto-tuner's pick,
  /// sweep/autotune.hpp) that sessions resolve their "auto" SolveConfig
  /// knobs against. Scheduling-only — does not shape the task system, but
  /// rides on the plan so every session of a tuned plan inherits the
  /// calibration. nullopt = untuned (engine defaults apply).
  std::optional<PlanTuning> tuning;
};

/// One engine-registrable program of the plan: index of its (shared,
/// group-independent) SweepTaskData, its group set, and its static
/// scheduling priority.
struct PlanProgram {
  std::size_t data_index = 0;  ///< into SweepPlan task data
  /// Group *set* this program sweeps for group-pipelined plans (set s =
  /// groups [s*W, min((s+1)*W, G))); always GroupId{0} otherwise.
  GroupId group{0};
  double priority = 0.0;       ///< combined (task, patch) priority
};

/// The immutable, shareable sweep plan (see \ref plan.hpp). All accessors
/// are const and thread-safe; `ps`, `disc`, `quad` (and `config.multigroup`
/// when set) must outlive the plan, which in turn must outlive every
/// session created from it (sessions hold the shared_ptr).
class SweepPlan {
 public:
  /// Build a structured-mesh plan on this rank. Collective in spirit —
  /// every rank must build the identical plan ( `patch_owner[p]` identical
  /// on all ranks); validation failures throw CheckError up front.
  [[nodiscard]] static std::shared_ptr<const SweepPlan> build(
      comm::Context& ctx, const mesh::StructuredMesh& m,
      const partition::PatchSet& ps, std::vector<RankId> patch_owner,
      const sn::StructuredDD& disc, const sn::Quadrature& quad,
      PlanConfig config = {});

  /// Unstructured-mesh plan.
  [[nodiscard]] static std::shared_ptr<const SweepPlan> build(
      comm::Context& ctx, const mesh::TetMesh& m,
      const partition::PatchSet& ps, std::vector<RankId> patch_owner,
      const sn::TetStep& disc, const sn::Quadrature& quad,
      PlanConfig config = {});

  SweepPlan(const SweepPlan&) = delete;             ///< non-copyable
  SweepPlan& operator=(const SweepPlan&) = delete;  ///< non-copyable
  ~SweepPlan();  ///< plain release; sessions keep the plan alive

  /// The knobs this plan was built with.
  [[nodiscard]] const PlanConfig& config() const { return config_; }
  /// Cell ↔ patch maps the plan was built over.
  [[nodiscard]] const partition::PatchSet& patches() const { return *ps_; }
  /// Owner rank of every patch (the engine route table).
  [[nodiscard]] const std::vector<RankId>& patch_owner() const {
    return owner_;
  }
  /// Ordinate set of the plan.
  [[nodiscard]] const sn::Quadrature& quadrature() const { return *quad_; }
  /// The base (single-group) sweep kernel the plan was built against.
  [[nodiscard]] const sn::Discretization& disc() const { return *disc_; }
  /// Ordinates per group.
  [[nodiscard]] int num_angles() const { return quad_->num_angles(); }
  /// Energy groups of the solve (1 for single-group plans).
  [[nodiscard]] int num_groups() const {
    return config_.multigroup != nullptr ? config_.multigroup->groups() : 1;
  }
  /// Program sets per (patch, angle): num_group_sets() when the plan is
  /// group-pipelined, 1 otherwise (single-group task system).
  [[nodiscard]] int groups_built() const { return groups_built_; }
  /// Group-set width W the plan was built with (1 unless configured).
  [[nodiscard]] int group_set_width() const {
    return config_.group_set_width;
  }
  /// Group sets of the solve: ceil(num_groups() / W). The final set is
  /// ragged when W does not divide G.
  [[nodiscard]] int num_group_sets() const {
    return (num_groups() + config_.group_set_width - 1) /
           config_.group_set_width;
  }
  /// Group g's kernel (σ_t varies by group); empty for single-group plans.
  [[nodiscard]] const sn::Discretization* group_disc(int g) const {
    return group_discs_[static_cast<std::size_t>(g)].get();
  }
  /// Task tags one session occupies: groups_built() · num_angles(). A
  /// service lane's tag offset is lane · tags_per_request().
  [[nodiscard]] int tags_per_request() const {
    return groups_built_ * quad_->num_angles();
  }

  /// Patches owned by the building rank, ascending.
  [[nodiscard]] const std::vector<PatchId>& local_patches() const {
    return local_patches_;
  }
  /// Engine-registrable programs of this rank (angle-major fixed order —
  /// the deterministic φ collection order).
  [[nodiscard]] const std::vector<PlanProgram>& programs() const {
    return programs_;
  }
  /// Structural task data of program slot `data_index`.
  [[nodiscard]] const SweepTaskData& task_data(std::size_t i) const {
    return *task_data_[i];
  }

  /// True when any direction needed a cycle cut.
  [[nodiscard]] bool has_cycles() const { return cyclic_angles_ > 0; }
  /// True when sessions carry lagged old-iterate values — cycle cuts or
  /// reflecting/albedo boundary faces — and must commit their store after
  /// every engine run.
  [[nodiscard]] bool has_lagged() const { return !lagged_template_.empty(); }
  /// Slot-layout template of the lagged (cycle-cut and boundary-coupled)
  /// face store: slots registered, values zero. Sessions copy it so every
  /// request starts from the vacuum initial iterate with the identical
  /// slot layout the task data was interned against.
  [[nodiscard]] const LaggedFluxStore& lagged_template() const {
    return lagged_template_;
  }
  /// Accumulated SCC diagnostics over all cut directions.
  [[nodiscard]] const graph::CycleStats& cycle_stats() const {
    return cycle_stats_;
  }
  /// Directions that needed a cut.
  [[nodiscard]] int cyclic_angles() const { return cyclic_angles_; }

  /// Wall time of the build (graphs, cuts, interning, priorities).
  [[nodiscard]] double build_seconds() const { return build_seconds_; }
  /// Rank the plan was built on (sessions must execute on the same rank).
  [[nodiscard]] RankId built_rank() const { return built_rank_; }
  /// Cluster size the plan was built for.
  [[nodiscard]] int built_size() const { return built_size_; }

 private:
  SweepPlan() = default;

  // Shared build core, parameterized over the mesh type via builder
  // lambdas (same shape the old SweepSolver used).
  static std::shared_ptr<const SweepPlan> build_impl(
      comm::Context& ctx, std::int64_t mesh_cells,
      const partition::PatchSet& ps, std::vector<RankId> patch_owner,
      const sn::Discretization& disc, const sn::Quadrature& quad,
      PlanConfig config,
      const std::function<std::unique_ptr<sn::Discretization>(
          const sn::CellXs&)>& disc_builder,
      const std::function<graph::PatchTaskGraph(
          PatchId, const mesh::Vec3&, AngleId, const graph::CycleCut*)>&
          task_builder,
      const std::function<graph::Digraph(const mesh::Vec3&)>&
          patch_digraph_builder,
      const std::function<graph::CycleCut(const mesh::Vec3&)>& cut_builder,
      const std::function<void(LaggedFluxStore&)>& boundary_registrar,
      const std::function<BoundaryCoupling(PatchId, AngleId,
                                           const LaggedFluxStore&)>&
          boundary_builder);

  PlanConfig config_;
  const partition::PatchSet* ps_ = nullptr;
  const sn::Quadrature* quad_ = nullptr;
  const sn::Discretization* disc_ = nullptr;
  std::vector<RankId> owner_;
  std::vector<PatchId> local_patches_;

  /// Per-group kernels (empty unless multigroup; index = group).
  std::vector<std::unique_ptr<sn::Discretization>> group_discs_;
  int groups_built_ = 1;

  LaggedFluxStore lagged_template_;
  std::vector<std::unique_ptr<SweepTaskData>> task_data_;
  std::vector<PlanProgram> programs_;

  graph::CycleStats cycle_stats_;
  int cyclic_angles_ = 0;
  double build_seconds_ = 0.0;
  RankId built_rank_{0};
  int built_size_ = 1;
};

}  // namespace jsweep::sweep
