#include "sweep/coarsened_program.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "sweep/group_pipeline.hpp"

namespace jsweep::sweep {

CoarsenedSweepData::CoarsenedSweepData(const SweepTaskData& fine,
                                       std::vector<std::int32_t> cluster_of,
                                       std::int32_t num_clusters)
    : fine_(fine),
      cluster_of_(std::move(cluster_of)),
      num_clusters_(num_clusters) {
  const auto n = fine_.num_vertices();
  JSWEEP_CHECK(static_cast<std::int32_t>(cluster_of_.size()) == n);
  JSWEEP_CHECK(num_clusters_ > 0);

  members_.resize(static_cast<std::size_t>(num_clusters_));
  for (std::int32_t v = 0; v < n; ++v) {
    const auto c = cluster_of_[static_cast<std::size_t>(v)];
    JSWEEP_CHECK_MSG(c >= 0 && c < num_clusters_,
                     "vertex " << v << " not clustered (run recorded?)");
  }
  // Members must be listed in the recorded *execution* order, which is the
  // order vertices were popped — we reconstruct it per cluster by a local
  // topological pass restricted to the cluster (any topological order of
  // the cluster's internal sub-DAG is a valid execution order).
  {
    // In-degree restricted to intra-cluster edges.
    std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
    for (std::int32_t u = 0; u < n; ++u) {
      const auto cu = cluster_of_[static_cast<std::size_t>(u)];
      fine_.for_out_local(u, [&](const OutLocal& e) {
        JSWEEP_CHECK_MSG(
            cu <= cluster_of_[static_cast<std::size_t>(e.w)],
            "recorded clustering violates execution order on edge "
                << u << "→" << e.w);
        if (cluster_of_[static_cast<std::size_t>(e.w)] == cu)
          ++indeg[static_cast<std::size_t>(e.w)];
      });
    }
    std::vector<std::vector<std::int32_t>> frontier(
        static_cast<std::size_t>(num_clusters_));
    for (std::int32_t v = 0; v < n; ++v)
      if (indeg[static_cast<std::size_t>(v)] == 0)
        frontier[static_cast<std::size_t>(
                     cluster_of_[static_cast<std::size_t>(v)])]
            .push_back(v);
    for (std::int32_t c = 0; c < num_clusters_; ++c) {
      auto& order = members_[static_cast<std::size_t>(c)];
      auto& ready = frontier[static_cast<std::size_t>(c)];
      // Deterministic pop order: ascending vertex id.
      std::sort(ready.begin(), ready.end(), std::greater<>());
      while (!ready.empty()) {
        const auto v = ready.back();
        ready.pop_back();
        order.push_back(v);
        fine_.for_out_local(v, [&](const OutLocal& e) {
          if (cluster_of_[static_cast<std::size_t>(e.w)] == c &&
              --indeg[static_cast<std::size_t>(e.w)] == 0) {
            // Insert keeping descending order (small clusters: linear ok).
            const auto it = std::lower_bound(ready.begin(), ready.end(), e.w,
                                             std::greater<>());
            ready.insert(it, e.w);
          }
        });
      }
    }
    std::int64_t placed = 0;
    for (const auto& m : members_) placed += static_cast<std::int64_t>(m.size());
    JSWEEP_CHECK_MSG(placed == n, "cluster-internal cycle detected");
  }

  // Coarse edges (deduplicated) and initial counts.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t u = 0; u < n; ++u) {
    const auto cu = cluster_of_[static_cast<std::size_t>(u)];
    fine_.for_out_local(u, [&](const OutLocal& e) {
      const auto cw = cluster_of_[static_cast<std::size_t>(e.w)];
      if (cu != cw) edges.emplace_back(cu, cw);
    });
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  succ_off_.assign(static_cast<std::size_t>(num_clusters_) + 1, 0);
  for (const auto& [cu, cw] : edges)
    ++succ_off_[static_cast<std::size_t>(cu) + 1];
  for (std::size_t i = 1; i < succ_off_.size(); ++i)
    succ_off_[i] += succ_off_[i - 1];
  succ_.resize(edges.size());
  {
    std::vector<std::int64_t> cursor(succ_off_.begin(), succ_off_.end() - 1);
    for (const auto& [cu, cw] : edges)
      succ_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cu)]++)] =
          cw;
  }

  initial_counts_.assign(static_cast<std::size_t>(num_clusters_), 0);
  for (const auto& [cu, cw] : edges)
    ++initial_counts_[static_cast<std::size_t>(cw)];
  for (const auto& e : fine_.graph().remote_in)
    ++initial_counts_[static_cast<std::size_t>(
        cluster_of_[static_cast<std::size_t>(e.v)])];
}

CoarsenedSweepProgram::CoarsenedSweepProgram(const CoarsenedSweepData& data,
                                             const SweepShared& shared,
                                             GroupId group)
    : core::PatchProgram(data.fine().patch(),
                         sweep_task_tag(data.fine().angle(), group,
                                        shared.quad->num_angles())),
      data_(data),
      shared_(shared),
      group_(group),
      fine_vertices_(data.fine().num_vertices()) {
  JSWEEP_CHECK_MSG(group_.value() == 0 || shared_.pipeline != nullptr,
                   "group > 0 programs need a GroupPipeline");
  if (shared_.pipeline != nullptr) {
    JSWEEP_CHECK(group_.value() < shared_.pipeline->num_sets());
    set_width_ = shared_.pipeline->set_width_of(group_);
    group_base_ = shared_.pipeline->set_base(group_);
  }
}

void CoarsenedSweepProgram::init() {
  counts_ = data_.initial_counts();
  ready_ = {};
  for (std::int32_t c = 0; c < data_.num_clusters(); ++c)
    if (counts_[static_cast<std::size_t>(c)] == 0) ready_.push(c);
  lease_.reset_for_run(shared_);
  if (set_width_ > 1)
    prepare_set_out_buffers(data_.fine(), set_width_, out_records_,
                            out_lanes_, pending_);
  else
    prepare_out_buffers(data_.fine(), out_items_, pending_);
  phi_.assign(static_cast<std::size_t>(fine_vertices_) *
                  static_cast<std::size_t>(set_width_),
              0.0);
  computed_ = 0;
  gate_open_ = shared_.pipeline == nullptr || group_ == GroupId{0};
  completion_reported_ = false;
}

void CoarsenedSweepProgram::input(const core::Stream& s) {
  JSWEEP_CHECK(s.dst == key());
  JSWEEP_CHECK_MSG(computed_ < fine_vertices_,
                   "stream delivered to " << key()
                                          << " after it retired all work");
  if (s.data.empty()) {  // group-activation marker: sources are ready
    gate_open_ = true;
    if (shared_.pipeline != nullptr)
      shared_.pipeline->note_gate_opened(data_.fine().patch(), group_);
    return;
  }
  sn::FaceFluxWorkspace& flux =
      lease_.ensure(shared_, data_.fine(), lag_group(), set_width_);
  const auto deliver = [&](std::int64_t dst_cell) {
    const std::int32_t v = shared_.patches->local_index(CellId{dst_cell});
    const auto c = data_.cluster_of()[static_cast<std::size_t>(v)];
    auto& count = counts_[static_cast<std::size_t>(c)];
    JSWEEP_CHECK_MSG(count > 0, "coarse dependency underflow at cluster "
                                    << c);
    if (--count == 0) ready_.push(c);
  };
  if (set_width_ > 1) {
    for_each_set_item(
        s.data, set_width_,
        [&](std::int64_t cell, std::int64_t face, const double* lanes) {
          const std::int32_t slot = data_.fine().slot_of_remote_in(face);
          for (int l = 0; l < set_width_; ++l)
            flux.write(slot * set_width_ + l, lanes[l]);
          deliver(cell);
        });
  } else {
    for_each_item(s.data, [&](const StreamItem& item) {
      flux.write(data_.fine().slot_of_remote_in(item.face), item.value);
      deliver(item.cell);
    });
  }
}

void CoarsenedSweepProgram::compute() {
  if (!gate_open_ || ready_.empty()) return;
  sn::FaceFluxWorkspace& flux =
      lease_.ensure(shared_, data_.fine(), lag_group(), set_width_);
  const std::int32_t c = ready_.top();
  ready_.pop();

  const sn::Ordinate& ang =
      shared_.quad->angle(data_.fine().angle().value());
  const sn::Discretization* disc = shared_.disc;
  const std::vector<double>* q_ptr = shared_.q_per_ster;
  const double* sigma_t_lanes = nullptr;
  if (shared_.pipeline != nullptr) {
    disc = shared_.pipeline->group_disc(GroupId{group_base_});
    q_ptr = &shared_.pipeline->q_set(group_);
    sigma_t_lanes = shared_.pipeline->sigma_t_set(group_).data();
  }
  const std::vector<double>& q = *q_ptr;
  const auto& cells = shared_.patches->cells(key().patch);
  const SweepTaskData& fine = data_.fine();

  for (const auto v : data_.members(c)) {
    const CellId cell = cells[static_cast<std::size_t>(v)];
    if (set_width_ > 1) {
      const sn::FaceFluxSetView view{&flux, &fine.cell_slots(v), set_width_};
      double psi[sn::kMaxGroupSetWidth];
      disc->sweep_cell_set(cell, ang, set_width_, q.data(), sigma_t_lanes,
                           view, psi);
      for (int l = 0; l < set_width_; ++l)
        phi_[static_cast<std::size_t>(v) *
                 static_cast<std::size_t>(set_width_) +
             static_cast<std::size_t>(l)] = ang.weight * psi[l];
    } else {
      const sn::FaceFluxView view{&flux, &fine.cell_slots(v)};
      const double psi = disc->sweep_cell(cell, ang, q, view);
      phi_[static_cast<std::size_t>(v)] = ang.weight * psi;
    }
    ++computed_;
    if (set_width_ > 1) {
      fine.for_out_remote(v, [&](const RemoteOut& e) {
        out_records_[static_cast<std::size_t>(e.dst)].push_back(
            SetStreamRecord{e.dst_cell, e.face});
        auto& lanes = out_lanes_[static_cast<std::size_t>(e.dst)];
        for (int l = 0; l < set_width_; ++l)
          lanes.push_back(flux.read(e.slot * set_width_ + l));
      });
    } else {
      fine.for_out_remote(v, [&](const RemoteOut& e) {
        out_items_[static_cast<std::size_t>(e.dst)].push_back(
            StreamItem{e.dst_cell, e.face, flux.read(e.slot)});
      });
    }
    stage_lagged_writes(fine, shared_.lagged, lag_group(), v, flux,
                        set_width_);
  }
  data_.for_succ(c, [&](std::int32_t succ) {
    if (--counts_[static_cast<std::size_t>(succ)] == 0) ready_.push(succ);
  });

  if (set_width_ > 1)
    flush_set_out_streams(fine, shared_, set_width_, key(), out_records_,
                          out_lanes_, pending_);
  else
    flush_out_streams(fine, shared_, key(), out_items_, pending_);
  const bool done = computed_ == fine_vertices_;
  lease_.release_if(done, shared_);
  if (done && !completion_reported_ && shared_.pipeline != nullptr) {
    completion_reported_ = true;
    shared_.pipeline->on_program_complete(fine.patch(), group_, key(),
                                          pending_);
  }
}

std::optional<core::Stream> CoarsenedSweepProgram::output() {
  if (pending_.empty()) return std::nullopt;
  core::Stream s = std::move(pending_.back());
  pending_.pop_back();
  return s;
}

bool CoarsenedSweepProgram::vote_to_halt() {
  return !gate_open_ || ready_.empty();
}

}  // namespace jsweep::sweep
