#pragma once

/// \file lagged_flux.hpp
/// Storage for lagged (old-iterate) face fluxes, the runtime half of the
/// cycle-breaking subsystem. Every feedback face cut by graph::CycleCut
/// gets one slot keyed by (angle, face); a sweep reads `prev` values seeded
/// from the last sweep and stages freshly computed values into `next`,
/// which commit() exchanges globally (each slot is written by exactly one
/// rank, so one allreduce-sum assembles the full vector everywhere).
///
/// Thread safety: slots are registered at build time; during a run,
/// workers call stage() on *distinct* slots (one writer cell per face) and
/// read prev() concurrently — both touch pre-sized vectors, no locking.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "comm/cluster.hpp"
#include "support/check.hpp"

namespace jsweep::sweep {

class LaggedFluxStore {
 public:
  /// Register the slot for (angle, face). Must be called identically on
  /// every rank (same order), before the first sweep.
  void add_slot(std::int32_t angle, std::int64_t face) {
    const auto [it, inserted] =
        slot_.emplace(key(angle, face),
                      static_cast<std::int32_t>(prev_.size()));
    JSWEEP_CHECK_MSG(inserted, "duplicate lagged slot for angle "
                                   << angle << " face " << face);
    prev_.push_back(0.0);
    next_.push_back(0.0);
  }

  [[nodiscard]] bool empty() const { return prev_.empty(); }
  [[nodiscard]] std::int64_t num_slots() const {
    return static_cast<std::int64_t>(prev_.size());
  }

  /// Previous-sweep value of a lagged face (0 before the first commit —
  /// the vacuum initial iterate).
  [[nodiscard]] double prev(std::int32_t angle, std::int64_t face) const {
    return prev_[slot(angle, face)];
  }

  /// Stage this sweep's freshly computed value for the next commit.
  void stage(std::int32_t angle, std::int64_t face, double value) {
    next_[slot(angle, face)] = value;
  }

  // --- Dense (slot-indexed) access ---------------------------------------
  // The sweep programs resolve (angle, face) once at task-build time and
  // hit the prev/next arrays directly during sweeps — no hashing in the
  // hot path.

  /// Resolve the slot registered for (angle, face). Build-time only.
  [[nodiscard]] std::int32_t slot_index(std::int32_t angle,
                                        std::int64_t face) const {
    return static_cast<std::int32_t>(slot(angle, face));
  }

  [[nodiscard]] double prev_by_slot(std::int32_t s) const {
    return prev_[static_cast<std::size_t>(s)];
  }
  void stage_by_slot(std::int32_t s, double value) {
    next_[static_cast<std::size_t>(s)] = value;
  }

  /// Collective: assemble the staged values globally, promote them to
  /// `prev`, and return the max |next - prev| residual (identical on all
  /// ranks). Call once per sweep, after the engine run.
  double commit(comm::Context& ctx) {
    ctx.allreduce_sum(next_);
    double residual = 0.0;
    for (std::size_t i = 0; i < next_.size(); ++i)
      residual = std::max(residual, std::abs(next_[i] - prev_[i]));
    prev_ = next_;
    next_.assign(next_.size(), 0.0);
    return residual;
  }

 private:
  [[nodiscard]] static std::uint64_t key(std::int32_t angle,
                                         std::int64_t face) {
    JSWEEP_ASSERT(angle >= 0 && angle < (1 << 20) && face >= 0 &&
                  face < (1LL << 44));
    return (static_cast<std::uint64_t>(angle) << 44) |
           static_cast<std::uint64_t>(face);
  }

  [[nodiscard]] std::size_t slot(std::int32_t angle,
                                 std::int64_t face) const {
    const auto it = slot_.find(key(angle, face));
    JSWEEP_CHECK_MSG(it != slot_.end(), "no lagged slot for angle "
                                            << angle << " face " << face);
    return static_cast<std::size_t>(it->second);
  }

  std::unordered_map<std::uint64_t, std::int32_t> slot_;
  std::vector<double> prev_;
  std::vector<double> next_;
};

}  // namespace jsweep::sweep
