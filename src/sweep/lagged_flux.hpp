#pragma once

/// \file lagged_flux.hpp
/// Storage for lagged (old-iterate) face fluxes, the runtime half of the
/// cycle-breaking subsystem. Every feedback face cut by graph::CycleCut
/// gets one slot keyed by (angle, face); a sweep reads `prev` values seeded
/// from the last sweep and stages freshly computed values into `next`,
/// which commit() exchanges globally (each slot is written by exactly one
/// rank, so one allreduce-sum assembles the full vector everywhere).
///
/// ## Commit protocol (the invariant the engines rely on)
///
/// One sweep's lifecycle over the store is strictly three-phase:
///
///   1. **Seed** — at program init every lagged *read* face is filled from
///      `prev` (zero before the first commit: the vacuum initial iterate).
///   2. **Stage** — when a vertex computes a lagged *write* face, the fresh
///      value goes to `next` via stage()/stage_by_slot() and the workspace
///      is restored to the `prev` value, so any later reader sees the value
///      the cut promised regardless of execution order. Distinct slots have
///      distinct writer cells, so workers stage without locking.
///   3. **Commit** — after the engine run, commit() allreduce-sums `next`
///      (each slot written by exactly one rank, others contribute zero),
///      promotes it to `prev`, zeroes `next` and returns the max |Δ|
///      residual, identical on every rank. prev values are therefore
///      constant for the whole duration of a sweep.
///
/// ## Group axis
///
/// A multigroup solve lags each energy group's face flux independently:
/// set_num_groups(G) (before the first add_slot) makes every registered
/// (angle, face) slot carry G values, addressed by the dense accessors'
/// `group` parameter with stride slot*G + group. The map-keyed prev()/
/// stage() convenience API addresses group 0 — the single-group case.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "comm/cluster.hpp"
#include "support/check.hpp"

namespace jsweep::sweep {

/// Old-iterate storage for cycle-cut face fluxes (see \ref lagged_flux.hpp
/// for the seed → stage → commit protocol and the group stride).
class LaggedFluxStore {
 public:
  /// Number of energy groups each slot carries. Must be called before the
  /// first add_slot(); defaults to 1.
  void set_num_groups(int groups) {
    JSWEEP_CHECK_MSG(prev_.empty(), "set_num_groups before add_slot");
    JSWEEP_CHECK(groups >= 1);
    groups_ = groups;
  }
  [[nodiscard]] int num_groups() const { return groups_; }

  /// Register the slot for (angle, face). Must be called identically on
  /// every rank (same order), before the first sweep.
  void add_slot(std::int32_t angle, std::int64_t face) {
    const auto [it, inserted] = slot_.emplace(
        key(angle, face), static_cast<std::int32_t>(slot_.size()));
    JSWEEP_CHECK_MSG(inserted, "duplicate lagged slot for angle "
                                   << angle << " face " << face);
    prev_.resize(prev_.size() + static_cast<std::size_t>(groups_), 0.0);
    next_.resize(next_.size() + static_cast<std::size_t>(groups_), 0.0);
  }

  /// True when no slots are registered (acyclic mesh).
  [[nodiscard]] bool empty() const { return prev_.empty(); }
  /// Registered (angle, face) slots — group values not multiplied in.
  [[nodiscard]] std::int64_t num_slots() const {
    return static_cast<std::int64_t>(slot_.size());
  }

  /// Previous-sweep value of a lagged face in group 0 (0 before the first
  /// commit — the vacuum initial iterate).
  [[nodiscard]] double prev(std::int32_t angle, std::int64_t face) const {
    return prev_by_slot(slot(angle, face), 0);
  }

  /// Stage this sweep's freshly computed group-0 value for the next commit.
  void stage(std::int32_t angle, std::int64_t face, double value) {
    stage_by_slot(slot(angle, face), 0, value);
  }

  // --- Dense (slot-indexed) access ---------------------------------------
  // The sweep programs resolve (angle, face) once at task-build time and
  // hit the prev/next arrays directly during sweeps — no hashing in the
  // hot path.

  /// Resolve the slot registered for (angle, face). Build-time only.
  [[nodiscard]] std::int32_t slot_index(std::int32_t angle,
                                        std::int64_t face) const {
    return slot(angle, face);
  }

  /// Previous-sweep value of slot `s` in energy group `group`.
  [[nodiscard]] double prev_by_slot(std::int32_t s, std::int32_t group) const {
    return prev_[index(s, group)];
  }
  /// Stage slot `s`'s fresh value for group `group` (next commit).
  void stage_by_slot(std::int32_t s, std::int32_t group, double value) {
    next_[index(s, group)] = value;
  }

  /// Collective: assemble the staged values globally, promote them to
  /// `prev`, and return the max |next - prev| residual over all groups
  /// (identical on all ranks). Call once per sweep, after the engine run.
  double commit(comm::Context& ctx) {
    ctx.allreduce_sum(next_);
    double residual = 0.0;
    for (std::size_t i = 0; i < next_.size(); ++i)
      residual = std::max(residual, std::abs(next_[i] - prev_[i]));
    prev_ = next_;
    next_.assign(next_.size(), 0.0);
    return residual;
  }

 private:
  [[nodiscard]] static std::uint64_t key(std::int32_t angle,
                                         std::int64_t face) {
    JSWEEP_ASSERT(angle >= 0 && angle < (1 << 20) && face >= 0 &&
                  face < (1LL << 44));
    return (static_cast<std::uint64_t>(angle) << 44) |
           static_cast<std::uint64_t>(face);
  }

  [[nodiscard]] std::int32_t slot(std::int32_t angle,
                                  std::int64_t face) const {
    const auto it = slot_.find(key(angle, face));
    JSWEEP_CHECK_MSG(it != slot_.end(), "no lagged slot for angle "
                                            << angle << " face " << face);
    return it->second;
  }

  [[nodiscard]] std::size_t index(std::int32_t s, std::int32_t group) const {
    JSWEEP_ASSERT(group >= 0 && group < groups_);
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(groups_) +
           static_cast<std::size_t>(group);
  }

  int groups_ = 1;
  std::unordered_map<std::uint64_t, std::int32_t> slot_;
  std::vector<double> prev_;
  std::vector<double> next_;
};

}  // namespace jsweep::sweep
