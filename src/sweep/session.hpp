#pragma once

/// \file session.hpp
/// The per-request half of the two-phase solver lifecycle.
///
/// A **SweepSession** executes solves against a shared immutable SweepPlan
/// (plan.hpp). It owns exactly the state one solve request needs: the
/// current source vector, the per-session FaceFluxPool the kernels draw
/// workspaces from, the lagged (cycle-cut) old-iterate *values* (a copy of
/// the plan's slot-layout template), the group-pipeline gates of a
/// multigroup solve, and — in standalone mode — the engine the programs
/// run on. Creating a session performs no task-graph construction and no
/// face-slot interning; those live in the plan.
///
/// Two modes:
///  - **standalone** (the common case): the session owns a core::Engine or
///    core::BspEngine and sweep()/solve_multigroup() drive it directly —
///    the old SweepSolver behavior, bitwise identical.
///  - **service-attached**: the session registers its programs into a host
///    engine under a request-lane tag offset (lane_task_tag) and exposes
///    the begin_sweep()/commit_lagged()/finish_sweep() protocol; the
///    SweepService (service.hpp) runs the host engine over all lanes of a
///    batch at once.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/cluster.hpp"
#include "core/bsp_engine.hpp"
#include "core/engine.hpp"
#include "sn/multigroup.hpp"
#include "sn/source_iteration.hpp"
#include "sweep/coarsened_program.hpp"
#include "sweep/group_pipeline.hpp"
#include "sweep/plan.hpp"
#include "sweep/sweep_program.hpp"

namespace jsweep::trace {
class Recorder;
}  // namespace jsweep::trace

namespace jsweep::sweep {

/// Which runtime executes the sweep programs.
enum class EngineKind {
  DataDriven,  ///< core::Engine — the paper's asynchronous runtime
  Bsp,         ///< core::BspEngine — the superstep baseline
};

/// Runtime-tracing knob: when `recorder` is non-null every engine run of
/// the session (fine and coarsened) records events into it, ready for
/// trace::write_chrome_trace / trace::analyze. Null (default) = off.
struct TraceConfig {
  trace::Recorder* recorder = nullptr;  ///< null disables tracing
};

/// Live-metrics knob: when `registry` is non-null the session, its engines
/// and its group pipeline publish live counters/gauges/histograms into it
/// (metrics/metrics.hpp; exposition via metrics/export.hpp). Null
/// (default) = off — every update site degrades to one pointer check.
struct MetricsConfig {
  metrics::Registry* registry = nullptr;  ///< null disables metrics
};

/// The execution-time knobs of one session — everything a solve request
/// may vary without touching the plan. Structure-determining knobs live in
/// PlanConfig (plan.hpp).
struct SolveConfig {
  EngineKind engine = EngineKind::DataDriven;  ///< runtime selection
  int num_workers = 2;  ///< worker threads per rank (standalone mode)
  /// Replay sweeps 2..n on the coarsened graph (standalone mode only).
  bool use_coarsened_graph = false;
  /// With CyclePolicy::Lag and a cyclic mesh, run up to this many engine
  /// sweeps per sweep() call, re-feeding the lagged faces each time, until
  /// their residual drops below `lag_tolerance`. 1 = plain lagging (the
  /// outer source iteration absorbs the lag error).
  int max_lag_sweeps = 1;
  double lag_tolerance = 0.0;  ///< stop the lag loop below this residual
  /// Work stealing between the data-driven engine's workers: -1 resolves
  /// plan tuning (PlanConfig::tuning) if present, else the engine default
  /// (on); 0 forces off; 1 forces on. JSWEEP_WORK_STEALING still has the
  /// final say (core::EngineConfig).
  int work_stealing = -1;
  /// Steal-spin rounds before a worker blocks: -1 resolves plan tuning /
  /// the engine default (64); >= 0 forces. JSWEEP_STEAL_SPIN overrides.
  int steal_spin_rounds = -1;
  /// Seed of the engine's deterministic scheduling tie-breaks (owner
  /// assignment rotation, steal-victim order).
  std::uint64_t scheduler_seed = 0;
  /// Group-pipelined multigroup solves: precompute the next pass's base
  /// sources on workers while the current sweep's tail drains (the
  /// source-tail overlap, bitwise-neutral). Off = serial formation
  /// between passes, the pre-overlap behavior.
  bool overlap_source_tail = true;
  /// Runtime tracing (off unless a recorder is supplied).
  TraceConfig trace;
  /// Live metrics (off unless a registry is supplied).
  MetricsConfig metrics;
};

/// Counters and timings accumulated across a session's lifetime. Cycle
/// diagnostics and build time are inherited from the plan so the facade's
/// stats keep their historical meaning.
struct SolveStats {
  int sweeps = 0;  ///< transport sweeps executed (all groups counted)
  /// Energy groups of the solve (1 unless multigroup).
  int groups = 1;
  /// Multigroup sweep passes executed by solve_multigroup().
  int multigroup_passes = 0;
  double build_seconds = 0.0;       ///< plan build + program install time
  double coarsen_seconds = 0.0;     ///< coarsened-graph construction time
  double last_sweep_seconds = 0.0;  ///< wall time of the last sweep/pass
  core::EngineStats engine;  ///< last data-driven run
  core::BspStats bsp;        ///< last BSP run
  // Cycle-breaking diagnostics (all zero on acyclic meshes).
  graph::CycleStats cycles;  ///< accumulated over all angles at plan build
  int cyclic_angles = 0;     ///< directions that needed a cut
  int last_lag_sweeps = 0;   ///< engine runs of the last sweep() call
  double last_lag_residual = 0.0;  ///< max lagged-face change, last commit
  /// Worker idle share, idle / (busy + idle), of the last data-driven
  /// engine run (0 on BSP runs, whose stats carry no busy/idle split).
  double last_idle_fraction = 0.0;
};

/// A solve session over a shared immutable plan (see \ref session.hpp).
/// One instance per rank per request; all solve entry points are
/// collective across the cluster the plan was built on.
class SweepSession {
 public:
  /// Standalone session: owns its engine, ready for sweep() /
  /// solve_multigroup(). `ctx` must match the plan's build rank/size and
  /// outlive the session.
  SweepSession(comm::Context& ctx, std::shared_ptr<const SweepPlan> plan,
               SolveConfig config = {});

  /// Service-attached session (request lane `lane` ≥ 0): registers its
  /// programs into `host` under the lane's tag namespace and is driven via
  /// begin_sweep()/commit_lagged()/finish_sweep() by the SweepService.
  /// `host` must outlive the session; the direct solve entry points and
  /// the coarsened replay are unavailable in this mode.
  SweepSession(comm::Context& ctx, std::shared_ptr<const SweepPlan> plan,
               SolveConfig config, core::Engine& host, int lane);

  ~SweepSession();  ///< joins nothing; engines stop at end of each run

  SweepSession(const SweepSession&) = delete;             ///< non-copyable
  SweepSession& operator=(const SweepSession&) = delete;  ///< non-copyable

  /// One full transport sweep over all angles; returns the global scalar
  /// flux (identical on every rank). Collective. Single-group plans only —
  /// a pipelined multigroup plan must go through solve_multigroup().
  std::vector<double> sweep(const std::vector<double>& q_per_ster);

  /// One standalone transport sweep of energy group g: swaps in group g's
  /// kernel and runs the shared single-group task system (requires a
  /// multigroup plan with group_pipelining off). Collective. On cyclic
  /// meshes with G > 1 this refuses — per-call lag commits would
  /// cross-contaminate the groups' old iterates; use solve_multigroup(),
  /// whose passes commit once per pass over all groups.
  std::vector<double> sweep_group(GroupId g,
                                  const std::vector<double>& q_per_ster);

  /// Full multigroup solve over the plan's MultigroupXs with the
  /// sweep-pass outer scheme (sn::solve_multigroup_sweeps): pipelined
  /// passes when the plan was built with group_pipelining, per-group
  /// barriered engine runs otherwise. Collective; identical result on
  /// every rank.
  sn::MultigroupResult solve_multigroup(
      const sn::MultigroupOptions& options = {});

  /// Adapter for sn::source_iteration.
  [[nodiscard]] sn::SweepOperator as_operator() {
    return [this](const std::vector<double>& q) { return sweep(q); };
  }

  /// Swap the per-cell sweep kernel for subsequent sweeps (per-request
  /// cross sections over the same mesh); null restores the plan's kernel.
  /// Single-group plans only; the kernel must cover the plan's cells.
  void set_kernel(const sn::Discretization* disc);

  /// The shared plan this session executes.
  [[nodiscard]] const SweepPlan& plan() const { return *plan_; }
  /// Counters and timings accumulated so far.
  [[nodiscard]] const SolveStats& stats() const { return stats_; }
  /// Observability for tests/benches: the per-session face-flux workspace
  /// pool (created/acquire/reuse counters prove steady-state recycling).
  [[nodiscard]] const sn::FaceFluxPool& flux_pool() const {
    return flux_pool_;
  }

  // --- Service-lane protocol (used by SweepService; public so tests can
  // --- drive attached sessions directly) --------------------------------

  /// True for service-attached sessions (host engine, lane tag offset).
  [[nodiscard]] bool attached() const { return host_ != nullptr; }
  /// Request lane of an attached session (0 for standalone).
  [[nodiscard]] int lane() const { return lane_; }
  /// Engine keys of this session's programs (one per (patch, angle, group)
  /// in the lane's tag namespace) — what the service enables/disables to
  /// run only the current batch's lanes.
  [[nodiscard]] const std::vector<ProgramKey>& program_keys() const {
    return keys_;
  }
  /// Stage the source vector for the next host-engine run (attached mode's
  /// first third of sweep()).
  void begin_sweep(const std::vector<double>& q_per_ster);
  /// True when the plan carries cycle cuts (the service must commit the
  /// session's lagged store after every engine run).
  [[nodiscard]] bool has_lagged() const { return !lagged_store_.empty(); }
  /// Commit this session's lagged store (collective); returns the residual
  /// (max lagged-face change). Call once per engine run, in lane order.
  double commit_lagged();
  /// Collect and allreduce this session's scalar flux after a host-engine
  /// run (attached mode's last third of sweep()). Collective.
  std::vector<double> finish_sweep();

 private:
  /// Common ctor: `host` null = standalone (own engine per `config`).
  SweepSession(comm::Context& ctx, std::shared_ptr<const SweepPlan> plan,
               SolveConfig config, core::Engine* host, int lane);

  /// Resolve the steal/spin/seed knobs into an engine config (explicit
  /// SolveConfig > plan tuning > engine default; env still overrides).
  void apply_scheduling(core::EngineConfig& ec) const;
  void install_programs(bool record_clusters);
  void activate_coarsened();
  void collect_phi(std::vector<double>& phi_global) const;
  /// Exactly one engine (or BSP) run; updates the engine stats.
  void run_engine_once();
  /// Engine run(s) including the cyclic-mesh lag loop (commit after every
  /// run) — the single-group sweep() core.
  void run_engines_once();
  /// One multigroup sweep pass (sn::MultigroupSweepPass shape), pipelined
  /// or barriered per the plan. On cut meshes the lagged store commits
  /// once per pass (after ALL groups), and `max_lag_sweeps` repeats the
  /// whole pass — both modes therefore see identical old iterates.
  void multigroup_pass(const std::vector<std::vector<double>>& q_base,
                       std::vector<std::vector<double>>& phi);

  comm::Context& ctx_;
  std::shared_ptr<const SweepPlan> plan_;
  SolveConfig config_;
  core::Engine* host_ = nullptr;  ///< non-null = service-attached
  int lane_ = 0;

  SweepShared shared_;
  /// Per-session lagged values (copy of the plan's slot-layout template).
  LaggedFluxStore lagged_store_;
  /// Face-flux workspaces recycled across programs and sweeps (dense hot
  /// path; see sn/face_flux.hpp).
  sn::FaceFluxPool flux_pool_;
  std::vector<double> q_current_;

  /// Per-session multigroup gate/source coordinator (pipelined plans).
  std::unique_ptr<GroupPipeline> pipeline_;
  /// Source-tail overlap state: true once a pipelined pass has run with
  /// the overlap enabled, so the pipeline's next_pass_q() is valid for
  /// the following pass's q_base formation. Reset per solve.
  bool next_q_armed_ = false;
  std::vector<std::unique_ptr<std::mutex>> patch_mutex_;  ///< ablation

  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<core::BspEngine> bsp_;
  std::vector<SweepPatchProgram*> programs_;  ///< engine-owned, fixed order
  std::vector<ProgramKey> keys_;              ///< parallel to programs_
  std::vector<std::unique_ptr<CoarsenedSweepData>> coarse_data_;
  std::vector<CoarsenedSweepProgram*> coarse_programs_;
  bool coarsened_active_ = false;

  // Live instruments, created once at construction when
  // config_.metrics.registry is set (all null otherwise).
  metrics::Counter* metric_sweeps_ = nullptr;
  metrics::Histogram* metric_sweep_seconds_ = nullptr;
  metrics::Gauge* metric_lag_residual_ = nullptr;
  metrics::Gauge* metric_lag_sweeps_ = nullptr;
  metrics::Gauge* metric_idle_fraction_ = nullptr;

  SolveStats stats_;
};

}  // namespace jsweep::sweep
