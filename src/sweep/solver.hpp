#pragma once

/// \file solver.hpp
/// Compatibility facade over the two-phase plan/session API.
///
/// > **Deprecation note (doc-flagged, not attributed):** SweepSolver is the
/// > pre-plan API kept for existing callers and the legacy-path tests. It
/// > rebuilds the full task system on every construction. New code should
/// > build a SweepPlan once (plan.hpp) and run SweepSessions against it
/// > (session.hpp) — and use SweepService (service.hpp) to multiplex many
/// > solve requests over one engine. The facade is a strict composition:
/// >
/// >     SweepSolver(ctx, m, ps, owner, disc, quad, cfg)
/// >       == SweepSession(ctx,
/// >            SweepPlan::build(ctx, m, ps, owner, disc, quad,
/// >                             plan_config_of(cfg)),
/// >            solve_config_of(cfg))
/// >
/// > so every solve through it is bitwise identical to the new API.
///
/// SolverConfig keeps its historical field set; plan_config_of() /
/// solve_config_of() give the documented mapping onto the new split:
///
/// | old SolverConfig field      | new home                          |
/// |-----------------------------|-----------------------------------|
/// | cluster_grain               | PlanConfig::cluster_grain         |
/// | patch_priority              | PlanConfig::patch_priority        |
/// | vertex_priority             | PlanConfig::vertex_priority       |
/// | patch_angle_parallelism     | PlanConfig::patch_angle_parallelism |
/// | cycle_policy                | PlanConfig::cycle_policy          |
/// | multigroup                  | PlanConfig::multigroup            |
/// | group_pipelining            | PlanConfig::group_pipelining      |
/// | group_set_width             | PlanConfig::group_set_width       |
/// | engine                      | SolveConfig::engine               |
/// | num_workers                 | SolveConfig::num_workers          |
/// | use_coarsened_graph         | SolveConfig::use_coarsened_graph  |
/// | max_lag_sweeps              | SolveConfig::max_lag_sweeps       |
/// | lag_tolerance               | SolveConfig::lag_tolerance        |
/// | work_stealing               | SolveConfig::work_stealing        |
/// | steal_spin_rounds           | SolveConfig::steal_spin_rounds    |
/// | scheduler_seed              | SolveConfig::scheduler_seed       |
/// | overlap_source_tail         | SolveConfig::overlap_source_tail  |
/// | trace                       | SolveConfig::trace                |
/// | metrics                     | SolveConfig::metrics              |

#include <memory>
#include <vector>

#include "sweep/session.hpp"

namespace jsweep::sweep {

/// All knobs of one solver instance, fixed at construction — the union of
/// PlanConfig and SolveConfig under the historical field names (see the
/// mapping table in \ref solver.hpp).
struct SolverConfig {
  EngineKind engine = EngineKind::DataDriven;  ///< runtime selection
  int num_workers = 2;    ///< worker threads per rank
  int cluster_grain = 64; ///< max vertices retired per compute() (Sec. V-C)
  /// Orders a rank's programs (angle-major combined priority, Sec. V-D).
  graph::PriorityStrategy patch_priority = graph::PriorityStrategy::SLBD;
  /// Orders ready vertices within one program.
  graph::PriorityStrategy vertex_priority = graph::PriorityStrategy::SLBD;
  /// false = serialize all angles of a patch (the pre-JSweep model).
  bool patch_angle_parallelism = true;
  /// Replay sweeps 2..n on the coarsened graph.
  bool use_coarsened_graph = false;
  /// Cyclic-dependence handling (see CyclePolicy).
  CyclePolicy cycle_policy = CyclePolicy::Error;
  /// With CyclePolicy::Lag and a cyclic mesh, run up to this many engine
  /// sweeps per sweep() call, re-feeding the lagged faces each time, until
  /// their residual drops below `lag_tolerance`. 1 = plain lagging (the
  /// outer source iteration absorbs the lag error).
  int max_lag_sweeps = 1;
  double lag_tolerance = 0.0;  ///< stop the lag loop below this residual
  /// Multigroup solve: group-wise cross sections (must outlive the
  /// solver). Non-null switches the solver to the group-aware task system;
  /// use solve_multigroup() (or sweep_group() when `group_pipelining` is
  /// off) instead of sweep(). Null = the classic single-group solver.
  const sn::MultigroupXs* multigroup = nullptr;
  /// true (default): one engine run per multigroup pass sweeps all groups,
  /// (patch, angle, group) programs pipelined via activation streams.
  /// false: one engine run per group per pass with a global barrier
  /// between groups — the pipelining-ablation baseline. Both modes compute
  /// bitwise-identical fluxes.
  bool group_pipelining = true;
  /// Group-set width W (PlanConfig::group_set_width): pipelined programs
  /// sweep W consecutive groups at once (SIMD lanes), within-set
  /// downscatter lagged one pass. 1 = the classic per-group scheme.
  int group_set_width = 1;
  /// Work stealing between engine workers: -1 auto (plan tuning / engine
  /// default), 0 off, 1 on (SolveConfig::work_stealing).
  int work_stealing = -1;
  /// Steal-spin rounds before a worker blocks: -1 auto, >= 0 forces.
  int steal_spin_rounds = -1;
  /// Seed of the engine's deterministic scheduling tie-breaks.
  std::uint64_t scheduler_seed = 0;
  /// Precompute next-pass multigroup sources on workers while the sweep's
  /// tail drains (SolveConfig::overlap_source_tail).
  bool overlap_source_tail = true;
  /// Runtime tracing (off unless a recorder is supplied).
  TraceConfig trace;
  /// Live metrics (off unless a registry is supplied).
  MetricsConfig metrics;
};

/// Historical name of the session stats (the facade returns the session's
/// counters unchanged).
using SolverStats = SolveStats;

/// The plan-phase half of a SolverConfig (the documented old→new mapping).
[[nodiscard]] PlanConfig plan_config_of(const SolverConfig& config);
/// The execution-phase half of a SolverConfig.
[[nodiscard]] SolveConfig solve_config_of(const SolverConfig& config);

/// The legacy one-shot sweep solver (see the deprecation note in
/// \ref solver.hpp): builds a private SweepPlan and runs a single
/// SweepSession over it. One instance per rank; all entry points are
/// collective across the cluster.
class SweepSolver {
 public:
  /// Structured-mesh solver. `patch_owner[p]` must be identical on all
  /// ranks; `disc` and `quad` must outlive the solver. *Legacy*: new code
  /// should call SweepPlan::build + SweepSession to reuse the plan.
  SweepSolver(comm::Context& ctx, const mesh::StructuredMesh& m,
              const partition::PatchSet& ps, std::vector<RankId> patch_owner,
              const sn::StructuredDD& disc, const sn::Quadrature& quad,
              SolverConfig config);

  /// Unstructured-mesh solver. *Legacy*: see the structured overload.
  SweepSolver(comm::Context& ctx, const mesh::TetMesh& m,
              const partition::PatchSet& ps, std::vector<RankId> patch_owner,
              const sn::TetStep& disc, const sn::Quadrature& quad,
              SolverConfig config);

  ~SweepSolver();  ///< joins nothing; engines stop at end of each run

  SweepSolver(const SweepSolver&) = delete;             ///< non-copyable
  SweepSolver& operator=(const SweepSolver&) = delete;  ///< non-copyable

  /// One full transport sweep over all angles; returns the global scalar
  /// flux (identical on every rank). Collective. Single-group solvers
  /// only — a pipelined multigroup build must go through
  /// solve_multigroup().
  std::vector<double> sweep(const std::vector<double>& q_per_ster) {
    return session_.sweep(q_per_ster);
  }

  /// One standalone transport sweep of energy group g (see
  /// SweepSession::sweep_group for the preconditions). Collective.
  std::vector<double> sweep_group(GroupId g,
                                  const std::vector<double>& q_per_ster) {
    return session_.sweep_group(g, q_per_ster);
  }

  /// Full multigroup solve over SolverConfig::multigroup (see
  /// SweepSession::solve_multigroup). Collective.
  sn::MultigroupResult solve_multigroup(
      const sn::MultigroupOptions& options = {}) {
    return session_.solve_multigroup(options);
  }

  /// Adapter for sn::source_iteration.
  [[nodiscard]] sn::SweepOperator as_operator() {
    return session_.as_operator();
  }

  /// Counters and timings accumulated so far.
  [[nodiscard]] const SolverStats& stats() const { return session_.stats(); }

  /// Observability for tests/benches: the shared face-flux workspace pool
  /// (created/acquire/reuse counters prove steady-state recycling).
  [[nodiscard]] const sn::FaceFluxPool& flux_pool() const {
    return session_.flux_pool();
  }

  /// The plan built behind the facade (escape hatch for incremental
  /// migrations: share it with new-API sessions instead of rebuilding).
  [[nodiscard]] std::shared_ptr<const SweepPlan> plan() const {
    return plan_;
  }

 private:
  std::shared_ptr<const SweepPlan> plan_;
  SweepSession session_;
};

}  // namespace jsweep::sweep
