#pragma once

/// \file solver.hpp
/// The parallel sweep solver: builds the per-(patch, angle, group) task
/// data on every rank, wires the sweep patch-programs into the chosen
/// engine (data-driven or BSP baseline), and exposes
///   - sweep(): one collective single-group transport sweep, the
///     SweepOperator source iteration plugs in, and
///   - solve_multigroup(): a full multigroup solve in which the engines
///     run all G groups' sweeps as ONE task system per pass — group g+1's
///     programs are injected per patch the moment group g's scattering
///     source is ready there (group pipelining; see group_pipeline.hpp),
///     or barrier-separated per group when `group_pipelining` is off (the
///     ablation baseline; also usable per group via sweep_group()).
///
/// Optimizations from Sec. V, all configurable:
///   - patch-angle parallelism: one program per (patch, angle); the
///     ablation serializes each patch's programs with a shared mutex;
///   - vertex clustering: compute() batch size (`cluster_grain`);
///   - two-level priority: `patch_priority` orders programs on a rank,
///     `vertex_priority` orders ready vertices within a program;
///   - coarsened graph: record the first sweep's clusters, replay later
///     sweeps on the cluster-level graph.

#include <memory>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/bsp_engine.hpp"
#include "core/engine.hpp"
#include "sn/multigroup.hpp"
#include "sn/source_iteration.hpp"
#include "sweep/coarsened_program.hpp"
#include "sweep/group_pipeline.hpp"
#include "sweep/sweep_program.hpp"

namespace jsweep::trace {
class Recorder;
}  // namespace jsweep::trace

namespace jsweep::sweep {

/// Which runtime executes the sweep programs.
enum class EngineKind {
  DataDriven,  ///< core::Engine — the paper's asynchronous runtime
  Bsp,         ///< core::BspEngine — the superstep baseline
};

/// What to do when a sweep direction's dependence graph has cycles
/// (non-convex / twisted / perturbed unstructured meshes).
enum class CyclePolicy {
  /// Trust the mesh: skip detection entirely (the pre-cycle-aware
  /// behavior — a genuinely cyclic mesh then hangs the engines).
  Assume,
  /// Detect at build time and throw with SCC diagnostics instead of
  /// deadlocking at run time. The default.
  Error,
  /// Detect, cut a minimal feedback-edge set per direction and run the
  /// acyclic remainder; cut faces read the previous sweep's flux (lagged /
  /// old-iterate inputs) and converge over (source) iterations.
  Lag,
};

/// Human-readable name of a cycle policy ("assume" | "error" | "lag").
[[nodiscard]] std::string to_string(CyclePolicy p);
/// Inverse of to_string(CyclePolicy); throws CheckError on unknown names.
[[nodiscard]] CyclePolicy cycle_policy_from_string(const std::string& name);

/// Runtime-tracing knob: when `recorder` is non-null every engine run of
/// the solver (fine and coarsened) records events into it, ready for
/// trace::write_chrome_trace / trace::analyze. Null (default) = off.
struct TraceConfig {
  trace::Recorder* recorder = nullptr;  ///< null disables tracing
};

/// All knobs of one solver instance, fixed at construction.
struct SolverConfig {
  EngineKind engine = EngineKind::DataDriven;  ///< runtime selection
  int num_workers = 2;    ///< worker threads per rank
  int cluster_grain = 64; ///< max vertices retired per compute() (Sec. V-C)
  /// Orders a rank's programs (angle-major combined priority, Sec. V-D).
  graph::PriorityStrategy patch_priority = graph::PriorityStrategy::SLBD;
  /// Orders ready vertices within one program.
  graph::PriorityStrategy vertex_priority = graph::PriorityStrategy::SLBD;
  /// false = serialize all angles of a patch (the pre-JSweep model).
  bool patch_angle_parallelism = true;
  /// Replay sweeps 2..n on the coarsened graph.
  bool use_coarsened_graph = false;
  /// Cyclic-dependence handling (see CyclePolicy).
  CyclePolicy cycle_policy = CyclePolicy::Error;
  /// With CyclePolicy::Lag and a cyclic mesh, run up to this many engine
  /// sweeps per sweep() call, re-feeding the lagged faces each time, until
  /// their residual drops below `lag_tolerance`. 1 = plain lagging (the
  /// outer source iteration absorbs the lag error).
  int max_lag_sweeps = 1;
  double lag_tolerance = 0.0;
  /// Multigroup solve: group-wise cross sections (must outlive the
  /// solver). Non-null switches the solver to the group-aware task system;
  /// use solve_multigroup() (or sweep_group() when `group_pipelining` is
  /// off) instead of sweep(). Null = the classic single-group solver.
  const sn::MultigroupXs* multigroup = nullptr;
  /// true (default): one engine run per multigroup pass sweeps all groups,
  /// (patch, angle, group) programs pipelined via activation streams.
  /// false: one engine run per group per pass with a global barrier
  /// between groups — the pipelining-ablation baseline. Both modes compute
  /// bitwise-identical fluxes.
  bool group_pipelining = true;
  /// Runtime tracing (off unless a recorder is supplied).
  TraceConfig trace;
};

/// Counters and timings accumulated across a solver's lifetime.
struct SolverStats {
  int sweeps = 0;  ///< transport sweeps executed (all groups counted)
  /// Energy groups the task system was built for (1 unless pipelined
  /// multigroup).
  int groups = 1;
  /// Multigroup sweep passes executed by solve_multigroup().
  int multigroup_passes = 0;
  double build_seconds = 0.0;       ///< task-graph + program build time
  double coarsen_seconds = 0.0;     ///< coarsened-graph construction time
  double last_sweep_seconds = 0.0;  ///< wall time of the last sweep/pass
  core::EngineStats engine;  ///< last data-driven run
  core::BspStats bsp;        ///< last BSP run
  // Cycle-breaking diagnostics (all zero on acyclic meshes).
  graph::CycleStats cycles;     ///< accumulated over all angles at build
  int cyclic_angles = 0;        ///< directions that needed a cut
  int last_lag_sweeps = 0;      ///< engine runs of the last sweep() call
  double last_lag_residual = 0.0;  ///< max lagged-face change, last commit
};

/// The parallel sweep solver (see \ref solver.hpp). One instance per rank;
/// all entry points are collective across the cluster.
class SweepSolver {
 public:
  /// Structured-mesh solver. `patch_owner[p]` must be identical on all
  /// ranks; `disc` and `quad` must outlive the solver.
  SweepSolver(comm::Context& ctx, const mesh::StructuredMesh& m,
              const partition::PatchSet& ps, std::vector<RankId> patch_owner,
              const sn::StructuredDD& disc, const sn::Quadrature& quad,
              SolverConfig config);

  /// Unstructured-mesh solver.
  SweepSolver(comm::Context& ctx, const mesh::TetMesh& m,
              const partition::PatchSet& ps, std::vector<RankId> patch_owner,
              const sn::TetStep& disc, const sn::Quadrature& quad,
              SolverConfig config);

  ~SweepSolver();  ///< joins nothing; engines stop at end of each run

  SweepSolver(const SweepSolver&) = delete;             ///< non-copyable
  SweepSolver& operator=(const SweepSolver&) = delete;  ///< non-copyable

  /// One full transport sweep over all angles; returns the global scalar
  /// flux (identical on every rank). Collective. Single-group solvers
  /// only — a pipelined multigroup build must go through
  /// solve_multigroup().
  std::vector<double> sweep(const std::vector<double>& q_per_ster);

  /// One standalone transport sweep of energy group g: swaps in group g's
  /// kernel and runs the shared single-group task system (requires
  /// SolverConfig::multigroup, group_pipelining off). Collective. On
  /// cyclic meshes with G > 1 this refuses — per-call lag commits would
  /// cross-contaminate the groups' old iterates; use solve_multigroup(),
  /// whose passes commit once per pass over all groups.
  std::vector<double> sweep_group(GroupId g,
                                  const std::vector<double>& q_per_ster);

  /// Full multigroup solve over SolverConfig::multigroup with the
  /// sweep-pass outer scheme (sn::solve_multigroup_sweeps): pipelined
  /// passes when `group_pipelining` is on, per-group barriered engine runs
  /// otherwise. Collective; identical result on every rank.
  sn::MultigroupResult solve_multigroup(
      const sn::MultigroupOptions& options = {});

  /// Adapter for sn::source_iteration.
  [[nodiscard]] sn::SweepOperator as_operator() {
    return [this](const std::vector<double>& q) { return sweep(q); };
  }

  /// Counters and timings accumulated so far.
  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Observability for tests/benches: the shared face-flux workspace pool
  /// (created/acquire/reuse counters prove steady-state recycling).
  [[nodiscard]] const sn::FaceFluxPool& flux_pool() const {
    return flux_pool_;
  }

 private:
  /// One engine-registered program: shared structural task data (one per
  /// (patch, angle), group-independent) plus this program's group and
  /// scheduling priority.
  struct ProgramSlot {
    std::size_t data_index = 0;
    GroupId group{0};
    double priority = 0.0;
  };

  void init_multigroup(
      const std::function<std::unique_ptr<sn::Discretization>(
          const sn::CellXs&)>& disc_builder);
  void build(
      const std::function<graph::PatchTaskGraph(
          PatchId, const mesh::Vec3&, AngleId, const graph::CycleCut*)>&
          task_builder,
      const std::function<graph::Digraph(const mesh::Vec3&)>&
          patch_digraph_builder,
      const std::function<graph::CycleCut(const mesh::Vec3&)>& cut_builder);
  void install_programs(bool record_clusters);
  void activate_coarsened();
  void collect_phi(std::vector<double>& phi_global) const;
  /// Exactly one engine (or BSP) run; updates the engine stats.
  void run_engine_once();
  /// Engine run(s) including the cyclic-mesh lag loop (commit after every
  /// run) — the single-group sweep() core.
  void run_engines_once();
  /// One multigroup sweep pass (sn::MultigroupSweepPass shape), pipelined
  /// or barriered per the config. On cut meshes the lagged store commits
  /// once per pass (after ALL groups), and `max_lag_sweeps` repeats the
  /// whole pass — both modes therefore see identical old iterates.
  void multigroup_pass(const std::vector<std::vector<double>>& q_base,
                       std::vector<std::vector<double>>& phi);

  comm::Context& ctx_;
  const partition::PatchSet& ps_;
  std::vector<RankId> owner_;
  const sn::Quadrature& quad_;
  SolverConfig config_;

  SweepShared shared_;
  LaggedFluxStore lagged_store_;
  /// Face-flux workspaces recycled across programs and sweeps (dense hot
  /// path; see sn/face_flux.hpp).
  sn::FaceFluxPool flux_pool_;
  std::vector<double> q_current_;

  /// Multigroup state: per-group kernels (σ_t varies by group) and, when
  /// pipelining, the rank-local gate/source coordinator.
  std::vector<std::unique_ptr<sn::Discretization>> group_discs_;
  std::unique_ptr<GroupPipeline> pipeline_;
  int groups_built_ = 1;  ///< program sets per (patch, angle)

  std::vector<std::unique_ptr<SweepTaskData>> task_data_;
  std::vector<ProgramSlot> slots_;  ///< parallel to programs_
  std::vector<std::unique_ptr<std::mutex>> patch_mutex_;  ///< ablation

  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<core::BspEngine> bsp_;
  std::vector<SweepPatchProgram*> programs_;  ///< engine-owned, fixed order
  std::vector<std::unique_ptr<CoarsenedSweepData>> coarse_data_;
  std::vector<CoarsenedSweepProgram*> coarse_programs_;
  bool coarsened_active_ = false;

  SolverStats stats_;
};

}  // namespace jsweep::sweep
