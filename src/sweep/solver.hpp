#pragma once

/// \file solver.hpp
/// The parallel sweep solver: builds the per-(patch, angle) task data on
/// every rank, wires the sweep patch-programs into the chosen engine
/// (data-driven or BSP baseline), and exposes one collective sweep()
/// operation that source iteration plugs in as its SweepOperator.
///
/// Optimizations from Sec. V, all configurable:
///   - patch-angle parallelism: one program per (patch, angle); the
///     ablation serializes each patch's programs with a shared mutex;
///   - vertex clustering: compute() batch size (`cluster_grain`);
///   - two-level priority: `patch_priority` orders programs on a rank,
///     `vertex_priority` orders ready vertices within a program;
///   - coarsened graph: record the first sweep's clusters, replay later
///     sweeps on the cluster-level graph.

#include <memory>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/bsp_engine.hpp"
#include "core/engine.hpp"
#include "sn/source_iteration.hpp"
#include "sweep/coarsened_program.hpp"
#include "sweep/sweep_program.hpp"

namespace jsweep::trace {
class Recorder;
}  // namespace jsweep::trace

namespace jsweep::sweep {

enum class EngineKind { DataDriven, Bsp };

/// What to do when a sweep direction's dependence graph has cycles
/// (non-convex / twisted / perturbed unstructured meshes).
enum class CyclePolicy {
  /// Trust the mesh: skip detection entirely (the pre-cycle-aware
  /// behavior — a genuinely cyclic mesh then hangs the engines).
  Assume,
  /// Detect at build time and throw with SCC diagnostics instead of
  /// deadlocking at run time. The default.
  Error,
  /// Detect, cut a minimal feedback-edge set per direction and run the
  /// acyclic remainder; cut faces read the previous sweep's flux (lagged /
  /// old-iterate inputs) and converge over (source) iterations.
  Lag,
};

[[nodiscard]] std::string to_string(CyclePolicy p);
[[nodiscard]] CyclePolicy cycle_policy_from_string(const std::string& name);

/// Runtime-tracing knob: when `recorder` is non-null every engine run of
/// the solver (fine and coarsened) records events into it, ready for
/// trace::write_chrome_trace / trace::analyze. Null (default) = off.
struct TraceConfig {
  trace::Recorder* recorder = nullptr;
};

struct SolverConfig {
  EngineKind engine = EngineKind::DataDriven;
  int num_workers = 2;
  int cluster_grain = 64;
  graph::PriorityStrategy patch_priority = graph::PriorityStrategy::SLBD;
  graph::PriorityStrategy vertex_priority = graph::PriorityStrategy::SLBD;
  /// false = serialize all angles of a patch (the pre-JSweep model).
  bool patch_angle_parallelism = true;
  /// Replay sweeps 2..n on the coarsened graph.
  bool use_coarsened_graph = false;
  /// Cyclic-dependence handling (see CyclePolicy).
  CyclePolicy cycle_policy = CyclePolicy::Error;
  /// With CyclePolicy::Lag and a cyclic mesh, run up to this many engine
  /// sweeps per sweep() call, re-feeding the lagged faces each time, until
  /// their residual drops below `lag_tolerance`. 1 = plain lagging (the
  /// outer source iteration absorbs the lag error).
  int max_lag_sweeps = 1;
  double lag_tolerance = 0.0;
  /// Runtime tracing (off unless a recorder is supplied).
  TraceConfig trace;
};

struct SolverStats {
  int sweeps = 0;
  double build_seconds = 0.0;
  double coarsen_seconds = 0.0;
  double last_sweep_seconds = 0.0;
  core::EngineStats engine;  ///< last data-driven run
  core::BspStats bsp;        ///< last BSP run
  // Cycle-breaking diagnostics (all zero on acyclic meshes).
  graph::CycleStats cycles;     ///< accumulated over all angles at build
  int cyclic_angles = 0;        ///< directions that needed a cut
  int last_lag_sweeps = 0;      ///< engine runs of the last sweep() call
  double last_lag_residual = 0.0;  ///< max lagged-face change, last commit
};

class SweepSolver {
 public:
  /// Structured-mesh solver. `patch_owner[p]` must be identical on all
  /// ranks; `disc` and `quad` must outlive the solver.
  SweepSolver(comm::Context& ctx, const mesh::StructuredMesh& m,
              const partition::PatchSet& ps, std::vector<RankId> patch_owner,
              const sn::StructuredDD& disc, const sn::Quadrature& quad,
              SolverConfig config);

  /// Unstructured-mesh solver.
  SweepSolver(comm::Context& ctx, const mesh::TetMesh& m,
              const partition::PatchSet& ps, std::vector<RankId> patch_owner,
              const sn::TetStep& disc, const sn::Quadrature& quad,
              SolverConfig config);

  ~SweepSolver();

  SweepSolver(const SweepSolver&) = delete;
  SweepSolver& operator=(const SweepSolver&) = delete;

  /// One full transport sweep over all angles; returns the global scalar
  /// flux (identical on every rank). Collective.
  std::vector<double> sweep(const std::vector<double>& q_per_ster);

  /// Adapter for sn::source_iteration.
  [[nodiscard]] sn::SweepOperator as_operator() {
    return [this](const std::vector<double>& q) { return sweep(q); };
  }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Observability for tests/benches: the shared face-flux workspace pool
  /// (created/acquire/reuse counters prove steady-state recycling).
  [[nodiscard]] const sn::FaceFluxPool& flux_pool() const {
    return flux_pool_;
  }

 private:
  void build(
      const std::function<graph::PatchTaskGraph(
          PatchId, const mesh::Vec3&, AngleId, const graph::CycleCut*)>&
          task_builder,
      const std::function<graph::Digraph(const mesh::Vec3&)>&
          patch_digraph_builder,
      const std::function<graph::CycleCut(const mesh::Vec3&)>& cut_builder);
  void install_programs(bool record_clusters);
  void activate_coarsened();
  void collect_phi(std::vector<double>& phi_global) const;

  comm::Context& ctx_;
  const partition::PatchSet& ps_;
  std::vector<RankId> owner_;
  const sn::Quadrature& quad_;
  SolverConfig config_;

  SweepShared shared_;
  LaggedFluxStore lagged_store_;
  /// Face-flux workspaces recycled across programs and sweeps (dense hot
  /// path; see sn/face_flux.hpp).
  sn::FaceFluxPool flux_pool_;
  std::vector<double> q_current_;

  std::vector<std::unique_ptr<SweepTaskData>> task_data_;
  std::vector<double> program_priority_;  ///< parallel to task_data_
  std::vector<std::unique_ptr<std::mutex>> patch_mutex_;  ///< ablation

  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<core::BspEngine> bsp_;
  std::vector<SweepPatchProgram*> programs_;  ///< engine-owned, fixed order
  std::vector<std::unique_ptr<CoarsenedSweepData>> coarse_data_;
  std::vector<CoarsenedSweepProgram*> coarse_programs_;
  bool coarsened_active_ = false;

  SolverStats stats_;
};

}  // namespace jsweep::sweep
