#pragma once

/// \file autotune.hpp
/// Calibration auto-tuner: pick the group-set width and the engine's
/// steal/spin knobs by *measuring* short grinds on the actual plan instead
/// of trusting defaults.
///
/// The paper frames aggregation (cluster grain, group sets) and scheduling
/// rules as the decisive sweep-efficiency levers, but the best point
/// depends on the machine, the mesh and the partition — exactly the things
/// a static default cannot see. auto_tune() builds one candidate plan per
/// group-set width (plans are width-structural, so the caller supplies a
/// builder), runs a short timed solve grind per (width, stealing, spin)
/// combination, and returns the fastest combination as a PlanTuning
/// persisted on a freshly built winning plan (PlanConfig::tuning) — every
/// session created from that plan inherits the calibration through
/// SolveConfig's "auto" (-1) knobs.
///
/// Collective: every rank must call with identical inputs; candidate
/// timings are allreduce_max'd so all ranks agree on the winner and the
/// tuned plan stays identical cluster-wide. Deterministic given identical
/// timings; the measured winner may of course vary run to run — that is
/// the point. Note the JSWEEP_WORK_STEALING / JSWEEP_STEAL_SPIN
/// environment overrides outrank SolveConfig inside the engine, so with
/// either set the corresponding axis of the scan collapses.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/cluster.hpp"
#include "sweep/plan.hpp"

namespace jsweep::sweep {

/// Builds the candidate plan for one group-set width. Called collectively
/// (all ranks, same width sequence); the config passed in is the caller's
/// base PlanConfig with `group_set_width` (and finally `tuning`) set by
/// the tuner. Single-group bases are only ever built at width 1.
using TunePlanBuilder = std::function<std::shared_ptr<const SweepPlan>(
    const PlanConfig& config)>;

/// Scan ranges and grind length of one auto_tune() call.
struct AutoTuneOptions {
  /// Candidate group-set widths; empty = {1, 2, 4, 8} clamped to
  /// [1, min(G, sn::kMaxGroupSetWidth)]. Single-group or non-pipelined
  /// bases always scan {1} only (width is a multigroup-pipeline knob).
  std::vector<int> group_set_widths;
  /// Steal-spin candidates tried with stealing on (stealing off is always
  /// tried once per width, spin moot).
  std::vector<int> spin_rounds{16, 64, 256};
  int num_workers = 2;  ///< engine workers of the grind sessions
  /// Transport sweeps (single-group) or multigroup passes per timed grind.
  int grind_passes = 3;
  /// Timed repetitions per candidate; the minimum is scored (absorbs
  /// first-run allocation noise).
  int repeats = 2;
};

/// One scored candidate of the scan (diagnostics / bench output).
struct AutoTuneSample {
  PlanTuning tuning;      ///< the candidate's knobs
  double seconds = 0.0;   ///< best-of-repeats grind time (cluster max)
};

/// The tuner's verdict: the winning knobs, the winning plan (rebuilt with
/// `config().tuning` set so sessions inherit the calibration), and the
/// full scan for reporting.
struct AutoTuneResult {
  PlanTuning tuning;  ///< fastest (width, stealing, spin) combination
  std::shared_ptr<const SweepPlan> plan;  ///< winning plan, tuning persisted
  double best_seconds = 0.0;              ///< winning grind time
  std::vector<AutoTuneSample> samples;    ///< every candidate, scan order
};

/// Run the calibration scan (see the file doc). `base` is the caller's
/// PlanConfig; its `group_set_width` and `tuning` are overwritten per
/// candidate. Collective across `ctx`'s cluster.
[[nodiscard]] AutoTuneResult auto_tune(comm::Context& ctx,
                                       const PlanConfig& base,
                                       const TunePlanBuilder& build,
                                       const AutoTuneOptions& options = {});

}  // namespace jsweep::sweep
