#pragma once

/// \file stream_codec.hpp
/// Payload format of sweep streams: a batch of face-flux deliveries. Each
/// item says "the flux through `face` feeding your cell `cell` is `value`".
/// Vertex clustering aggregates many items per stream (Sec. V-C benefit 2).
///
/// ## Wire format
///
/// A payload is a flat little-endian byte sequence (host byte order — the
/// in-process cluster never crosses endianness):
///
/// ```text
///   offset 0            : uint64  count        (number of items)
///   offset 8 + 24*i     : int64   item[i].cell (destination global cell)
///   offset 8 + 24*i + 8 : int64   item[i].face (global face id)
///   offset 8 + 24*i + 16: double  item[i].value(angular face flux)
/// ```
///
/// i.e. an 8-byte count header followed by `count` packed 24-byte
/// StreamItem records (the struct is trivially copyable and memcpy'd
/// whole). item_count() validates the framing: a payload is well-formed
/// iff size == 8 + 24·count. A zero-length payload is NOT a valid codec
/// payload — the engines reserve empty stream data for the multigroup
/// activation markers, which never reach the codec.
///
/// The hot path never materializes item vectors: encode_items_into() fills
/// a (pooled) byte buffer in place and for_each_item() iterates the payload
/// directly. encode_items()/decode_items() remain as the allocating
/// convenience forms for tests and tools.

#include <cstdint>
#include <cstring>
#include <vector>

#include "comm/serialize.hpp"

namespace jsweep::sweep {

struct StreamItem {
  std::int64_t cell;   ///< destination cell (global id)
  std::int64_t face;   ///< mesh face id carrying the flux
  double value;        ///< angular face flux
};

static_assert(std::is_trivially_copyable_v<StreamItem>);

/// Serialize `items` into `out` (cleared first; capacity is reused, so a
/// pooled buffer makes steady-state encoding allocation-free).
inline void encode_items_into(const std::vector<StreamItem>& items,
                              comm::Bytes& out) {
  const auto count = static_cast<std::uint64_t>(items.size());
  out.clear();
  out.resize(sizeof(count) + items.size() * sizeof(StreamItem));
  std::memcpy(out.data(), &count, sizeof(count));
  if (!items.empty())
    std::memcpy(out.data() + sizeof(count), items.data(),
                items.size() * sizeof(StreamItem));
}

/// Allocating convenience form of encode_items_into().
inline comm::Bytes encode_items(const std::vector<StreamItem>& items) {
  comm::Bytes out;
  encode_items_into(items, out);
  return out;
}

/// Number of items in an encoded payload (validates the framing).
inline std::size_t item_count(const comm::Bytes& bytes) {
  JSWEEP_CHECK_MSG(bytes.size() >= sizeof(std::uint64_t),
                   "stream payload truncated: " << bytes.size() << " bytes");
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data(), sizeof(count));
  JSWEEP_CHECK_MSG(
      bytes.size() == sizeof(count) + count * sizeof(StreamItem),
      "stream payload size mismatch: " << bytes.size() << " bytes for "
                                       << count << " items");
  return static_cast<std::size_t>(count);
}

/// Visit each item of an encoded payload in place — no allocation, no
/// intermediate vector.
template <class Fn>
inline void for_each_item(const comm::Bytes& bytes, Fn&& fn) {
  const std::size_t count = item_count(bytes);
  const std::byte* p = bytes.data() + sizeof(std::uint64_t);
  for (std::size_t i = 0; i < count; ++i, p += sizeof(StreamItem)) {
    StreamItem item;  // memcpy: payload bytes are not alignment-guaranteed
    std::memcpy(&item, p, sizeof(item));
    fn(item);
  }
}

/// Allocating convenience form of for_each_item() (tests and tools).
inline std::vector<StreamItem> decode_items(const comm::Bytes& bytes) {
  std::vector<StreamItem> items;
  items.reserve(item_count(bytes));
  for_each_item(bytes, [&](const StreamItem& it) { items.push_back(it); });
  return items;
}

// ---------------------------------------------------------------------------
// Group-set payloads
// ---------------------------------------------------------------------------
//
// A group-set program (set width W > 1) delivers W lane fluxes per face in
// one record, so downstream dependency counting still decrements once per
// face delivery:
//
// ```text
//   offset 0                  : uint64  count     (number of records)
//   offset 8 + (16+8W)*i      : int64   cell
//   offset 8 + (16+8W)*i + 8  : int64   face
//   offset 8 + (16+8W)*i + 16 : double  lanes[W]  (flux per group of set)
// ```
//
// The record width W is carried by the program tag's set, not the payload;
// encoder and decoder must agree on it. W == 1 programs keep the StreamItem
// codec above byte-for-byte.

/// One staged group-set record before encoding: the lane values live in a
/// caller-managed flat array alongside.
struct SetStreamRecord {
  std::int64_t cell;  ///< destination cell (global id)
  std::int64_t face;  ///< mesh face id carrying the flux
};

static_assert(std::is_trivially_copyable_v<SetStreamRecord>);

/// Encoded byte size of one group-set record at lane width `width`.
[[nodiscard]] inline std::size_t set_record_size(int width) {
  return sizeof(SetStreamRecord) +
         static_cast<std::size_t>(width) * sizeof(double);
}

/// Serialize `records` (with `lanes[i * width + l]` holding record i's lane
/// values) into `out` (cleared first; capacity reused).
inline void encode_set_items_into(const std::vector<SetStreamRecord>& records,
                                  const std::vector<double>& lanes, int width,
                                  comm::Bytes& out) {
  JSWEEP_ASSERT(lanes.size() ==
                records.size() * static_cast<std::size_t>(width));
  const auto count = static_cast<std::uint64_t>(records.size());
  const std::size_t rec = set_record_size(width);
  out.clear();
  out.resize(sizeof(count) + records.size() * rec);
  std::memcpy(out.data(), &count, sizeof(count));
  std::byte* p = out.data() + sizeof(count);
  for (std::size_t i = 0; i < records.size(); ++i, p += rec) {
    std::memcpy(p, &records[i], sizeof(SetStreamRecord));
    std::memcpy(p + sizeof(SetStreamRecord),
                lanes.data() + i * static_cast<std::size_t>(width),
                static_cast<std::size_t>(width) * sizeof(double));
  }
}

/// Number of records in an encoded group-set payload of lane width `width`
/// (validates the framing).
inline std::size_t set_item_count(const comm::Bytes& bytes, int width) {
  JSWEEP_CHECK_MSG(bytes.size() >= sizeof(std::uint64_t),
                   "set stream payload truncated: " << bytes.size()
                                                    << " bytes");
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data(), sizeof(count));
  JSWEEP_CHECK_MSG(
      bytes.size() == sizeof(count) + count * set_record_size(width),
      "set stream payload size mismatch: " << bytes.size() << " bytes for "
                                           << count << " records at width "
                                           << width);
  return static_cast<std::size_t>(count);
}

/// Visit each record of an encoded group-set payload in place:
/// `fn(cell, face, lanes)` with `lanes` pointing at `width` doubles (valid
/// only during the call; copied to a local to guarantee alignment).
template <class Fn>
inline void for_each_set_item(const comm::Bytes& bytes, int width, Fn&& fn) {
  const std::size_t count = set_item_count(bytes, width);
  const std::size_t rec = set_record_size(width);
  const std::byte* p = bytes.data() + sizeof(std::uint64_t);
  double lanes[8];  // kMaxGroupSetWidth, without the sn dependency
  JSWEEP_ASSERT(width >= 1 && width <= 8);
  for (std::size_t i = 0; i < count; ++i, p += rec) {
    SetStreamRecord r;  // memcpy: payload bytes are not aligned
    std::memcpy(&r, p, sizeof(r));
    std::memcpy(lanes, p + sizeof(r),
                static_cast<std::size_t>(width) * sizeof(double));
    fn(r.cell, r.face, static_cast<const double*>(lanes));
  }
}

}  // namespace jsweep::sweep
