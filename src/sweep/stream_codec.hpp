#pragma once

/// \file stream_codec.hpp
/// Payload format of sweep streams: a batch of face-flux deliveries. Each
/// item says "the flux through `face` feeding your cell `cell` is `value`".
/// Vertex clustering aggregates many items per stream (Sec. V-C benefit 2).
///
/// ## Wire format
///
/// A payload is a flat little-endian byte sequence (host byte order — the
/// in-process cluster never crosses endianness):
///
/// ```text
///   offset 0            : uint64  count        (number of items)
///   offset 8 + 24*i     : int64   item[i].cell (destination global cell)
///   offset 8 + 24*i + 8 : int64   item[i].face (global face id)
///   offset 8 + 24*i + 16: double  item[i].value(angular face flux)
/// ```
///
/// i.e. an 8-byte count header followed by `count` packed 24-byte
/// StreamItem records (the struct is trivially copyable and memcpy'd
/// whole). item_count() validates the framing: a payload is well-formed
/// iff size == 8 + 24·count. A zero-length payload is NOT a valid codec
/// payload — the engines reserve empty stream data for the multigroup
/// activation markers, which never reach the codec.
///
/// The hot path never materializes item vectors: encode_items_into() fills
/// a (pooled) byte buffer in place and for_each_item() iterates the payload
/// directly. encode_items()/decode_items() remain as the allocating
/// convenience forms for tests and tools.

#include <cstdint>
#include <cstring>
#include <vector>

#include "comm/serialize.hpp"

namespace jsweep::sweep {

struct StreamItem {
  std::int64_t cell;   ///< destination cell (global id)
  std::int64_t face;   ///< mesh face id carrying the flux
  double value;        ///< angular face flux
};

static_assert(std::is_trivially_copyable_v<StreamItem>);

/// Serialize `items` into `out` (cleared first; capacity is reused, so a
/// pooled buffer makes steady-state encoding allocation-free).
inline void encode_items_into(const std::vector<StreamItem>& items,
                              comm::Bytes& out) {
  const auto count = static_cast<std::uint64_t>(items.size());
  out.clear();
  out.resize(sizeof(count) + items.size() * sizeof(StreamItem));
  std::memcpy(out.data(), &count, sizeof(count));
  if (!items.empty())
    std::memcpy(out.data() + sizeof(count), items.data(),
                items.size() * sizeof(StreamItem));
}

/// Allocating convenience form of encode_items_into().
inline comm::Bytes encode_items(const std::vector<StreamItem>& items) {
  comm::Bytes out;
  encode_items_into(items, out);
  return out;
}

/// Number of items in an encoded payload (validates the framing).
inline std::size_t item_count(const comm::Bytes& bytes) {
  JSWEEP_CHECK_MSG(bytes.size() >= sizeof(std::uint64_t),
                   "stream payload truncated: " << bytes.size() << " bytes");
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data(), sizeof(count));
  JSWEEP_CHECK_MSG(
      bytes.size() == sizeof(count) + count * sizeof(StreamItem),
      "stream payload size mismatch: " << bytes.size() << " bytes for "
                                       << count << " items");
  return static_cast<std::size_t>(count);
}

/// Visit each item of an encoded payload in place — no allocation, no
/// intermediate vector.
template <class Fn>
inline void for_each_item(const comm::Bytes& bytes, Fn&& fn) {
  const std::size_t count = item_count(bytes);
  const std::byte* p = bytes.data() + sizeof(std::uint64_t);
  for (std::size_t i = 0; i < count; ++i, p += sizeof(StreamItem)) {
    StreamItem item;  // memcpy: payload bytes are not alignment-guaranteed
    std::memcpy(&item, p, sizeof(item));
    fn(item);
  }
}

/// Allocating convenience form of for_each_item() (tests and tools).
inline std::vector<StreamItem> decode_items(const comm::Bytes& bytes) {
  std::vector<StreamItem> items;
  items.reserve(item_count(bytes));
  for_each_item(bytes, [&](const StreamItem& it) { items.push_back(it); });
  return items;
}

}  // namespace jsweep::sweep
