#pragma once

/// \file stream_codec.hpp
/// Payload format of sweep streams: a batch of face-flux deliveries. Each
/// item says "the flux through `face` feeding your cell `cell` is `value`".
/// Vertex clustering aggregates many items per stream (Sec. V-C benefit 2).

#include <cstdint>
#include <vector>

#include "comm/serialize.hpp"

namespace jsweep::sweep {

struct StreamItem {
  std::int64_t cell;   ///< destination cell (global id)
  std::int64_t face;   ///< mesh face id carrying the flux
  double value;        ///< angular face flux
};

static_assert(std::is_trivially_copyable_v<StreamItem>);

inline comm::Bytes encode_items(const std::vector<StreamItem>& items) {
  comm::ByteWriter w(sizeof(std::uint64_t) +
                     items.size() * sizeof(StreamItem));
  w.write_vector(items);
  return w.take();
}

inline std::vector<StreamItem> decode_items(const comm::Bytes& bytes) {
  comm::ByteReader r(bytes);
  return r.read_vector<StreamItem>();
}

}  // namespace jsweep::sweep
