#include "sweep/service.hpp"

#include <algorithm>
#include <string>

#include "metrics/metrics.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace jsweep::sweep {

SweepService::SweepService(comm::Context& ctx, ServiceConfig config)
    : ctx_(ctx), config_(config) {
  JSWEEP_CHECK_MSG(config_.num_workers >= 1,
                   "ServiceConfig::num_workers must be >= 1");
  JSWEEP_CHECK_MSG(config_.max_batch >= 1,
                   "ServiceConfig::max_batch must be >= 1");
  if (metrics::Registry* reg = config_.metrics; reg != nullptr) {
    const metrics::Labels by_rank{{"rank",
                                   std::to_string(ctx_.rank().value())}};
    metric_requests_ = &reg->counter("jsweep_service_requests_total",
                                     "solve requests admitted", by_rank);
    metric_batches_ = &reg->counter("jsweep_service_batches_total",
                                    "same-plan batches executed", by_rank);
    metric_engine_runs_ =
        &reg->counter("jsweep_service_engine_runs_total",
                      "host-engine runs across all batches", by_rank);
    metric_retired_lanes_ = &reg->counter(
        "jsweep_service_retired_lanes_total",
        "request lanes retired (converged or iteration-capped)", by_rank);
    metric_request_latency_ = &reg->histogram(
        "jsweep_service_request_latency_seconds",
        "batch-start to lane-retired latency per request",
        metrics::Registry::exponential_buckets(1e-3, 4.0, 10), by_rank);
    metric_batch_size_ = &reg->histogram(
        "jsweep_service_batch_size", "request lanes fused per batch",
        metrics::Registry::exponential_buckets(1.0, 2.0, 6), by_rank);
    metric_lane_occupancy_ =
        &reg->gauge("jsweep_service_lane_occupancy",
                    "request lanes active in the current batch", by_rank);
  }
}

SweepService::~SweepService() = default;

void SweepService::enqueue(SolveRequest request) {
  JSWEEP_CHECK_MSG(request.plan != nullptr, "solve request needs a plan");
  JSWEEP_CHECK_MSG(
      request.plan->config().multigroup == nullptr,
      "the service batches single-group solves; run multigroup plans "
      "through a standalone SweepSession::solve_multigroup()");
  JSWEEP_CHECK_MSG(request.xs != nullptr,
                   "solve request needs per-cell cross sections "
                   "(SolveRequest::xs)");
  request.xs->validate();
  JSWEEP_CHECK_MSG(
      static_cast<std::int64_t>(request.xs->sigma_t.size()) ==
          request.plan->patches().num_cells(),
      "request XS covers " << request.xs->sigma_t.size()
                           << " cells but the plan sweeps "
                           << request.plan->patches().num_cells());
  ++stats_.requests;
  if (metric_requests_ != nullptr) metric_requests_->inc();
  queue_.push_back(std::move(request));
}

SweepService::PlanRig& SweepService::rig_for(
    const std::shared_ptr<const SweepPlan>& plan) {
  for (auto& rig : rigs_)
    if (rig->plan.get() == plan.get()) return *rig;

  auto rig = std::make_unique<PlanRig>();
  rig->plan = plan;
  core::EngineConfig ec;
  ec.num_workers = config_.num_workers;
  ec.termination = core::TerminationMode::KnownWorkload;
  ec.metrics = config_.metrics;
  rig->engine = std::make_unique<core::Engine>(ctx_, ec);
  for (int lane = 0; lane < config_.max_batch; ++lane) {
    SolveConfig sc;
    sc.engine = EngineKind::DataDriven;
    sc.num_workers = config_.num_workers;
    sc.max_lag_sweeps = config_.max_lag_sweeps;
    sc.lag_tolerance = config_.lag_tolerance;
    sc.metrics.registry = config_.metrics;
    rig->lanes.push_back(std::make_unique<SweepSession>(
        ctx_, plan, sc, *rig->engine, lane));
  }
  rigs_.push_back(std::move(rig));
  return *rigs_.back();
}

void SweepService::set_lane_enabled(PlanRig& rig, std::size_t lane,
                                    bool enabled) {
  for (const ProgramKey& key : rig.lanes[lane]->program_keys())
    rig.engine->set_program_enabled(key, enabled);
}

void SweepService::solve_batch(PlanRig& rig,
                               const std::vector<std::size_t>& indices,
                               std::vector<SolveResponse>& out) {
  const auto K = indices.size();
  const auto n =
      static_cast<std::size_t>(rig.plan->patches().num_cells());

  // Per-lane outer-iteration state, mirroring sn::source_iteration.
  struct LaneState {
    sn::SourceIterationResult result;
    bool active = true;
  };
  std::vector<LaneState> lanes(K);
  for (std::size_t k = 0; k < K; ++k) {
    lanes[k].result.phi.assign(n, 0.0);
    rig.lanes[k]->set_kernel(queue_[indices[k]].disc);
    set_lane_enabled(rig, k, true);
  }
  for (std::size_t k = K; k < rig.lanes.size(); ++k)
    set_lane_enabled(rig, k, false);

  const double batch_start =
      config_.metrics != nullptr ? config_.metrics->now_seconds() : 0.0;
  if (metric_batch_size_ != nullptr) {
    metric_batch_size_->observe(static_cast<double>(K));
    metric_lane_occupancy_->set(static_cast<double>(K));
  }

  std::size_t active_count = K;
  while (active_count > 0) {
    // Stage every active lane's emission density for this sweep.
    for (std::size_t k = 0; k < K; ++k) {
      if (!lanes[k].active) continue;
      rig.lanes[k]->begin_sweep(
          sn::emission_density(*queue_[indices[k]].xs, lanes[k].result.phi));
    }

    // One engine run sweeps all active lanes; on cut meshes repeat per the
    // lag loop (commit after EVERY run, batch-wide residual).
    int lag_sweeps = 0;
    for (;;) {
      rig.engine->run();
      ++stats_.engine_runs;
      if (metric_engine_runs_ != nullptr) metric_engine_runs_->inc();
      ++lag_sweeps;
      if (!rig.plan->has_lagged()) break;
      double residual = 0.0;
      for (std::size_t k = 0; k < K; ++k)  // lane order: collectives align
        if (lanes[k].active)
          residual = std::max(residual, rig.lanes[k]->commit_lagged());
      if (lag_sweeps >= std::max(1, config_.max_lag_sweeps)) break;
      if (residual <= config_.lag_tolerance) break;
    }

    // Collect each active lane's flux (lane order — the allreduces must
    // line up on every rank) and step its source iteration.
    for (std::size_t k = 0; k < K; ++k) {
      LaneState& lane = lanes[k];
      if (!lane.active) continue;
      std::vector<double> phi_new = rig.lanes[k]->finish_sweep();
      ++stats_.sweeps;
      lane.result.error = sn::relative_linf(phi_new, lane.result.phi);
      lane.result.phi = std::move(phi_new);
      ++lane.result.iterations;
      const auto& options = queue_[indices[k]].options;
      if (lane.result.error < options.tolerance) lane.result.converged = true;
      if (lane.result.converged ||
          lane.result.iterations >= options.max_iterations) {
        lane.active = false;
        --active_count;
        set_lane_enabled(rig, k, false);  // retired: sit out further runs
        if (metric_retired_lanes_ != nullptr) {
          metric_retired_lanes_->inc();
          metric_lane_occupancy_->add(-1.0);
          metric_request_latency_->observe(config_.metrics->now_seconds() -
                                           batch_start);
        }
      }
    }
  }

  for (std::size_t k = 0; k < K; ++k) {
    out[indices[k]].result = std::move(lanes[k].result);
    out[indices[k]].lanes_in_batch = static_cast<int>(K);
  }
  ++stats_.batches;
  if (metric_batches_ != nullptr) metric_batches_->inc();
}

std::vector<SolveResponse> SweepService::drain() {
  WallTimer timer;
  std::vector<SolveResponse> out(queue_.size());

  // Group queued requests by plan (first-appearance order, stable within a
  // plan) and fuse each plan's requests into batches of <= max_batch.
  std::vector<const SweepPlan*> plan_order;
  std::vector<std::vector<std::size_t>> by_plan;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const SweepPlan* plan = queue_[i].plan.get();
    std::size_t slot = 0;
    for (; slot < plan_order.size(); ++slot)
      if (plan_order[slot] == plan) break;
    if (slot == plan_order.size()) {
      plan_order.push_back(plan);
      by_plan.emplace_back();
    }
    by_plan[slot].push_back(i);
  }

  for (std::size_t slot = 0; slot < plan_order.size(); ++slot) {
    const auto& indices = by_plan[slot];
    PlanRig& rig = rig_for(queue_[indices.front()].plan);
    for (std::size_t at = 0; at < indices.size();
         at += static_cast<std::size_t>(config_.max_batch)) {
      const std::vector<std::size_t> chunk(
          indices.begin() + static_cast<std::ptrdiff_t>(at),
          indices.begin() +
              static_cast<std::ptrdiff_t>(std::min(
                  at + static_cast<std::size_t>(config_.max_batch),
                  indices.size())));
      solve_batch(rig, chunk, out);
    }
  }

  queue_.clear();
  stats_.solve_seconds += timer.seconds();
  return out;
}

SolveResponse SweepService::solve(SolveRequest request) {
  enqueue(std::move(request));
  std::vector<SolveResponse> responses = drain();
  JSWEEP_CHECK(responses.size() == 1);
  return std::move(responses.front());
}

}  // namespace jsweep::sweep
