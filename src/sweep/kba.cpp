#include "sweep/kba.hpp"

#include "graph/sweep_dag.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace jsweep::sweep {

namespace {

/// Even split of n cells over p parts: part i owns [lo, hi).
std::pair<int, int> split_range(int n, int p, int i) {
  const int lo = static_cast<int>(static_cast<std::int64_t>(n) * i / p);
  const int hi = static_cast<int>(static_cast<std::int64_t>(n) * (i + 1) / p);
  return {lo, hi};
}

struct PlaneHeader {
  std::int32_t angle;
  std::int32_t block;
  std::int32_t axis;
};

}  // namespace

KbaSolver::KbaSolver(comm::Context& ctx, const sn::StructuredDD& disc,
                     const sn::Quadrature& quad, KbaConfig config)
    : ctx_(ctx), disc_(disc), quad_(quad), config_(config) {
  JSWEEP_CHECK_MSG(config_.px * config_.py == ctx_.size(),
                   "KBA grid " << config_.px << "x" << config_.py
                               << " != ranks " << ctx_.size());
  JSWEEP_CHECK(config_.z_block >= 1);
  const mesh::Index3 d = disc_.mesh().dims();
  rx_ = ctx_.rank().value() % config_.px;
  ry_ = ctx_.rank().value() / config_.px;
  std::tie(x_lo_, x_hi_) = split_range(d.i, config_.px, rx_);
  std::tie(y_lo_, y_hi_) = split_range(d.j, config_.py, ry_);
  JSWEEP_CHECK_MSG(x_hi_ > x_lo_ && y_hi_ > y_lo_,
                   "KBA grid finer than the mesh");
}

std::vector<double> KbaSolver::recv_plane(const PlaneKey& key) {
  WallTimer wait;
  for (;;) {
    const auto it = plane_buffer_.find(key);
    if (it != plane_buffer_.end()) {
      std::vector<double> values = std::move(it->second);
      plane_buffer_.erase(it);
      stats_.wait_seconds += wait.seconds();
      return values;
    }
    const comm::Message msg = ctx_.recv();
    JSWEEP_CHECK(msg.tag == comm::kTagUser);
    comm::ByteReader r(msg.payload);
    const auto header = r.read<PlaneHeader>();
    auto values = r.read_vector<double>();
    plane_buffer_.emplace(PlaneKey{header.angle, header.block, header.axis},
                          std::move(values));
  }
}

void KbaSolver::send_plane(RankId dest, const PlaneKey& key,
                           const std::vector<double>& values) {
  comm::ByteWriter w(sizeof(PlaneHeader) + 8 + values.size() * 8);
  w.write(PlaneHeader{key.angle, key.block, key.axis});
  w.write_vector(values);
  stats_.bytes += static_cast<std::int64_t>(w.size());
  ++stats_.messages;
  ctx_.send(dest, comm::kTagUser, w.take());
}

std::vector<double> KbaSolver::sweep(const std::vector<double>& q_per_ster) {
  const mesh::StructuredMesh& m = disc_.mesh();
  const mesh::Index3 d = m.dims();
  JSWEEP_CHECK(static_cast<std::int64_t>(q_per_ster.size()) == m.num_cells());
  WallTimer total;
  stats_ = KbaStats{};

  std::vector<double> phi(static_cast<std::size_t>(m.num_cells()), 0.0);
  const int nx = x_hi_ - x_lo_;
  const int ny = y_hi_ - y_lo_;
  const int nblocks = (d.k + config_.z_block - 1) / config_.z_block;

  sn::FaceFluxMap flux;
  for (int a = 0; a < quad_.num_angles(); ++a) {
    const sn::Ordinate& ang = quad_.angle(a);
    flux.clear();

    const bool xup = ang.dir.x > 0;  // sweep toward +x?
    const bool yup = ang.dir.y > 0;
    const bool zup = ang.dir.z > 0;
    // Upwind/downwind neighbor ranks (invalid at grid edges).
    const int rx_up = xup ? rx_ - 1 : rx_ + 1;
    const int rx_dn = xup ? rx_ + 1 : rx_ - 1;
    const int ry_up = yup ? ry_ - 1 : ry_ + 1;
    const int ry_dn = yup ? ry_ + 1 : ry_ - 1;
    const bool has_x_up = rx_up >= 0 && rx_up < config_.px;
    const bool has_x_dn = rx_dn >= 0 && rx_dn < config_.px;
    const bool has_y_up = ry_up >= 0 && ry_up < config_.py;
    const bool has_y_dn = ry_dn >= 0 && ry_dn < config_.py;

    // The boundary cell column we send from (receives land via ghost faces).
    const int x_out = xup ? x_hi_ - 1 : x_lo_;  // our downwind x column
    const int y_out = yup ? y_hi_ - 1 : y_lo_;
    const mesh::FaceDir x_out_dir = xup ? mesh::FaceDir::XHi
                                        : mesh::FaceDir::XLo;
    const mesh::FaceDir y_out_dir = yup ? mesh::FaceDir::YHi
                                        : mesh::FaceDir::YLo;

    for (int b = 0; b < nblocks; ++b) {
      // Block b is the b-th pipeline stage along the sweep direction, so
      // for Ωz<0 stages run from the top of the mesh downward.
      const int zb_lo = zup ? b * config_.z_block
                            : std::max(0, d.k - (b + 1) * config_.z_block);
      const int zb_hi =
          zup ? std::min(d.k, zb_lo + config_.z_block) : d.k - b * config_.z_block;
      const int block_nz = zb_hi - zb_lo;

      // Receive upwind boundary planes and seed the flux map. The plane is
      // stored as values through the faces of the *neighbor's* boundary
      // cells, keyed exactly as the DD kernel looks them up.
      if (has_x_up) {
        const auto values = recv_plane({a, b, 0});
        JSWEEP_CHECK(static_cast<int>(values.size()) == ny * block_nz);
        std::size_t idx = 0;
        const int nb_x = xup ? x_lo_ - 1 : x_hi_;  // ghost cell column
        for (int z = 0; z < block_nz; ++z) {
          for (int y = 0; y < ny; ++y, ++idx) {
            const int zz = zup ? zb_lo + z : zb_hi - 1 - z;
            const CellId ghost = m.cell_at({nb_x, y_lo_ + y, zz});
            flux[graph::structured_face_id(ghost, x_out_dir)] = values[idx];
          }
        }
      }
      if (has_y_up) {
        const auto values = recv_plane({a, b, 1});
        JSWEEP_CHECK(static_cast<int>(values.size()) == nx * block_nz);
        std::size_t idx = 0;
        const int nb_y = yup ? y_lo_ - 1 : y_hi_;
        for (int z = 0; z < block_nz; ++z) {
          for (int x = 0; x < nx; ++x, ++idx) {
            const int zz = zup ? zb_lo + z : zb_hi - 1 - z;
            const CellId ghost = m.cell_at({x_lo_ + x, nb_y, zz});
            flux[graph::structured_face_id(ghost, y_out_dir)] = values[idx];
          }
        }
      }

      // Compute the block, upwind to downwind in all three axes.
      for (int zz = 0; zz < block_nz; ++zz) {
        const int z = zup ? zb_lo + zz : zb_hi - 1 - zz;
        for (int yy = 0; yy < ny; ++yy) {
          const int y = yup ? y_lo_ + yy : y_hi_ - 1 - yy;
          for (int xx = 0; xx < nx; ++xx) {
            const int x = xup ? x_lo_ + xx : x_hi_ - 1 - xx;
            const CellId c = m.cell_at({x, y, z});
            const double psi = disc_.sweep_cell(c, ang, q_per_ster, flux);
            phi[static_cast<std::size_t>(c.value())] += ang.weight * psi;
          }
        }
      }

      // Ship downwind boundary planes.
      if (has_x_dn) {
        std::vector<double> values;
        values.reserve(static_cast<std::size_t>(ny) * block_nz);
        for (int z = 0; z < block_nz; ++z) {
          for (int y = 0; y < ny; ++y) {
            const int zz = zup ? zb_lo + z : zb_hi - 1 - z;
            const CellId c = m.cell_at({x_out, y_lo_ + y, zz});
            values.push_back(
                flux[graph::structured_face_id(c, x_out_dir)]);
          }
        }
        send_plane(rank_at(rx_dn, ry_), {a, b, 0}, values);
      }
      if (has_y_dn) {
        std::vector<double> values;
        values.reserve(static_cast<std::size_t>(nx) * block_nz);
        for (int z = 0; z < block_nz; ++z) {
          for (int x = 0; x < nx; ++x) {
            const int zz = zup ? zb_lo + z : zb_hi - 1 - z;
            const CellId c = m.cell_at({x_lo_ + x, y_out, zz});
            values.push_back(
                flux[graph::structured_face_id(c, y_out_dir)]);
          }
        }
        send_plane(rank_at(rx_, ry_dn), {a, b, 1}, values);
      }
    }
  }

  ctx_.allreduce_sum(phi);
  stats_.elapsed_seconds = total.seconds();
  return phi;
}

}  // namespace jsweep::sweep
