#include "sweep/autotune.hpp"

#include <algorithm>
#include <limits>

#include "sn/face_flux.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"
#include "sweep/session.hpp"

namespace jsweep::sweep {
namespace {

/// One timed grind of `passes` sweeps/passes on `plan` under `sc`.
/// Session construction (program install) is excluded — the tuner scores
/// steady-state execution, which is what repeated solves pay.
double grind_once(comm::Context& ctx, std::shared_ptr<const SweepPlan> plan,
                  const SolveConfig& sc, int passes) {
  SweepSession session(ctx, plan, sc);
  if (plan->config().multigroup != nullptr) {
    sn::MultigroupOptions mg;
    // Exactly `passes` passes: zero tolerances defeat early convergence,
    // one outer keeps upscatter problems from multiplying the work.
    mg.inner.max_iterations = passes;
    mg.inner.tolerance = 0.0;
    mg.max_outer_iterations = 1;
    mg.outer_tolerance = 0.0;
    mg.group_set_width = plan->config().group_set_width;
    WallTimer timer;
    (void)session.solve_multigroup(mg);
    return timer.seconds();
  }
  const std::vector<double> q(
      static_cast<std::size_t>(plan->patches().num_cells()), 1.0);
  WallTimer timer;
  for (int i = 0; i < passes; ++i) (void)session.sweep(q);
  return timer.seconds();
}

}  // namespace

AutoTuneResult auto_tune(comm::Context& ctx, const PlanConfig& base,
                         const TunePlanBuilder& build,
                         const AutoTuneOptions& options) {
  JSWEEP_CHECK_MSG(build != nullptr, "auto_tune needs a plan builder");

  // Width axis: only multigroup-pipelined plans have one (the set width is
  // structural there); everything else scans {1}.
  const bool width_scan =
      base.multigroup != nullptr && base.group_pipelining;
  const int wmax =
      width_scan ? std::min(base.multigroup->groups(), sn::kMaxGroupSetWidth)
                 : 1;
  std::vector<int> widths = options.group_set_widths;
  if (widths.empty()) widths = {1, 2, 4, 8};
  std::vector<int> ws;
  for (int w : widths)
    if (w >= 1 && w <= wmax &&
        std::find(ws.begin(), ws.end(), w) == ws.end())
      ws.push_back(w);
  if (ws.empty()) ws.push_back(1);
  std::sort(ws.begin(), ws.end());

  std::vector<int> spins;
  for (int s : options.spin_rounds)
    if (s >= 0 && std::find(spins.begin(), spins.end(), s) == spins.end())
      spins.push_back(s);
  if (spins.empty()) spins.push_back(64);

  const int passes = std::max(1, options.grind_passes);
  const int repeats = std::max(1, options.repeats);

  AutoTuneResult result;
  double best = std::numeric_limits<double>::infinity();
  for (int w : ws) {
    PlanConfig pc = base;
    pc.group_set_width = w;
    pc.tuning.reset();
    std::shared_ptr<const SweepPlan> plan = build(pc);
    JSWEEP_CHECK_MSG(plan != nullptr, "plan builder returned null");

    std::vector<PlanTuning> candidates;
    candidates.push_back(PlanTuning{w, /*work_stealing=*/false, 0});
    for (int spin : spins)
      candidates.push_back(PlanTuning{w, /*work_stealing=*/true, spin});

    for (const PlanTuning& t : candidates) {
      SolveConfig sc;
      sc.num_workers = options.num_workers;
      sc.work_stealing = t.work_stealing ? 1 : 0;
      sc.steal_spin_rounds = t.steal_spin_rounds;
      double secs = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < repeats; ++rep)
        secs = std::min(secs, grind_once(ctx, plan, sc, passes));
      // Cluster max: the slowest rank gates a collective solve, and the
      // shared score keeps every rank picking the same winner.
      secs = ctx.allreduce_max(secs);
      result.samples.push_back(AutoTuneSample{t, secs});
      // Strict < : ties keep the earliest (scan-order-deterministic) pick.
      if (secs < best) {
        best = secs;
        result.tuning = t;
      }
    }
  }
  result.best_seconds = best;

  // Persist the verdict: the winning plan is rebuilt with config().tuning
  // set, so every session created from it inherits the calibration via
  // SolveConfig's "auto" knobs.
  PlanConfig winner = base;
  winner.group_set_width = result.tuning.group_set_width;
  winner.tuning = result.tuning;
  result.plan = build(winner);
  JSWEEP_CHECK_MSG(result.plan != nullptr, "plan builder returned null");
  return result;
}

}  // namespace jsweep::sweep
