#pragma once

/// \file coarsened_program.hpp
/// Coarsened-graph sweep replay (Sec. V-E). After one recorded DAG sweep,
/// each (patch, angle) program's compute() batches become the clusters of a
/// coarsened graph CG; later iterations run one cluster per task execution,
/// skipping per-vertex scheduling and per-fine-edge counter updates.
///
/// Deadlock-freedom across patches: clusters are compute() batches, streams
/// are emitted at batch end and consumed between batches, so every coarse
/// edge (local or remote) points from a cluster that finished earlier to
/// one that started later — the global coarse graph is acyclic (the
/// distributed extension of the paper's Theorem 1).

#include <queue>
#include <vector>

#include "core/patch_program.hpp"
#include "sweep/sweep_program.hpp"

namespace jsweep::sweep {

/// Immutable cluster-level structure derived from a recorded execution.
class CoarsenedSweepData {
 public:
  /// `cluster_of[v]` = recorded cluster of each fine vertex (all >= 0),
  /// with cluster ids in batch-creation order.
  CoarsenedSweepData(const SweepTaskData& fine,
                     std::vector<std::int32_t> cluster_of,
                     std::int32_t num_clusters);

  [[nodiscard]] const SweepTaskData& fine() const { return fine_; }
  [[nodiscard]] std::int32_t num_clusters() const { return num_clusters_; }
  [[nodiscard]] const std::vector<std::int32_t>& members(
      std::int32_t c) const {
    return members_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const std::vector<std::int32_t>& cluster_of() const {
    return cluster_of_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& initial_counts() const {
    return initial_counts_;
  }

  /// Coarse local successors of cluster c (deduplicated).
  template <class Fn>
  void for_succ(std::int32_t c, Fn&& fn) const {
    for (auto e = succ_off_[static_cast<std::size_t>(c)];
         e < succ_off_[static_cast<std::size_t>(c) + 1]; ++e)
      fn(succ_[static_cast<std::size_t>(e)]);
  }

 private:
  const SweepTaskData& fine_;
  std::vector<std::int32_t> cluster_of_;
  std::int32_t num_clusters_;
  std::vector<std::vector<std::int32_t>> members_;  ///< execution order
  std::vector<std::int64_t> succ_off_;
  std::vector<std::int32_t> succ_;
  /// #coarse local predecessors + #remote-in fine edges, per cluster.
  std::vector<std::int32_t> initial_counts_;
};

/// Patch-program that replays the sweep cluster-by-cluster on CG.
class CoarsenedSweepProgram final : public core::PatchProgram {
 public:
  CoarsenedSweepProgram(const CoarsenedSweepData& data,
                        const SweepShared& shared);

  void init() override;
  void input(const core::Stream& s) override;
  void compute() override;
  std::optional<core::Stream> output() override;
  bool vote_to_halt() override;
  [[nodiscard]] std::int64_t remaining_work() const override {
    return fine_vertices_ - computed_;
  }
  [[nodiscard]] std::int64_t total_work() const override {
    return fine_vertices_;
  }

  [[nodiscard]] const std::vector<double>& phi_local() const { return phi_; }

 private:
  const CoarsenedSweepData& data_;
  const SweepShared& shared_;
  std::int64_t fine_vertices_;

  std::vector<std::int32_t> counts_;  ///< per cluster
  /// Ready clusters in creation order (min-heap on cluster id — creation
  /// order is a topological order of CG).
  std::priority_queue<std::int32_t, std::vector<std::int32_t>,
                      std::greater<>>
      ready_;
  WorkspaceLease lease_;
  std::vector<std::vector<StreamItem>> out_items_;  ///< by destination slot
  std::vector<core::Stream> pending_;
  std::vector<double> phi_;
  std::int64_t computed_ = 0;
};

}  // namespace jsweep::sweep
