#pragma once

/// \file coarsened_program.hpp
/// Coarsened-graph sweep replay (Sec. V-E). After one recorded DAG sweep,
/// each (patch, angle) program's compute() batches become the clusters of a
/// coarsened graph CG; later iterations run one cluster per task execution,
/// skipping per-vertex scheduling and per-fine-edge counter updates.
///
/// Deadlock-freedom across patches: clusters are compute() batches, streams
/// are emitted at batch end and consumed between batches, so every coarse
/// edge (local or remote) points from a cluster that finished earlier to
/// one that started later — the global coarse graph is acyclic (the
/// distributed extension of the paper's Theorem 1).

#include <queue>
#include <vector>

#include "core/patch_program.hpp"
#include "sweep/sweep_program.hpp"

namespace jsweep::sweep {

/// Immutable cluster-level structure derived from a recorded execution.
class CoarsenedSweepData {
 public:
  /// `cluster_of[v]` = recorded cluster of each fine vertex (all >= 0),
  /// with cluster ids in batch-creation order.
  CoarsenedSweepData(const SweepTaskData& fine,
                     std::vector<std::int32_t> cluster_of,
                     std::int32_t num_clusters);

  /// The fine (per-vertex) task data the clusters refer to.
  [[nodiscard]] const SweepTaskData& fine() const { return fine_; }
  /// Clusters in the coarsened graph.
  [[nodiscard]] std::int32_t num_clusters() const { return num_clusters_; }
  /// Fine vertices of cluster c, in recorded execution order.
  [[nodiscard]] const std::vector<std::int32_t>& members(
      std::int32_t c) const {
    return members_[static_cast<std::size_t>(c)];
  }
  /// Cluster id per fine vertex.
  [[nodiscard]] const std::vector<std::int32_t>& cluster_of() const {
    return cluster_of_;
  }
  /// Per-cluster initial dependency counts.
  [[nodiscard]] const std::vector<std::int32_t>& initial_counts() const {
    return initial_counts_;
  }

  /// Coarse local successors of cluster c (deduplicated).
  template <class Fn>
  void for_succ(std::int32_t c, Fn&& fn) const {
    for (auto e = succ_off_[static_cast<std::size_t>(c)];
         e < succ_off_[static_cast<std::size_t>(c) + 1]; ++e)
      fn(succ_[static_cast<std::size_t>(e)]);
  }

 private:
  const SweepTaskData& fine_;
  std::vector<std::int32_t> cluster_of_;
  std::int32_t num_clusters_;
  std::vector<std::vector<std::int32_t>> members_;  ///< execution order
  std::vector<std::int64_t> succ_off_;
  std::vector<std::int32_t> succ_;
  /// #coarse local predecessors + #remote-in fine edges, per cluster.
  std::vector<std::int32_t> initial_counts_;
};

/// Patch-program that replays the sweep cluster-by-cluster on CG. Carries
/// the same (angle, group) task axis as the fine program it replaces —
/// including the multigroup gate/activation protocol — so a coarsened
/// multigroup pass stays bitwise-identical to the fine one.
class CoarsenedSweepProgram final : public core::PatchProgram {
 public:
  CoarsenedSweepProgram(const CoarsenedSweepData& data,
                        const SweepShared& shared, GroupId group = GroupId{0});

  /// Reset local context (counters, ready clusters, φ, gate) for a run.
  void init() override;
  /// Consume one face-flux stream (or a group-activation marker).
  void input(const core::Stream& s) override;
  /// Replay one ready cluster; buffer boundary outputs.
  void compute() override;
  /// Drain one pending outgoing stream (null when empty).
  std::optional<core::Stream> output() override;
  /// True when nothing is runnable (empty ready queue or closed gate).
  bool vote_to_halt() override;
  /// Unswept fine vertices (drives known-workload termination).
  [[nodiscard]] std::int64_t remaining_work() const override {
    return fine_vertices_ - computed_;
  }
  /// Total fine vertices this program retires per run.
  [[nodiscard]] std::int64_t total_work() const override {
    return fine_vertices_;
  }

  /// Per-local-vertex w_a·ψ contribution, valid after a run completes.
  /// Group-set programs (set width W > 1) store W lanes per vertex,
  /// `[v * W + lane]`, one per group of the set.
  [[nodiscard]] const std::vector<double>& phi_local() const { return phi_; }

 private:
  /// See SweepPatchProgram::lag_group(): lagged-flux stride selection
  /// (base energy group of this program's set when pipelined).
  [[nodiscard]] GroupId lag_group() const {
    return shared_.pipeline != nullptr ? GroupId{group_base_}
                                       : shared_.current_group;
  }

  const CoarsenedSweepData& data_;
  const SweepShared& shared_;
  GroupId group_;  ///< group *set* id when pipelined (see SweepProgramOptions)
  std::int64_t fine_vertices_;
  /// Lanes this program sweeps at once (pipeline set width; 1 otherwise).
  int set_width_ = 1;
  /// First energy group of this program's set (0 without a pipeline).
  int group_base_ = 0;

  std::vector<std::int32_t> counts_;  ///< per cluster
  /// Ready clusters in creation order (min-heap on cluster id — creation
  /// order is a topological order of CG).
  std::priority_queue<std::int32_t, std::vector<std::int32_t>,
                      std::greater<>>
      ready_;
  WorkspaceLease lease_;
  std::vector<std::vector<StreamItem>> out_items_;  ///< by destination slot
  /// Group-set out buffers (set_width_ > 1), mirroring SweepPatchProgram.
  std::vector<std::vector<SetStreamRecord>> out_records_;
  std::vector<std::vector<double>> out_lanes_;
  std::vector<core::Stream> pending_;
  std::vector<double> phi_;
  std::int64_t computed_ = 0;
  bool gate_open_ = true;  ///< see SweepPatchProgram's group gate
  bool completion_reported_ = false;
};

}  // namespace jsweep::sweep
