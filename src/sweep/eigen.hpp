#pragma once

/// \file eigen.hpp
/// k-eigenvalue power iteration over the multigroup transport solve. Each
/// outer iteration rewrites the multigroup fixed source from the current
/// fission-source iterate, Q_g(c) = χ_g · S(c) / k, runs the existing
/// multigroup solve unchanged, recomputes the production
/// S(c) = Σ_g νΣ_f[g](c) φ_g(c), and updates the eigenvalue by the
/// production ratio k ← k · F_new / F_old with F = Σ_c S(c) · V(c).
///
/// Two drivers share one power-iteration core (identical floating-point
/// operation sequence, so their iterates agree bitwise given bitwise-equal
/// transport solves):
///
///   - solve_k_eigenvalue(): parallel — one SweepPlan built once, a fresh
///     SweepSession per outer iteration (zeroed lagged iterates each
///     outer, matching the serial reference's fresh sweepers). The plan's
///     task graphs, face slots and boundary-coupling tables are reused
///     across every outer; EigenStats::task_data_built proves it.
///   - solve_k_eigenvalue_serial(): the ground-truth reference — a caller
///     -supplied pass factory is invoked fresh per outer and driven
///     through sn::solve_multigroup_sweeps.
///
/// Every reduction the core performs (production, F-integral, error
/// norms) runs in ascending cell / group order on data that is already
/// identical on every rank (the transport solve allreduces φ), so no
/// additional collectives are needed and the parallel driver is bitwise
/// rank-count-independent wherever the transport solve is.

#include <functional>
#include <memory>
#include <vector>

#include "comm/cluster.hpp"
#include "sn/discretization.hpp"
#include "sn/fission.hpp"
#include "sn/multigroup.hpp"
#include "sweep/plan.hpp"
#include "sweep/session.hpp"

namespace jsweep::sweep {

/// Outer-iteration control of the k-eigenvalue power iteration.
struct EigenOptions {
  int max_outer_iterations = 100;  ///< power-iteration cap
  /// Converge when |Δk| ≤ k_tolerance · |k| ...
  double k_tolerance = 1e-10;
  /// ... AND the scale-invariant fission-source change
  /// max|S_new · (F_old / F_new) − S_old| / max|S_old| drops below this.
  double fission_tolerance = 1e-8;
  /// Control of the per-outer multigroup transport solve.
  sn::MultigroupOptions multigroup;
};

/// Counters of one k-eigenvalue solve.
struct EigenStats {
  std::int64_t transport_sweeps = 0;  ///< sweeps across all outers
  /// SweepTaskData instances built during the solve — 0 proves the plan's
  /// task graphs were reused by every outer (parallel driver only).
  std::int64_t task_data_built = 0;
  double solve_seconds = 0.0;  ///< wall time of the whole solve
};

/// Result of a k-eigenvalue power iteration.
struct EigenResult {
  double k = 1.0;  ///< the multiplication factor estimate
  /// phi[g] is group g's scalar flux at the final outer (iterate scale —
  /// not normalized).
  std::vector<std::vector<double>> phi;
  /// Final fission-source iterate S(c) (same scale as phi).
  std::vector<double> fission_source;
  int outer_iterations = 0;    ///< power iterations executed
  double k_error = 0.0;        ///< final |Δk| / |k|
  double fission_error = 0.0;  ///< final scale-invariant source change
  bool converged = false;      ///< both tolerances met
  EigenStats stats;            ///< counters and timings
};

/// Parallel k-eigenvalue solve over a shared plan. `xs` must be the very
/// object the plan was built against (PlanConfig::multigroup == &xs) —
/// the driver rewrites xs.source between outers and the sessions read it
/// through the plan. Each outer runs in a fresh SweepSession configured
/// by `solve`; collective across the cluster the plan was built on and
/// bitwise-identical on every rank.
EigenResult solve_k_eigenvalue(comm::Context& ctx,
                               const std::shared_ptr<const SweepPlan>& plan,
                               sn::MultigroupXs& xs,
                               const sn::FissionXs& fission,
                               const EigenOptions& options = {},
                               const SolveConfig& solve = {});

/// Serial reference k-eigenvalue solve: `make_pass` is invoked fresh at
/// the start of every outer iteration (so stateful sweepers restart from
/// zeroed lagged/boundary iterates, matching the parallel driver's fresh
/// sessions) and the returned pass is driven by
/// sn::solve_multigroup_sweeps against the same mutated `xs`. `disc`
/// supplies the cell volumes of the production integral.
EigenResult solve_k_eigenvalue_serial(
    sn::MultigroupXs& xs, const sn::FissionXs& fission,
    const sn::Discretization& disc,
    const std::function<sn::MultigroupSweepPass()>& make_pass,
    const EigenOptions& options = {});

}  // namespace jsweep::sweep
