#include "sweep/sweep_data.hpp"

#include <algorithm>

namespace jsweep::sweep {

SweepTaskData::SweepTaskData(graph::PatchTaskGraph g,
                             graph::PriorityStrategy vertex_strategy)
    : graph_(std::move(g)) {
  const auto n = static_cast<std::size_t>(graph_.num_vertices);

  // Local out-edges with faces, CSR by source vertex.
  out_off_.assign(n + 1, 0);
  for (const auto& e : graph_.local_edges)
    ++out_off_[static_cast<std::size_t>(e.u) + 1];
  for (std::size_t i = 1; i < out_off_.size(); ++i)
    out_off_[i] += out_off_[i - 1];
  out_.resize(graph_.local_edges.size());
  {
    std::vector<std::int64_t> cursor(out_off_.begin(), out_off_.end() - 1);
    for (const auto& e : graph_.local_edges)
      out_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] =
          {e.v, e.face};
  }

  // Remote out-edges, CSR by source vertex.
  rout_off_.assign(n + 1, 0);
  for (const auto& e : graph_.remote_out)
    ++rout_off_[static_cast<std::size_t>(e.u) + 1];
  for (std::size_t i = 1; i < rout_off_.size(); ++i)
    rout_off_[i] += rout_off_[i - 1];
  rout_.resize(graph_.remote_out.size());
  {
    std::vector<std::int64_t> cursor(rout_off_.begin(), rout_off_.end() - 1);
    for (const auto& e : graph_.remote_out)
      rout_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(e.u)]++)] = e;
  }

  // Lagged structure: read-side faces to seed (deduplicated — an intra-
  // patch cut edge appears once) and a CSR of write-side faces per vertex.
  lagged_seed_.reserve(graph_.lagged_local.size() + graph_.lagged_in.size());
  for (const auto& e : graph_.lagged_local) lagged_seed_.push_back(e.face);
  for (const auto& e : graph_.lagged_in) lagged_seed_.push_back(e.face);
  std::sort(lagged_seed_.begin(), lagged_seed_.end());
  lagged_seed_.erase(std::unique(lagged_seed_.begin(), lagged_seed_.end()),
                     lagged_seed_.end());

  lag_off_.assign(n + 1, 0);
  for (const auto& e : graph_.lagged_local)
    ++lag_off_[static_cast<std::size_t>(e.u) + 1];
  for (const auto& e : graph_.lagged_out)
    ++lag_off_[static_cast<std::size_t>(e.u) + 1];
  for (std::size_t i = 1; i < lag_off_.size(); ++i)
    lag_off_[i] += lag_off_[i - 1];
  lag_faces_.resize(graph_.lagged_local.size() + graph_.lagged_out.size());
  {
    std::vector<std::int64_t> cursor(lag_off_.begin(), lag_off_.end() - 1);
    for (const auto& e : graph_.lagged_local)
      lag_faces_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(e.u)]++)] = e.face;
    for (const auto& e : graph_.lagged_out)
      lag_faces_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(e.u)]++)] = e.face;
  }

  vprio_ = graph::vertex_priorities(vertex_strategy, graph_);
}

}  // namespace jsweep::sweep
