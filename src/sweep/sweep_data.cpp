#include "sweep/sweep_data.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "support/check.hpp"

namespace jsweep::sweep {

namespace {
/// See SweepTaskData::total_created(): instances ever built, process-wide.
std::atomic<std::int64_t> g_task_data_created{0};
}  // namespace

std::int64_t SweepTaskData::total_created() {
  return g_task_data_created.load(std::memory_order_relaxed);
}

SweepTaskData::SweepTaskData(graph::PatchTaskGraph g,
                             graph::PriorityStrategy vertex_strategy)
    : SweepTaskData(std::move(g), vertex_strategy, nullptr, nullptr, nullptr,
                    nullptr, nullptr) {}

SweepTaskData::SweepTaskData(graph::PatchTaskGraph g,
                             graph::PriorityStrategy vertex_strategy,
                             const sn::Discretization& disc,
                             const partition::PatchSet& ps,
                             const sn::Ordinate& ordinate,
                             const LaggedFluxStore* lagged,
                             const BoundaryCoupling* boundary)
    : SweepTaskData(std::move(g), vertex_strategy, &disc, &ps, &ordinate,
                    lagged, boundary) {}

SweepTaskData::SweepTaskData(graph::PatchTaskGraph g,
                             graph::PriorityStrategy vertex_strategy,
                             const sn::Discretization* disc,
                             const partition::PatchSet* ps,
                             const sn::Ordinate* ordinate,
                             const LaggedFluxStore* lagged,
                             const BoundaryCoupling* boundary)
    : graph_(std::move(g)) {
  g_task_data_created.fetch_add(1, std::memory_order_relaxed);
  const auto n = static_cast<std::size_t>(graph_.num_vertices);
  const bool dense = disc != nullptr;
  const bool has_boundary = boundary != nullptr && !boundary->empty();
  any_lagged_ = graph_.has_lagged() || has_boundary;
  JSWEEP_CHECK_MSG(!any_lagged_ || (lagged != nullptr && dense),
                   "task graph has lagged edges but no LaggedFluxStore");

  // Local out-edges with faces, CSR by source vertex.
  out_off_.assign(n + 1, 0);
  for (const auto& e : graph_.local_edges)
    ++out_off_[static_cast<std::size_t>(e.u) + 1];
  for (std::size_t i = 1; i < out_off_.size(); ++i)
    out_off_[i] += out_off_[i - 1];
  out_.resize(graph_.local_edges.size());
  {
    std::vector<std::int64_t> cursor(out_off_.begin(), out_off_.end() - 1);
    for (const auto& e : graph_.local_edges)
      out_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] =
          {e.v, e.face};
  }

  // Dense face-flux index: intern every face the kernel can touch for any
  // local cell (upwind reads — including lagged and remote-in faces —,
  // interior faces, downwind writes including domain-boundary outflow).
  // Hashing happens HERE, once at build time; the run-time paths below all
  // carry resolved slots.
  std::unordered_map<std::int64_t, std::int32_t> slot_of;
  const auto intern = [&](std::int64_t face) -> std::int32_t {
    if (face < 0) return sn::CellFaceSlots::kNone;
    const auto [it, inserted] = slot_of.emplace(
        face, static_cast<std::int32_t>(slot_of.size()));
    (void)inserted;
    return it->second;
  };
  if (dense) {
    cell_slots_.resize(n);
    const auto& cells = ps->cells(graph_.patch);
    JSWEEP_CHECK_MSG(cells.size() == n,
                     "patch cell list does not match task vertex count");
    sn::CellFaceIds ids;
    for (std::size_t v = 0; v < n; ++v) {
      disc->face_ids(cells[v], *ordinate, ids);
      for (int k = 0; k < ids.count; ++k) {
        cell_slots_[v].in[static_cast<std::size_t>(k)] =
            intern(ids.in[static_cast<std::size_t>(k)]);
        cell_slots_[v].out[static_cast<std::size_t>(k)] =
            intern(ids.out[static_cast<std::size_t>(k)]);
      }
    }
  }
  const auto resolve = [&](std::int64_t face) -> std::int32_t {
    if (!dense) return sn::CellFaceSlots::kNone;
    const auto it = slot_of.find(face);
    JSWEEP_CHECK_MSG(it != slot_of.end(),
                     "face " << face << " of patch " << graph_.patch
                             << " is not touched by any local cell");
    return it->second;
  };

  // Remote-in faces: sorted (face → slot) table for the stream input path.
  if (dense) {
    remote_in_slots_.reserve(graph_.remote_in.size());
    for (const auto& e : graph_.remote_in)
      remote_in_slots_.emplace_back(e.face, resolve(e.face));
    std::sort(remote_in_slots_.begin(), remote_in_slots_.end());
    remote_in_slots_.erase(
        std::unique(remote_in_slots_.begin(), remote_in_slots_.end()),
        remote_in_slots_.end());
  }

  // Distinct destination patches, ascending (stream emission order must
  // match the old per-destination std::map iteration).
  for (const auto& e : graph_.remote_out) dst_patches_.push_back(e.dst_patch);
  std::sort(dst_patches_.begin(), dst_patches_.end());
  dst_patches_.erase(std::unique(dst_patches_.begin(), dst_patches_.end()),
                     dst_patches_.end());
  dst_capacity_.assign(dst_patches_.size(), 0);
  const auto dst_index = [&](PatchId p) -> std::int32_t {
    const auto it =
        std::lower_bound(dst_patches_.begin(), dst_patches_.end(), p);
    JSWEEP_ASSERT(it != dst_patches_.end() && *it == p);
    return static_cast<std::int32_t>(it - dst_patches_.begin());
  };

  // Remote out-edges, CSR by source vertex, slot- and destination-resolved.
  rout_off_.assign(n + 1, 0);
  for (const auto& e : graph_.remote_out)
    ++rout_off_[static_cast<std::size_t>(e.u) + 1];
  for (std::size_t i = 1; i < rout_off_.size(); ++i)
    rout_off_[i] += rout_off_[i - 1];
  rout_.resize(graph_.remote_out.size());
  {
    std::vector<std::int64_t> cursor(rout_off_.begin(), rout_off_.end() - 1);
    for (const auto& e : graph_.remote_out) {
      const std::int32_t d = dst_index(e.dst_patch);
      ++dst_capacity_[static_cast<std::size_t>(d)];
      rout_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(e.u)]++)] =
          RemoteOut{e.dst_cell, e.face, resolve(e.face), d};
    }
  }

  // Lagged structure: read-side faces to seed (deduplicated — an intra-
  // patch cut edge appears once) and a CSR of write-side faces per vertex,
  // both resolved to (workspace, store) slot pairs. Reflecting/albedo
  // boundary faces join both lists: reads seed `albedo ×` the mirror
  // angle's stored outflow, writes stage this angle's raw outflow.
  const std::int32_t angle_id = graph_.angle.value();
  if (graph_.has_lagged()) {
    std::vector<std::int64_t> seed;
    seed.reserve(graph_.lagged_local.size() + graph_.lagged_in.size());
    for (const auto& e : graph_.lagged_local) seed.push_back(e.face);
    for (const auto& e : graph_.lagged_in) seed.push_back(e.face);
    std::sort(seed.begin(), seed.end());
    seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
    lagged_seed_.reserve(seed.size());
    for (const auto face : seed)
      lagged_seed_.push_back(
          LaggedSlot{resolve(face), lagged->slot_index(angle_id, face)});
  }
  if (has_boundary)
    for (const auto& r : boundary->reads)
      lagged_seed_.push_back(
          LaggedSlot{resolve(r.face), r.store_slot, r.scale});

  lag_off_.assign(n + 1, 0);
  for (const auto& e : graph_.lagged_local)
    ++lag_off_[static_cast<std::size_t>(e.u) + 1];
  for (const auto& e : graph_.lagged_out)
    ++lag_off_[static_cast<std::size_t>(e.u) + 1];
  if (has_boundary)
    for (const auto& w : boundary->writes)
      ++lag_off_[static_cast<std::size_t>(w.v) + 1];
  for (std::size_t i = 1; i < lag_off_.size(); ++i)
    lag_off_[i] += lag_off_[i - 1];
  lag_slots_.resize(static_cast<std::size_t>(lag_off_.back()));
  {
    std::vector<std::int64_t> cursor(lag_off_.begin(), lag_off_.end() - 1);
    const auto place = [&](std::int32_t u, std::int64_t face,
                           std::int32_t store_slot) {
      lag_slots_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(u)]++)] =
          LaggedSlot{resolve(face), store_slot};
    };
    for (const auto& e : graph_.lagged_local)
      place(e.u, e.face, lagged->slot_index(angle_id, e.face));
    for (const auto& e : graph_.lagged_out)
      place(e.u, e.face, lagged->slot_index(angle_id, e.face));
    if (has_boundary)
      for (const auto& w : boundary->writes) place(w.v, w.face, w.store_slot);
  }

  num_slots_ = static_cast<std::int64_t>(slot_of.size());
  vprio_ = graph::vertex_priorities(vertex_strategy, graph_);
}

std::int32_t SweepTaskData::slot_of_remote_in(std::int64_t face) const {
  const auto it = std::lower_bound(
      remote_in_slots_.begin(), remote_in_slots_.end(), face,
      [](const std::pair<std::int64_t, std::int32_t>& a, std::int64_t f) {
        return a.first < f;
      });
  JSWEEP_CHECK_MSG(it != remote_in_slots_.end() && it->first == face,
                   "stream delivered flux for face "
                       << face << " which patch " << graph_.patch
                       << " never reads");
  return it->second;
}

}  // namespace jsweep::sweep
