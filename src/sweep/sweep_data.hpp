#pragma once

/// \file sweep_data.hpp
/// Immutable per-(patch, angle) sweep data shared by every engine and every
/// source iteration: the dependency graph in per-vertex CSR form (with face
/// ids), vertex priorities, the combined (patch, angle) scheduling
/// priority, and the *dense face-flux index* — every face this task can
/// touch (upwind in, interior, downwind out, lagged) resolved to a compact
/// workspace slot so the kernels and the stream paths never hash at run
/// time. Building this once and reusing it across iterations mirrors the
/// paper's constant-mesh assumption (Sec. V-E).

#include <memory>
#include <utility>
#include <vector>

#include "graph/priority.hpp"
#include "graph/sweep_dag.hpp"
#include "partition/patch_set.hpp"
#include "sn/discretization.hpp"
#include "sn/face_flux.hpp"
#include "sn/quadrature.hpp"
#include "support/ids.hpp"
#include "sweep/lagged_flux.hpp"

namespace jsweep::sweep {

/// Task tag of a sweep program along the (angle, group) axes, group-major:
/// tag = group · num_angles + angle. A single-group sweep's tag is the
/// plain angle id, so every pre-multigroup key, trace and route stays
/// unchanged; a G-group solve runs G·A programs per patch, one per
/// (angle, group).
[[nodiscard]] inline TaskTag sweep_task_tag(AngleId a, GroupId g,
                                            int num_angles) {
  return TaskTag{g.value() * num_angles + a.value()};
}
[[nodiscard]] inline AngleId sweep_task_angle(TaskTag t, int num_angles) {
  return AngleId{t.value() % num_angles};
}
[[nodiscard]] inline GroupId sweep_task_group(TaskTag t, int num_angles) {
  return GroupId{t.value() / num_angles};
}

/// Request-lane tag namespace for the sweep service: lane l of a plan with
/// G built groups and A angles owns tags [l·G·A, (l+1)·G·A), i.e. one full
/// (angle, group) tag block per concurrently batched solve request. Face
/// streams copy the source program's tag, so every stream a lane emits
/// stays inside that lane's namespace without any per-item routing work —
/// lane 0 is the plain (offset-free) solver namespace.
[[nodiscard]] inline TaskTag lane_task_tag(TaskTag base, int lane,
                                           int tags_per_lane) {
  return TaskTag{lane * tags_per_lane + base.value()};
}
/// Inverse of lane_task_tag: which request lane a tag belongs to.
[[nodiscard]] inline int lane_of_task(TaskTag t, int tags_per_lane) {
  return t.value() / tags_per_lane;
}

/// A local downwind edge of one vertex.
struct OutLocal {
  std::int32_t w;       ///< downwind local vertex
  std::int64_t face;    ///< connecting face
};

/// A remote downwind edge, fully resolved for the hot path: the carrying
/// face's workspace slot and the destination patch's dense index into the
/// per-destination out-item buffers.
struct RemoteOut {
  std::int64_t dst_cell;  ///< destination cell (global id)
  std::int64_t face;      ///< mesh face id carrying the flux
  std::int32_t slot;      ///< workspace slot of `face`
  std::int32_t dst;       ///< destination index (see destination())
};

/// A lagged face (cycle-cut or boundary-coupled) as the programs see it:
/// workspace slot paired with its LaggedFluxStore slot. `scale` multiplies
/// the stored old-iterate value on every seed/restore — 1.0 for cycle cuts
/// (bitwise-neutral) and the side's albedo for reflecting-boundary reads.
struct LaggedSlot {
  std::int32_t ws_slot;     ///< dense FaceFluxWorkspace slot of the face
  std::int32_t store_slot;  ///< LaggedFluxStore slot (group-strided)
  double scale = 1.0;       ///< seed multiplier (albedo; 1.0 = neutral)
};

/// A reflecting/albedo boundary face this task *reads*: angle m's incoming
/// value at the face is `scale ×` the mirror angle's previous-sweep outflow,
/// seeded from the mirror angle's store slot before any vertex computes.
struct BoundaryRead {
  std::int64_t face;        ///< global boundary face id (incoming side)
  std::int32_t store_slot;  ///< mirror angle's LaggedFluxStore slot
  double scale;             ///< the side's albedo
};

/// A reflecting/albedo boundary face vertex `v` *writes*: its freshly
/// computed outflow is staged into this angle's own store slot for the next
/// sweep's mirror-angle seed.
struct BoundaryWrite {
  std::int32_t v;           ///< local writer vertex
  std::int64_t face;        ///< global boundary face id (outgoing side)
  std::int32_t store_slot;  ///< this angle's LaggedFluxStore slot
};

/// Reflecting/albedo boundary coupling of one (patch, angle) task, store
/// slots pre-resolved by the plan build (sweep/plan.cpp). The coupling is
/// always lagged one sweep — it adds no graph edges, so schedules and
/// bitwise determinism are untouched; seeds/stages ride the exact
/// LaggedFluxStore protocol cycle cuts use.
struct BoundaryCoupling {
  std::vector<BoundaryRead> reads;    ///< incoming faces to seed
  std::vector<BoundaryWrite> writes;  ///< outgoing faces to stage
  /// True when the coupling carries no faces (all-vacuum patch boundary).
  [[nodiscard]] bool empty() const { return reads.empty() && writes.empty(); }
};

/// Immutable per-(patch, angle) sweep structure (see \ref sweep_data.hpp):
/// the dependency graph in CSR form plus the dense face-flux index. Shared
/// read-only by every group's program of that (patch, angle) and by every
/// engine — built once, reused across all iterations.
class SweepTaskData {
 public:
  /// `disc`, `ps` and `lagged` must outlive the task data; `lagged` may be
  /// null iff the graph has no lagged edges and `boundary` is null/empty.
  /// `boundary` (optional, copied) adds the task's reflecting/albedo
  /// boundary faces to the lagged seed/stage lists.
  SweepTaskData(graph::PatchTaskGraph g,
                graph::PriorityStrategy vertex_strategy,
                const sn::Discretization& disc,
                const partition::PatchSet& ps, const sn::Ordinate& ordinate,
                const LaggedFluxStore* lagged = nullptr,
                const BoundaryCoupling* boundary = nullptr);

  /// Graph-only form for consumers that replay the DAG without sweeping
  /// (e.g. the simulator's transfer-curve extraction): no dense face index
  /// is built, so the task cannot back a sweep program.
  SweepTaskData(graph::PatchTaskGraph g,
                graph::PriorityStrategy vertex_strategy);

  /// The underlying per-(patch, angle) dependency graph.
  [[nodiscard]] const graph::PatchTaskGraph& graph() const { return graph_; }
  /// Patch this task sweeps.
  [[nodiscard]] PatchId patch() const { return graph_.patch; }
  /// Sweep direction (ordinate id) of this task.
  [[nodiscard]] AngleId angle() const { return graph_.angle; }
  /// Local vertices (= cells of the patch).
  [[nodiscard]] std::int32_t num_vertices() const {
    return graph_.num_vertices;
  }

  /// Local downwind edges of vertex v.
  template <class Fn>
  void for_out_local(std::int32_t v, Fn&& fn) const {
    for (auto e = out_off_[static_cast<std::size_t>(v)];
         e < out_off_[static_cast<std::size_t>(v) + 1]; ++e)
      fn(out_[static_cast<std::size_t>(e)]);
  }

  /// Remote downwind edges of vertex v (slot-resolved).
  template <class Fn>
  void for_out_remote(std::int32_t v, Fn&& fn) const {
    for (auto e = rout_off_[static_cast<std::size_t>(v)];
         e < rout_off_[static_cast<std::size_t>(v) + 1]; ++e)
      fn(rout_[static_cast<std::size_t>(e)]);
  }

  /// Per-vertex initial dependency counts (local upwind + remote-in).
  [[nodiscard]] const std::vector<std::int32_t>& initial_counts() const {
    return graph_.initial_counts;
  }
  /// Scheduling priority of vertex v within this program.
  [[nodiscard]] double vertex_priority(std::int32_t v) const {
    return vprio_[static_cast<std::size_t>(v)];
  }
  /// Total remote downwind edges (= max stream items per sweep).
  [[nodiscard]] std::int64_t num_remote_out() const {
    return static_cast<std::int64_t>(rout_.size());
  }

  // --- Dense face-flux index --------------------------------------------
  /// Workspace size this task needs (every touchable face has one slot).
  [[nodiscard]] std::int64_t num_flux_slots() const { return num_slots_; }
  /// Precomputed slots of the faces vertex v's cell touches.
  [[nodiscard]] const sn::CellFaceSlots& cell_slots(std::int32_t v) const {
    return cell_slots_[static_cast<std::size_t>(v)];
  }
  /// Slot of an incoming remote face (stream input path; binary search
  /// over the sorted remote-in face list — no hashing).
  [[nodiscard]] std::int32_t slot_of_remote_in(std::int64_t face) const;

  // --- Stream destinations ----------------------------------------------
  /// Distinct downwind patches, ascending by id; RemoteOut::dst indexes
  /// this list.
  [[nodiscard]] std::int32_t num_destinations() const {
    return static_cast<std::int32_t>(dst_patches_.size());
  }
  /// Destination patch at index d (ascending patch id).
  [[nodiscard]] PatchId destination(std::int32_t d) const {
    return dst_patches_[static_cast<std::size_t>(d)];
  }
  /// Upper bound of items ever buffered for destination d in one sweep
  /// (= its remote-edge count): the reserve() size that makes per-batch
  /// buffering allocation-free after the first sweep.
  [[nodiscard]] std::int64_t destination_capacity(std::int32_t d) const {
    return dst_capacity_[static_cast<std::size_t>(d)];
  }

  // --- Lagged (cycle-cut / boundary-coupled) structure ------------------
  /// True when this task carries lagged faces — cycle-cut edges in the
  /// graph or reflecting/albedo boundary faces — so programs must seed and
  /// stage against the LaggedFluxStore.
  [[nodiscard]] bool has_lagged() const { return any_lagged_; }
  /// Faces whose old-iterate value must be seeded into the workspace
  /// before any vertex computes (read side of every lagged edge this patch
  /// sees), resolved to (workspace, store) slot pairs.
  [[nodiscard]] const std::vector<LaggedSlot>& lagged_seed_slots() const {
    return lagged_seed_;
  }
  /// Lagged faces *written* by vertex v (the upwind side of a cut edge):
  /// their freshly computed flux must be staged for the next sweep and the
  /// old value restored, so downstream reads stay order-independent.
  template <class Fn>
  void for_lagged_writes(std::int32_t v, Fn&& fn) const {
    for (auto e = lag_off_[static_cast<std::size_t>(v)];
         e < lag_off_[static_cast<std::size_t>(v) + 1]; ++e)
      fn(lag_slots_[static_cast<std::size_t>(e)]);
  }

  /// Process-wide count of SweepTaskData instances ever constructed. Task
  /// graphs and the dense face-slot interning are built only here, so this
  /// counter staying flat across solves proves a shared SweepPlan is being
  /// reused rather than rebuilt (plan-reuse allocation-gate tests).
  [[nodiscard]] static std::int64_t total_created();

 private:
  SweepTaskData(graph::PatchTaskGraph g,
                graph::PriorityStrategy vertex_strategy,
                const sn::Discretization* disc,
                const partition::PatchSet* ps, const sn::Ordinate* ordinate,
                const LaggedFluxStore* lagged,
                const BoundaryCoupling* boundary);

  graph::PatchTaskGraph graph_;
  std::vector<std::int64_t> out_off_;
  std::vector<OutLocal> out_;
  std::vector<std::int64_t> rout_off_;
  std::vector<RemoteOut> rout_;
  std::vector<double> vprio_;

  std::int64_t num_slots_ = 0;
  std::vector<sn::CellFaceSlots> cell_slots_;
  std::vector<std::pair<std::int64_t, std::int32_t>> remote_in_slots_;
  std::vector<PatchId> dst_patches_;
  std::vector<std::int64_t> dst_capacity_;

  std::vector<LaggedSlot> lagged_seed_;
  std::vector<std::int64_t> lag_off_;
  std::vector<LaggedSlot> lag_slots_;
  bool any_lagged_ = false;
};

}  // namespace jsweep::sweep
