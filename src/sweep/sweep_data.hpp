#pragma once

/// \file sweep_data.hpp
/// Immutable per-(patch, angle) sweep data shared by every engine and every
/// source iteration: the dependency graph in per-vertex CSR form (with face
/// ids), vertex priorities, and the combined (patch, angle) scheduling
/// priority. Building this once and reusing it across iterations mirrors
/// the paper's constant-mesh assumption (Sec. V-E).

#include <memory>
#include <vector>

#include "graph/priority.hpp"
#include "graph/sweep_dag.hpp"
#include "sn/quadrature.hpp"
#include "support/ids.hpp"

namespace jsweep::sweep {

/// A local downwind edge of one vertex.
struct OutLocal {
  std::int32_t w;       ///< downwind local vertex
  std::int64_t face;    ///< connecting face
};

class SweepTaskData {
 public:
  SweepTaskData(graph::PatchTaskGraph g,
                graph::PriorityStrategy vertex_strategy);

  [[nodiscard]] const graph::PatchTaskGraph& graph() const { return graph_; }
  [[nodiscard]] PatchId patch() const { return graph_.patch; }
  [[nodiscard]] AngleId angle() const { return graph_.angle; }
  [[nodiscard]] std::int32_t num_vertices() const {
    return graph_.num_vertices;
  }

  /// Local downwind edges of vertex v.
  template <class Fn>
  void for_out_local(std::int32_t v, Fn&& fn) const {
    for (auto e = out_off_[static_cast<std::size_t>(v)];
         e < out_off_[static_cast<std::size_t>(v) + 1]; ++e)
      fn(out_[static_cast<std::size_t>(e)]);
  }

  /// Remote downwind edges of vertex v.
  template <class Fn>
  void for_out_remote(std::int32_t v, Fn&& fn) const {
    for (auto e = rout_off_[static_cast<std::size_t>(v)];
         e < rout_off_[static_cast<std::size_t>(v) + 1]; ++e)
      fn(rout_[static_cast<std::size_t>(e)]);
  }

  [[nodiscard]] const std::vector<std::int32_t>& initial_counts() const {
    return graph_.initial_counts;
  }
  [[nodiscard]] double vertex_priority(std::int32_t v) const {
    return vprio_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::int64_t num_remote_out() const {
    return static_cast<std::int64_t>(rout_.size());
  }

  // --- Lagged (cycle-cut) structure -------------------------------------
  [[nodiscard]] bool has_lagged() const { return graph_.has_lagged(); }
  /// Faces whose old-iterate value must be seeded into the flux map before
  /// any vertex computes (read side of every lagged edge this patch sees).
  [[nodiscard]] const std::vector<std::int64_t>& lagged_seed_faces() const {
    return lagged_seed_;
  }
  /// Lagged faces *written* by vertex v (the upwind side of a cut edge):
  /// their freshly computed flux must be staged for the next sweep and the
  /// old value restored, so downstream reads stay order-independent.
  template <class Fn>
  void for_lagged_writes(std::int32_t v, Fn&& fn) const {
    for (auto e = lag_off_[static_cast<std::size_t>(v)];
         e < lag_off_[static_cast<std::size_t>(v) + 1]; ++e)
      fn(lag_faces_[static_cast<std::size_t>(e)]);
  }

 private:
  graph::PatchTaskGraph graph_;
  std::vector<std::int64_t> out_off_;
  std::vector<OutLocal> out_;
  std::vector<std::int64_t> rout_off_;
  std::vector<graph::RemoteOutEdge> rout_;
  std::vector<double> vprio_;
  std::vector<std::int64_t> lagged_seed_;
  std::vector<std::int64_t> lag_off_;
  std::vector<std::int64_t> lag_faces_;
};

}  // namespace jsweep::sweep
