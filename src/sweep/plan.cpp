#include "sweep/plan.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace jsweep::sweep {

std::string to_string(CyclePolicy p) {
  switch (p) {
    case CyclePolicy::Assume: return "assume";
    case CyclePolicy::Error: return "error";
    case CyclePolicy::Lag: return "lag";
  }
  return "?";
}

CyclePolicy cycle_policy_from_string(const std::string& name) {
  if (name == "assume") return CyclePolicy::Assume;
  if (name == "error") return CyclePolicy::Error;
  if (name == "lag") return CyclePolicy::Lag;
  JSWEEP_CHECK_MSG(false, "unknown cycle policy '" << name
                                                   << "' (assume|error|lag)");
  return CyclePolicy::Error;
}

SweepPlan::~SweepPlan() = default;

namespace {

/// Up-front invariant validation: every mismatch that used to surface as a
/// mid-solve assertion fails here instead, with enough context to fix it.
void validate_plan_inputs(comm::Context& ctx, std::int64_t mesh_cells,
                          const partition::PatchSet& ps,
                          const std::vector<RankId>& owner,
                          const sn::Discretization& disc,
                          const sn::Quadrature& quad,
                          const PlanConfig& config) {
  JSWEEP_CHECK_MSG(quad.num_angles() >= 1,
                   "plan needs a non-empty quadrature (got 0 ordinates) — "
                   "build one with sn::Quadrature::level_symmetric-style "
                   "factories before SweepPlan::build");
  JSWEEP_CHECK_MSG(ps.num_cells() == mesh_cells,
                   "patch set partitions " << ps.num_cells()
                                           << " cells but the mesh has "
                                           << mesh_cells
                                           << " — partition the same mesh "
                                              "the plan is built over");
  JSWEEP_CHECK_MSG(disc.num_cells() == ps.num_cells(),
                   "discretization covers "
                       << disc.num_cells() << " cells, the partition "
                       << ps.num_cells()
                       << " — build the sweep kernel over the same mesh");
  JSWEEP_CHECK_MSG(static_cast<int>(owner.size()) == ps.num_patches(),
                   "patch owner table has " << owner.size() << " entries for "
                                            << ps.num_patches()
                                            << " patches — one owner rank "
                                               "per patch, identical on "
                                               "every rank");
  for (std::size_t p = 0; p < owner.size(); ++p)
    JSWEEP_CHECK_MSG(
        owner[p].value() >= 0 && owner[p].value() < ctx.size(),
        "patch " << p << " is owned by rank " << owner[p] << " but the "
                 << "cluster has ranks 0.." << ctx.size() - 1);
  JSWEEP_CHECK_MSG(config.cluster_grain >= 1,
                   "PlanConfig::cluster_grain = "
                       << config.cluster_grain
                       << " — compute() must retire at least one vertex "
                          "per batch");
  disc.xs().validate();
  JSWEEP_CHECK_MSG(
      config.group_set_width >= 1 &&
          config.group_set_width <= sn::kMaxGroupSetWidth,
      "PlanConfig::group_set_width = " << config.group_set_width
                                       << " — must be in [1, "
                                       << sn::kMaxGroupSetWidth << "]");
  JSWEEP_CHECK_MSG(config.group_set_width == 1 || config.multigroup != nullptr,
                   "PlanConfig::group_set_width = "
                       << config.group_set_width
                       << " needs a multigroup plan (set PlanConfig::"
                          "multigroup)");
  if (config.multigroup != nullptr) {
    const auto& mxs = *config.multigroup;
    mxs.validate();
    JSWEEP_CHECK_MSG(mxs.cells() == ps.num_cells(),
                     "multigroup table covers "
                         << mxs.cells() << " cells, mesh has "
                         << ps.num_cells());
  }
}

}  // namespace

namespace {

/// The ω component along `axis`.
double omega_component(const mesh::Vec3& omega, int axis) {
  return axis == 0 ? omega.x : axis == 1 ? omega.y : omega.z;
}

/// The side angle ω *enters* along `axis` (ω_x > 0 travels +x, entering
/// through XLo). Quadrature components are never exactly zero.
mesh::FaceDir inflow_side(const mesh::Vec3& omega, int axis) {
  return static_cast<mesh::FaceDir>(
      2 * axis + (omega_component(omega, axis) > 0.0 ? 0 : 1));
}

}  // namespace

std::shared_ptr<const SweepPlan> SweepPlan::build(
    comm::Context& ctx, const mesh::StructuredMesh& m,
    const partition::PatchSet& ps, std::vector<RankId> patch_owner,
    const sn::StructuredDD& disc, const sn::Quadrature& quad,
    PlanConfig config) {
  // Reflecting/albedo boundary sides: precompute the per-axis mirror-angle
  // table (validating quadrature closure up front) and hand build_impl the
  // slot registrar + per-(patch, angle) coupling builder. All-vacuum specs
  // register nothing and leave every existing plan bitwise unchanged.
  const sn::BoundarySpec bc = disc.boundary();
  std::array<std::vector<int>, 3> mirror;
  if (bc.any()) {
    for (int axis = 0; axis < 3; ++axis) {
      const auto lo = static_cast<mesh::FaceDir>(2 * axis);
      if (bc.side(lo) == 0.0 && bc.side(mesh::opposite(lo)) == 0.0) continue;
      mirror[static_cast<std::size_t>(axis)].resize(
          static_cast<std::size_t>(quad.num_angles()));
      for (int a = 0; a < quad.num_angles(); ++a)
        mirror[static_cast<std::size_t>(axis)][static_cast<std::size_t>(a)] =
            sn::mirror_ordinate(quad, a, axis);
    }
  }
  // Deterministic slot order — identical on every rank: angle-major, then
  // side, then cell ascending. A slot exists for every (angle, boundary
  // face) pair the angle flows OUT of on a non-vacuum side.
  const auto boundary_registrar = [&](LaggedFluxStore& store) {
    if (!bc.any()) return;
    for (int a = 0; a < quad.num_angles(); ++a) {
      const mesh::Vec3 omega = quad.angle(a).dir;
      for (int side = 0; side < 6; ++side) {
        const auto d = static_cast<mesh::FaceDir>(side);
        if (bc.side(d) == 0.0) continue;
        if (dot(omega, mesh::kFaceNormals[static_cast<std::size_t>(side)]) <=
            0.0)
          continue;  // angle does not exit this side
        for (std::int64_t c = 0; c < m.num_cells(); ++c)
          if (!m.neighbor(CellId{c}, d))
            store.add_slot(a, graph::structured_face_id(CellId{c}, d));
      }
    }
  };
  const auto boundary_builder = [&](PatchId p, AngleId a,
                                    const LaggedFluxStore& store) {
    BoundaryCoupling coupling;
    if (!bc.any()) return coupling;
    const mesh::Vec3 omega = quad.angle(a.value()).dir;
    const auto& cells = ps.cells(p);
    for (std::size_t v = 0; v < cells.size(); ++v) {
      const CellId c = cells[v];
      for (int axis = 0; axis < 3; ++axis) {
        const mesh::FaceDir d_in = inflow_side(omega, axis);
        const mesh::FaceDir d_out = mesh::opposite(d_in);
        // Incoming at a non-vacuum boundary side: seed albedo × the mirror
        // angle's stored outflow at the very same face.
        if (bc.side(d_in) != 0.0 && !m.neighbor(c, d_in)) {
          const std::int64_t face = graph::structured_face_id(c, d_in);
          coupling.reads.push_back(BoundaryRead{
              face,
              store.slot_index(
                  mirror[static_cast<std::size_t>(axis)]
                        [static_cast<std::size_t>(a.value())],
                  face),
              bc.side(d_in)});
        }
        // Outgoing at a non-vacuum boundary side: stage the raw outflow
        // into this angle's own slot for the next sweep's mirror seed.
        if (bc.side(d_out) != 0.0 && !m.neighbor(c, d_out)) {
          const std::int64_t face = graph::structured_face_id(c, d_out);
          coupling.writes.push_back(BoundaryWrite{
              static_cast<std::int32_t>(v), face,
              store.slot_index(a.value(), face)});
        }
      }
    }
    return coupling;
  };
  return build_impl(
      ctx, m.num_cells(), ps, std::move(patch_owner), disc, quad, config,
      [&](const sn::CellXs& xs) {
        return std::make_unique<sn::StructuredDD>(
            m, xs, disc.negative_flux_fixup(), disc.boundary());
      },
      [&](PatchId p, const mesh::Vec3& omega, AngleId a,
          const graph::CycleCut* cut) {
        return graph::build_patch_task_graph(m, ps, p, omega, a, cut);
      },
      [&](const mesh::Vec3& omega) {
        return graph::build_patch_digraph(m, ps, omega);
      },
      [&](const mesh::Vec3& omega) {
        return graph::compute_cycle_cut(m, omega);
      },
      bc.any() ? boundary_registrar
               : std::function<void(LaggedFluxStore&)>{},
      bc.any() ? boundary_builder
               : std::function<BoundaryCoupling(
                     PatchId, AngleId, const LaggedFluxStore&)>{});
}

std::shared_ptr<const SweepPlan> SweepPlan::build(
    comm::Context& ctx, const mesh::TetMesh& m, const partition::PatchSet& ps,
    std::vector<RankId> patch_owner, const sn::TetStep& disc,
    const sn::Quadrature& quad, PlanConfig config) {
  return build_impl(
      ctx, m.num_cells(), ps, std::move(patch_owner), disc, quad, config,
      [&](const sn::CellXs& xs) { return std::make_unique<sn::TetStep>(m, xs); },
      [&](PatchId p, const mesh::Vec3& omega, AngleId a,
          const graph::CycleCut* cut) {
        return graph::build_patch_task_graph(m, ps, p, omega, a, cut);
      },
      [&](const mesh::Vec3& omega) {
        return graph::build_patch_digraph(m, ps, omega);
      },
      [&](const mesh::Vec3& omega) {
        return graph::compute_cycle_cut(m, omega);
      },
      /*boundary_registrar=*/{}, /*boundary_builder=*/{});
}

std::shared_ptr<const SweepPlan> SweepPlan::build_impl(
    comm::Context& ctx, std::int64_t mesh_cells, const partition::PatchSet& ps,
    std::vector<RankId> patch_owner, const sn::Discretization& disc,
    const sn::Quadrature& quad, PlanConfig config,
    const std::function<std::unique_ptr<sn::Discretization>(
        const sn::CellXs&)>& disc_builder,
    const std::function<graph::PatchTaskGraph(
        PatchId, const mesh::Vec3&, AngleId, const graph::CycleCut*)>&
        task_builder,
    const std::function<graph::Digraph(const mesh::Vec3&)>&
        patch_digraph_builder,
    const std::function<graph::CycleCut(const mesh::Vec3&)>& cut_builder,
    const std::function<void(LaggedFluxStore&)>& boundary_registrar,
    const std::function<BoundaryCoupling(PatchId, AngleId,
                                         const LaggedFluxStore&)>&
        boundary_builder) {
  validate_plan_inputs(ctx, mesh_cells, ps, patch_owner, disc, quad, config);
  WallTimer timer;

  // shared_ptr<const SweepPlan> with a private ctor: build mutable, return
  // const.
  std::shared_ptr<SweepPlan> plan(new SweepPlan());
  plan->config_ = config;
  plan->ps_ = &ps;
  plan->quad_ = &quad;
  plan->disc_ = &disc;
  plan->owner_ = std::move(patch_owner);
  plan->built_rank_ = ctx.rank();
  plan->built_size_ = ctx.size();

  for (int p = 0; p < ps.num_patches(); ++p)
    if (plan->owner_[static_cast<std::size_t>(p)] == ctx.rank())
      plan->local_patches_.push_back(PatchId{p});

  // Multigroup: one kernel per group (σ_t varies by group, the mesh does
  // not); pipelined plans build one program set per group *set* — the
  // program count and activation traffic drop by the set width.
  if (config.multigroup != nullptr) {
    const auto& mxs = *config.multigroup;
    for (int g = 0; g < mxs.groups(); ++g)
      plan->group_discs_.push_back(disc_builder(mxs.group_view(g)));
    if (config.group_pipelining)
      plan->groups_built_ = (mxs.groups() + config.group_set_width - 1) /
                            config.group_set_width;
  }

  // Each lagged (cycle-cut) face carries one old-iterate value per energy
  // group — in BOTH multigroup modes (barriered engine runs select their
  // stride via SweepShared::current_group).
  plan->lagged_template_.set_num_groups(
      config.multigroup != nullptr ? config.multigroup->groups() : 1);

  // Reflecting/albedo boundary slots register up front — before any task
  // data is built — because an angle's task resolves the *mirror* angle's
  // slots, which the per-angle loop below would not have reached yet.
  if (boundary_registrar) boundary_registrar(plan->lagged_template_);

  // Outer loop over angles so all programs of one angle share its
  // patch-priority vector; programs are stored angle-major, a fixed order
  // reused by the deterministic φ collection.
  for (int a = 0; a < quad.num_angles(); ++a) {
    const mesh::Vec3 omega = quad.angle(a).dir;
    // Cycle handling: detect (unless told to assume acyclicity), and either
    // refuse with diagnostics or cut + lag the feedback faces. The cut is a
    // deterministic function of the mesh and direction, so every rank
    // computes the identical set and registers identical store slots.
    graph::CycleCut cut;
    if (config.cycle_policy != CyclePolicy::Assume) cut = cut_builder(omega);
    if (!cut.empty()) {
      JSWEEP_CHECK_MSG(
          config.cycle_policy == CyclePolicy::Lag,
          "sweep direction "
              << a << " (" << omega << ") has cyclic dependencies: "
              << cut.stats.cyclic_components << " SCC(s), largest "
              << cut.stats.largest_component << " cells, "
              << cut.stats.edges_cut
              << " feedback edge(s); set PlanConfig::cycle_policy = "
                 "CyclePolicy::Lag to cut and lag them");
      plan->cycle_stats_.merge(cut.stats);
      ++plan->cyclic_angles_;
      std::vector<std::int64_t> faces(cut.lagged_faces.begin(),
                                      cut.lagged_faces.end());
      std::sort(faces.begin(), faces.end());
      for (const auto face : faces) plan->lagged_template_.add_slot(a, face);
    }
    const graph::Digraph patch_graph = patch_digraph_builder(omega);
    const std::vector<double> pprio =
        graph::patch_priorities(config.patch_priority, patch_graph);
    // The structural task data is group-independent (same DAG, same face
    // slots): built once per (patch, angle), shared by all group programs.
    for (const auto p : plan->local_patches_) {
      BoundaryCoupling coupling;
      if (boundary_builder)
        coupling = boundary_builder(p, AngleId{a}, plan->lagged_template_);
      plan->task_data_.push_back(std::make_unique<SweepTaskData>(
          task_builder(p, omega, AngleId{a}, cut.empty() ? nullptr : &cut),
          config.vertex_priority, disc, ps, quad.angle(a),
          plan->lagged_template_.empty() ? nullptr
                                         : &plan->lagged_template_,
          coupling.empty() ? nullptr : &coupling));
      const std::size_t data_index = plan->task_data_.size() - 1;
      for (int g = 0; g < plan->groups_built_; ++g) {
        // Task priority: earlier groups strictly dominate (they unblock
        // downstream groups' sources), then earlier (lower-id) angles so
        // same-angle programs chain through the mesh back-to-back
        // (Sec. V-D). For G = 1 this is exactly the classic -angle prior.
        const double task_prior =
            -static_cast<double>(g * quad.num_angles() + a);
        plan->programs_.push_back(PlanProgram{
            data_index, GroupId{g},
            graph::combined_priority(
                task_prior, pprio[static_cast<std::size_t>(p.value())])});
      }
    }
  }
  plan->build_seconds_ = timer.seconds();
  return plan;
}

}  // namespace jsweep::sweep
