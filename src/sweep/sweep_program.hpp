#pragma once

/// \file sweep_program.hpp
/// The data-driven Sn sweep patch-program — a faithful implementation of
/// the paper's Listing 1. One instance handles one (patch, angle) pair;
/// its local context is the per-vertex dependency counters, the ready
/// priority queue, the dense face-flux workspace and the per-destination
/// out-stream buffers. compute() retires up to `cluster_grain` ready
/// vertices per execution (vertex clustering, Sec. V-C) and can record the
/// resulting clusters to build the coarsened graph (Sec. V-E).
///
/// Steady-state allocation budget: zero. The face-flux workspace comes
/// from a shared FaceFluxPool (borrowed at init(), returned when the last
/// vertex retires), stream payloads come from the engine's BufferPool, and
/// the per-destination item buffers are reserved to their static maximum —
/// the kernel grind performs no hash-map operation and no heap allocation.

#include <mutex>
#include <queue>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/patch_program.hpp"
#include "partition/patch_set.hpp"
#include "sn/discretization.hpp"
#include "sn/face_flux.hpp"
#include "sn/quadrature.hpp"
#include "sweep/lagged_flux.hpp"
#include "sweep/stream_codec.hpp"
#include "sweep/sweep_data.hpp"

namespace jsweep::sweep {

/// Rank-level context shared by all sweep programs of one solver. The
/// solver updates `q_per_ster` between source iterations; everything else
/// is immutable during a run.
struct SweepShared {
  const sn::Discretization* disc = nullptr;
  const partition::PatchSet* patches = nullptr;
  const sn::Quadrature* quad = nullptr;
  const std::vector<double>* q_per_ster = nullptr;
  /// Old-iterate fluxes of cycle-cut faces; null when the sweep graphs are
  /// acyclic (no cut). Programs read prev values and stage fresh ones.
  LaggedFluxStore* lagged = nullptr;
  /// Shared workspace pool; null makes each program own a private
  /// workspace (handy for tests driving programs without a solver).
  sn::FaceFluxPool* flux_pool = nullptr;
  /// Stream payload recycling; null falls back to plain allocation.
  core::BufferPool* stream_buffers = nullptr;
};

/// Shared lagged-face (cycle-cut) handling — ONE implementation of the
/// schedule-independence invariant for both the fine and the coarsened
/// program, which must stay bitwise-identical:
///   - at init, seed every lagged read face with the previous sweep's
///     iterate so cut dependencies never wait;
///   - after computing vertex v, stage each lagged face it wrote for the
///     next sweep and restore the old iterate, so any later reader sees
///     the value the cut promised regardless of execution order.
void seed_lagged_faces(const SweepTaskData& data, const LaggedFluxStore* store,
                       sn::FaceFluxWorkspace& flux);
void stage_lagged_writes(const SweepTaskData& data, LaggedFluxStore* store,
                         std::int32_t v, sn::FaceFluxWorkspace& flux);

/// One implementation of the workspace borrow/seed/release protocol for
/// both the fine and the coarsened program. A program borrows its dense
/// workspace lazily — nothing is held until the first flux arrives or the
/// first vertex computes — and returns it the moment its last vertex
/// retires, so the pool's live set tracks the sweep frontier. Without a
/// shared pool the lease falls back to a privately owned workspace.
class WorkspaceLease {
 public:
  /// Init-time: drop any stale borrow left by an aborted previous run.
  void reset_for_run(const SweepShared& shared);
  /// Borrow (and seed the lagged faces of) the workspace on first use.
  sn::FaceFluxWorkspace& ensure(const SweepShared& shared,
                                const SweepTaskData& data);
  /// Return the workspace once the program has retired all its work.
  void release_if(bool done, const SweepShared& shared);
  /// Currently leased workspace (null when none is borrowed).
  [[nodiscard]] sn::FaceFluxWorkspace* get() const { return flux_; }

 private:
  sn::FaceFluxWorkspace* flux_ = nullptr;
  sn::FaceFluxWorkspace owned_;
};

/// Shared per-destination out-buffer handling: init-time sizing to the
/// static per-sweep maximum, and the batch-end flush into one pooled-
/// payload stream per destination patch (ascending patch id — the
/// deterministic emission order).
void prepare_out_buffers(const SweepTaskData& data,
                         std::vector<std::vector<StreamItem>>& out_items,
                         std::vector<core::Stream>& pending);
void flush_out_streams(const SweepTaskData& data, const SweepShared& shared,
                       const ProgramKey& src,
                       std::vector<std::vector<StreamItem>>& out_items,
                       std::vector<core::Stream>& pending);

struct SweepProgramOptions {
  /// Max vertices retired per compute() execution (the paper's N).
  int cluster_grain = 64;
  /// Record compute() batches as clusters for coarsened-graph replay.
  bool record_clusters = false;
  /// When non-null, compute() holds this mutex — serializes all angles of
  /// one patch, the "patch is the unit of parallelism" ablation.
  std::mutex* patch_serializer = nullptr;
};

class SweepPatchProgram final : public core::PatchProgram {
 public:
  SweepPatchProgram(const SweepTaskData& data, const SweepShared& shared,
                    SweepProgramOptions options);

  void init() override;
  void input(const core::Stream& s) override;
  void compute() override;
  std::optional<core::Stream> output() override;
  bool vote_to_halt() override;
  [[nodiscard]] std::int64_t remaining_work() const override {
    return data_.num_vertices() - computed_;
  }
  [[nodiscard]] std::int64_t total_work() const override {
    return data_.num_vertices();
  }

  /// Per-local-vertex contribution w_a * ψ to the scalar flux, valid after
  /// a run completes.
  [[nodiscard]] const std::vector<double>& phi_local() const { return phi_; }

  /// Cluster id per vertex from the recorded execution (record_clusters
  /// must have been set); -1 for vertices never computed (none, after a
  /// complete run).
  [[nodiscard]] const std::vector<std::int32_t>& recorded_clusters() const {
    return cluster_of_;
  }
  [[nodiscard]] std::int32_t recorded_num_clusters() const {
    return next_cluster_;
  }

  [[nodiscard]] const SweepTaskData& data() const { return data_; }

 private:
  struct ReadyEntry {
    double priority;
    std::int32_t v;
    /// Max-heap by priority; deterministic tie-break on vertex id.
    bool operator<(const ReadyEntry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return v > o.v;
    }
  };

  void mark_ready(std::int32_t v);

  const SweepTaskData& data_;
  const SweepShared& shared_;
  SweepProgramOptions options_;

  // --- Local context (Listing 1, part 1), reset by init() ---------------
  std::vector<std::int32_t> counts_;
  std::priority_queue<ReadyEntry> ready_;
  WorkspaceLease lease_;
  std::vector<std::vector<StreamItem>> out_items_;  ///< by destination slot
  std::vector<core::Stream> pending_;
  std::vector<double> phi_;
  std::int64_t computed_ = 0;
  std::vector<std::int32_t> cluster_of_;
  std::int32_t next_cluster_ = 0;
};

}  // namespace jsweep::sweep
