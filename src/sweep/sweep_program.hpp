#pragma once

/// \file sweep_program.hpp
/// The data-driven Sn sweep patch-program — a faithful implementation of
/// the paper's Listing 1. One instance handles one (patch, angle) pair;
/// its local context is the per-vertex dependency counters, the ready
/// priority queue, the dense face-flux workspace and the per-destination
/// out-stream buffers. compute() retires up to `cluster_grain` ready
/// vertices per execution (vertex clustering, Sec. V-C) and can record the
/// resulting clusters to build the coarsened graph (Sec. V-E).
///
/// Steady-state allocation budget: zero. The face-flux workspace comes
/// from a shared FaceFluxPool (borrowed at init(), returned when the last
/// vertex retires), stream payloads come from the engine's BufferPool, and
/// the per-destination item buffers are reserved to their static maximum —
/// the kernel grind performs no hash-map operation and no heap allocation.

#include <mutex>
#include <queue>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/patch_program.hpp"
#include "partition/patch_set.hpp"
#include "sn/discretization.hpp"
#include "sn/face_flux.hpp"
#include "sn/quadrature.hpp"
#include "sweep/lagged_flux.hpp"
#include "sweep/stream_codec.hpp"
#include "sweep/sweep_data.hpp"

namespace jsweep::sweep {

class GroupPipeline;

/// Rank-level context shared by all sweep programs of one solver. The
/// solver updates `q_per_ster` between source iterations; everything else
/// is immutable during a run.
struct SweepShared {
  const sn::Discretization* disc = nullptr;       ///< per-cell sweep kernel
  const partition::PatchSet* patches = nullptr;   ///< cell ↔ patch maps
  const sn::Quadrature* quad = nullptr;           ///< ordinate set
  const std::vector<double>* q_per_ster = nullptr;  ///< per-cell source
  /// Old-iterate fluxes of cycle-cut faces; null when the sweep graphs are
  /// acyclic (no cut). Programs read prev values and stage fresh ones.
  LaggedFluxStore* lagged = nullptr;
  /// Shared workspace pool; null makes each program own a private
  /// workspace (handy for tests driving programs without a solver).
  sn::FaceFluxPool* flux_pool = nullptr;
  /// Stream payload recycling; null falls back to plain allocation.
  core::BufferPool* stream_buffers = nullptr;
  /// Group-pipelined multigroup coordination (group_pipeline.hpp). When
  /// set, programs resolve their kernel and source per group through it,
  /// report retirement, and groups > 0 start gated on activation streams.
  /// Null = single-group: `disc` and `q_per_ster` are used directly.
  GroupPipeline* pipeline = nullptr;
  /// Energy group the current engine run sweeps when the task system is
  /// single-group but the solve is multigroup (barriered mode / per-group
  /// runs): selects each program's lagged-flux stride. Pipelined programs
  /// use their own GroupId instead; plain single-group solves leave it 0.
  GroupId current_group{0};
};

// Shared lagged-face (cycle-cut) handling — ONE implementation of the
// schedule-independence invariant for both the fine and the coarsened
// program, which must stay bitwise-identical.

/// At init, seed every lagged read face with the previous sweep's iterate
/// so cut dependencies never wait. `group` is the base energy group and
/// `width` the group-set width: lane l seeds workspace index
/// `ws_slot * width + l` from group `group + l`'s store stride (width 1 is
/// the classic scalar layout, bit-for-bit).
void seed_lagged_faces(const SweepTaskData& data, const LaggedFluxStore* store,
                       GroupId group, sn::FaceFluxWorkspace& flux,
                       int width = 1);
/// After computing vertex v, stage each lagged face it wrote for the next
/// sweep and restore the old iterate, so any later reader sees the value
/// the cut promised regardless of execution order. Same (group, width)
/// striding contract as seed_lagged_faces().
void stage_lagged_writes(const SweepTaskData& data, LaggedFluxStore* store,
                         GroupId group, std::int32_t v,
                         sn::FaceFluxWorkspace& flux, int width = 1);

/// One implementation of the workspace borrow/seed/release protocol for
/// both the fine and the coarsened program. A program borrows its dense
/// workspace lazily — nothing is held until the first flux arrives or the
/// first vertex computes — and returns it the moment its last vertex
/// retires, so the pool's live set tracks the sweep frontier. Without a
/// shared pool the lease falls back to a privately owned workspace.
class WorkspaceLease {
 public:
  /// Init-time: drop any stale borrow left by an aborted previous run.
  void reset_for_run(const SweepShared& shared);
  /// Borrow (and seed the lagged faces of base group `group` into) the
  /// workspace on first use. Group-set programs pass their set width:
  /// the workspace holds `num_flux_slots() * width` lanes.
  sn::FaceFluxWorkspace& ensure(const SweepShared& shared,
                                const SweepTaskData& data, GroupId group,
                                int width = 1);
  /// Return the workspace once the program has retired all its work.
  void release_if(bool done, const SweepShared& shared);
  /// Currently leased workspace (null when none is borrowed).
  [[nodiscard]] sn::FaceFluxWorkspace* get() const { return flux_; }

 private:
  sn::FaceFluxWorkspace* flux_ = nullptr;
  sn::FaceFluxWorkspace owned_;
};

/// Init-time sizing of the per-destination out-item buffers to their
/// static per-sweep maximum (allocation-free batching afterwards).
void prepare_out_buffers(const SweepTaskData& data,
                         std::vector<std::vector<StreamItem>>& out_items,
                         std::vector<core::Stream>& pending);
/// Batch-end flush: encode each destination's buffered items into one
/// pooled-payload stream (ascending patch id — the deterministic emission
/// order) and queue it on `pending`.
void flush_out_streams(const SweepTaskData& data, const SweepShared& shared,
                       const ProgramKey& src,
                       std::vector<std::vector<StreamItem>>& out_items,
                       std::vector<core::Stream>& pending);

/// Group-set counterparts of prepare_out_buffers()/flush_out_streams():
/// each remote face delivery becomes one SetStreamRecord plus `width` lane
/// values (lanes flat in `out_lanes[d]`, record i owning
/// `[i*width, (i+1)*width)`), encoded with the set codec so the receiver
/// decrements its dependency counter once per record.
void prepare_set_out_buffers(
    const SweepTaskData& data, int width,
    std::vector<std::vector<SetStreamRecord>>& out_records,
    std::vector<std::vector<double>>& out_lanes,
    std::vector<core::Stream>& pending);
void flush_set_out_streams(
    const SweepTaskData& data, const SweepShared& shared, int width,
    const ProgramKey& src,
    std::vector<std::vector<SetStreamRecord>>& out_records,
    std::vector<std::vector<double>>& out_lanes,
    std::vector<core::Stream>& pending);

/// Per-program knobs (fixed at construction).
struct SweepProgramOptions {
  /// Max vertices retired per compute() execution (the paper's N).
  int cluster_grain = 64;
  /// Record compute() batches as clusters for coarsened-graph replay.
  bool record_clusters = false;
  /// When non-null, compute() holds this mutex — serializes all angles of
  /// one patch, the "patch is the unit of parallelism" ablation.
  std::mutex* patch_serializer = nullptr;
  /// Group *set* this program sweeps (0 for single-group solves; the
  /// plain energy group when the pipeline's set width is 1). With a
  /// GroupPipeline in SweepShared, sets > 0 start *gated*: face streams
  /// are buffered but nothing computes until the pipeline's empty-payload
  /// activation stream opens the gate (the patch's sources are ready).
  GroupId group{0};
  /// Request-lane tag offset (see lane_task_tag in sweep_data.hpp): added
  /// to the (angle, group) task tag so several sessions' programs coexist
  /// in one engine without key collisions. 0 = the plain solver namespace.
  int lane_tag_offset = 0;
};

/// The data-driven Sn sweep patch-program (see \ref sweep_program.hpp):
/// Listing 1 on one (patch, angle, group) task.
class SweepPatchProgram final : public core::PatchProgram {
 public:
  /// `data` and `shared` must outlive the program; `shared.quad` must be
  /// set (the program key derives from it).
  SweepPatchProgram(const SweepTaskData& data, const SweepShared& shared,
                    SweepProgramOptions options);

  /// Reset local context (counters, ready queue, φ, gate) for a new run.
  void init() override;
  /// Consume one face-flux stream (or a group-activation marker).
  void input(const core::Stream& s) override;
  /// Retire up to cluster_grain ready vertices; buffer boundary outputs.
  void compute() override;
  /// Drain one pending outgoing stream (null when empty).
  std::optional<core::Stream> output() override;
  /// True when nothing is runnable (empty ready queue or closed gate).
  bool vote_to_halt() override;
  /// Unswept vertices (drives known-workload termination).
  [[nodiscard]] std::int64_t remaining_work() const override {
    return data_.num_vertices() - computed_;
  }
  /// Total vertices this program retires per run.
  [[nodiscard]] std::int64_t total_work() const override {
    return data_.num_vertices();
  }

  /// Per-local-vertex contribution w_a * ψ to the scalar flux, valid after
  /// a run completes. Group-set programs (set width W > 1) store W lanes
  /// per vertex, `[v * W + lane]`, one per group of the set.
  [[nodiscard]] const std::vector<double>& phi_local() const { return phi_; }

  /// Cluster id per vertex from the recorded execution (record_clusters
  /// must have been set); -1 for vertices never computed (none, after a
  /// complete run).
  [[nodiscard]] const std::vector<std::int32_t>& recorded_clusters() const {
    return cluster_of_;
  }
  /// Number of clusters the recorded execution produced.
  [[nodiscard]] std::int32_t recorded_num_clusters() const {
    return next_cluster_;
  }

  /// The immutable task data this program sweeps.
  [[nodiscard]] const SweepTaskData& data() const { return data_; }

 private:
  struct ReadyEntry {
    double priority;
    std::int32_t v;
    /// Max-heap by priority; deterministic tie-break on vertex id.
    bool operator<(const ReadyEntry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return v > o.v;
    }
  };

  void mark_ready(std::int32_t v);
  /// Base energy group selecting this run's lagged-flux stride: the
  /// program's set base when pipelined (== its group at set width 1), the
  /// solver-set current group otherwise.
  [[nodiscard]] GroupId lag_group() const {
    return shared_.pipeline != nullptr ? GroupId{group_base_}
                                       : shared_.current_group;
  }

  const SweepTaskData& data_;
  const SweepShared& shared_;
  SweepProgramOptions options_;
  /// Lanes this program sweeps at once (resolved from the pipeline's set
  /// width at construction; 1 without a pipeline). Width 1 takes the
  /// scalar kernel/codec path unchanged.
  int set_width_ = 1;
  /// First energy group of this program's set (0 without a pipeline).
  int group_base_ = 0;

  // --- Local context (Listing 1, part 1), reset by init() ---------------
  std::vector<std::int32_t> counts_;
  std::priority_queue<ReadyEntry> ready_;
  WorkspaceLease lease_;
  std::vector<std::vector<StreamItem>> out_items_;  ///< by destination slot
  /// Group-set out buffers (set_width_ > 1): one record + set_width_
  /// lane values per remote face delivery, by destination slot.
  std::vector<std::vector<SetStreamRecord>> out_records_;
  std::vector<std::vector<double>> out_lanes_;
  std::vector<core::Stream> pending_;
  std::vector<double> phi_;
  std::int64_t computed_ = 0;
  std::vector<std::int32_t> cluster_of_;
  std::int32_t next_cluster_ = 0;
  /// Group gate: false until the pipeline's activation stream arrives
  /// (always true for group 0 or single-group solves).
  bool gate_open_ = true;
  bool completion_reported_ = false;
};

}  // namespace jsweep::sweep
