#pragma once

/// \file structured_mesh.hpp
/// Regular 3-D structured mesh (the JASMIN-side substrate).
///
/// Cells are unit-strided along x: id = i + nx*(j + ny*k). The mesh stores
/// per-cell material ids; geometry is implicit (uniform spacing), which is
/// what lets Kobayashi-400-class meshes (64M+ cells) exist as metadata only.

#include <cstdint>
#include <optional>
#include <vector>

#include "mesh/geometry.hpp"
#include "support/check.hpp"
#include "support/ids.hpp"

namespace jsweep::mesh {

class StructuredMesh {
 public:
  /// `dims` cells per axis, physical cell spacing `spacing`, lower corner
  /// at `origin`.
  StructuredMesh(Index3 dims, Vec3 spacing, Vec3 origin = {});

  [[nodiscard]] Index3 dims() const { return dims_; }
  [[nodiscard]] Vec3 spacing() const { return spacing_; }
  [[nodiscard]] Vec3 origin() const { return origin_; }
  [[nodiscard]] std::int64_t num_cells() const { return num_cells_; }

  [[nodiscard]] CellId cell_at(Index3 p) const {
    JSWEEP_ASSERT(box().contains(p));
    return CellId{p.i + static_cast<std::int64_t>(dims_.i) *
                            (p.j + static_cast<std::int64_t>(dims_.j) * p.k)};
  }

  [[nodiscard]] Index3 index_of(CellId c) const {
    JSWEEP_ASSERT(c.valid() && c.value() < num_cells_);
    const auto v = c.value();
    const auto nx = static_cast<std::int64_t>(dims_.i);
    const auto ny = static_cast<std::int64_t>(dims_.j);
    return {static_cast<int>(v % nx), static_cast<int>((v / nx) % ny),
            static_cast<int>(v / (nx * ny))};
  }

  /// The whole mesh as an index box.
  [[nodiscard]] Box box() const { return {{0, 0, 0}, dims_}; }

  /// Neighbor across `dir`, or nullopt at the domain boundary.
  [[nodiscard]] std::optional<CellId> neighbor(CellId c, FaceDir dir) const;

  [[nodiscard]] Vec3 cell_center(CellId c) const;
  [[nodiscard]] double cell_volume() const {
    return spacing_.x * spacing_.y * spacing_.z;
  }
  /// Area of a face perpendicular to `dir`.
  [[nodiscard]] double face_area(FaceDir dir) const;

  /// Per-cell material ids (default 0). Generators fill these.
  [[nodiscard]] int material(CellId c) const {
    return materials_.empty() ? 0
                              : materials_[static_cast<std::size_t>(c.value())];
  }
  void set_materials(std::vector<int> m);
  [[nodiscard]] const std::vector<int>& materials() const { return materials_; }

 private:
  Index3 dims_;
  Vec3 spacing_;
  Vec3 origin_;
  std::int64_t num_cells_;
  std::vector<int> materials_;
};

}  // namespace jsweep::mesh
