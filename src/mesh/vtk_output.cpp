#include "mesh/vtk_output.hpp"

#include <fstream>
#include <iomanip>

#include "support/check.hpp"

namespace jsweep::mesh {

namespace {

void check_fields(const std::vector<CellField>& fields,
                  std::int64_t num_cells) {
  for (const auto& f : fields) {
    JSWEEP_CHECK_MSG(f.values != nullptr, "field '" << f.name << "' is null");
    JSWEEP_CHECK_MSG(static_cast<std::int64_t>(f.values->size()) == num_cells,
                     "field '" << f.name << "' has " << f.values->size()
                               << " values for " << num_cells << " cells");
    JSWEEP_CHECK_MSG(!f.name.empty() &&
                         f.name.find(' ') == std::string::npos,
                     "VTK field names must be non-empty and space-free");
  }
}

void write_cell_data(std::ostream& os, const std::vector<CellField>& fields,
                     std::int64_t num_cells) {
  if (fields.empty()) return;
  os << "CELL_DATA " << num_cells << "\n";
  for (const auto& f : fields) {
    os << "SCALARS " << f.name << " double 1\nLOOKUP_TABLE default\n";
    for (const auto v : *f.values) os << v << "\n";
  }
}

}  // namespace

void write_vtk(std::ostream& os, const StructuredMesh& m,
               const std::vector<CellField>& fields) {
  check_fields(fields, m.num_cells());
  const Index3 d = m.dims();
  os << std::setprecision(12);
  os << "# vtk DataFile Version 3.0\njsweep structured mesh\nASCII\n";
  os << "DATASET STRUCTURED_POINTS\n";
  // Point dimensions = cell dimensions + 1.
  os << "DIMENSIONS " << d.i + 1 << " " << d.j + 1 << " " << d.k + 1 << "\n";
  os << "ORIGIN " << m.origin().x << " " << m.origin().y << " "
     << m.origin().z << "\n";
  os << "SPACING " << m.spacing().x << " " << m.spacing().y << " "
     << m.spacing().z << "\n";
  write_cell_data(os, fields, m.num_cells());
}

void write_vtk(std::ostream& os, const TetMesh& m,
               const std::vector<CellField>& fields) {
  check_fields(fields, m.num_cells());
  os << std::setprecision(12);
  os << "# vtk DataFile Version 3.0\njsweep tetrahedral mesh\nASCII\n";
  os << "DATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << m.num_nodes() << " double\n";
  for (const auto& p : m.nodes())
    os << p.x << " " << p.y << " " << p.z << "\n";
  os << "CELLS " << m.num_cells() << " " << m.num_cells() * 5 << "\n";
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const auto& t = m.tet(CellId{c});
    os << "4 " << t[0] << " " << t[1] << " " << t[2] << " " << t[3] << "\n";
  }
  os << "CELL_TYPES " << m.num_cells() << "\n";
  for (std::int64_t c = 0; c < m.num_cells(); ++c) os << "10\n";  // VTK_TETRA
  write_cell_data(os, fields, m.num_cells());
}

namespace {

template <class Mesh>
void write_file_impl(const std::string& path, const Mesh& m,
                     const std::vector<CellField>& fields) {
  std::ofstream os(path);
  JSWEEP_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  write_vtk(os, m, fields);
  JSWEEP_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

}  // namespace

void write_vtk_file(const std::string& path, const StructuredMesh& m,
                    const std::vector<CellField>& fields) {
  write_file_impl(path, m, fields);
}

void write_vtk_file(const std::string& path, const TetMesh& m,
                    const std::vector<CellField>& fields) {
  write_file_impl(path, m, fields);
}

}  // namespace jsweep::mesh
