#pragma once

/// \file geometry.hpp
/// Small geometric value types shared by both mesh families.

#include <array>
#include <cmath>
#include <ostream>

namespace jsweep::mesh {

/// Double-precision 3-vector.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& v) { return std::sqrt(dot(v, v)); }

inline Vec3 normalized(const Vec3& v) {
  const double n = norm(v);
  return n > 0.0 ? v / n : Vec3{};
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << "," << v.y << "," << v.z << ")";
}

/// Integer lattice coordinate.
struct Index3 {
  int i = 0;
  int j = 0;
  int k = 0;

  constexpr bool operator==(const Index3&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const Index3& n) {
  return os << "[" << n.i << "," << n.j << "," << n.k << "]";
}

/// Half-open axis-aligned index box [lo, hi).
struct Box {
  Index3 lo;
  Index3 hi;

  [[nodiscard]] constexpr bool contains(const Index3& p) const {
    return p.i >= lo.i && p.i < hi.i && p.j >= lo.j && p.j < hi.j &&
           p.k >= lo.k && p.k < hi.k;
  }

  [[nodiscard]] constexpr long long volume() const {
    if (hi.i <= lo.i || hi.j <= lo.j || hi.k <= lo.k) return 0;
    return static_cast<long long>(hi.i - lo.i) * (hi.j - lo.j) *
           (hi.k - lo.k);
  }

  [[nodiscard]] constexpr Box intersect(const Box& o) const {
    const auto mx = [](int a, int b) { return a > b ? a : b; };
    const auto mn = [](int a, int b) { return a < b ? a : b; };
    return {{mx(lo.i, o.lo.i), mx(lo.j, o.lo.j), mx(lo.k, o.lo.k)},
            {mn(hi.i, o.hi.i), mn(hi.j, o.hi.j), mn(hi.k, o.hi.k)}};
  }

  constexpr bool operator==(const Box&) const = default;
};

/// The six axis-aligned face directions of a structured cell, in the fixed
/// order used across the structured sweep code.
enum class FaceDir : int { XLo = 0, XHi = 1, YLo = 2, YHi = 3, ZLo = 4, ZHi = 5 };

inline constexpr std::array<Index3, 6> kFaceOffsets = {{
    {-1, 0, 0}, {+1, 0, 0}, {0, -1, 0}, {0, +1, 0}, {0, 0, -1}, {0, 0, +1},
}};

inline constexpr std::array<Vec3, 6> kFaceNormals = {{
    {-1, 0, 0}, {+1, 0, 0}, {0, -1, 0}, {0, +1, 0}, {0, 0, -1}, {0, 0, +1},
}};

/// The opposite face (XLo <-> XHi, ...).
constexpr FaceDir opposite(FaceDir d) {
  return static_cast<FaceDir>(static_cast<int>(d) ^ 1);
}

}  // namespace jsweep::mesh
