#include "mesh/generators.hpp"

#include <cmath>
#include <unordered_map>

#include "support/rng.hpp"

namespace jsweep::mesh {

namespace {

/// Rebuild a mesh with the same connectivity and materials but displaced
/// node coordinates (shared by the deforming-mesh generators).
TetMesh rebuild_with_nodes(const TetMesh& base, std::vector<Vec3> nodes) {
  std::vector<std::array<std::int32_t, 4>> tets;
  tets.reserve(static_cast<std::size_t>(base.num_cells()));
  std::vector<int> mats;
  mats.reserve(static_cast<std::size_t>(base.num_cells()));
  for (std::int64_t c = 0; c < base.num_cells(); ++c) {
    tets.push_back(base.tet(CellId{c}));
    mats.push_back(base.material(CellId{c}));
  }
  TetMesh out(std::move(nodes), std::move(tets));
  out.set_materials(std::move(mats));
  return out;
}

}  // namespace

StructuredMesh make_cube_mesh(int n, double side) {
  JSWEEP_CHECK(n > 0 && side > 0);
  const double h = side / n;
  return StructuredMesh({n, n, n}, {h, h, h});
}

void apply_kobayashi_materials(StructuredMesh& m) {
  // Problem coordinates: the mesh box is mapped onto [0,100]³.
  const Index3 d = m.dims();
  const Vec3 sp = m.spacing();
  const double sx = 100.0 / (d.i * sp.x);
  const double sy = 100.0 / (d.j * sp.y);
  const double sz = 100.0 / (d.k * sp.z);

  std::vector<int> mats(static_cast<std::size_t>(m.num_cells()), kMatShield);
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const Vec3 p0 = m.cell_center(CellId{c});
    const Vec3 p{(p0.x - m.origin().x) * sx, (p0.y - m.origin().y) * sy,
                 (p0.z - m.origin().z) * sz};
    int mat = kMatShield;
    if (p.x < 10 && p.y < 10 && p.z < 10) {
      mat = kMatSource;
    } else if ((p.x < 10 && p.y < 60 && p.z < 10) ||        // duct leg 1 (+y)
               (p.x < 40 && p.y > 50 && p.y < 60 && p.z < 10) ||  // leg 2 (+x)
               (p.x > 30 && p.x < 40 && p.y > 50 && p.y < 60 &&
                p.z < 60)) {  // leg 3 (+z)
      mat = kMatVoid;
    }
    mats[static_cast<std::size_t>(c)] = mat;
  }
  m.set_materials(std::move(mats));
}

StructuredMesh make_kobayashi_mesh(int n) {
  StructuredMesh m = make_cube_mesh(n);
  apply_kobayashi_materials(m);
  return m;
}

TetMesh tetrahedralize_lattice(Index3 dims, Vec3 spacing, Vec3 origin,
                               const KeepFn& keep,
                               const MaterialFn& material) {
  JSWEEP_CHECK(dims.i > 0 && dims.j > 0 && dims.k > 0);

  // Kuhn/Freudenthal subdivision: 6 tets per hex, all sharing the main
  // diagonal c000–c111. Using the same split in every hex makes the
  // triangulation conforming across the lattice.
  //
  // Local corner numbering: bit 0 = +x, bit 1 = +y, bit 2 = +z.
  static constexpr std::array<std::array<int, 4>, 6> kKuhnTets = {{
      {0, 1, 3, 7},  // x, then y, then z
      {0, 3, 2, 7},
      {0, 2, 6, 7},
      {0, 6, 4, 7},
      {0, 4, 5, 7},
      {0, 5, 1, 7},
  }};

  const auto node_key = [&](int i, int j, int k) -> std::int64_t {
    return i + static_cast<std::int64_t>(dims.i + 1) *
                   (j + static_cast<std::int64_t>(dims.j + 1) * k);
  };

  std::unordered_map<std::int64_t, std::int32_t> node_map;
  std::vector<Vec3> nodes;
  std::vector<std::array<std::int32_t, 4>> tets;
  std::vector<int> mats;

  const auto get_node = [&](int i, int j, int k) -> std::int32_t {
    const std::int64_t key = node_key(i, j, k);
    auto it = node_map.find(key);
    if (it != node_map.end()) return it->second;
    const auto id = static_cast<std::int32_t>(nodes.size());
    nodes.push_back({origin.x + i * spacing.x, origin.y + j * spacing.y,
                     origin.z + k * spacing.z});
    node_map.emplace(key, id);
    return id;
  };

  for (int k = 0; k < dims.k; ++k) {
    for (int j = 0; j < dims.j; ++j) {
      for (int i = 0; i < dims.i; ++i) {
        const Vec3 center{origin.x + (i + 0.5) * spacing.x,
                          origin.y + (j + 0.5) * spacing.y,
                          origin.z + (k + 0.5) * spacing.z};
        if (!keep(center)) continue;
        std::array<std::int32_t, 8> corner;
        for (int b = 0; b < 8; ++b)
          corner[static_cast<std::size_t>(b)] =
              get_node(i + (b & 1), j + ((b >> 1) & 1), k + ((b >> 2) & 1));
        const int mat = material(center);
        for (const auto& t : kKuhnTets) {
          tets.push_back({corner[static_cast<std::size_t>(t[0])],
                          corner[static_cast<std::size_t>(t[1])],
                          corner[static_cast<std::size_t>(t[2])],
                          corner[static_cast<std::size_t>(t[3])]});
          mats.push_back(mat);
        }
      }
    }
  }
  JSWEEP_CHECK_MSG(!tets.empty(), "lattice predicate kept no cells");

  TetMesh mesh(std::move(nodes), std::move(tets));
  mesh.set_materials(std::move(mats));
  return mesh;
}

TetMesh make_ball_mesh(int n, double radius) {
  JSWEEP_CHECK(n > 1 && radius > 0);
  const double h = 2.0 * radius / n;
  const Vec3 origin{-radius, -radius, -radius};
  const double inner = radius / 2.0;
  return tetrahedralize_lattice(
      {n, n, n}, {h, h, h}, origin,
      [radius](const Vec3& p) { return dot(p, p) <= radius * radius; },
      [inner](const Vec3& p) {
        return dot(p, p) <= inner * inner ? kMatCore : kMatShield;
      });
}

TetMesh make_reactor_mesh(int n, double radius, double height) {
  JSWEEP_CHECK(n > 1 && radius > 0 && height > 0);
  const double h = 2.0 * radius / n;
  const int nz = std::max(1, static_cast<int>(height / h));
  const Vec3 origin{-radius, -radius, 0.0};
  const double core_r = 0.6 * radius;
  return tetrahedralize_lattice(
      {n, n, nz}, {h, h, height / nz}, origin,
      [radius](const Vec3& p) {
        return p.x * p.x + p.y * p.y <= radius * radius;
      },
      [core_r](const Vec3& p) {
        return p.x * p.x + p.y * p.y <= core_r * core_r ? kMatCore
                                                        : kMatReflector;
      });
}

TetMesh make_jittered_ball_mesh(int n, double radius, double jitter,
                                std::uint64_t seed) {
  JSWEEP_CHECK(jitter >= 0.0 && jitter < 0.5);
  const TetMesh regular = make_ball_mesh(n, radius);
  const double h = 2.0 * radius / n;

  // Displace nodes that are not on the mesh surface (boundary faces keep
  // their nodes so the outer shape survives).
  std::vector<char> on_boundary(
      static_cast<std::size_t>(regular.num_nodes()), 0);
  for (std::int64_t f = 0; f < regular.num_faces(); ++f) {
    const TetFace& face = regular.face(f);
    if (!face.is_boundary()) continue;
    for (const auto v : face.nodes)
      on_boundary[static_cast<std::size_t>(v)] = 1;
  }

  Rng rng(seed);
  std::vector<Vec3> nodes = regular.nodes();
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    if (on_boundary[v]) continue;
    nodes[v] += Vec3{rng.uniform(-jitter, jitter) * h,
                     rng.uniform(-jitter, jitter) * h,
                     rng.uniform(-jitter, jitter) * h};
  }

  return rebuild_with_nodes(regular, std::move(nodes));
}

TetMesh make_twisted_column_mesh(int n, int layers, double total_twist,
                                 double width, double height) {
  JSWEEP_CHECK(n > 1 && layers > 0 && width > 0 && height > 0);
  const double core_r = width / 4.0;
  const TetMesh straight = tetrahedralize_lattice(
      {n, n, layers}, {width / n, width / n, height / layers},
      {-width / 2.0, -width / 2.0, 0.0}, [](const Vec3&) { return true; },
      [core_r](const Vec3& p) {
        return p.x * p.x + p.y * p.y <= core_r * core_r ? kMatCore
                                                        : kMatShield;
      });

  std::vector<Vec3> nodes = straight.nodes();
  for (auto& p : nodes) {
    const double theta = total_twist * (p.z / height);
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    p = {c * p.x - s * p.y, s * p.x + c * p.y, p.z};
  }
  return rebuild_with_nodes(straight, std::move(nodes));
}

TetMesh make_swirled_ball_mesh(int n, double radius, double swirl,
                               double jitter, std::uint64_t seed) {
  JSWEEP_CHECK(jitter >= 0.0 && jitter < 0.5);
  const TetMesh regular = make_ball_mesh(n, radius);
  const double h = 2.0 * radius / n;

  std::vector<char> on_boundary(
      static_cast<std::size_t>(regular.num_nodes()), 0);
  for (std::int64_t f = 0; f < regular.num_faces(); ++f) {
    const TetFace& face = regular.face(f);
    if (!face.is_boundary()) continue;
    for (const auto v : face.nodes)
      on_boundary[static_cast<std::size_t>(v)] = 1;
  }

  Rng rng(seed);
  std::vector<Vec3> nodes = regular.nodes();
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    Vec3& p = nodes[v];
    // Swirl: per-slice rotation (an isometry — surface nodes keep their
    // distance from the axis, so the ball's outer shape survives).
    const double theta = swirl * (p.z / radius);
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    p = {c * p.x - s * p.y, s * p.x + c * p.y, p.z};
    if (on_boundary[v]) continue;
    p += Vec3{rng.uniform(-jitter, jitter) * h,
              rng.uniform(-jitter, jitter) * h,
              rng.uniform(-jitter, jitter) * h};
  }
  return rebuild_with_nodes(regular, std::move(nodes));
}

}  // namespace jsweep::mesh
