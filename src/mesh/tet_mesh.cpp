#include "mesh/tet_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace jsweep::mesh {

namespace {

double tet_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  return dot(b - a, cross(c - a, d - a)) / 6.0;
}

/// Hashable key for an unordered node triple.
struct FaceKey {
  std::array<std::int32_t, 3> n;

  bool operator==(const FaceKey&) const = default;
};

struct FaceKeyHash {
  std::size_t operator()(const FaceKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto v : k.n) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

FaceKey make_key(std::int32_t a, std::int32_t b, std::int32_t c) {
  std::array<std::int32_t, 3> n{a, b, c};
  std::sort(n.begin(), n.end());
  return {n};
}

}  // namespace

TetMesh::TetMesh(std::vector<Vec3> nodes,
                 std::vector<std::array<std::int32_t, 4>> tets)
    : nodes_(std::move(nodes)), tets_(std::move(tets)) {
  JSWEEP_CHECK(!nodes_.empty() && !tets_.empty());
  const auto nn = static_cast<std::int32_t>(nodes_.size());
  volumes_.reserve(tets_.size());
  centroids_.reserve(tets_.size());
  for (auto& t : tets_) {
    for (const auto v : t)
      JSWEEP_CHECK_MSG(v >= 0 && v < nn, "tet references node " << v);
    double vol = tet_volume(nodes_[static_cast<std::size_t>(t[0])],
                            nodes_[static_cast<std::size_t>(t[1])],
                            nodes_[static_cast<std::size_t>(t[2])],
                            nodes_[static_cast<std::size_t>(t[3])]);
    if (vol < 0.0) {
      std::swap(t[2], t[3]);
      vol = -vol;
    }
    JSWEEP_CHECK_MSG(vol > 0.0, "degenerate tet (zero volume)");
    volumes_.push_back(vol);
    total_volume_ += vol;
    const Vec3 centroid = (nodes_[static_cast<std::size_t>(t[0])] +
                           nodes_[static_cast<std::size_t>(t[1])] +
                           nodes_[static_cast<std::size_t>(t[2])] +
                           nodes_[static_cast<std::size_t>(t[3])]) /
                          4.0;
    centroids_.push_back(centroid);
  }
  build_faces();
}

void TetMesh::build_faces() {
  // Local faces of a positively-oriented tet (outward normals):
  // opposite node 0: (1,3,2); 1: (0,2,3); 2: (0,3,1); 3: (0,1,2).
  static constexpr std::array<std::array<int, 3>, 4> kLocalFaces = {{
      {1, 3, 2},
      {0, 2, 3},
      {0, 3, 1},
      {0, 1, 2},
  }};

  std::unordered_map<FaceKey, std::int64_t, FaceKeyHash> index;
  index.reserve(tets_.size() * 2);
  cell_faces_.assign(tets_.size(), {-1, -1, -1, -1});
  faces_.reserve(tets_.size() * 2);

  for (std::size_t c = 0; c < tets_.size(); ++c) {
    const auto& t = tets_[c];
    for (int lf = 0; lf < 4; ++lf) {
      const std::int32_t a = t[static_cast<std::size_t>(kLocalFaces[lf][0])];
      const std::int32_t b = t[static_cast<std::size_t>(kLocalFaces[lf][1])];
      const std::int32_t d = t[static_cast<std::size_t>(kLocalFaces[lf][2])];
      const FaceKey key = make_key(a, b, d);
      auto it = index.find(key);
      if (it == index.end()) {
        TetFace face;
        face.nodes = key.n;
        face.owner = static_cast<std::int64_t>(c);
        const Vec3& pa = nodes_[static_cast<std::size_t>(a)];
        const Vec3& pb = nodes_[static_cast<std::size_t>(b)];
        const Vec3& pd = nodes_[static_cast<std::size_t>(d)];
        // Outward from owner because local faces are outward-oriented.
        face.area_vec = cross(pb - pa, pd - pa) * 0.5;
        const auto f = static_cast<std::int64_t>(faces_.size());
        faces_.push_back(face);
        index.emplace(key, f);
        cell_faces_[c][static_cast<std::size_t>(lf)] = f;
      } else {
        TetFace& face = faces_[static_cast<std::size_t>(it->second)];
        JSWEEP_CHECK_MSG(face.neighbor < 0,
                         "face shared by more than two tets");
        face.neighbor = static_cast<std::int64_t>(c);
        cell_faces_[c][static_cast<std::size_t>(lf)] = it->second;
      }
    }
  }
}

void TetMesh::set_materials(std::vector<int> m) {
  JSWEEP_CHECK_MSG(static_cast<std::int64_t>(m.size()) == num_cells(),
                   "material array size mismatch");
  materials_ = std::move(m);
}

std::string TetMesh::validate() const {
  std::ostringstream problems;
  for (std::size_t c = 0; c < tets_.size(); ++c) {
    if (volumes_[c] <= 0.0)
      problems << "cell " << c << " volume " << volumes_[c] << "\n";
    // Divergence theorem on the constant field: outward areas must close.
    Vec3 sum{};
    for (const auto f : cell_faces_[c]) {
      if (f < 0) {
        problems << "cell " << c << " missing a face\n";
        continue;
      }
      sum += outward_area(f, CellId{static_cast<std::int64_t>(c)});
    }
    const double scale = std::cbrt(volumes_[c]);
    if (norm(sum) > 1e-9 * scale * scale)
      problems << "cell " << c << " surface not closed, |sum|=" << norm(sum)
               << "\n";
  }
  for (std::size_t f = 0; f < faces_.size(); ++f) {
    const auto& face = faces_[f];
    if (face.owner < 0) problems << "face " << f << " has no owner\n";
    if (face.owner == face.neighbor)
      problems << "face " << f << " self-adjacent\n";
  }
  return problems.str();
}

}  // namespace jsweep::mesh
