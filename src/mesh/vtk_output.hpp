#pragma once

/// \file vtk_output.hpp
/// Legacy-VTK writers for visualizing meshes and per-cell fields (scalar
/// flux, materials, patch assignments) in ParaView/VisIt. ASCII legacy
/// format: verbose but dependency-free and universally readable.

#include <ostream>
#include <string>
#include <vector>

#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"

namespace jsweep::mesh {

/// A named per-cell scalar field.
struct CellField {
  std::string name;
  const std::vector<double>* values = nullptr;
};

/// Write a structured mesh as VTK STRUCTURED_POINTS with the given cell
/// fields (each must have num_cells entries).
void write_vtk(std::ostream& os, const StructuredMesh& m,
               const std::vector<CellField>& fields);

/// Write a tetrahedral mesh as VTK UNSTRUCTURED_GRID with cell fields.
void write_vtk(std::ostream& os, const TetMesh& m,
               const std::vector<CellField>& fields);

/// Convenience: write to a file path; throws CheckError on I/O failure.
void write_vtk_file(const std::string& path, const StructuredMesh& m,
                    const std::vector<CellField>& fields);
void write_vtk_file(const std::string& path, const TetMesh& m,
                    const std::vector<CellField>& fields);

}  // namespace jsweep::mesh
