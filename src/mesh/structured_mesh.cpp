#include "mesh/structured_mesh.hpp"

namespace jsweep::mesh {

StructuredMesh::StructuredMesh(Index3 dims, Vec3 spacing, Vec3 origin)
    : dims_(dims),
      spacing_(spacing),
      origin_(origin),
      num_cells_(static_cast<std::int64_t>(dims.i) * dims.j * dims.k) {
  JSWEEP_CHECK_MSG(dims.i > 0 && dims.j > 0 && dims.k > 0,
                   "structured mesh dims " << dims);
  JSWEEP_CHECK(spacing.x > 0 && spacing.y > 0 && spacing.z > 0);
}

std::optional<CellId> StructuredMesh::neighbor(CellId c, FaceDir dir) const {
  Index3 p = index_of(c);
  const Index3 off = kFaceOffsets[static_cast<std::size_t>(dir)];
  p.i += off.i;
  p.j += off.j;
  p.k += off.k;
  if (!box().contains(p)) return std::nullopt;
  return cell_at(p);
}

Vec3 StructuredMesh::cell_center(CellId c) const {
  const Index3 p = index_of(c);
  return {origin_.x + (p.i + 0.5) * spacing_.x,
          origin_.y + (p.j + 0.5) * spacing_.y,
          origin_.z + (p.k + 0.5) * spacing_.z};
}

double StructuredMesh::face_area(FaceDir dir) const {
  switch (dir) {
    case FaceDir::XLo:
    case FaceDir::XHi:
      return spacing_.y * spacing_.z;
    case FaceDir::YLo:
    case FaceDir::YHi:
      return spacing_.x * spacing_.z;
    case FaceDir::ZLo:
    case FaceDir::ZHi:
      return spacing_.x * spacing_.y;
  }
  return 0.0;
}

void StructuredMesh::set_materials(std::vector<int> m) {
  JSWEEP_CHECK_MSG(static_cast<std::int64_t>(m.size()) == num_cells_,
                   "material array size " << m.size() << " != cells "
                                          << num_cells_);
  materials_ = std::move(m);
}

}  // namespace jsweep::mesh
