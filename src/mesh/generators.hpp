#pragma once

/// \file generators.hpp
/// Mesh generators for the paper's benchmark geometries.
///
/// - Kobayashi cube (structured): the paper's JSNT-S workload. We use the
///   classic Kobayashi dog-leg void duct in a shield with a corner source;
///   material ids: 0 = source, 1 = void duct, 2 = shield.
/// - Ball (unstructured): hexahedral lattice clipped to a sphere, each hex
///   split into 6 tets by the Kuhn/Freudenthal subdivision (consistent
///   across the lattice, so shared faces match exactly).
/// - Reactor core (unstructured): clipped cylinder with concentric material
///   rings (inner core / outer reflector), same tetrahedralization.

#include <functional>

#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"

namespace jsweep::mesh {

/// Material ids used by the benchmark problems.
enum Material : int {
  kMatSource = 0,
  kMatVoid = 1,
  kMatShield = 2,
  kMatCore = 3,
  kMatReflector = 4,
};

/// Cubic structured mesh: n×n×n cells spanning [0, side]³.
StructuredMesh make_cube_mesh(int n, double side = 100.0);

/// Assign Kobayashi-style materials to a cube mesh assumed to span
/// [0, 100]³ in problem coordinates (any resolution): source [0,10]³,
/// dog-leg void duct, shield elsewhere.
void apply_kobayashi_materials(StructuredMesh& m);

/// Convenience: make_cube_mesh + apply_kobayashi_materials. `n = 400`
/// reproduces the paper's Kobayashi-400 mesh.
StructuredMesh make_kobayashi_mesh(int n);

/// Predicate deciding whether a lattice hex (by its center) is kept, and a
/// material assignment for kept cells.
using KeepFn = std::function<bool(const Vec3&)>;
using MaterialFn = std::function<int(const Vec3&)>;

/// Core lattice-to-tets generator: keep hexes whose center satisfies
/// `keep`, split each into 6 Kuhn tets, assign materials by hex center.
TetMesh tetrahedralize_lattice(Index3 dims, Vec3 spacing, Vec3 origin,
                               const KeepFn& keep, const MaterialFn& material);

/// Tetrahedral ball of radius `radius` centred at the origin, with `n`
/// lattice cells across the diameter. Cell count grows as ~ (π/6)·6·n³.
/// Material: kMatCore inside radius/2, kMatShield outside (gives the Sn
/// solver a scattering/absorbing split to iterate on).
TetMesh make_ball_mesh(int n, double radius = 50.0);

/// Tetrahedral reactor core: cylinder of radius `radius` and height
/// `height`, `n` lattice cells across the diameter. Inner 60% of the radius
/// is kMatCore (fissile-like source+scatter), the rest kMatReflector.
TetMesh make_reactor_mesh(int n, double radius = 50.0, double height = 100.0);

/// Deforming-mesh model: a tetrahedral ball whose interior nodes are
/// displaced by up to `jitter` cell widths (deterministic in `seed`).
/// This is the paper's motivating "deforming structured mesh" case — the
/// regular KBA decomposition no longer exists, and strong jitter can even
/// produce cyclic sweep dependencies that the DAG machinery must detect.
/// Jitter ≤ ~0.25 keeps every tet positively oriented.
TetMesh make_jittered_ball_mesh(int n, double radius, double jitter,
                                std::uint64_t seed = 1);

/// Twisted column: an n×n×layers hex lattice spanning
/// [-width/2, width/2]² × [0, height], Kuhn-split into tets, with every
/// node rotated about the column axis by `total_twist` · z/height radians.
/// The twist tilts the (triangulated) faces azimuthally, so rings of cells
/// around the axis feed each other in one rotational sense and induce
/// cyclic dependencies once the per-layer twist is large enough. With the
/// default parameters every level-symmetric S2 direction is cyclic (the
/// test suite asserts this). Deterministic: no randomness. Materials:
/// kMatCore within width/4 of the axis, kMatShield outside.
TetMesh make_twisted_column_mesh(int n = 4, int layers = 8,
                                 double total_twist = 5.0,
                                 double width = 20.0, double height = 16.0);

/// Randomized perturbation mode: a tetrahedral ball whose nodes are swept
/// by a z-dependent swirl (rotation about the z-axis by `swirl` · z/radius
/// radians — an isometry per slice, so the outer surface keeps its shape)
/// plus `jitter` cell widths of random displacement on interior nodes
/// (deterministic in `seed`). The swirl's coherent azimuthal shear makes
/// cyclic sweep dependencies near-certain at the default strength, while
/// the jitter randomizes where they appear.
TetMesh make_swirled_ball_mesh(int n, double radius, double swirl = 2.5,
                               double jitter = 0.2, std::uint64_t seed = 1);

}  // namespace jsweep::mesh
