#pragma once

/// \file amr.hpp
/// Block-structured AMR: the "A" in JASMIN (J Adaptive Structured Mesh
/// INfrastructure). The paper's sweep experiments run on uniform meshes,
/// but the framework substrate is an AMR patch hierarchy — this module
/// supplies it: Berger–Rigoutsos clustering of tagged cells into refined
/// boxes and a two-level hierarchy with proper nesting, from which
/// per-level patch decompositions (and sweeps) can be built.

#include <cstdint>
#include <functional>
#include <vector>

#include "mesh/structured_mesh.hpp"

namespace jsweep::mesh {

/// Berger–Rigoutsos box generation: cluster the tagged cells of a `dims`
/// lattice into a small set of boxes, recursively splitting any box whose
/// fill efficiency (tagged / volume) is below `min_efficiency`. Splits
/// prefer zero-histogram cuts, then the strongest Laplacian inflection,
/// then the midpoint of the longest axis.
///
/// Returns boxes that (a) cover every tagged cell, (b) contain no
/// untagged-only boxes below the efficiency threshold unless they are
/// single cells, and (c) do not overlap.
std::vector<Box> cluster_tagged_cells(Index3 dims,
                                      const std::vector<char>& tags,
                                      double min_efficiency = 0.7,
                                      int min_box_width = 2);

/// A two-level refinement hierarchy over a coarse structured mesh.
class AmrHierarchy {
 public:
  /// Tag coarse cells with `tag`, cluster them into boxes, refine each box
  /// by `ratio` (cell-wise), and grow fine boxes by `nesting_buffer`
  /// coarse cells (clipped to the domain) so features stay properly
  /// nested after one advance.
  AmrHierarchy(const StructuredMesh& coarse,
               const std::function<bool(CellId)>& tag, int ratio = 2,
               double min_efficiency = 0.7, int nesting_buffer = 1);

  [[nodiscard]] const StructuredMesh& coarse() const { return coarse_; }
  [[nodiscard]] int ratio() const { return ratio_; }

  /// Refined boxes in *fine* index space (disjoint).
  [[nodiscard]] const std::vector<Box>& fine_boxes() const {
    return fine_boxes_;
  }
  /// The same boxes in coarse index space.
  [[nodiscard]] const std::vector<Box>& coarse_boxes() const {
    return coarse_boxes_;
  }

  /// Total fine cells across all boxes.
  [[nodiscard]] std::int64_t fine_cells() const { return fine_cells_; }
  /// Coarse cells not covered by any refined box.
  [[nodiscard]] std::int64_t uncovered_coarse_cells() const {
    return uncovered_coarse_;
  }
  /// Composite cell count: uncovered coarse + fine.
  [[nodiscard]] std::int64_t composite_cells() const {
    return uncovered_coarse_ + fine_cells_;
  }

  /// Whether a coarse cell is covered by a refined box.
  [[nodiscard]] bool is_refined(CellId coarse_cell) const;

  /// Materialize one refined box as a standalone mesh (geometry aligned
  /// with the coarse mesh, materials injected from the coarse parent).
  [[nodiscard]] StructuredMesh box_mesh(std::size_t box_index) const;

 private:
  const StructuredMesh& coarse_;
  int ratio_;
  std::vector<Box> coarse_boxes_;
  std::vector<Box> fine_boxes_;
  std::vector<char> refined_;  ///< per coarse cell
  std::int64_t fine_cells_ = 0;
  std::int64_t uncovered_coarse_ = 0;
};

}  // namespace jsweep::mesh
