#include "mesh/amr.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace jsweep::mesh {

namespace {

struct TagView {
  Index3 dims;
  const std::vector<char>* tags;

  [[nodiscard]] bool at(int i, int j, int k) const {
    return (*tags)[static_cast<std::size_t>(
               i + static_cast<std::int64_t>(dims.i) *
                       (j + static_cast<std::int64_t>(dims.j) * k))] != 0;
  }
};

/// Tight bounding box of the tagged cells inside `box`; empty box (zero
/// volume) when none are tagged.
Box shrink_to_tags(const TagView& view, const Box& box) {
  Box tight{{box.hi.i, box.hi.j, box.hi.k}, {box.lo.i, box.lo.j, box.lo.k}};
  bool any = false;
  for (int k = box.lo.k; k < box.hi.k; ++k) {
    for (int j = box.lo.j; j < box.hi.j; ++j) {
      for (int i = box.lo.i; i < box.hi.i; ++i) {
        if (!view.at(i, j, k)) continue;
        any = true;
        tight.lo = {std::min(tight.lo.i, i), std::min(tight.lo.j, j),
                    std::min(tight.lo.k, k)};
        tight.hi = {std::max(tight.hi.i, i + 1), std::max(tight.hi.j, j + 1),
                    std::max(tight.hi.k, k + 1)};
      }
    }
  }
  if (!any) return Box{{0, 0, 0}, {0, 0, 0}};
  return tight;
}

std::int64_t count_tags(const TagView& view, const Box& box) {
  std::int64_t count = 0;
  for (int k = box.lo.k; k < box.hi.k; ++k)
    for (int j = box.lo.j; j < box.hi.j; ++j)
      for (int i = box.lo.i; i < box.hi.i; ++i)
        count += view.at(i, j, k) ? 1 : 0;
  return count;
}

/// Tag histogram ("signature") along one axis of a box.
std::vector<std::int64_t> signature(const TagView& view, const Box& box,
                                    int axis) {
  const int lo = axis == 0 ? box.lo.i : axis == 1 ? box.lo.j : box.lo.k;
  const int hi = axis == 0 ? box.hi.i : axis == 1 ? box.hi.j : box.hi.k;
  std::vector<std::int64_t> sig(static_cast<std::size_t>(hi - lo), 0);
  for (int k = box.lo.k; k < box.hi.k; ++k)
    for (int j = box.lo.j; j < box.hi.j; ++j)
      for (int i = box.lo.i; i < box.hi.i; ++i) {
        if (!view.at(i, j, k)) continue;
        const int x = axis == 0 ? i : axis == 1 ? j : k;
        ++sig[static_cast<std::size_t>(x - lo)];
      }
  return sig;
}

/// Choose a split plane index (relative offset in [min_w, len - min_w]) or
/// -1 if the box should not be split along this axis.
int choose_cut(const std::vector<std::int64_t>& sig, int min_w) {
  const int len = static_cast<int>(sig.size());
  if (len < 2 * min_w) return -1;
  // 1. A zero in the signature is a free cut.
  for (int x = min_w; x <= len - min_w; ++x)
    if (sig[static_cast<std::size_t>(x - 1)] == 0 ||
        sig[static_cast<std::size_t>(x)] == 0)
      return x;
  // 2. Strongest sign change of the discrete Laplacian.
  int best = -1;
  std::int64_t best_mag = 0;
  for (int x = std::max(min_w, 2); x <= std::min(len - min_w, len - 2);
       ++x) {
    const std::int64_t d1 = sig[static_cast<std::size_t>(x - 2)] -
                            2 * sig[static_cast<std::size_t>(x - 1)] +
                            sig[static_cast<std::size_t>(x)];
    const std::int64_t d2 = sig[static_cast<std::size_t>(x - 1)] -
                            2 * sig[static_cast<std::size_t>(x)] +
                            sig[static_cast<std::size_t>(
                                std::min(len - 1, x + 1))];
    if ((d1 < 0) != (d2 < 0)) {
      const std::int64_t mag = std::abs(d1 - d2);
      if (mag > best_mag) {
        best_mag = mag;
        best = x;
      }
    }
  }
  if (best >= 0) return best;
  // 3. Midpoint.
  return len / 2;
}

}  // namespace

std::vector<Box> cluster_tagged_cells(Index3 dims,
                                      const std::vector<char>& tags,
                                      double min_efficiency,
                                      int min_box_width) {
  JSWEEP_CHECK(static_cast<std::int64_t>(tags.size()) ==
               static_cast<std::int64_t>(dims.i) * dims.j * dims.k);
  JSWEEP_CHECK(min_efficiency > 0.0 && min_efficiency <= 1.0);
  JSWEEP_CHECK(min_box_width >= 1);
  const TagView view{dims, &tags};

  std::vector<Box> accepted;
  std::deque<Box> queue;
  {
    const Box whole = shrink_to_tags(view, {{0, 0, 0}, dims});
    if (whole.volume() == 0) return accepted;  // nothing tagged
    queue.push_back(whole);
  }

  while (!queue.empty()) {
    Box box = queue.front();
    queue.pop_front();
    box = shrink_to_tags(view, box);
    if (box.volume() == 0) continue;
    const std::int64_t tagged = count_tags(view, box);
    const double efficiency =
        static_cast<double>(tagged) / static_cast<double>(box.volume());
    const Index3 ext{box.hi.i - box.lo.i, box.hi.j - box.lo.j,
                     box.hi.k - box.lo.k};
    const bool splittable = ext.i >= 2 * min_box_width ||
                            ext.j >= 2 * min_box_width ||
                            ext.k >= 2 * min_box_width;
    if (efficiency >= min_efficiency || !splittable) {
      accepted.push_back(box);
      continue;
    }
    // Split along the longest splittable axis at the chosen cut.
    int axis = 0;
    int best_len = 0;
    for (int a = 0; a < 3; ++a) {
      const int len = a == 0 ? ext.i : a == 1 ? ext.j : ext.k;
      if (len >= 2 * min_box_width && len > best_len) {
        best_len = len;
        axis = a;
      }
    }
    const auto sig = signature(view, box, axis);
    const int cut = choose_cut(sig, min_box_width);
    JSWEEP_ASSERT(cut > 0);
    Box left = box;
    Box right = box;
    switch (axis) {
      case 0:
        left.hi.i = box.lo.i + cut;
        right.lo.i = box.lo.i + cut;
        break;
      case 1:
        left.hi.j = box.lo.j + cut;
        right.lo.j = box.lo.j + cut;
        break;
      default:
        left.hi.k = box.lo.k + cut;
        right.lo.k = box.lo.k + cut;
        break;
    }
    queue.push_back(left);
    queue.push_back(right);
  }
  return accepted;
}

AmrHierarchy::AmrHierarchy(const StructuredMesh& coarse,
                           const std::function<bool(CellId)>& tag, int ratio,
                           double min_efficiency, int nesting_buffer)
    : coarse_(coarse), ratio_(ratio) {
  JSWEEP_CHECK(ratio >= 2);
  JSWEEP_CHECK(nesting_buffer >= 0);
  const Index3 d = coarse.dims();

  std::vector<char> tags(static_cast<std::size_t>(coarse.num_cells()), 0);
  for (std::int64_t c = 0; c < coarse.num_cells(); ++c)
    tags[static_cast<std::size_t>(c)] = tag(CellId{c}) ? 1 : 0;

  // Grow tags by the nesting buffer, then cluster once: grown boxes stay
  // disjoint because clustering happens after the growth.
  if (nesting_buffer > 0) {
    std::vector<char> grown = tags;
    for (std::int64_t c = 0; c < coarse.num_cells(); ++c) {
      if (!tags[static_cast<std::size_t>(c)]) continue;
      const Index3 p = coarse.index_of(CellId{c});
      for (int dk = -nesting_buffer; dk <= nesting_buffer; ++dk)
        for (int dj = -nesting_buffer; dj <= nesting_buffer; ++dj)
          for (int di = -nesting_buffer; di <= nesting_buffer; ++di) {
            const Index3 q{p.i + di, p.j + dj, p.k + dk};
            if (coarse.box().contains(q))
              grown[static_cast<std::size_t>(
                  coarse.cell_at(q).value())] = 1;
          }
    }
    tags.swap(grown);
  }

  coarse_boxes_ = cluster_tagged_cells(d, tags, min_efficiency);

  refined_.assign(static_cast<std::size_t>(coarse.num_cells()), 0);
  for (const auto& box : coarse_boxes_) {
    for (int k = box.lo.k; k < box.hi.k; ++k)
      for (int j = box.lo.j; j < box.hi.j; ++j)
        for (int i = box.lo.i; i < box.hi.i; ++i)
          refined_[static_cast<std::size_t>(
              coarse.cell_at({i, j, k}).value())] = 1;
    fine_boxes_.push_back(
        {{box.lo.i * ratio, box.lo.j * ratio, box.lo.k * ratio},
         {box.hi.i * ratio, box.hi.j * ratio, box.hi.k * ratio}});
    fine_cells_ += fine_boxes_.back().volume();
  }
  for (const auto r : refined_) uncovered_coarse_ += r ? 0 : 1;
}

bool AmrHierarchy::is_refined(CellId coarse_cell) const {
  return refined_[static_cast<std::size_t>(coarse_cell.value())] != 0;
}

StructuredMesh AmrHierarchy::box_mesh(std::size_t box_index) const {
  JSWEEP_CHECK(box_index < fine_boxes_.size());
  const Box& fine = fine_boxes_[box_index];
  const Box& coarse_box = coarse_boxes_[box_index];
  const Vec3 h = coarse_.spacing() / static_cast<double>(ratio_);
  const Vec3 origin{
      coarse_.origin().x + coarse_box.lo.i * coarse_.spacing().x,
      coarse_.origin().y + coarse_box.lo.j * coarse_.spacing().y,
      coarse_.origin().z + coarse_box.lo.k * coarse_.spacing().z};
  StructuredMesh mesh({fine.hi.i - fine.lo.i, fine.hi.j - fine.lo.j,
                       fine.hi.k - fine.lo.k},
                      h, origin);
  if (!coarse_.materials().empty()) {
    std::vector<int> mats(static_cast<std::size_t>(mesh.num_cells()));
    for (std::int64_t c = 0; c < mesh.num_cells(); ++c) {
      const Index3 p = mesh.index_of(CellId{c});
      const CellId parent = coarse_.cell_at({coarse_box.lo.i + p.i / ratio_,
                                             coarse_box.lo.j + p.j / ratio_,
                                             coarse_box.lo.k + p.k / ratio_});
      mats[static_cast<std::size_t>(c)] = coarse_.material(parent);
    }
    mesh.set_materials(std::move(mats));
  }
  return mesh;
}

}  // namespace jsweep::mesh
