#pragma once

/// \file refine.hpp
/// Uniform refinement, the paper's "normal approximate refinement method"
/// used to grow meshes for the weak-scaling study (Fig. 15).

#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"

namespace jsweep::mesh {

/// Split every cell into 8: doubled dims, halved spacing; child cells
/// inherit the parent's material.
StructuredMesh refine_uniform(const StructuredMesh& m);

/// Bey red refinement: every tet splits into 4 corner tets plus an inner
/// octahedron split into 4 along a fixed diagonal. Midpoint nodes are
/// deduplicated globally, so the refined mesh is conforming. Children
/// inherit the parent's material; total volume is preserved exactly
/// (up to floating-point roundoff).
TetMesh refine_uniform(const TetMesh& m);

}  // namespace jsweep::mesh
