#pragma once

/// \file tet_mesh.hpp
/// Unstructured tetrahedral mesh (the JAUMIN-side substrate).
///
/// The mesh stores nodes, tets (4 node ids each, positively oriented) and a
/// derived face table: every triangular face appears once, with an `owner`
/// cell and either a `neighbor` cell (interior face) or none (boundary
/// face). Face area vectors are stored oriented outward from the owner, so
/// upwind/downwind classification against a sweep direction is a single dot
/// product.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mesh/geometry.hpp"
#include "support/check.hpp"
#include "support/ids.hpp"

namespace jsweep::mesh {

struct TetFace {
  std::array<std::int32_t, 3> nodes{};  ///< node ids (unordered triple)
  std::int64_t owner = -1;              ///< cell owning the stored normal
  std::int64_t neighbor = -1;           ///< adjacent cell, or -1 at boundary
  Vec3 area_vec;                        ///< outward from owner; |v| = area

  [[nodiscard]] bool is_boundary() const { return neighbor < 0; }
};

class TetMesh {
 public:
  /// Build from node coordinates and tet connectivity. Tets with negative
  /// volume are reoriented (two nodes swapped); degenerate tets are
  /// rejected.
  TetMesh(std::vector<Vec3> nodes,
          std::vector<std::array<std::int32_t, 4>> tets);

  [[nodiscard]] std::int64_t num_cells() const {
    return static_cast<std::int64_t>(tets_.size());
  }
  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes_.size());
  }
  [[nodiscard]] std::int64_t num_faces() const {
    return static_cast<std::int64_t>(faces_.size());
  }

  [[nodiscard]] const std::vector<Vec3>& nodes() const { return nodes_; }
  [[nodiscard]] const std::array<std::int32_t, 4>& tet(CellId c) const {
    return tets_[static_cast<std::size_t>(c.value())];
  }

  [[nodiscard]] const TetFace& face(std::int64_t f) const {
    return faces_[static_cast<std::size_t>(f)];
  }
  /// The four face indices of a cell.
  [[nodiscard]] const std::array<std::int64_t, 4>& cell_faces(CellId c) const {
    return cell_faces_[static_cast<std::size_t>(c.value())];
  }

  /// Area vector of face `f` oriented outward from cell `c` (which must be
  /// the face's owner or neighbor).
  [[nodiscard]] Vec3 outward_area(std::int64_t f, CellId c) const {
    const TetFace& face = faces_[static_cast<std::size_t>(f)];
    JSWEEP_ASSERT(face.owner == c.value() || face.neighbor == c.value());
    return face.owner == c.value() ? face.area_vec : -face.area_vec;
  }

  /// The cell on the other side of face `f` from `c`, or invalid at the
  /// domain boundary.
  [[nodiscard]] CellId across(std::int64_t f, CellId c) const {
    const TetFace& face = faces_[static_cast<std::size_t>(f)];
    const std::int64_t other =
        face.owner == c.value() ? face.neighbor : face.owner;
    return other >= 0 ? CellId{other} : CellId::invalid();
  }

  [[nodiscard]] double cell_volume(CellId c) const {
    return volumes_[static_cast<std::size_t>(c.value())];
  }
  [[nodiscard]] Vec3 cell_centroid(CellId c) const {
    return centroids_[static_cast<std::size_t>(c.value())];
  }

  [[nodiscard]] int material(CellId c) const {
    return materials_.empty()
               ? 0
               : materials_[static_cast<std::size_t>(c.value())];
  }
  void set_materials(std::vector<int> m);
  [[nodiscard]] const std::vector<int>& materials() const { return materials_; }

  [[nodiscard]] double total_volume() const { return total_volume_; }

  /// Structural validation: interior faces shared by exactly two cells,
  /// positive volumes, closed per-cell surface (sum of outward area vectors
  /// ≈ 0). Returns an empty string when valid, else a diagnostic.
  [[nodiscard]] std::string validate() const;

 private:
  void build_faces();

  std::vector<Vec3> nodes_;
  std::vector<std::array<std::int32_t, 4>> tets_;
  std::vector<TetFace> faces_;
  std::vector<std::array<std::int64_t, 4>> cell_faces_;
  std::vector<double> volumes_;
  std::vector<Vec3> centroids_;
  std::vector<int> materials_;
  double total_volume_ = 0.0;
};

}  // namespace jsweep::mesh
