#include "mesh/refine.hpp"

#include <unordered_map>

namespace jsweep::mesh {

StructuredMesh refine_uniform(const StructuredMesh& m) {
  const Index3 d = m.dims();
  StructuredMesh fine({d.i * 2, d.j * 2, d.k * 2}, m.spacing() / 2.0,
                      m.origin());
  if (!m.materials().empty()) {
    std::vector<int> mats(static_cast<std::size_t>(fine.num_cells()));
    for (std::int64_t c = 0; c < fine.num_cells(); ++c) {
      const Index3 p = fine.index_of(CellId{c});
      const CellId parent = m.cell_at({p.i / 2, p.j / 2, p.k / 2});
      mats[static_cast<std::size_t>(c)] = m.material(parent);
    }
    fine.set_materials(std::move(mats));
  }
  return fine;
}

TetMesh refine_uniform(const TetMesh& m) {
  std::vector<Vec3> nodes = m.nodes();
  std::vector<std::array<std::int32_t, 4>> tets;
  std::vector<int> mats;
  tets.reserve(static_cast<std::size_t>(m.num_cells()) * 8);
  mats.reserve(static_cast<std::size_t>(m.num_cells()) * 8);

  // Global edge-midpoint table keyed by the sorted endpoint pair; shared
  // edges resolve to the same midpoint node, keeping the mesh conforming.
  std::unordered_map<std::uint64_t, std::int32_t> midpoints;
  const auto midpoint = [&](std::int32_t a, std::int32_t b) -> std::int32_t {
    if (a > b) std::swap(a, b);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
        static_cast<std::uint32_t>(b);
    auto it = midpoints.find(key);
    if (it != midpoints.end()) return it->second;
    const auto id = static_cast<std::int32_t>(nodes.size());
    nodes.push_back((nodes[static_cast<std::size_t>(a)] +
                     nodes[static_cast<std::size_t>(b)]) /
                    2.0);
    midpoints.emplace(key, id);
    return id;
  };

  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const auto& t = m.tet(CellId{c});
    const std::int32_t v0 = t[0], v1 = t[1], v2 = t[2], v3 = t[3];
    const std::int32_t m01 = midpoint(v0, v1);
    const std::int32_t m02 = midpoint(v0, v2);
    const std::int32_t m03 = midpoint(v0, v3);
    const std::int32_t m12 = midpoint(v1, v2);
    const std::int32_t m13 = midpoint(v1, v3);
    const std::int32_t m23 = midpoint(v2, v3);

    const std::array<std::array<std::int32_t, 4>, 8> children = {{
        // Four corner tets.
        {v0, m01, m02, m03},
        {v1, m01, m12, m13},
        {v2, m02, m12, m23},
        {v3, m03, m13, m23},
        // Inner octahedron split along the (m02, m13) diagonal.
        {m02, m13, m01, m03},
        {m02, m13, m03, m23},
        {m02, m13, m23, m12},
        {m02, m13, m12, m01},
    }};
    const int mat = m.material(CellId{c});
    for (const auto& child : children) {
      tets.push_back(child);
      mats.push_back(mat);
    }
  }

  TetMesh fine(std::move(nodes), std::move(tets));
  fine.set_materials(std::move(mats));
  return fine;
}

}  // namespace jsweep::mesh
