#pragma once

/// \file graph_partition.hpp
/// Graph partitioner for unstructured meshes — the repository's METIS/Chaco
/// substitute. Greedy graph growing (Farhat-style) produces the initial
/// parts; a boundary Fiduccia–Mattheyses pass reduces the edge cut while
/// holding balance within tolerance.

#include <cstdint>
#include <vector>

#include "partition/adjacency.hpp"
#include "support/rng.hpp"

namespace jsweep::partition {

struct GraphPartitionOptions {
  /// Allowed max-part size as a multiple of the mean (1.05 = 5% slack).
  double balance_tolerance = 1.05;
  /// Boundary-refinement sweeps after growing.
  int refinement_passes = 4;
  /// Seed for tie-breaking; fixed seed → deterministic partition.
  std::uint64_t seed = 1234;
};

/// Partition `g` into `nparts` parts. Returns part id per vertex.
/// Parts are grown one at a time from a far-apart seed vertex; refinement
/// moves boundary vertices to the neighboring part with the largest gain
/// subject to the balance constraint.
std::vector<std::int32_t> partition_graph(const CsrGraph& g, int nparts,
                                          const GraphPartitionOptions& opts = {});

}  // namespace jsweep::partition
