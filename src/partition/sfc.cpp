#include "partition/sfc.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "support/check.hpp"

namespace jsweep::partition {

namespace {

/// Spread the low 21 bits of v so they occupy every third bit.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | v << 32) & 0x1f00000000ffffULL;
  v = (v | v << 16) & 0x1f0000ff0000ffULL;
  v = (v | v << 8) & 0x100f00f00f00f00fULL;
  v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
  v = (v | v << 2) & 0x1249249249249249ULL;
  return v;
}

}  // namespace

std::uint64_t morton3(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  JSWEEP_CHECK(x < (1u << 21) && y < (1u << 21) && z < (1u << 21));
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

std::uint64_t hilbert3(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                       int bits) {
  JSWEEP_CHECK(bits > 0 && bits <= 21);
  JSWEEP_CHECK(x < (1u << bits) && y < (1u << bits) && z < (1u << bits));

  // Skilling's AxestoTranspose, 3 axes.
  std::array<std::uint32_t, 3> X{x, y, z};
  const std::uint32_t M = 1u << (bits - 1);

  // Inverse undo excess work.
  for (std::uint32_t Q = M; Q > 1; Q >>= 1) {
    const std::uint32_t P = Q - 1;
    for (int i = 0; i < 3; ++i) {
      if (X[static_cast<std::size_t>(i)] & Q) {
        X[0] ^= P;  // invert
      } else {
        const std::uint32_t t = (X[0] ^ X[static_cast<std::size_t>(i)]) & P;
        X[0] ^= t;
        X[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < 3; ++i)
    X[static_cast<std::size_t>(i)] ^= X[static_cast<std::size_t>(i) - 1];
  std::uint32_t t = 0;
  for (std::uint32_t Q = M; Q > 1; Q >>= 1)
    if (X[2] & Q) t ^= Q - 1;
  for (auto& v : X) v ^= t;

  // Interleave the transposed bits into a single index: bit b of axis a
  // lands at position 3*b + (2 - a).
  std::uint64_t h = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int a = 0; a < 3; ++a) {
      h <<= 1;
      h |= (X[static_cast<std::size_t>(a)] >> b) & 1u;
    }
  }
  return h;
}

std::vector<std::int64_t> sfc_order(mesh::Index3 dims, Curve curve) {
  JSWEEP_CHECK(dims.i > 0 && dims.j > 0 && dims.k > 0);
  const std::int64_t n =
      static_cast<std::int64_t>(dims.i) * dims.j * dims.k;
  const int max_dim = std::max({dims.i, dims.j, dims.k});
  const int bits = std::max(
      1, static_cast<int>(std::bit_width(static_cast<unsigned>(max_dim - 1))));

  std::vector<std::pair<std::uint64_t, std::int64_t>> keyed(
      static_cast<std::size_t>(n));
  std::int64_t idx = 0;
  for (int z = 0; z < dims.k; ++z) {
    for (int y = 0; y < dims.j; ++y) {
      for (int x = 0; x < dims.i; ++x, ++idx) {
        const std::uint64_t key =
            curve == Curve::Morton
                ? morton3(static_cast<std::uint32_t>(x),
                          static_cast<std::uint32_t>(y),
                          static_cast<std::uint32_t>(z))
                : hilbert3(static_cast<std::uint32_t>(x),
                           static_cast<std::uint32_t>(y),
                           static_cast<std::uint32_t>(z), bits);
        keyed[static_cast<std::size_t>(idx)] = {key, idx};
      }
    }
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    order[static_cast<std::size_t>(i)] = keyed[static_cast<std::size_t>(i)].second;
  return order;
}

std::vector<std::int32_t> partition_sfc(mesh::Index3 dims, int nparts,
                                        Curve curve) {
  JSWEEP_CHECK(nparts > 0);
  const auto order = sfc_order(dims, curve);
  const auto n = static_cast<std::int64_t>(order.size());
  std::vector<std::int32_t> part(order.size());
  for (std::int64_t i = 0; i < n; ++i) {
    // Chunk boundaries at floor(i * nparts / n) keep sizes within one.
    const auto p = static_cast<std::int32_t>((i * nparts) / n);
    part[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = p;
  }
  return part;
}

}  // namespace jsweep::partition
