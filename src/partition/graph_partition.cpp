#include "partition/graph_partition.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "support/check.hpp"

namespace jsweep::partition {

namespace {

/// BFS from `start`, returning the last vertex reached within `allowed`
/// (part == -1) vertices — an approximation of the most distant free
/// vertex, used to place the next part's seed far from existing parts.
std::int64_t far_free_vertex(const CsrGraph& g,
                             const std::vector<std::int32_t>& part,
                             std::int64_t start) {
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  std::deque<std::int64_t> queue{start};
  seen[static_cast<std::size_t>(start)] = 1;
  std::int64_t last = start;
  while (!queue.empty()) {
    const auto v = queue.front();
    queue.pop_front();
    last = v;
    g.for_neighbors(v, [&](std::int64_t u) {
      if (!seen[static_cast<std::size_t>(u)] &&
          part[static_cast<std::size_t>(u)] < 0) {
        seen[static_cast<std::size_t>(u)] = 1;
        queue.push_back(u);
      }
    });
  }
  return last;
}

}  // namespace

std::vector<std::int32_t> partition_graph(const CsrGraph& g, int nparts,
                                          const GraphPartitionOptions& opts) {
  const std::int64_t n = g.num_vertices();
  JSWEEP_CHECK_MSG(nparts > 0 && nparts <= n,
                   "nparts=" << nparts << " vertices=" << n);
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), -1);
  if (nparts == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  Rng rng(opts.seed);

  // --- Phase 1: greedy graph growing -------------------------------------
  std::int64_t assigned = 0;
  std::int64_t seed_hint = static_cast<std::int64_t>(rng.below(
      static_cast<std::uint64_t>(n)));
  for (std::int32_t p = 0; p < nparts; ++p) {
    // Remaining parts share the remaining vertices evenly.
    const std::int64_t quota =
        (n - assigned + (nparts - p) - 1) / (nparts - p);
    // Find a free seed: far from already-assigned regions.
    std::int64_t seed = -1;
    if (part[static_cast<std::size_t>(seed_hint)] < 0) {
      seed = far_free_vertex(g, part, seed_hint);
    } else {
      for (std::int64_t v = 0; v < n; ++v)
        if (part[static_cast<std::size_t>(v)] < 0) {
          seed = far_free_vertex(g, part, v);
          break;
        }
    }
    JSWEEP_CHECK(seed >= 0);

    // Grow a connected region by BFS until the quota is met. Disconnected
    // leftovers are handled by restarting from any free vertex.
    std::int64_t grown = 0;
    std::deque<std::int64_t> queue{seed};
    part[static_cast<std::size_t>(seed)] = p;
    while (grown < quota) {
      if (queue.empty()) {
        std::int64_t free_v = -1;
        for (std::int64_t v = 0; v < n; ++v)
          if (part[static_cast<std::size_t>(v)] < 0) {
            free_v = v;
            break;
          }
        if (free_v < 0) break;
        part[static_cast<std::size_t>(free_v)] = p;
        queue.push_back(free_v);
      }
      const auto v = queue.front();
      queue.pop_front();
      ++grown;
      seed_hint = v;
      g.for_neighbors(v, [&](std::int64_t u) {
        if (part[static_cast<std::size_t>(u)] < 0 && grown < quota) {
          // Claim on enqueue so quota is respected exactly.
          part[static_cast<std::size_t>(u)] = p;
          queue.push_back(u);
        }
      });
      if (static_cast<std::int64_t>(queue.size()) + grown >= quota &&
          grown < quota) {
        // Drain the claimed frontier without expanding further.
        while (!queue.empty() && grown < quota) {
          queue.pop_front();
          ++grown;
        }
        break;
      }
    }
    assigned += grown;
  }
  // Any stragglers (possible with disconnected graphs) go to the smallest
  // part.
  auto sizes = part_sizes(
      [&] {
        std::vector<std::int32_t> tmp = part;
        for (auto& x : tmp)
          if (x < 0) x = 0;
        return tmp;
      }(),
      nparts);
  for (std::int64_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] < 0) {
      const auto smallest = static_cast<std::int32_t>(std::distance(
          sizes.begin(), std::min_element(sizes.begin(), sizes.end())));
      part[static_cast<std::size_t>(v)] = smallest;
      ++sizes[static_cast<std::size_t>(smallest)];
    }
  }

  // --- Phase 2: boundary FM refinement ------------------------------------
  sizes = part_sizes(part, nparts);
  const double max_allowed = opts.balance_tolerance *
                             static_cast<double>(n) /
                             static_cast<double>(nparts);
  for (int pass = 0; pass < opts.refinement_passes; ++pass) {
    std::int64_t moves = 0;
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int32_t from = part[static_cast<std::size_t>(v)];
      // Count adjacency per neighboring part.
      std::int64_t same = 0;
      std::int32_t best_part = from;
      std::int64_t best_links = -1;
      // Few distinct neighbor parts per vertex: linear scan of neighbors.
      std::array<std::pair<std::int32_t, std::int64_t>, 8> local{};
      std::size_t local_n = 0;
      g.for_neighbors(v, [&](std::int64_t u) {
        const std::int32_t pu = part[static_cast<std::size_t>(u)];
        if (pu == from) {
          ++same;
          return;
        }
        for (std::size_t i = 0; i < local_n; ++i) {
          if (local[i].first == pu) {
            ++local[i].second;
            return;
          }
        }
        if (local_n < local.size()) local[local_n++] = {pu, 1};
      });
      for (std::size_t i = 0; i < local_n; ++i) {
        if (local[i].second > best_links) {
          best_links = local[i].second;
          best_part = local[i].first;
        }
      }
      if (best_part == from) continue;
      const std::int64_t gain = best_links - same;
      const bool balance_ok =
          static_cast<double>(sizes[static_cast<std::size_t>(best_part)] + 1) <=
              max_allowed &&
          sizes[static_cast<std::size_t>(from)] > 1;
      if (gain > 0 && balance_ok) {
        part[static_cast<std::size_t>(v)] = best_part;
        --sizes[static_cast<std::size_t>(from)];
        ++sizes[static_cast<std::size_t>(best_part)];
        ++moves;
      }
    }
    if (moves == 0) break;
  }
  return part;
}

}  // namespace jsweep::partition
