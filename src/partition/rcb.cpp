#include "partition/rcb.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace jsweep::partition {

namespace {

struct RcbFrame {
  std::int64_t begin;
  std::int64_t end;
  std::int32_t first_part;
  std::int32_t nparts;
};

double axis_value(const mesh::Vec3& v, int axis) {
  switch (axis) {
    case 0: return v.x;
    case 1: return v.y;
    default: return v.z;
  }
}

}  // namespace

std::vector<std::int32_t> partition_rcb(
    const std::vector<mesh::Vec3>& centroids, int nparts) {
  const auto n = static_cast<std::int64_t>(centroids.size());
  JSWEEP_CHECK(nparts > 0 && n >= nparts);
  std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), 0);

  std::vector<RcbFrame> stack{{0, n, 0, nparts}};
  while (!stack.empty()) {
    const RcbFrame f = stack.back();
    stack.pop_back();
    if (f.nparts == 1) {
      for (std::int64_t i = f.begin; i < f.end; ++i)
        part[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] =
            f.first_part;
      continue;
    }
    // Split part count as evenly as possible; cell counts proportionally.
    const std::int32_t left_parts = f.nparts / 2;
    const std::int32_t right_parts = f.nparts - left_parts;
    const std::int64_t count = f.end - f.begin;
    const std::int64_t left_count = count * left_parts / f.nparts;

    // Longest axis of the bounding box.
    mesh::Vec3 lo = centroids[static_cast<std::size_t>(
        ids[static_cast<std::size_t>(f.begin)])];
    mesh::Vec3 hi = lo;
    for (std::int64_t i = f.begin; i < f.end; ++i) {
      const auto& c =
          centroids[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])];
      lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
      hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
    }
    const mesh::Vec3 ext = hi - lo;
    int axis = 0;
    if (ext.y > ext.x) axis = 1;
    if (ext.z > axis_value(ext, axis)) axis = 2;

    auto mid = ids.begin() + f.begin + left_count;
    std::nth_element(ids.begin() + f.begin, mid, ids.begin() + f.end,
                     [&](std::int64_t a, std::int64_t b) {
                       return axis_value(centroids[static_cast<std::size_t>(a)],
                                         axis) <
                              axis_value(centroids[static_cast<std::size_t>(b)],
                                         axis);
                     });
    stack.push_back({f.begin, f.begin + left_count, f.first_part, left_parts});
    stack.push_back(
        {f.begin + left_count, f.end, f.first_part + left_parts, right_parts});
  }
  return part;
}

}  // namespace jsweep::partition
