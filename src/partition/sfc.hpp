#pragma once

/// \file sfc.hpp
/// Space-filling-curve orderings for structured patch distribution
/// (the paper's "Morton and Hilbert space filling curves for structured
/// meshes", Sec. V-A).

#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"

namespace jsweep::partition {

enum class Curve { Morton, Hilbert };

/// Morton (Z-order) code of a lattice point; coordinates up to 2^21.
std::uint64_t morton3(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Hilbert-curve index of a lattice point using `bits` bits per axis
/// (Skilling's transpose algorithm). Coordinates must be < 2^bits.
std::uint64_t hilbert3(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                       int bits);

/// Permutation of the `dims` lattice that visits points in curve order.
/// Entry i of the result is the linear index (x + dims.i*(y + dims.j*z)) of
/// the i-th point along the curve.
std::vector<std::int64_t> sfc_order(mesh::Index3 dims, Curve curve);

/// Chop a curve ordering into `nparts` near-equal contiguous chunks:
/// result[linear_index] = part. The standard SFC partitioning.
std::vector<std::int32_t> partition_sfc(mesh::Index3 dims, int nparts,
                                        Curve curve);

}  // namespace jsweep::partition
