#include "partition/adjacency.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace jsweep::partition {

CsrGraph cell_graph(const mesh::TetMesh& m) {
  const auto n = m.num_cells();
  CsrGraph g;
  g.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t c = 0; c < n; ++c) {
    for (const auto f : m.cell_faces(CellId{c})) {
      if (m.across(f, CellId{c}).valid())
        ++g.offsets[static_cast<std::size_t>(c) + 1];
    }
  }
  for (std::size_t i = 1; i < g.offsets.size(); ++i)
    g.offsets[i] += g.offsets[i - 1];
  g.neighbors.resize(static_cast<std::size_t>(g.offsets.back()));
  std::vector<std::int64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (std::int64_t c = 0; c < n; ++c) {
    for (const auto f : m.cell_faces(CellId{c})) {
      const CellId other = m.across(f, CellId{c});
      if (other.valid())
        g.neighbors[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(c)]++)] = other.value();
    }
  }
  return g;
}

CsrGraph cell_graph(const mesh::StructuredMesh& m) {
  const auto n = m.num_cells();
  CsrGraph g;
  g.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t c = 0; c < n; ++c) {
    for (int d = 0; d < 6; ++d)
      if (m.neighbor(CellId{c}, static_cast<mesh::FaceDir>(d)))
        ++g.offsets[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t i = 1; i < g.offsets.size(); ++i)
    g.offsets[i] += g.offsets[i - 1];
  g.neighbors.resize(static_cast<std::size_t>(g.offsets.back()));
  std::vector<std::int64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (std::int64_t c = 0; c < n; ++c) {
    for (int d = 0; d < 6; ++d) {
      const auto nb = m.neighbor(CellId{c}, static_cast<mesh::FaceDir>(d));
      if (nb)
        g.neighbors[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(c)]++)] = nb->value();
    }
  }
  return g;
}

std::vector<mesh::Vec3> cell_centroids(const mesh::TetMesh& m) {
  std::vector<mesh::Vec3> c(static_cast<std::size_t>(m.num_cells()));
  for (std::int64_t i = 0; i < m.num_cells(); ++i)
    c[static_cast<std::size_t>(i)] = m.cell_centroid(CellId{i});
  return c;
}

std::vector<mesh::Vec3> cell_centroids(const mesh::StructuredMesh& m) {
  std::vector<mesh::Vec3> c(static_cast<std::size_t>(m.num_cells()));
  for (std::int64_t i = 0; i < m.num_cells(); ++i)
    c[static_cast<std::size_t>(i)] = m.cell_center(CellId{i});
  return c;
}

std::int64_t edge_cut(const CsrGraph& g,
                      const std::vector<std::int32_t>& part) {
  JSWEEP_CHECK(static_cast<std::int64_t>(part.size()) == g.num_vertices());
  std::int64_t cut = 0;
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    g.for_neighbors(v, [&](std::int64_t u) {
      if (u > v && part[static_cast<std::size_t>(u)] !=
                       part[static_cast<std::size_t>(v)])
        ++cut;
    });
  }
  return cut;
}

std::vector<std::int64_t> part_sizes(const std::vector<std::int32_t>& part,
                                     int nparts) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(nparts), 0);
  for (const auto p : part) {
    JSWEEP_CHECK(p >= 0 && p < nparts);
    ++sizes[static_cast<std::size_t>(p)];
  }
  return sizes;
}

double imbalance(const std::vector<std::int32_t>& part, int nparts) {
  const auto sizes = part_sizes(part, nparts);
  const auto max_size = *std::max_element(sizes.begin(), sizes.end());
  const double mean =
      static_cast<double>(part.size()) / static_cast<double>(nparts);
  return mean > 0 ? static_cast<double>(max_size) / mean : 0.0;
}

}  // namespace jsweep::partition
