#pragma once

/// \file block_layout.hpp
/// Regular block decomposition of a structured mesh into patches — the
/// JASMIN-style "patch size = 20×20×20" layout used throughout the paper's
/// structured experiments. Patch extents are implicit boxes, so the layout
/// scales to Kobayashi-800 (512M cells) without materializing cell lists.

#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"
#include "support/ids.hpp"

namespace jsweep::partition {

class StructuredBlockLayout {
 public:
  /// Decompose a `mesh_dims` mesh into patches of (at most) `patch_dims`
  /// cells; trailing patches absorb the remainder.
  StructuredBlockLayout(mesh::Index3 mesh_dims, mesh::Index3 patch_dims);

  [[nodiscard]] mesh::Index3 mesh_dims() const { return mesh_dims_; }
  /// Patch-lattice dimensions (number of patches per axis).
  [[nodiscard]] mesh::Index3 grid_dims() const { return grid_dims_; }
  [[nodiscard]] int num_patches() const {
    return grid_dims_.i * grid_dims_.j * grid_dims_.k;
  }

  /// Patch holding the cell at lattice point `cell`.
  [[nodiscard]] PatchId patch_of(mesh::Index3 cell) const;

  /// Cell box of patch `p` (half-open).
  [[nodiscard]] mesh::Box patch_box(PatchId p) const;

  /// Patch-lattice coordinates of a patch.
  [[nodiscard]] mesh::Index3 patch_index(PatchId p) const;
  [[nodiscard]] PatchId patch_at(mesh::Index3 g) const;

  /// Neighbor patch across `dir`, or invalid at the domain boundary.
  [[nodiscard]] PatchId neighbor(PatchId p, mesh::FaceDir dir) const;

  /// Number of cell faces on the interface between `p` and its neighbor
  /// across `dir` (the cross-patch message volume per angle).
  [[nodiscard]] std::int64_t interface_cells(PatchId p,
                                             mesh::FaceDir dir) const;

  [[nodiscard]] std::int64_t cells_in(PatchId p) const {
    return patch_box(p).volume();
  }

 private:
  mesh::Index3 mesh_dims_;
  mesh::Index3 patch_dims_;
  mesh::Index3 grid_dims_;
};

/// Materialize the layout as a cell→patch vector (for PatchSet).
std::vector<std::int32_t> block_partition(const StructuredBlockLayout& layout);

}  // namespace jsweep::partition
