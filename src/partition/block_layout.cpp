#include "partition/block_layout.hpp"

#include "support/check.hpp"

namespace jsweep::partition {

namespace {
int div_ceil(int a, int b) { return (a + b - 1) / b; }
}  // namespace

StructuredBlockLayout::StructuredBlockLayout(mesh::Index3 mesh_dims,
                                             mesh::Index3 patch_dims)
    : mesh_dims_(mesh_dims), patch_dims_(patch_dims) {
  JSWEEP_CHECK(mesh_dims.i > 0 && mesh_dims.j > 0 && mesh_dims.k > 0);
  JSWEEP_CHECK(patch_dims.i > 0 && patch_dims.j > 0 && patch_dims.k > 0);
  grid_dims_ = {div_ceil(mesh_dims.i, patch_dims.i),
                div_ceil(mesh_dims.j, patch_dims.j),
                div_ceil(mesh_dims.k, patch_dims.k)};
}

PatchId StructuredBlockLayout::patch_of(mesh::Index3 cell) const {
  JSWEEP_ASSERT(mesh::Box({{0, 0, 0}, mesh_dims_}).contains(cell));
  return patch_at({cell.i / patch_dims_.i, cell.j / patch_dims_.j,
                   cell.k / patch_dims_.k});
}

mesh::Box StructuredBlockLayout::patch_box(PatchId p) const {
  const mesh::Index3 g = patch_index(p);
  const mesh::Index3 lo{g.i * patch_dims_.i, g.j * patch_dims_.j,
                        g.k * patch_dims_.k};
  const mesh::Index3 hi{std::min(lo.i + patch_dims_.i, mesh_dims_.i),
                        std::min(lo.j + patch_dims_.j, mesh_dims_.j),
                        std::min(lo.k + patch_dims_.k, mesh_dims_.k)};
  return {lo, hi};
}

mesh::Index3 StructuredBlockLayout::patch_index(PatchId p) const {
  JSWEEP_ASSERT(p.valid() && p.value() < num_patches());
  const int v = p.value();
  return {v % grid_dims_.i, (v / grid_dims_.i) % grid_dims_.j,
          v / (grid_dims_.i * grid_dims_.j)};
}

PatchId StructuredBlockLayout::patch_at(mesh::Index3 g) const {
  JSWEEP_ASSERT(mesh::Box({{0, 0, 0}, grid_dims_}).contains(g));
  return PatchId{g.i + grid_dims_.i * (g.j + grid_dims_.j * g.k)};
}

PatchId StructuredBlockLayout::neighbor(PatchId p, mesh::FaceDir dir) const {
  mesh::Index3 g = patch_index(p);
  const mesh::Index3 off = mesh::kFaceOffsets[static_cast<std::size_t>(dir)];
  g.i += off.i;
  g.j += off.j;
  g.k += off.k;
  if (!mesh::Box({{0, 0, 0}, grid_dims_}).contains(g))
    return PatchId::invalid();
  return patch_at(g);
}

std::int64_t StructuredBlockLayout::interface_cells(PatchId p,
                                                    mesh::FaceDir dir) const {
  if (!neighbor(p, dir).valid()) return 0;
  const mesh::Box b = patch_box(p);
  switch (dir) {
    case mesh::FaceDir::XLo:
    case mesh::FaceDir::XHi:
      return static_cast<std::int64_t>(b.hi.j - b.lo.j) * (b.hi.k - b.lo.k);
    case mesh::FaceDir::YLo:
    case mesh::FaceDir::YHi:
      return static_cast<std::int64_t>(b.hi.i - b.lo.i) * (b.hi.k - b.lo.k);
    case mesh::FaceDir::ZLo:
    case mesh::FaceDir::ZHi:
      return static_cast<std::int64_t>(b.hi.i - b.lo.i) * (b.hi.j - b.lo.j);
  }
  return 0;
}

std::vector<std::int32_t> block_partition(const StructuredBlockLayout& layout) {
  const mesh::Index3 d = layout.mesh_dims();
  std::vector<std::int32_t> part(static_cast<std::size_t>(d.i) * d.j * d.k);
  std::size_t idx = 0;
  for (int k = 0; k < d.k; ++k)
    for (int j = 0; j < d.j; ++j)
      for (int i = 0; i < d.i; ++i, ++idx)
        part[idx] = layout.patch_of({i, j, k}).value();
  return part;
}

}  // namespace jsweep::partition
