#pragma once

/// \file rcb.hpp
/// Recursive coordinate bisection over cell centroids — the geometric
/// fallback partitioner (useful when a cell graph is unavailable or as a
/// baseline against the graph partitioner).

#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"

namespace jsweep::partition {

/// Partition `centroids` into `nparts` parts by recursively splitting the
/// longest axis at the weighted median. Parts sizes differ by at most one.
std::vector<std::int32_t> partition_rcb(const std::vector<mesh::Vec3>& centroids,
                                        int nparts);

}  // namespace jsweep::partition
