#pragma once

/// \file adjacency.hpp
/// Compressed sparse row cell-adjacency graphs, the common currency between
/// the two mesh families and the partitioners.

#include <cstdint>
#include <vector>

#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"

namespace jsweep::partition {

/// Undirected cell-adjacency graph in CSR form.
struct CsrGraph {
  std::vector<std::int64_t> offsets;    ///< size = num_vertices + 1
  std::vector<std::int64_t> neighbors;  ///< concatenated adjacency lists

  [[nodiscard]] std::int64_t num_vertices() const {
    return static_cast<std::int64_t>(offsets.size()) - 1;
  }
  [[nodiscard]] std::int64_t degree(std::int64_t v) const {
    return offsets[static_cast<std::size_t>(v) + 1] -
           offsets[static_cast<std::size_t>(v)];
  }
  /// Iterate neighbors of v.
  template <class Fn>
  void for_neighbors(std::int64_t v, Fn&& fn) const {
    for (auto e = offsets[static_cast<std::size_t>(v)];
         e < offsets[static_cast<std::size_t>(v) + 1]; ++e)
      fn(neighbors[static_cast<std::size_t>(e)]);
  }
};

/// Face-adjacency graph of a tetrahedral mesh.
CsrGraph cell_graph(const mesh::TetMesh& m);

/// Face-adjacency (6-point stencil) graph of a structured mesh. Intended
/// for host-scale meshes; large structured runs use the implicit
/// StructuredBlockLayout instead.
CsrGraph cell_graph(const mesh::StructuredMesh& m);

/// Cell centroids, for the geometric partitioners.
std::vector<mesh::Vec3> cell_centroids(const mesh::TetMesh& m);
std::vector<mesh::Vec3> cell_centroids(const mesh::StructuredMesh& m);

/// Number of edges cut by a partition (each cut edge counted once).
std::int64_t edge_cut(const CsrGraph& g, const std::vector<std::int32_t>& part);

/// Sizes of each part.
std::vector<std::int64_t> part_sizes(const std::vector<std::int32_t>& part,
                                     int nparts);

/// max(size) / mean(size); 1.0 is perfectly balanced.
double imbalance(const std::vector<std::int32_t>& part, int nparts);

}  // namespace jsweep::partition
