#pragma once

/// \file patch_set.hpp
/// The patch decomposition: JSweep's realization of the JAxMIN patch
/// contract (Sec. II-B) — every patch knows its own cells, and, through the
/// cell→patch map plus the mesh adjacency, all adjacency information about
/// its neighboring patches.

#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"
#include "partition/adjacency.hpp"
#include "support/ids.hpp"

namespace jsweep::partition {

class PatchSet {
 public:
  /// `cell_patch[c]` is the patch of cell c; patch ids must be dense in
  /// [0, num_patches). If `g` is provided, patch adjacency is derived from
  /// it (needed by the sweep's patch-priority strategies).
  PatchSet(std::vector<std::int32_t> cell_patch, int num_patches,
           const CsrGraph* g = nullptr);

  [[nodiscard]] int num_patches() const { return num_patches_; }
  [[nodiscard]] std::int64_t num_cells() const {
    return static_cast<std::int64_t>(cell_patch_.size());
  }

  [[nodiscard]] PatchId patch_of(CellId c) const {
    return PatchId{cell_patch_[static_cast<std::size_t>(c.value())]};
  }

  /// Global ids of the patch's local cells, in ascending order.
  [[nodiscard]] const std::vector<CellId>& cells(PatchId p) const {
    return cells_[static_cast<std::size_t>(p.value())];
  }

  /// Index of a cell within its owning patch's cell list.
  [[nodiscard]] std::int32_t local_index(CellId c) const {
    return local_index_[static_cast<std::size_t>(c.value())];
  }

  /// Patches adjacent to p (sharing at least one cell face). Empty when the
  /// PatchSet was built without a graph.
  [[nodiscard]] const std::vector<PatchId>& neighbors(PatchId p) const {
    return neighbors_[static_cast<std::size_t>(p.value())];
  }

  [[nodiscard]] const std::vector<std::int32_t>& cell_patch() const {
    return cell_patch_;
  }

 private:
  std::vector<std::int32_t> cell_patch_;
  int num_patches_;
  std::vector<std::vector<CellId>> cells_;
  std::vector<std::int32_t> local_index_;
  std::vector<std::vector<PatchId>> neighbors_;
};

/// Mean centroid of each patch's cells.
std::vector<mesh::Vec3> patch_centroids(const PatchSet& ps,
                                        const std::vector<mesh::Vec3>& cell_centroids);

/// Patch→rank assignments.
std::vector<RankId> assign_contiguous(int num_patches, int nranks);
std::vector<RankId> assign_round_robin(int num_patches, int nranks);
/// Sort patches along a Morton curve over quantized centroids, then chop
/// into contiguous chunks — keeps each rank's patches spatially compact.
std::vector<RankId> assign_by_sfc(const std::vector<mesh::Vec3>& centroids,
                                  int nranks);

}  // namespace jsweep::partition
