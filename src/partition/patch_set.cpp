#include "partition/patch_set.hpp"

#include <algorithm>
#include <cmath>

#include "partition/sfc.hpp"
#include "support/check.hpp"

namespace jsweep::partition {

PatchSet::PatchSet(std::vector<std::int32_t> cell_patch, int num_patches,
                   const CsrGraph* g)
    : cell_patch_(std::move(cell_patch)), num_patches_(num_patches) {
  JSWEEP_CHECK(num_patches_ > 0);
  cells_.resize(static_cast<std::size_t>(num_patches_));
  local_index_.resize(cell_patch_.size());

  for (std::size_t c = 0; c < cell_patch_.size(); ++c) {
    const auto p = cell_patch_[c];
    JSWEEP_CHECK_MSG(p >= 0 && p < num_patches_,
                     "cell " << c << " has patch " << p);
    auto& list = cells_[static_cast<std::size_t>(p)];
    local_index_[c] = static_cast<std::int32_t>(list.size());
    list.push_back(CellId{static_cast<std::int64_t>(c)});
  }
  for (int p = 0; p < num_patches_; ++p)
    JSWEEP_CHECK_MSG(!cells_[static_cast<std::size_t>(p)].empty(),
                     "patch " << p << " is empty");

  neighbors_.resize(static_cast<std::size_t>(num_patches_));
  if (g != nullptr) {
    JSWEEP_CHECK(g->num_vertices() ==
                 static_cast<std::int64_t>(cell_patch_.size()));
    for (std::int64_t v = 0; v < g->num_vertices(); ++v) {
      const auto pv = cell_patch_[static_cast<std::size_t>(v)];
      g->for_neighbors(v, [&](std::int64_t u) {
        const auto pu = cell_patch_[static_cast<std::size_t>(u)];
        if (pu != pv) neighbors_[static_cast<std::size_t>(pv)].push_back(PatchId{pu});
      });
    }
    for (auto& nb : neighbors_) {
      std::sort(nb.begin(), nb.end());
      nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    }
  }
}

std::vector<mesh::Vec3> patch_centroids(
    const PatchSet& ps, const std::vector<mesh::Vec3>& cell_centroids) {
  JSWEEP_CHECK(static_cast<std::int64_t>(cell_centroids.size()) ==
               ps.num_cells());
  std::vector<mesh::Vec3> out(static_cast<std::size_t>(ps.num_patches()));
  for (int p = 0; p < ps.num_patches(); ++p) {
    mesh::Vec3 sum{};
    const auto& cells = ps.cells(PatchId{p});
    for (const auto c : cells)
      sum += cell_centroids[static_cast<std::size_t>(c.value())];
    out[static_cast<std::size_t>(p)] =
        sum / static_cast<double>(cells.size());
  }
  return out;
}

std::vector<RankId> assign_contiguous(int num_patches, int nranks) {
  JSWEEP_CHECK(num_patches > 0 && nranks > 0);
  std::vector<RankId> owner(static_cast<std::size_t>(num_patches));
  for (int p = 0; p < num_patches; ++p)
    owner[static_cast<std::size_t>(p)] =
        RankId{static_cast<int>((static_cast<std::int64_t>(p) * nranks) /
                                num_patches)};
  return owner;
}

std::vector<RankId> assign_round_robin(int num_patches, int nranks) {
  JSWEEP_CHECK(num_patches > 0 && nranks > 0);
  std::vector<RankId> owner(static_cast<std::size_t>(num_patches));
  for (int p = 0; p < num_patches; ++p)
    owner[static_cast<std::size_t>(p)] = RankId{p % nranks};
  return owner;
}

std::vector<RankId> assign_by_sfc(const std::vector<mesh::Vec3>& centroids,
                                  int nranks) {
  const auto n = static_cast<std::int64_t>(centroids.size());
  JSWEEP_CHECK(n > 0 && nranks > 0);

  mesh::Vec3 lo = centroids.front();
  mesh::Vec3 hi = lo;
  for (const auto& c : centroids) {
    lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
    hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
  }
  const mesh::Vec3 ext{std::max(hi.x - lo.x, 1e-300),
                       std::max(hi.y - lo.y, 1e-300),
                       std::max(hi.z - lo.z, 1e-300)};
  constexpr std::uint32_t kGrid = (1u << 16) - 1;

  std::vector<std::pair<std::uint64_t, std::int64_t>> keyed(
      static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& c = centroids[static_cast<std::size_t>(i)];
    const auto qx =
        static_cast<std::uint32_t>((c.x - lo.x) / ext.x * kGrid);
    const auto qy =
        static_cast<std::uint32_t>((c.y - lo.y) / ext.y * kGrid);
    const auto qz =
        static_cast<std::uint32_t>((c.z - lo.z) / ext.z * kGrid);
    keyed[static_cast<std::size_t>(i)] = {morton3(qx, qy, qz), i};
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<RankId> owner(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    owner[static_cast<std::size_t>(keyed[static_cast<std::size_t>(i)].second)] =
        RankId{static_cast<int>((i * nranks) / n)};
  return owner;
}

}  // namespace jsweep::partition
