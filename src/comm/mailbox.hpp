#pragma once

/// \file mailbox.hpp
/// Per-rank inbound message queue: multiple producers (any rank's sender),
/// single consumer (the owning rank's master thread).

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace jsweep::comm {

/// Unbounded MPSC queue with blocking and timed waits. All operations are
/// thread-safe; `pop`-side calls must come from a single consumer if FIFO
/// consumption order matters to the caller.
class Mailbox {
 public:
  /// Enqueue a message (any thread) and wake one waiting consumer.
  void push(Message msg) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop.
  std::optional<Message> try_pop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  /// Blocking pop.
  Message pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty(); });
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  /// Wait until a message is available or the timeout elapses.
  /// Returns true if the mailbox is non-empty on return.
  bool wait_nonempty(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return !queue_.empty(); });
  }

  /// Number of queued messages.
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Whether the queue is empty.
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace jsweep::comm
