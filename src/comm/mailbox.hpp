#pragma once

/// \file mailbox.hpp
/// Per-rank inbound message queue: multiple producers (any rank's sender),
/// single consumer (the owning rank's master thread).

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "comm/message.hpp"

namespace jsweep::comm {

/// Unbounded MPSC queue with blocking and timed waits. All operations are
/// thread-safe; `pop`-side calls must come from a single consumer.
///
/// Delivery is priority-ordered, not FIFO: control messages (termination
/// tokens, shutdown) outrank everything, then higher Message::priority
/// first, and arrival order breaks ties — so equal-priority traffic keeps
/// the classic per-sender-FIFO behavior, while deep-critical-path stream
/// batches jump the queue at the receiving master.
class Mailbox {
 public:
  /// Enqueue a message (any thread) and wake one waiting consumer.
  void push(Message msg) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      heap_.push_back(Item{std::move(msg), arrival_seq_++});
      std::push_heap(heap_.begin(), heap_.end(), ItemLess{});
    }
    cv_.notify_one();
  }

  /// Non-blocking pop of the best-priority message.
  std::optional<Message> try_pop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (heap_.empty()) return std::nullopt;
    return pop_locked();
  }

  /// Blocking pop of the best-priority message.
  Message pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !heap_.empty(); });
    return pop_locked();
  }

  /// Wait until a message is available or the timeout elapses.
  /// Returns true if the mailbox is non-empty on return.
  bool wait_nonempty(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return !heap_.empty(); });
  }

  /// Number of queued messages.
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return heap_.size();
  }

  /// Whether the queue is empty.
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Item {
    Message msg;
    std::uint64_t seq;  ///< arrival order, the stable tie-break
  };

  /// Max-heap order: control first, then priority descending, then
  /// arrival sequence ascending.
  struct ItemLess {
    bool operator()(const Item& a, const Item& b) const {
      const bool ac = a.msg.is_control();
      const bool bc = b.msg.is_control();
      if (ac != bc) return bc;
      if (a.msg.priority != b.msg.priority)
        return a.msg.priority < b.msg.priority;
      return a.seq > b.seq;
    }
  };

  Message pop_locked() {
    std::pop_heap(heap_.begin(), heap_.end(), ItemLess{});
    Message m = std::move(heap_.back().msg);
    heap_.pop_back();
    return m;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Item> heap_;
  std::uint64_t arrival_seq_ = 0;
};

}  // namespace jsweep::comm
