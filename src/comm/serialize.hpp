#pragma once

/// \file serialize.hpp
/// Byte-level serialization for message payloads.
///
/// Streams crossing rank boundaries are packed into byte buffers exactly as
/// they would be for MPI; pack/unpack cost is part of the paper's runtime
/// breakdown (Fig. 16), so serialization is explicit rather than hidden
/// behind shared memory.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

namespace jsweep::comm {

/// A serialized message payload.
using Bytes = std::vector<std::byte>;

/// Appends trivially-copyable values to a byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;  ///< empty buffer
  /// Empty buffer with `reserve_bytes` of capacity pre-reserved.
  explicit ByteWriter(std::size_t reserve_bytes) {
    buf_.reserve(reserve_bytes);
  }

  /// Append the raw bytes of one trivially copyable value.
  template <class T>
  void write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::write requires a trivially copyable type");
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  /// Append a length-prefixed vector of trivially copyable elements.
  template <class T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(static_cast<std::uint64_t>(v.size()));
    const auto old = buf_.size();
    buf_.resize(old + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(buf_.data() + old, v.data(), v.size() * sizeof(T));
  }

  /// Append a length-prefixed string.
  void write_string(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto old = buf_.size();
    buf_.resize(old + s.size());
    if (!s.empty()) std::memcpy(buf_.data() + old, s.data(), s.size());
  }

  /// Bytes written so far.
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  /// Move the buffer out (the writer is left empty).
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  /// The buffer written so far, without giving it up.
  [[nodiscard]] const Bytes& bytes() const { return buf_; }

 private:
  Bytes buf_;
};

/// Reads trivially-copyable values back out of a byte buffer.
class ByteReader {
 public:
  /// Read from `buf`, which must outlive the reader.
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  /// Read one trivially copyable value (bounds-checked; overruns throw).
  template <class T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    JSWEEP_CHECK_MSG(pos_ + sizeof(T) <= buf_.size(),
                     "ByteReader overrun at " << pos_ << "/" << buf_.size());
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Read a length-prefixed vector written by write_vector().
  template <class T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    JSWEEP_CHECK(pos_ + n * sizeof(T) <= buf_.size());
    std::vector<T> v(n);
    if (n) std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Read a length-prefixed string written by write_string().
  std::string read_string() {
    const auto n = read<std::uint64_t>();
    JSWEEP_CHECK(pos_ + n <= buf_.size());
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Whether every byte of the buffer has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }
  /// Current read offset in bytes.
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace jsweep::comm
