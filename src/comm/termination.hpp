#pragma once

/// \file termination.hpp
/// Distributed termination detection for the data-driven runtime.
///
/// The paper (Sec. III-B, IV-C) supports two modes:
///   1. the general negotiating protocol for arbitrary patch-centric
///      programs — here Safra's token algorithm (Misra-style marker
///      circulation with message counting), and
///   2. the fast path for algorithms whose total workload is known in
///      advance (Sn sweeps): each rank commits its remaining (cell, angle)
///      workload and detection needs only a cheap global count.
///
/// Both are implemented against comm::Context; the engine picks per run.

#include <cstdint>
#include <optional>

#include "comm/cluster.hpp"

namespace jsweep::comm {

/// Safra's termination-detection token algorithm.
///
/// Usage, on each rank's master thread:
///   - call note_basic_send() / note_basic_recv() for every application
///     message (or construct with `use_context_counters` and let it read
///     the Context's traffic stats);
///   - when a control message with tag kTagToken arrives, call on_token();
///   - whenever the rank is locally idle (no runnable work, no pending
///     basic messages), call on_idle();
///   - poll terminated(); rank 0 discovers global termination and
///     broadcasts kTagTerminate, which other ranks observe via on_terminate
///     (the engine forwards the message) or by receiving the tag and
///     calling on_terminate() themselves.
class SafraDetector {
 public:
  /// Detector for one rank; `ctx` must outlive it.
  explicit SafraDetector(Context& ctx);

  /// Record one application-level send/receive (message counting).
  void note_basic_send() { ++counter_; }
  void note_basic_recv() {
    --counter_;
    black_ = true;
  }

  /// Handle an incoming kTagToken control message.
  void on_token(const Message& msg);

  /// Handle an incoming kTagTerminate broadcast.
  void on_terminate() { terminated_ = true; }

  /// Notify the detector that this rank is locally passive. Rank 0
  /// initiates a probe; other ranks forward a held token.
  void on_idle();

  /// Notify that this rank became active again (new local work appeared).
  void on_active() { black_ = true; }

  /// Whether global termination has been detected / broadcast.
  [[nodiscard]] bool terminated() const { return terminated_; }

  /// Number of full probe rounds initiated (diagnostic).
  [[nodiscard]] int rounds() const { return rounds_; }

 private:
  struct Token {
    std::int64_t count = 0;
    std::uint8_t black = 0;
  };

  void forward_token();
  void initiate();

  Context& ctx_;
  std::int64_t counter_ = 0;  ///< basic sends minus basic receives
  bool black_ = true;         ///< rank color (black until proven quiet)
  bool terminated_ = false;
  bool holding_token_ = false;
  Token held_{};
  bool probe_outstanding_ = false;  ///< rank 0: a token is circulating
  int rounds_ = 0;
};

/// Workload-commitment detector: the fast path for known-workload
/// algorithms. Each rank decrements a local remaining-work counter as
/// patch-programs retire vertices; when every rank's counter hits zero the
/// program is globally done. Completion is confirmed with a single
/// allreduce once the local counter reaches zero and no messages are in
/// flight locally (cheap compared to continuous token circulation).
class WorkloadTracker {
 public:
  /// `local_total` is the number of work units this rank will retire.
  explicit WorkloadTracker(std::int64_t local_total)
      : remaining_(local_total) {}

  /// Add work discovered after construction (e.g. injected programs).
  void commit(std::int64_t additional) { remaining_ += additional; }
  /// Record `units` of work finished on this rank.
  void retire(std::int64_t units = 1) { remaining_ -= units; }

  /// Work units this rank has yet to retire.
  [[nodiscard]] std::int64_t remaining() const { return remaining_; }
  /// Whether this rank's committed workload is fully retired.
  [[nodiscard]] bool locally_done() const { return remaining_ <= 0; }

 private:
  std::int64_t remaining_ = 0;
};

}  // namespace jsweep::comm
