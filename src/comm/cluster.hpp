#pragma once

/// \file cluster.hpp
/// The in-process cluster: JSweep's substitute for an MPI job.
///
/// Cluster::run(P, fn) launches P rank threads; each receives a Context with
/// MPI-like point-to-point messaging (asynchronous send, probe/recv) and the
/// collectives the runtime needs (barrier, allreduce). Message payloads are
/// serialized byte buffers, so moving this layer onto real MPI is a
/// transport swap, not a redesign — the engine above sees identical
/// semantics: reliable, asynchronous delivery, priority-ordered at the
/// receiver (per-sender-FIFO among equal priorities; see comm/mailbox.hpp).

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "support/check.hpp"
#include "support/ids.hpp"

namespace jsweep::comm {

class Cluster;

/// Per-rank traffic counters, used for termination detection (basic message
/// balance) and for benchmark reporting (bytes on the wire).
struct TrafficStats {
  std::int64_t basic_sent = 0;      ///< application messages sent
  std::int64_t basic_received = 0;  ///< application messages received
  std::int64_t control_sent = 0;    ///< runtime control messages sent
  std::int64_t bytes_sent = 0;      ///< payload bytes sent (all tags)
};

/// A rank's handle onto the cluster. Created by Cluster; one per rank
/// thread. send() is thread-safe and may be called from worker threads
/// belonging to the rank; all receive-side calls must stay on the rank's
/// master thread.
class Context {
 public:
  /// This rank's id.
  [[nodiscard]] RankId rank() const { return rank_; }
  /// Number of ranks in the cluster.
  [[nodiscard]] int size() const;

  /// Asynchronous point-to-point send (thread-safe). `priority` orders
  /// delivery at the destination mailbox: higher drains first, ties keep
  /// arrival order (see Message::priority).
  void send(RankId dest, int tag, Bytes payload, double priority = 0.0);

  /// Non-blocking receive of the next message in arrival order.
  std::optional<Message> try_recv();

  /// Blocking receive.
  Message recv();

  /// Block until a message is available or `timeout` elapses; returns
  /// whether the mailbox is non-empty.
  bool wait_message(std::chrono::nanoseconds timeout);

  /// Number of messages waiting in this rank's mailbox.
  [[nodiscard]] std::size_t pending_messages() const;

  /// Collective: all ranks must call; returns when every rank has arrived.
  void barrier();

  /// Collective reductions (all ranks must call with their contribution).
  double allreduce_sum(double x);
  /// \copydoc allreduce_sum(double)
  std::int64_t allreduce_sum(std::int64_t x);
  /// \copydoc allreduce_sum(double)
  double allreduce_max(double x);
  /// \copydoc allreduce_sum(double)
  double allreduce_min(double x);
  /// \copydoc allreduce_sum(double)
  std::int64_t allreduce_max(std::int64_t x);

  /// Element-wise vector sum-reduction; `v` is replaced by the global sum.
  /// All ranks must pass the same length. Deterministic: contributions are
  /// folded in rank order.
  void allreduce_sum(std::vector<double>& v);

  /// This rank's traffic counters so far.
  [[nodiscard]] const TrafficStats& traffic() const { return stats_; }

 private:
  friend class Cluster;
  Context(Cluster& cluster, RankId rank) : cluster_(cluster), rank_(rank) {}

  template <class T, class Op>
  T allreduce(T x, Op op, T init);

  Cluster& cluster_;
  RankId rank_;
  TrafficStats stats_;
};

/// Owns the mailboxes and collective state for one in-process "job".
class Cluster {
 public:
  explicit Cluster(int nranks);  ///< create mailboxes/contexts for `nranks`
  ~Cluster();                    ///< requires all rank threads joined

  Cluster(const Cluster&) = delete;             ///< non-copyable
  Cluster& operator=(const Cluster&) = delete;  ///< non-copyable

  /// Number of ranks.
  [[nodiscard]] int size() const { return static_cast<int>(mailboxes_.size()); }

  /// Launch one thread per rank running `fn`, join them all, and rethrow
  /// the first exception raised by any rank (after all threads have
  /// stopped). Convenience entry point used by tests and benches.
  static void run(int nranks, const std::function<void(Context&)>& fn);

  /// Lower-level API: obtain the context for a rank (call from that rank's
  /// thread only). Useful when the caller manages its own threads.
  Context& context(RankId rank);

  /// Aggregate traffic across ranks (valid after all rank threads finish).
  [[nodiscard]] TrafficStats total_traffic() const;

 private:
  friend class Context;

  void deliver(RankId dest, Message msg);
  Mailbox& mailbox(RankId rank);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Context>> contexts_;

  // Collective state: a generation-stamped scratch vector guarded by the
  // barrier on both sides.
  std::barrier<> barrier_;
  std::vector<double> reduce_scratch_d_;
  std::vector<std::int64_t> reduce_scratch_i_;
  std::vector<const std::vector<double>*> vec_slots_;
  std::vector<double> vec_result_;
};

}  // namespace jsweep::comm
