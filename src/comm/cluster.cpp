#include "comm/cluster.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace jsweep::comm {

int Context::size() const { return cluster_.size(); }

void Context::send(RankId dest, int tag, Bytes payload, double priority) {
  JSWEEP_CHECK_MSG(dest.valid() && dest.value() < cluster_.size(),
                   "send to invalid rank " << dest);
  Message msg{rank_, tag, std::move(payload), priority};
  if (msg.is_control()) {
    ++stats_.control_sent;
  } else {
    ++stats_.basic_sent;
  }
  stats_.bytes_sent += static_cast<std::int64_t>(msg.payload.size());
  cluster_.deliver(dest, std::move(msg));
}

std::optional<Message> Context::try_recv() {
  auto msg = cluster_.mailbox(rank_).try_pop();
  if (msg && !msg->is_control()) ++stats_.basic_received;
  return msg;
}

Message Context::recv() {
  Message msg = cluster_.mailbox(rank_).pop();
  if (!msg.is_control()) ++stats_.basic_received;
  return msg;
}

bool Context::wait_message(std::chrono::nanoseconds timeout) {
  return cluster_.mailbox(rank_).wait_nonempty(timeout);
}

std::size_t Context::pending_messages() const {
  return cluster_.mailbox(rank_).size();
}

void Context::barrier() { cluster_.barrier_.arrive_and_wait(); }

template <class T, class Op>
T Context::allreduce(T x, Op op, T init) {
  // Two-phase: everyone writes its slot, barrier, everyone folds, barrier
  // (the second barrier keeps slot reuse safe for back-to-back reductions).
  auto& scratch = [&]() -> std::vector<T>& {
    if constexpr (std::is_same_v<T, double>)
      return cluster_.reduce_scratch_d_;
    else
      return cluster_.reduce_scratch_i_;
  }();
  scratch[static_cast<std::size_t>(rank_.value())] = x;
  cluster_.barrier_.arrive_and_wait();
  T acc = init;
  for (int r = 0; r < cluster_.size(); ++r)
    acc = op(acc, scratch[static_cast<std::size_t>(r)]);
  cluster_.barrier_.arrive_and_wait();
  return acc;
}

double Context::allreduce_sum(double x) {
  return allreduce<double>(x, [](double a, double b) { return a + b; }, 0.0);
}

std::int64_t Context::allreduce_sum(std::int64_t x) {
  return allreduce<std::int64_t>(
      x, [](std::int64_t a, std::int64_t b) { return a + b; }, 0);
}

double Context::allreduce_max(double x) {
  return allreduce<double>(
      x, [](double a, double b) { return std::max(a, b); },
      -std::numeric_limits<double>::infinity());
}

double Context::allreduce_min(double x) {
  return allreduce<double>(
      x, [](double a, double b) { return std::min(a, b); },
      std::numeric_limits<double>::infinity());
}

void Context::allreduce_sum(std::vector<double>& v) {
  // Publish a pointer to each rank's vector, fold in rank order on rank 0,
  // then everyone copies the result. Rank-ordered folding keeps the result
  // bitwise deterministic.
  cluster_.vec_slots_[static_cast<std::size_t>(rank_.value())] = &v;
  cluster_.barrier_.arrive_and_wait();
  if (rank_.value() == 0) {
    auto& result = cluster_.vec_result_;
    result.assign(v.size(), 0.0);
    for (int r = 0; r < cluster_.size(); ++r) {
      const auto* contrib = cluster_.vec_slots_[static_cast<std::size_t>(r)];
      JSWEEP_CHECK_MSG(contrib->size() == v.size(),
                       "allreduce vector length mismatch");
      for (std::size_t i = 0; i < v.size(); ++i) result[i] += (*contrib)[i];
    }
  }
  cluster_.barrier_.arrive_and_wait();
  v = cluster_.vec_result_;
  cluster_.barrier_.arrive_and_wait();
}

std::int64_t Context::allreduce_max(std::int64_t x) {
  return allreduce<std::int64_t>(
      x, [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
      std::numeric_limits<std::int64_t>::min());
}

Cluster::Cluster(int nranks)
    : barrier_(nranks),
      reduce_scratch_d_(static_cast<std::size_t>(nranks)),
      reduce_scratch_i_(static_cast<std::size_t>(nranks)),
      vec_slots_(static_cast<std::size_t>(nranks), nullptr) {
  JSWEEP_CHECK_MSG(nranks > 0, "cluster needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  contexts_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    contexts_.push_back(
        std::unique_ptr<Context>(new Context(*this, RankId{r})));
  }
}

Cluster::~Cluster() = default;

Context& Cluster::context(RankId rank) {
  JSWEEP_CHECK(rank.valid() && rank.value() < size());
  return *contexts_[static_cast<std::size_t>(rank.value())];
}

void Cluster::deliver(RankId dest, Message msg) {
  mailbox(dest).push(std::move(msg));
}

Mailbox& Cluster::mailbox(RankId rank) {
  return *mailboxes_[static_cast<std::size_t>(rank.value())];
}

TrafficStats Cluster::total_traffic() const {
  TrafficStats total;
  for (const auto& ctx : contexts_) {
    total.basic_sent += ctx->traffic().basic_sent;
    total.basic_received += ctx->traffic().basic_received;
    total.control_sent += ctx->traffic().control_sent;
    total.bytes_sent += ctx->traffic().bytes_sent;
  }
  return total;
}

void Cluster::run(int nranks, const std::function<void(Context&)>& fn) {
  Cluster cluster(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(cluster.context(RankId{r}));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // A dying rank would hang collectives on the others; there is no
        // recovery story for that (matching MPI's abort-on-error default),
        // so surface the failure immediately.
        std::fprintf(stderr, "[jsweep comm] rank %d threw; aborting job\n", r);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace jsweep::comm
