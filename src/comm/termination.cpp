#include "comm/termination.hpp"

namespace jsweep::comm {

namespace {

Bytes encode_token(std::int64_t count, bool black) {
  ByteWriter w(sizeof(std::int64_t) + 1);
  w.write(count);
  w.write(static_cast<std::uint8_t>(black ? 1 : 0));
  return w.take();
}

}  // namespace

SafraDetector::SafraDetector(Context& ctx) : ctx_(ctx) {
  // A single-rank job terminates the moment it is idle; rank 0 handles that
  // case in on_idle without sending itself tokens.
}

void SafraDetector::on_token(const Message& msg) {
  ByteReader r(msg.payload);
  held_.count = r.read<std::int64_t>();
  held_.black = r.read<std::uint8_t>();
  holding_token_ = true;
  // The token is forwarded (or, at rank 0, judged) only when this rank is
  // next idle; a busy rank legitimately sits on it.
}

void SafraDetector::on_idle() {
  if (terminated_) return;
  const int p = ctx_.size();
  if (p == 1) {
    terminated_ = true;
    return;
  }
  if (ctx_.rank().value() == 0) {
    if (holding_token_) {
      holding_token_ = false;
      probe_outstanding_ = false;
      // Round completed: token is white and global count balances → done.
      if (!held_.black && !black_ && held_.count + counter_ == 0) {
        terminated_ = true;
        for (int r = 1; r < p; ++r) ctx_.send(RankId{r}, kTagTerminate, {});
        return;
      }
      // Inconclusive: whiten and start another round.
      black_ = false;
      initiate();
      return;
    }
    if (!probe_outstanding_) initiate();
    return;
  }
  if (holding_token_) forward_token();
}

void SafraDetector::initiate() {
  ++rounds_;
  probe_outstanding_ = true;
  const int p = ctx_.size();
  // Ring direction: 0 → p-1 → p-2 → ... → 1 → 0 (Safra's original order;
  // any fixed ring works).
  ctx_.send(RankId{p - 1}, kTagToken, encode_token(0, /*black=*/false));
}

void SafraDetector::forward_token() {
  holding_token_ = false;
  const int me = ctx_.rank().value();
  const RankId next{me - 1};  // ring toward rank 0
  const std::int64_t q = held_.count + counter_;
  const bool black = held_.black || black_;
  ctx_.send(next, kTagToken, encode_token(q, black));
  black_ = false;  // whiten after forwarding
}

}  // namespace jsweep::comm
