#pragma once

/// \file message.hpp
/// The unit of communication between ranks: a tagged byte payload, exactly
/// the information an MPI point-to-point message carries.

#include <cstdint>

#include "comm/serialize.hpp"
#include "support/ids.hpp"

namespace jsweep::comm {

/// Message tags below kControlTagBase are "basic" (application) traffic and
/// participate in termination-detection message counting; tags at or above
/// it are runtime-internal control traffic (termination tokens, shutdown).
inline constexpr int kControlTagBase = 1 << 30;

/// Well-known tags used by the runtime.
enum Tag : int {
  kTagStream = 1,          ///< patch-program data stream
  kTagUser = 100,          ///< first tag available to applications
  kTagToken = kControlTagBase + 1,      ///< Safra termination token
  kTagTerminate = kControlTagBase + 2,  ///< global-termination broadcast
  kTagReduce = kControlTagBase + 3,     ///< non-blocking reduction traffic
};

/// One point-to-point message as delivered to a mailbox.
struct Message {
  RankId src;     ///< sending rank
  int tag = 0;    ///< message tag (see Tag)
  Bytes payload;  ///< serialized payload
  /// Scheduling priority: receiving mailboxes drain higher-priority
  /// messages first (control traffic outranks any priority; ties keep
  /// arrival order). The engine sets this to the highest stream priority
  /// batched into the payload; 0 (the default) is neutral.
  double priority = 0.0;

  /// Whether the tag marks runtime-internal control traffic.
  [[nodiscard]] bool is_control() const { return tag >= kControlTagBase; }
};

}  // namespace jsweep::comm
