#pragma once

/// \file alloc_counter.hpp
/// Global allocation counter for zero-allocation assertions.
///
/// Including this header replaces the global operator new/delete of the
/// whole binary with counting variants, so hot-path tests and benches can
/// assert "this loop allocated nothing". Include it from EXACTLY ONE
/// translation unit per binary (the definitions below are deliberately
/// non-inline replacements of the global operators) — currently
/// tests/test_flux_workspace.cpp and bench/bench_micro.cpp.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace jsweep::support {

namespace detail {
inline std::atomic<std::int64_t> g_allocs{0};
}  // namespace detail

/// Allocations performed by this binary so far.
inline std::int64_t allocation_count() {
  return detail::g_allocs.load(std::memory_order_relaxed);
}

}  // namespace jsweep::support

// GCC pairs the replaced operators against the built-in malloc/free rules
// and reports a false mismatch; the replacements below are consistent.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  jsweep::support::detail::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop
