#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace jsweep {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::min() const { return n_ ? min_ : 0.0; }
double RunningStat::max() const { return n_ ? max_ : 0.0; }
double RunningStat::mean() const { return n_ ? mean_ : 0.0; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  JSWEEP_CHECK_MSG(hi > lo && bins > 0,
                   "histogram range [" << lo << "," << hi << ") bins=" << bins);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::int64_t>(i, 0,
                               static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

std::int64_t Histogram::bin_count(std::size_t i) const {
  JSWEEP_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  JSWEEP_CHECK(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << lo_ << ".." << hi_ << ":";
  for (const auto c : counts_) os << " " << c;
  return os.str();
}

double speedup(double base_time, double time) {
  JSWEEP_CHECK(time > 0.0);
  return base_time / time;
}

double parallel_efficiency(double base_time, double base_cores, double time,
                           double cores) {
  JSWEEP_CHECK(cores > 0.0);
  return speedup(base_time, time) * base_cores / cores;
}

}  // namespace jsweep
