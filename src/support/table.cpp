#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace jsweep {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  JSWEEP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  JSWEEP_CHECK_MSG(cells.size() == header_.size(),
                   "row has " << cells.size() << " cells, header has "
                              << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << std::right << row[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

}  // namespace jsweep
