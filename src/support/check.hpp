#pragma once

/// \file check.hpp
/// Assertion and precondition macros used across the library.
///
/// JSWEEP_CHECK is always active (release builds included) and is used for
/// user-facing precondition violations; JSWEEP_ASSERT compiles out in
/// release builds and guards internal invariants on hot paths.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace jsweep {

/// Thrown when a JSWEEP_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "JSWEEP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace jsweep

/// Precondition check, active in all build types. Throws jsweep::CheckError.
#define JSWEEP_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr))                                                           \
      ::jsweep::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (0)

/// Precondition check with a streamed message:
///   JSWEEP_CHECK_MSG(n > 0, "n=" << n);
#define JSWEEP_CHECK_MSG(expr, stream_msg)                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream jsweep_check_os_;                                 \
      jsweep_check_os_ << stream_msg;                                      \
      ::jsweep::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                     jsweep_check_os_.str());              \
    }                                                                      \
  } while (0)

/// Internal invariant; compiled out when NDEBUG is defined.
#ifdef NDEBUG
#define JSWEEP_ASSERT(expr) ((void)0)
#else
#define JSWEEP_ASSERT(expr) JSWEEP_CHECK(expr)
#endif
