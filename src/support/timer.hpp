#pragma once

/// \file timer.hpp
/// Wall-clock timing utilities for the runtime and the benchmark harness.

#include <chrono>
#include <cstdint>

namespace jsweep {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  using clock = std::chrono::steady_clock;

  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Nanoseconds elapsed, for fine-grained accounting.
  [[nodiscard]] std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  clock::time_point start_;
};

/// Accumulates wall time across many start/stop intervals; used by the
/// runtime's per-category breakdown (kernel / graph-op / pack / comm / idle).
class IntervalAccumulator {
 public:
  void start() { mark_ = WallTimer::clock::now(); }

  void stop() {
    total_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                     WallTimer::clock::now() - mark_)
                     .count();
    ++count_;
  }

  [[nodiscard]] double seconds() const {
    return static_cast<double>(total_ns_) * 1e-9;
  }
  [[nodiscard]] std::int64_t count() const { return count_; }

  void add_seconds(double s) {
    total_ns_ += static_cast<std::int64_t>(s * 1e9);
    ++count_;
  }

  void reset() {
    total_ns_ = 0;
    count_ = 0;
  }

 private:
  WallTimer::clock::time_point mark_{};
  std::int64_t total_ns_ = 0;
  std::int64_t count_ = 0;
};

/// RAII guard that charges the enclosed scope to an IntervalAccumulator.
class ScopedInterval {
 public:
  explicit ScopedInterval(IntervalAccumulator& acc) : acc_(acc) {
    acc_.start();
  }
  ~ScopedInterval() { acc_.stop(); }

  ScopedInterval(const ScopedInterval&) = delete;
  ScopedInterval& operator=(const ScopedInterval&) = delete;

 private:
  IntervalAccumulator& acc_;
};

}  // namespace jsweep
