#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Everything in JSweep that uses randomness (mesh jitter, partition
/// tie-breaking, test workloads) goes through Xoshiro256** seeded via
/// SplitMix64, so runs are reproducible across platforms — std::mt19937
/// distributions are not guaranteed to produce identical streams across
/// standard library implementations.

#include <array>
#include <cstdint>
#include <limits>

namespace jsweep {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can drive std distributions,
/// but prefer the member helpers for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace jsweep
