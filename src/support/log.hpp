#pragma once

/// \file log.hpp
/// Minimal leveled logger. Thread-safe; writes whole lines so concurrent
/// ranks don't interleave. Level is process-global and defaults to Warn so
/// tests and benches stay quiet unless asked.

#include <sstream>
#include <string>

namespace jsweep {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global log threshold.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

}  // namespace jsweep

#define JSWEEP_LOG(level, stream_msg)                               \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::jsweep::log_level())) {                  \
      std::ostringstream jsweep_log_os_;                            \
      jsweep_log_os_ << stream_msg;                                 \
      ::jsweep::detail::log_line(level, jsweep_log_os_.str());      \
    }                                                               \
  } while (0)

#define JSWEEP_DEBUG(msg) JSWEEP_LOG(::jsweep::LogLevel::Debug, msg)
#define JSWEEP_INFO(msg) JSWEEP_LOG(::jsweep::LogLevel::Info, msg)
#define JSWEEP_WARN(msg) JSWEEP_LOG(::jsweep::LogLevel::Warn, msg)
#define JSWEEP_ERROR(msg) JSWEEP_LOG(::jsweep::LogLevel::Error, msg)
