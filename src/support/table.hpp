#pragma once

/// \file table.hpp
/// ASCII table rendering for the benchmark harness. Every figure/table bench
/// prints its series through this so the output format is uniform and easy
/// to diff against EXPERIMENTS.md.

#include <string>
#include <vector>

namespace jsweep {

/// Column-aligned ASCII table.
///
///   Table t({"cores", "time(s)", "speedup"});
///   t.add_row({"768", "143.2", "1.00"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a separator line under the header.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  /// Format helper: fixed-precision double.
  static std::string num(double v, int precision = 3);
  /// Format helper: integer with no grouping.
  static std::string num(std::int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace jsweep
