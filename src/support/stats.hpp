#pragma once

/// \file stats.hpp
/// Streaming statistics used by the benchmark harness and the simulator's
/// load/idle accounting.

#include <cstdint>
#include <string>
#include <vector>

namespace jsweep {

/// Welford streaming accumulator: min / max / mean / variance without
/// storing samples.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

  void reset() { *this = RunningStat{}; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for message-size and queue-depth profiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::int64_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;

  /// Render as a compact single-line summary "lo..hi: c0 c1 c2 ...".
  [[nodiscard]] std::string summary() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Parallel-efficiency helpers shared by the scaling benches.
///
/// speedup(base_time, base_cores, time, cores)   = base_time / time
/// efficiency(...) = speedup * base_cores / cores
[[nodiscard]] double speedup(double base_time, double time);
[[nodiscard]] double parallel_efficiency(double base_time, double base_cores,
                                         double time, double cores);

}  // namespace jsweep
