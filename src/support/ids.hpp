#pragma once

/// \file ids.hpp
/// Strongly-typed identifiers for the entities that flow through JSweep.
///
/// Patch/cell/angle/rank indices are all plain integers at heart; wrapping
/// them in distinct types catches the classic "passed a cell id where a
/// patch id was expected" bug at compile time at zero runtime cost.

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace jsweep {

/// CRTP-free strong integer id. `Tag` disambiguates unrelated id spaces.
template <class Tag, class Rep = std::int32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  /// Sentinel for "no such entity".
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{Rep{-1}}; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  Rep value_ = -1;
};

template <class Tag, class Rep>
std::ostream& operator<<(std::ostream& os, StrongId<Tag, Rep> id) {
  return os << id.value();
}

struct PatchTag {};
struct CellTag {};
struct AngleTag {};
struct GroupTag {};
struct RankTag {};
struct WorkerTag {};
struct TaskTagTag {};

/// A patch (subdomain) of the mesh.
using PatchId = StrongId<PatchTag>;
/// A cell within the global mesh.
using CellId = StrongId<CellTag, std::int64_t>;
/// An angular ordinate (sweeping direction).
using AngleId = StrongId<AngleTag>;
/// An energy group of a multigroup transport solve.
using GroupId = StrongId<GroupTag>;
/// A process rank in the communication substrate.
using RankId = StrongId<RankTag>;
/// A worker thread within one rank.
using WorkerId = StrongId<WorkerTag>;
/// Task tag distinguishing patch-programs on the same patch. For Sn sweeps
/// this encodes the (angle, group) pair group-major (see
/// sweep::sweep_task_tag) so a single-group sweep's tag is the plain angle
/// id; other components may use other tag spaces.
using TaskTag = StrongId<TaskTagTag>;

/// Identifies one patch-program: the (patch, task) pair of the paper.
struct ProgramKey {
  PatchId patch;
  TaskTag task;

  constexpr auto operator<=>(const ProgramKey&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const ProgramKey& k) {
  return os << "(" << k.patch << "," << k.task << ")";
}

}  // namespace jsweep

namespace std {

template <class Tag, class Rep>
struct hash<jsweep::StrongId<Tag, Rep>> {
  size_t operator()(jsweep::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct hash<jsweep::ProgramKey> {
  size_t operator()(const jsweep::ProgramKey& k) const noexcept {
    // Splitmix-style mix of the two 32-bit ids.
    std::uint64_t x = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(k.patch.value()))
                       << 32) |
                      static_cast<std::uint32_t>(k.task.value());
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace std
