#include "sim/kba_sim.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"

namespace jsweep::sim {

SimResult simulate_kba(const KbaSimConfig& config,
                       const sn::Quadrature& quad) {
  const CostModel& cm = config.cost;
  const mesh::Index3 d = config.mesh_dims;
  const int px = config.px;
  const int py = config.py;
  JSWEEP_CHECK(px >= 1 && py >= 1 && config.z_block >= 1);
  JSWEEP_CHECK(px <= d.i && py <= d.j);

  const int nblocks = (d.k + config.z_block - 1) / config.z_block;
  const int ranks = px * py;

  SimResult result;
  result.cores = ranks;

  // Owned extents per rank (even split; remainder spread like the real
  // KBA solver's split_range).
  const auto x_cells = [&](int rx) {
    return static_cast<std::int64_t>(d.i) * (rx + 1) / px -
           static_cast<std::int64_t>(d.i) * rx / px;
  };
  const auto y_cells = [&](int ry) {
    return static_cast<std::int64_t>(d.j) * (ry + 1) / py -
           static_cast<std::int64_t>(d.j) * ry / py;
  };

  std::vector<double> rank_free(static_cast<std::size_t>(ranks), 0.0);
  // done[r] for the current (angle, block): completion time of the stage.
  std::vector<double> done(static_cast<std::size_t>(ranks), 0.0);

  const auto rank_at = [&](int rx, int ry) { return ry * px + rx; };

  for (const auto& ang : quad.ordinates()) {
    const bool xup = ang.dir.x > 0;
    const bool yup = ang.dir.y > 0;
    for (int b = 0; b < nblocks; ++b) {
      const int bz = std::min(config.z_block, d.k - b * config.z_block);
      // Ranks in upwind-to-downwind order so dependencies are final.
      for (int wy = 0; wy < py; ++wy) {
        const int ry = yup ? wy : py - 1 - wy;
        for (int wx = 0; wx < px; ++wx) {
          const int rx = xup ? wx : px - 1 - wx;
          const int r = rank_at(rx, ry);
          double start = rank_free[static_cast<std::size_t>(r)];
          // Upwind x-plane.
          const int rx_up = xup ? rx - 1 : rx + 1;
          if (rx_up >= 0 && rx_up < px) {
            const double bytes =
                static_cast<double>(y_cells(ry)) * bz * 8.0;
            const double arrive = done[static_cast<std::size_t>(
                                      rank_at(rx_up, ry))] +
                                  cm.msg_latency_ns + bytes * cm.byte_ns +
                                  2.0 * bytes * cm.pack_byte_ns;
            start = std::max(start, arrive);
            ++result.messages;
            result.bytes += static_cast<std::int64_t>(bytes);
            result.breakdown.pack += 2.0 * bytes * cm.pack_byte_ns;
          }
          // Upwind y-plane.
          const int ry_up = yup ? ry - 1 : ry + 1;
          if (ry_up >= 0 && ry_up < py) {
            const double bytes =
                static_cast<double>(x_cells(rx)) * bz * 8.0;
            const double arrive = done[static_cast<std::size_t>(
                                      rank_at(rx, ry_up))] +
                                  cm.msg_latency_ns + bytes * cm.byte_ns +
                                  2.0 * bytes * cm.pack_byte_ns;
            start = std::max(start, arrive);
            ++result.messages;
            result.bytes += static_cast<std::int64_t>(bytes);
            result.breakdown.pack += 2.0 * bytes * cm.pack_byte_ns;
          }
          const double cells = static_cast<double>(x_cells(rx)) *
                               static_cast<double>(y_cells(ry)) * bz;
          const double dur =
              cells * cm.t_vertex_ns + cm.t_exec_overhead_ns;
          result.breakdown.kernel += cells * cm.t_vertex_ns;
          result.breakdown.graphop += cm.t_exec_overhead_ns;
          ++result.chunk_executions;
          const double finish = start + dur;
          rank_free[static_cast<std::size_t>(r)] = finish;
          done[static_cast<std::size_t>(r)] = finish;
        }
      }
    }
  }

  const double elapsed_ns =
      *std::max_element(rank_free.begin(), rank_free.end()) +
      config.cost.collective_ns(ranks);
  result.elapsed_seconds = elapsed_ns * 1e-9;
  const double busy_ns = result.breakdown.kernel + result.breakdown.graphop +
                         result.breakdown.pack;
  result.breakdown.kernel *= 1e-9;
  result.breakdown.graphop *= 1e-9;
  result.breakdown.pack *= 1e-9;
  result.breakdown.idle =
      result.elapsed_seconds * result.cores - busy_ns * 1e-9;
  return result;
}

}  // namespace jsweep::sim
